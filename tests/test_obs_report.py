"""repro.obs recorder + RunTelemetry: phase report, no-op overhead."""

from __future__ import annotations

import time

from repro import obs
from repro.obs import NullRecorder, RunTelemetry, TelemetryRecorder
from repro.obs.report import phase_of


def test_phase_classification():
    assert phase_of("sim.step") == "Simulation"
    assert phase_of("insitu.halo_finder") == "In-situ analysis"
    assert phase_of("offline.center_job") == "Off-line analysis"
    assert phase_of("listener.poll") == "Listener"
    assert phase_of("io.write") == "I/O"
    assert phase_of("staging.put") == "Staging"
    assert phase_of("mystery.thing") == "Other"


def _busy(seconds: float) -> None:
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


def test_self_time_subtracts_children():
    rec = TelemetryRecorder(run_id="self-time")
    with rec.span("sim.step", step=1):
        _busy(0.01)
        with rec.span("insitu.fof", step=1):
            _busy(0.02)
    rt = RunTelemetry.from_recorder(rec)
    stats = rt.phase_stats()
    sim = stats["Simulation"]
    insitu = stats["In-situ analysis"]
    # inclusive sim time covers the child; self time does not
    assert sim.total_seconds >= 0.03 - 1e-3
    assert sim.self_seconds < sim.total_seconds
    assert abs(sim.self_seconds - 0.01) < 0.02
    assert insitu.total_seconds >= 0.02 - 1e-3
    # the table charges each phase once: self seconds sum <= wall
    assert sum(p.self_seconds for p in stats.values()) <= rt.wall_seconds + 1e-6


def test_phase_table_renders_all_phases():
    rec = TelemetryRecorder(run_id="tbl")
    with rec.span("sim.step", step=1):
        with rec.span("insitu.fof", step=1):
            pass
    with rec.span("listener.poll"):
        with rec.span("offline.center_job"):
            pass
    rt = RunTelemetry.from_recorder(rec)
    table = rt.phase_table()
    for phase in ("Simulation", "In-situ analysis", "Listener", "Off-line analysis"):
        assert phase in table
    assert "% wall" in table and "tbl" in table
    # stable phase ordering follows the workflow, like the paper's Table 4
    assert table.index("Simulation") < table.index("In-situ analysis")
    assert table.index("In-situ analysis") < table.index("Off-line analysis")


def test_span_table_ranks_by_total():
    rec = TelemetryRecorder()
    with rec.span("slow"):
        _busy(0.01)
    with rec.span("fast"):
        pass
    lines = RunTelemetry.from_recorder(rec).span_table().splitlines()
    assert lines[0] == "Hottest spans"
    assert lines.index(next(ln for ln in lines if ln.startswith("slow"))) < lines.index(
        next(ln for ln in lines if ln.startswith("fast"))
    )


def test_from_recorder_returns_none_when_disabled():
    assert RunTelemetry.from_recorder(NullRecorder()) is None


def test_summary_is_machine_readable():
    rec = TelemetryRecorder(run_id="sum")
    with rec.span("sim.step", step=1):
        pass
    rec.event("sim.done", step=1)
    rec.counter("io_write_bytes_total").inc(7)
    s = RunTelemetry.from_recorder(rec).summary()
    assert s["run_id"] == "sum"
    assert s["n_spans"] == 1 and s["n_events"] == 1
    assert s["phases"]["Simulation"]["calls"] == 1
    assert s["metrics"]["io_write_bytes_total"] == 7


def test_global_recorder_swap_and_restore():
    assert not obs.get_recorder().enabled
    with obs.telemetry(run_id="scoped") as rec:
        assert obs.get_recorder() is rec
        with obs.get_recorder().span("sim.step", step=1):
            pass
    assert not obs.get_recorder().enabled
    assert len(rec.tracer) == 1


def test_noop_recorder_overhead_smoke():
    """Disabled telemetry must stay effectively free on hot paths."""
    rec = NullRecorder()
    n = 50_000
    t0 = time.perf_counter()
    for i in range(n):
        with rec.span("sim.step", step=i):
            pass
        rec.counter("c").inc()
        rec.gauge("g").set(i)
        rec.histogram("h").observe(i)
        rec.event("e", step=i)
    elapsed = time.perf_counter() - t0
    # ~5 no-op calls per iteration; generous bound to stay CI-safe
    assert elapsed < 2.0, f"no-op recorder too slow: {elapsed:.3f}s for {n} iters"


def test_stream_spans_classify_as_streaming():
    assert phase_of("stream.run") == "Streaming"
    assert phase_of("stream.chunk") == "Streaming"


def test_memory_stats_surfaces_the_sampled_peak():
    from repro.obs import sample_memory

    rec = TelemetryRecorder(run_id="mem")
    with rec.span("stream.run"):
        peak = sample_memory(rec.metrics)
    rt = RunTelemetry.from_recorder(rec)
    assert rt.memory_stats() == {"process_peak_rss_bytes": peak}


def test_memory_stats_empty_when_never_sampled():
    rec = TelemetryRecorder(run_id="mem-none")
    with rec.span("sim.step"):
        pass
    assert RunTelemetry.from_recorder(rec).memory_stats() == {}
