"""GenericIO block format: roundtrips, block access, corruption detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.io import (
    GenericIOError,
    GenericIOFile,
    read_block,
    read_genericio,
    write_genericio,
)


def _blocks(rng, n_blocks=3):
    out = []
    for _ in range(n_blocks):
        n = rng.integers(0, 50)
        out.append(
            {
                "pos": rng.uniform(0, 1, (n, 3)).astype(np.float32),
                "tag": rng.integers(0, 1 << 40, n).astype(np.uint64),
            }
        )
    return out


def test_roundtrip_all_blocks(tmp_path, rng):
    blocks = _blocks(rng)
    path = tmp_path / "data.gio"
    nbytes = write_genericio(path, blocks)
    assert nbytes == sum(b["pos"].nbytes + b["tag"].nbytes for b in blocks)
    data = read_genericio(path)
    assert np.array_equal(data["tag"], np.concatenate([b["tag"] for b in blocks]))
    assert np.array_equal(data["pos"], np.concatenate([b["pos"] for b in blocks]))


def test_read_single_block(tmp_path, rng):
    blocks = _blocks(rng)
    path = tmp_path / "data.gio"
    write_genericio(path, blocks)
    for i, blk in enumerate(blocks):
        got = read_block(path, i)
        assert np.array_equal(got["tag"], blk["tag"])
        assert np.array_equal(got["pos"], blk["pos"])


def test_block_metadata(tmp_path, rng):
    blocks = _blocks(rng, n_blocks=4)
    path = tmp_path / "data.gio"
    write_genericio(path, blocks)
    gio = GenericIOFile(path)
    assert gio.num_blocks == 4
    assert gio.variables == ["pos", "tag"]
    for i, blk in enumerate(blocks):
        assert gio.block_rows(i) == len(blk["tag"])


def test_dtype_preserved(tmp_path):
    blocks = [
        {
            "f32": np.arange(3, dtype=np.float32),
            "f64": np.arange(3, dtype=np.float64),
            "u32": np.arange(3, dtype=np.uint32),
            "i64": np.arange(3, dtype=np.int64),
        }
    ]
    path = tmp_path / "d.gio"
    write_genericio(path, blocks)
    data = read_genericio(path)
    assert data["f32"].dtype == np.float32
    assert data["f64"].dtype == np.float64
    assert data["u32"].dtype == np.uint32
    assert data["i64"].dtype == np.int64


def test_2d_shapes_preserved(tmp_path, rng):
    blocks = [{"pos": rng.uniform(size=(7, 3))}]
    path = tmp_path / "d.gio"
    write_genericio(path, blocks)
    assert read_block(path, 0)["pos"].shape == (7, 3)


def test_empty_block_roundtrip(tmp_path):
    blocks = [
        {"x": np.empty(0, dtype=np.float32)},
        {"x": np.arange(5, dtype=np.float32)},
    ]
    path = tmp_path / "d.gio"
    write_genericio(path, blocks)
    assert len(read_block(path, 0)["x"]) == 0
    assert len(read_block(path, 1)["x"]) == 5


def test_mismatched_schema_rejected(tmp_path):
    with pytest.raises(ValueError, match="variables"):
        write_genericio(
            tmp_path / "d.gio", [{"a": np.arange(2)}, {"b": np.arange(2)}]
        )


def test_unequal_lengths_rejected(tmp_path):
    with pytest.raises(ValueError, match="length"):
        write_genericio(tmp_path / "d.gio", [{"a": np.arange(2), "b": np.arange(3)}])


def test_no_blocks_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_genericio(tmp_path / "d.gio", [])


def test_bad_magic_detected(tmp_path):
    path = tmp_path / "junk.gio"
    path.write_bytes(b"NOTAGIOFILE")
    with pytest.raises(GenericIOError, match="magic"):
        GenericIOFile(path)


def test_corruption_detected_by_crc(tmp_path, rng):
    blocks = [{"x": rng.uniform(size=100)}]
    path = tmp_path / "d.gio"
    write_genericio(path, blocks)
    raw = bytearray(path.read_bytes())
    raw[-10] ^= 0xFF  # flip payload bits
    path.write_bytes(bytes(raw))
    with pytest.raises(GenericIOError, match="CRC"):
        read_genericio(path)
    # verification can be disabled explicitly
    read_genericio(path, verify=False)


def test_block_index_out_of_range(tmp_path, rng):
    path = tmp_path / "d.gio"
    write_genericio(path, [{"x": rng.uniform(size=3)}])
    with pytest.raises(IndexError):
        read_block(path, 1)


@settings(max_examples=25, deadline=None)
@given(
    arrays=st.lists(
        hnp.arrays(np.float64, st.integers(0, 30), elements=st.floats(-1e9, 1e9)),
        min_size=1,
        max_size=4,
    )
)
def test_prop_roundtrip_any_blocks(tmp_path_factory, arrays):
    path = tmp_path_factory.mktemp("gio") / "p.gio"
    blocks = [{"v": a} for a in arrays]
    write_genericio(path, blocks)
    got = read_genericio(path)
    assert np.array_equal(got["v"], np.concatenate(arrays), equal_nan=True)
