"""Chunked streaming IO: re-chunking, CRC modes, torn files, fault recovery."""

import os

import numpy as np
import pytest

from repro import obs
from repro.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    fault_plan,
)
from repro.io import GenericIOError, GenericIOFile, write_genericio
from repro.streaming import (
    ArrayStream,
    GenericIOStream,
    ParticleStream,
    PrefetchStream,
    write_slab_snapshot,
)

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=1e-4, max_delay=1e-3, jitter=0.0)


@pytest.fixture
def snapshot(tmp_path, blob_points):
    """A slab-ordered on-disk snapshot of the clustered point set."""
    path = tmp_path / "slab.gio"
    tags = np.arange(len(blob_points), dtype=np.int64)
    write_slab_snapshot(path, blob_points, box=20.0, tags=tags, block_rows=400)
    return path


def _collect(stream):
    pos = [c["pos"] for c in stream]
    tag = [c["tag"] for c in stream]
    return np.concatenate(pos), np.concatenate(tag)


# -- iter_chunks / GenericIOStream ---------------------------------------------


def test_iter_chunks_rechunks_across_block_boundaries(snapshot):
    gio = GenericIOFile(snapshot)
    whole = gio.read_block(0)
    rows = [len(c["tag"]) for c in gio.iter_chunks(130)]
    assert sum(rows) == gio.total_rows
    assert all(r == 130 for r in rows[:-1])  # only the tail may be short
    # chunk boundaries cut across the 400-row blocks without data loss
    streamed = np.concatenate([c["tag"] for c in gio.iter_chunks(130)])
    direct = np.concatenate([gio.read_block(b)["tag"] for b in range(gio.num_blocks)])
    assert np.array_equal(streamed, direct)
    assert len(whole["tag"]) == 400


def test_iter_chunks_variable_subset(snapshot):
    gio = GenericIOFile(snapshot)
    chunk = next(gio.iter_chunks(64, variables=["tag"]))
    assert list(chunk) == ["tag"]
    with pytest.raises(KeyError):
        next(gio.iter_chunks(64, variables=["no_such"]))


def test_stream_is_slab_ordered_and_complete(snapshot, blob_points):
    stream = GenericIOStream(snapshot, chunk_rows=97)
    assert isinstance(stream, ParticleStream)
    assert stream.box == 20.0
    assert stream.n_total == len(blob_points)
    pos, tag = _collect(stream)
    x = pos[:, 0]
    assert np.all(np.diff(x) >= 0)  # globally non-decreasing wrapped x
    assert np.array_equal(np.sort(tag), np.arange(len(blob_points)))


def test_box_comes_from_meta_or_is_required(tmp_path, rng):
    pos = rng.uniform(0, 5, (30, 3))
    plain = tmp_path / "plain.gio"
    write_genericio(plain, [{"pos": pos, "tag": np.arange(30, dtype=np.int64)}])
    with pytest.raises(ValueError, match="no box"):
        GenericIOStream(plain)
    stream = GenericIOStream(plain, box=5.0)  # explicit override works
    assert stream.box == 5.0


def test_meta_roundtrip(snapshot):
    meta = GenericIOFile(snapshot).meta
    assert meta["box"] == 20.0
    assert meta["slab_axis"] == 0
    assert meta["n_total"] == GenericIOFile(snapshot).total_rows


def test_array_stream_equivalent_to_file_stream(snapshot, blob_points):
    tags = np.arange(len(blob_points), dtype=np.int64)
    apos, atag = _collect(ArrayStream(blob_points, 20.0, tags=tags, chunk_rows=97))
    fpos, ftag = _collect(GenericIOStream(snapshot, chunk_rows=97))
    assert np.array_equal(apos, fpos)
    assert np.array_equal(atag, ftag)


# -- CRC modes -----------------------------------------------------------------


def _corrupt_tail(path, nbytes=64):
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(size - nbytes)


def test_lazy_verify_defers_to_the_torn_block(snapshot):
    _corrupt_tail(snapshot)
    gio = GenericIOFile(snapshot)  # lazy: open succeeds on a torn file
    good = gio.read_block(0)  # early blocks still readable
    assert len(good["tag"]) == 400
    with pytest.raises(GenericIOError, match="truncated"):
        gio.read_block(gio.num_blocks - 1)


def test_eager_verify_fails_at_open(snapshot):
    GenericIOFile(snapshot, verify="eager")  # intact file passes
    _corrupt_tail(snapshot)
    with pytest.raises(GenericIOError):
        GenericIOFile(snapshot, verify="eager")
    with pytest.raises(ValueError):
        GenericIOFile(snapshot, verify="sometimes")


def test_torn_file_surfaces_mid_stream_after_good_chunks(snapshot):
    """A torn tail costs only the torn block: every earlier chunk arrives."""
    n_total = GenericIOFile(snapshot).total_rows
    _corrupt_tail(snapshot)
    stream = GenericIOStream(snapshot, chunk_rows=150, retry=FAST_RETRY)
    seen = 0
    with pytest.raises(GenericIOError):
        for chunk in stream:
            seen += len(chunk["tag"])
    assert 0 < seen < n_total  # progress up to (not past) the torn block


def test_bitflip_detected_lazily(snapshot):
    gio = GenericIOFile(snapshot)
    with open(snapshot, "r+b") as fh:  # flip a byte in the last block's payload
        fh.seek(os.path.getsize(snapshot) - 4)
        byte = fh.read(1)
        fh.seek(-1, os.SEEK_CUR)
        fh.write(bytes([byte[0] ^ 0xFF]))
    assert len(gio.read_block(0)["tag"]) == 400
    with pytest.raises(GenericIOError, match="CRC"):
        gio.read_block(gio.num_blocks - 1)
    # verify=False skips the check (the fast path the benchmarks gate)
    assert len(gio.read_block(gio.num_blocks - 1, verify=False)["tag"]) > 0


# -- stream.read fault injection -----------------------------------------------


def test_transient_stream_fault_is_retried_without_data_loss(snapshot):
    rec = obs.TelemetryRecorder(run_id="stream-fault")
    obs.set_recorder(rec)
    clean_pos, clean_tag = _collect(GenericIOStream(snapshot, chunk_rows=150))
    key = f"{os.path.basename(snapshot)}:2"
    plan = FaultPlan(
        seed=1, sites={"stream.read": FaultSpec(fail_first=2, keys=(key,))}
    )
    with fault_plan(plan):
        pos, tag = _collect(GenericIOStream(snapshot, chunk_rows=150, retry=FAST_RETRY))
    assert plan.injected["stream.read"] == 2  # the fault really fired, twice
    assert np.array_equal(pos, clean_pos)  # same bytes, same order
    assert np.array_equal(tag, clean_tag)
    assert rec.metrics.counter("faults_injected_total").value == 2


def test_persistent_stream_fault_exhausts_retries(snapshot):
    # exhaustion re-raises the last attempt's exception (RetryError is
    # reserved for deadline violations)
    plan = FaultPlan(seed=1, sites={"stream.read": FaultSpec(always=True)})
    with fault_plan(plan):
        with pytest.raises(FaultInjected):
            _collect(GenericIOStream(snapshot, chunk_rows=150, retry=FAST_RETRY))
    assert plan.injected["stream.read"] == FAST_RETRY.max_attempts


def test_array_stream_fault_site_fires_too(blob_points):
    plan = FaultPlan(
        seed=1, sites={"stream.read": FaultSpec(fail_first=1, keys=("array:0",))}
    )
    tags = np.arange(len(blob_points), dtype=np.int64)
    with fault_plan(plan):
        pos, tag = _collect(
            ArrayStream(blob_points, 20.0, tags=tags, chunk_rows=500, retry=FAST_RETRY)
        )
    assert plan.injected["stream.read"] == 1
    assert len(tag) == len(blob_points)


# -- prefetch ------------------------------------------------------------------


def test_prefetch_preserves_the_chunk_sequence(snapshot):
    plain = GenericIOStream(snapshot, chunk_rows=97)
    pre = PrefetchStream(GenericIOStream(snapshot, chunk_rows=97), depth=2)
    assert pre.box == plain.box
    assert pre.chunk_rows == plain.chunk_rows
    assert pre.n_total == plain.n_total
    ppos, ptag = _collect(pre)
    spos, stag = _collect(plain)
    assert np.array_equal(ppos, spos)
    assert np.array_equal(ptag, stag)


def test_prefetch_is_reiterable(blob_points):
    tags = np.arange(len(blob_points), dtype=np.int64)
    pre = PrefetchStream(ArrayStream(blob_points, 20.0, tags=tags, chunk_rows=300))
    first = [c["tag"].copy() for c in pre]
    second = [c["tag"].copy() for c in pre]
    assert all(np.array_equal(a, b) for a, b in zip(first, second))


def test_prefetch_worker_shuts_down_on_early_exit(blob_points):
    tags = np.arange(len(blob_points), dtype=np.int64)
    pre = PrefetchStream(ArrayStream(blob_points, 20.0, tags=tags, chunk_rows=100), depth=3)
    it = iter(pre)
    next(it)
    it.close()  # breaking out of the loop must not leak the worker


def test_prefetch_depth_validation(blob_points):
    with pytest.raises(ValueError):
        PrefetchStream(ArrayStream(blob_points, 20.0, chunk_rows=100), depth=0)
