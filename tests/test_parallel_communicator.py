"""SPMD communicator semantics: p2p, collectives, isolation, errors."""

import numpy as np
import pytest

from repro.parallel import SpmdError, World, run_spmd


def test_single_rank_runs_inline():
    assert run_spmd(1, lambda comm: comm.rank) == [0]


def test_results_in_rank_order():
    assert run_spmd(4, lambda comm: comm.rank * 10) == [0, 10, 20, 30]


def test_send_recv_roundtrip():
    def prog(comm):
        if comm.rank == 0:
            comm.send({"x": 1}, dest=1, tag=5)
            return None
        return comm.recv(source=0, tag=5)

    assert run_spmd(2, prog)[1] == {"x": 1}


def test_recv_tag_matching_out_of_order():
    def prog(comm):
        if comm.rank == 0:
            comm.send("a", dest=1, tag=1)
            comm.send("b", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)  # arrives after tag 1; buffered
        first = comm.recv(source=0, tag=1)
        return (first, second)

    assert run_spmd(2, prog)[1] == ("a", "b")


def test_numpy_payloads_are_isolated():
    def prog(comm):
        arr = np.zeros(3)
        if comm.rank == 0:
            comm.send(arr, dest=1)
            arr[:] = 99  # must not affect receiver
            return None
        got = comm.recv(source=0)
        return got.copy()

    assert np.array_equal(run_spmd(2, prog)[1], np.zeros(3))


def test_barrier_synchronizes():
    import threading

    counter = {"n": 0}
    lock = threading.Lock()

    def prog(comm):
        with lock:
            counter["n"] += 1
        comm.barrier()
        with lock:
            return counter["n"]

    # after the barrier every rank must see all increments
    assert all(v == 4 for v in run_spmd(4, prog))


def test_bcast_from_nonzero_root():
    def prog(comm):
        data = [1, 2, 3] if comm.rank == 2 else None
        return comm.bcast(data, root=2)

    assert all(v == [1, 2, 3] for v in run_spmd(3, prog))


def test_scatter_gather_roundtrip():
    def prog(comm):
        objs = [f"r{i}" for i in range(comm.size)] if comm.rank == 0 else None
        mine = comm.scatter(objs, root=0)
        return comm.gather(mine, root=0)

    res = run_spmd(3, prog)
    assert res[0] == ["r0", "r1", "r2"]
    assert res[1] is None and res[2] is None


def test_scatter_wrong_length_raises():
    def prog(comm):
        if comm.rank == 0:  # repro: noqa[RPR011] - deliberately divergent (asserts SpmdError)
            comm.scatter([1], root=0)  # wrong length
        else:
            comm.recv(source=0, tag=-102)
        return None

    with pytest.raises(SpmdError):
        run_spmd(2, prog, timeout=3.0)


def test_allgather():
    res = run_spmd(4, lambda comm: comm.allgather(comm.rank**2))
    assert all(v == [0, 1, 4, 9] for v in res)


def test_allreduce_sum_and_custom_op():
    assert all(v == 6 for v in run_spmd(4, lambda c: c.allreduce(c.rank)))
    res = run_spmd(4, lambda c: c.allreduce(c.rank + 1, op=lambda a, b: a * b))
    assert all(v == 24 for v in res)


def test_reduce_valid_only_at_root():
    res = run_spmd(3, lambda c: c.reduce(c.rank + 1, root=1))
    assert res[1] == 6 and res[0] is None and res[2] is None


def test_alltoall_personalized():
    def prog(comm):
        objs = [f"{comm.rank}->{d}" for d in range(comm.size)]
        return comm.alltoall(objs)

    res = run_spmd(3, prog)
    assert res[2][0] == "0->2"
    assert res[0][1] == "1->0"
    assert res[1][1] == "1->1"


def test_alltoall_numpy_arrays():
    def prog(comm):
        objs = [np.full(2, comm.rank * 10 + d) for d in range(comm.size)]
        got = comm.alltoall(objs)
        return [int(g[0]) for g in got]

    res = run_spmd(3, prog)
    assert res[1] == [1, 11, 21]  # from ranks 0,1,2 destined for rank 1


def test_send_to_invalid_rank_raises():
    def prog(comm):
        comm.send(1, dest=99)

    with pytest.raises(SpmdError):
        run_spmd(2, prog, timeout=3.0)


def test_rank_exception_propagates():
    def prog(comm):
        if comm.rank == 1:  # repro: noqa[RPR011] - deliberately divergent (asserts SpmdError)
            raise RuntimeError("boom")
        comm.barrier()

    with pytest.raises(SpmdError, match="boom"):
        run_spmd(2, prog, timeout=5.0)


def test_deadlock_detected_by_timeout():
    def prog(comm):
        return comm.recv(source=(comm.rank + 1) % comm.size, tag=9)

    with pytest.raises(SpmdError):
        run_spmd(2, prog, timeout=1.0)


def test_world_records_traffic():
    def prog(comm):
        comm.send(np.zeros(100), dest=(comm.rank + 1) % comm.size, tag=1)
        comm.recv(tag=1)

    _, world = run_spmd(2, prog, return_world=True)
    assert world.messages_sent == 2
    assert world.bytes_sent == 2 * 100 * 8


def test_world_size_validation():
    with pytest.raises(ValueError):
        World(0)


def test_sendrecv_pairwise_exchange():
    def prog(comm):
        partner = (comm.rank + 1) % comm.size
        return comm.sendrecv(comm.rank, dest=partner, source=(comm.rank - 1) % comm.size)

    assert run_spmd(4, prog) == [3, 0, 1, 2]
