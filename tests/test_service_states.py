"""Exhaustive checks of the campaign-service lifecycle state machine."""

from __future__ import annotations

import itertools

import pytest

from repro.service.states import (
    ACTIVE_STATES,
    IN_FLIGHT_STATES,
    LEGAL_TRANSITIONS,
    LIFECYCLE_ORDER,
    RECOVERY_TRANSITIONS,
    TERMINAL_STATES,
    IllegalTransition,
    JobState,
    validate_transition,
)


def test_lifecycle_order_covers_all_states_but_failed():
    assert set(LIFECYCLE_ORDER) == set(JobState) - {JobState.FAILED}
    assert LIFECYCLE_ORDER[0] is JobState.CREATED
    assert LIFECYCLE_ORDER[-1] is JobState.JOB_FINISHED


def test_state_partitions():
    assert TERMINAL_STATES == {JobState.JOB_FINISHED}
    assert ACTIVE_STATES == set(LIFECYCLE_ORDER) - TERMINAL_STATES
    assert IN_FLIGHT_STATES == ACTIVE_STATES - {JobState.CREATED}


def test_happy_path_is_legal():
    for src, dst in zip(LIFECYCLE_ORDER[:-1], LIFECYCLE_ORDER[1:]):
        validate_transition(src, dst)


def test_every_active_state_can_fail():
    for src in ACTIVE_STATES:
        validate_transition(src, JobState.FAILED)


def test_requeue_edge():
    validate_transition(JobState.FAILED, JobState.CREATED)


def test_terminal_state_has_no_edges():
    assert LEGAL_TRANSITIONS[JobState.JOB_FINISHED] == frozenset()


def test_every_illegal_pair_raises():
    """The defining property: every (src, dst) not in the relation raises —
    checked for all |JobState|^2 ordered pairs."""
    for src, dst in itertools.product(JobState, JobState):
        legal = dst in LEGAL_TRANSITIONS[src]
        if legal:
            validate_transition(src, dst)
        else:
            with pytest.raises(IllegalTransition):
                validate_transition(src, dst, job_id="j")


def test_illegal_count_is_exact():
    n_legal = sum(len(v) for v in LEGAL_TRANSITIONS.values())
    # 6 happy-path edges + 6 FAILED edges + 1 requeue
    assert n_legal == 13
    n_illegal = len(JobState) ** 2 - n_legal
    assert n_illegal == 64 - 13


def test_recovery_edges_only_with_recovery_flag():
    for src in IN_FLIGHT_STATES:
        with pytest.raises(IllegalTransition):
            validate_transition(src, JobState.CREATED)
        validate_transition(src, JobState.CREATED, recovery=True)


def test_recovery_flag_does_not_legalize_anything_else():
    """recovery=True admits exactly the in-flight rollbacks, nothing more."""
    for src, dst in itertools.product(JobState, JobState):
        legal = dst in LEGAL_TRANSITIONS[src]
        rollback = src in RECOVERY_TRANSITIONS and dst is JobState.CREATED
        if legal or rollback:
            validate_transition(src, dst, recovery=True)
        else:
            with pytest.raises(IllegalTransition):
                validate_transition(src, dst, recovery=True)


def test_recovery_transitions_exclude_created_and_failed():
    assert JobState.CREATED not in RECOVERY_TRANSITIONS
    assert JobState.FAILED not in RECOVERY_TRANSITIONS
    assert JobState.JOB_FINISHED not in RECOVERY_TRANSITIONS


def test_illegal_transition_error_is_informative():
    with pytest.raises(IllegalTransition, match="demo.*CREATED -> RUNNING"):
        validate_transition(JobState.CREATED, JobState.RUNNING, job_id="demo")
    err = IllegalTransition(JobState.JOB_FINISHED, JobState.CREATED, job_id="x")
    assert "terminal" in str(err)
    assert err.src is JobState.JOB_FINISHED
    assert err.dst is JobState.CREATED


def test_states_stringify_to_bare_names():
    assert str(JobState.RUNNING) == "RUNNING"
    assert JobState("RUNNING") is JobState.RUNNING
