"""CampaignService facade: pack → schedule → drain through the machines layer."""

from __future__ import annotations

from repro.faults import RetryPolicy
from repro.machines.machine import MachineSpec, QueuePolicy
from repro.service import CampaignService, JobSpec, JobState

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)


def toy_machine(n_nodes=8):
    return MachineSpec(
        name="toy",
        n_nodes=n_nodes,
        cores_per_node=16,
        charge_factor=1.0,
        has_gpu=False,
    )


def specs(n, wall=30.0):
    return [
        JobSpec(name=f"j{i}", kind="noop", params={"i": i}, wall_estimate=wall)
        for i in range(n)
    ]


def test_submit_pack_schedule_completes_all_jobs(tmp_path):
    svc = CampaignService.create(tmp_path / "s", seed=7, retry=FAST_RETRY)
    svc.submit("demo", specs(6))
    allocs = svc.pack(max_nodes=2, max_wall=120.0)
    assert sum(a.n_jobs for a in allocs) == 6
    makespan = svc.schedule(toy_machine(), allocs)
    assert makespan > 0
    assert svc.store.done
    assert svc.status() == {"demo": {"JOB_FINISHED": 6}}
    svc.store.close()


def test_each_allocation_drains_only_its_jobs(tmp_path):
    svc = CampaignService.create(tmp_path / "s", seed=7, retry=FAST_RETRY)
    svc.submit("demo", specs(4))
    allocs = svc.pack(max_nodes=1, max_wall=60.0)
    assert len(allocs) >= 2
    claimed = [set(a.job_ids) for a in allocs]
    for i, a in enumerate(claimed):
        for b in claimed[i + 1:]:
            assert not (a & b)
    svc.schedule(toy_machine(), allocs)
    assert svc.store.done
    svc.store.close()


def test_packed_allocations_clear_small_job_policy(tmp_path):
    """The point of packing: wide allocations are not 'small jobs'."""
    machine = MachineSpec(
        name="titan-ish",
        n_nodes=256,
        cores_per_node=16,
        charge_factor=30.0,
        has_gpu=True,
        queue=QueuePolicy(small_job_nodes=125, max_small_jobs=2),
    )
    svc = CampaignService.create(tmp_path / "s", seed=7, retry=FAST_RETRY)
    svc.submit("demo", [JobSpec(name=f"j{i}", kind="noop") for i in range(50)])
    allocs = svc.pack(max_nodes=128, max_wall=600.0)
    assert all(a.n_nodes >= machine.queue.small_job_nodes for a in allocs)
    svc.schedule(machine, allocs)
    assert svc.store.done
    svc.store.close()


def test_resume_via_facade(tmp_path):
    svc = CampaignService.create(tmp_path / "s", seed=7, retry=FAST_RETRY)
    svc.submit("demo", specs(2))
    svc.store.transition("demo.00000", JobState.STAGED_IN)
    assert svc.resume() == ["demo.00000"]
    assert svc.drain() == 2
    assert svc.store.done
    svc.store.close()


def test_open_existing_store(tmp_path):
    svc = CampaignService.create(tmp_path / "s", seed=7)
    svc.submit("demo", specs(1))
    svc.store.close()
    again = CampaignService.open(tmp_path / "s", retry=FAST_RETRY)
    assert again.drain() == 1
    again.store.close()
