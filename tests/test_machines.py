"""Facility layer: machines, cost model, scheduler, listener, storage."""

import os
import time

import numpy as np
import pytest

from repro.machines import (
    BatchTemplate,
    CostModel,
    Job,
    Listener,
    MOONLIGHT,
    PAPER_CALIBRATION,
    QueuePolicy,
    RHEA,
    Scheduler,
    TITAN,
    burst_buffer_like,
    lustre_like,
)

# --- machines -------------------------------------------------------------------


def test_titan_charge_policy():
    """Paper: "an hour per node leads to a charge of 30 core hours"."""
    assert TITAN.core_hours(3600.0, 1) == pytest.approx(30.0)
    assert TITAN.core_hours(722.0, 32) == pytest.approx(193.0, rel=0.01)  # Table 3


def test_machine_node_limit():
    with pytest.raises(ValueError):
        MOONLIGHT.core_hours(60.0, MOONLIGHT.n_nodes + 1)


def test_queue_wait_monotone_in_size():
    w_small = TITAN.queue.expected_wait(4, TITAN.n_nodes)
    w_big = TITAN.queue.expected_wait(TITAN.n_nodes, TITAN.n_nodes)
    assert w_big > 10 * w_small
    assert w_big == pytest.approx(TITAN.queue.full_machine_wait_seconds)


def test_titan_small_job_policy():
    assert TITAN.queue.max_concurrent_small(100) == 2
    assert TITAN.queue.max_concurrent_small(125) is None


def test_rhea_has_no_gpu():
    assert not RHEA.has_gpu
    assert MOONLIGHT.gpu_factor == pytest.approx(0.55)


# --- cost model -----------------------------------------------------------------


def test_paper_anchor_sim_time():
    """1024³ x 60 steps on 32 nodes ≈ 772 s (Table 4)."""
    t = PAPER_CALIBRATION.sim_seconds(1024**3, 60, 32)
    assert t == pytest.approx(772.0, rel=0.05)


def test_paper_anchor_level1_io():
    """38.7 GB Level 1 write/read on 32 nodes ≈ 5 s (Table 4)."""
    t = PAPER_CALIBRATION.io_seconds(1024**3 * 36, 32)
    assert t == pytest.approx(5.0, rel=0.05)


def test_paper_anchor_redistribute():
    """Level 1 redistribution on 32 nodes ≈ 435 s (Table 4)."""
    t = PAPER_CALIBRATION.redistribute_seconds(1024**3 * 36, 32)
    assert t == pytest.approx(435.0, rel=0.05)


def test_paper_anchor_largest_halo_centering():
    """The 2.5M-particle halo costs ~422 s on one Titan GPU node (the
    722-300 split of the in-situ analysis)."""
    pairs = 2_548_321 * (2_548_321 - 1)
    t = PAPER_CALIBRATION.center_seconds(pairs, TITAN, backend="gpu")
    assert t == pytest.approx(422.0, rel=0.05)


def test_gpu_cpu_factor_fifty():
    pairs = 1e12
    gpu = PAPER_CALIBRATION.center_seconds(pairs, TITAN, backend="gpu")
    cpu = PAPER_CALIBRATION.center_seconds(pairs, TITAN, backend="cpu")
    assert cpu / gpu == pytest.approx(50.0)


def test_moonlight_055_factor():
    pairs = 1e12
    titan = PAPER_CALIBRATION.center_seconds(pairs, TITAN, backend="gpu")
    ml = PAPER_CALIBRATION.center_seconds(pairs, MOONLIGHT, backend="gpu")
    assert titan / ml == pytest.approx(0.55)


def test_gpu_on_cpu_machine_raises():
    with pytest.raises(ValueError):
        PAPER_CALIBRATION.pair_rate(RHEA, backend="gpu")


def test_io_aggregate_cap():
    """At Q Continuum scale reads hit the Lustre cap: 20 TB in ~10 min."""
    t = PAPER_CALIBRATION.io_seconds(8192**3 * 36, 16384)
    assert t == pytest.approx(566.0, rel=0.1)


def test_calibration_helpers():
    m = CostModel().with_anchor_fof(1024**3 / 32, 300.0)
    assert m.fof_seconds(1024**3 / 32) == pytest.approx(300.0)
    m2 = CostModel().with_anchor_sim(1000, 10, 2, 50.0)
    assert m2.sim_seconds(1000, 10, 2) == pytest.approx(50.0)


def test_subhalo_cost_model_superlinear():
    m = PAPER_CALIBRATION
    small = m.subhalo_seconds(np.asarray([10_000]))
    big = m.subhalo_seconds(np.asarray([100_000]))
    assert big > 10 * small


# --- scheduler -------------------------------------------------------------------


def _machine(nodes=10, small=None, cap=None):
    from repro.machines import MachineSpec

    return MachineSpec(
        name="toy",
        n_nodes=nodes,
        cores_per_node=1,
        charge_factor=1.0,
        has_gpu=True,
        queue=QueuePolicy(small_job_nodes=small, max_small_jobs=cap),
    )


def test_scheduler_serial_when_capacity_bound():
    s = Scheduler(_machine(nodes=4))
    a = s.submit(Job("a", n_nodes=4, duration=10))
    b = s.submit(Job("b", n_nodes=4, duration=10))
    assert s.run() == pytest.approx(20.0)
    assert a.start_time == 0.0 and b.start_time == 10.0


def test_scheduler_parallel_when_fits():
    s = Scheduler(_machine(nodes=8))
    s.submit(Job("a", n_nodes=4, duration=10))
    s.submit(Job("b", n_nodes=4, duration=10))
    assert s.run() == pytest.approx(10.0)


def test_scheduler_dependencies():
    s = Scheduler(_machine())
    sim = s.submit(Job("sim", n_nodes=2, duration=100))
    post = s.submit(Job("post", n_nodes=2, duration=50, after=[sim]))
    s.run()
    assert post.start_time >= sim.end_time
    assert post.queue_wait == pytest.approx(0.0)


def test_scheduler_submit_times_respected():
    s = Scheduler(_machine())
    j = s.submit(Job("late", n_nodes=1, duration=5, submit_time=42.0))
    s.run()
    assert j.start_time == pytest.approx(42.0)


def test_titan_small_job_rule_limits_concurrency():
    """Only two sub-threshold jobs may run simultaneously."""
    s = Scheduler(_machine(nodes=100, small=10, cap=2))
    jobs = [s.submit(Job(f"j{i}", n_nodes=1, duration=10)) for i in range(4)]
    makespan = s.run()
    # 4 jobs, pairwise: 2 waves of 10 s
    assert makespan == pytest.approx(20.0)
    running_at_5 = sum(1 for j in jobs if j.start_time <= 5 < j.end_time)
    assert running_at_5 == 2


def test_large_jobs_unconstrained_by_small_rule():
    s = Scheduler(_machine(nodes=100, small=10, cap=2))
    jobs = [s.submit(Job(f"j{i}", n_nodes=20, duration=10)) for i in range(4)]
    assert s.run() == pytest.approx(10.0)


def test_scheduler_job_validation():
    s = Scheduler(_machine(nodes=4))
    with pytest.raises(ValueError):
        s.submit(Job("big", n_nodes=5, duration=1))
    with pytest.raises(ValueError):
        s.submit(Job("zero", n_nodes=0, duration=1))
    with pytest.raises(ValueError):
        s.submit(Job("neg", n_nodes=1, duration=-1))


def test_coscheduling_overlaps_with_producer():
    """Analysis jobs submitted while the 'simulation' runs finish far
    earlier than a single job queued after it — the co-scheduling win."""
    sim_duration = 100.0
    n_snaps = 10
    per_job = 8.0

    cosched = Scheduler(_machine(nodes=4))
    for i in range(n_snaps):
        cosched.submit(
            Job(f"a{i}", n_nodes=1, duration=per_job, submit_time=(i + 1) * 10.0)
        )
    t_cosched = cosched.run()

    t_after = sim_duration + n_snaps * per_job / 4  # one 4-node job after
    assert t_cosched < t_after + sim_duration  # overlap reduces time-to-science
    assert t_cosched == pytest.approx(108.0)  # last snapshot at 100 + 8


# --- listener ---------------------------------------------------------------------


def test_listener_poll_once_detects_new_files(tmp_path):
    calls = []
    listener = Listener(tmp_path, "l2_step*.gio", lambda p, s, t: calls.append((p, s)))
    assert listener.poll_once() == []
    (tmp_path / "l2_step0007.gio").write_bytes(b"x")
    fresh = listener.poll_once()
    assert len(fresh) == 1
    assert calls[0][1] == 7
    # no duplicate submission on next poll
    assert listener.poll_once() == []
    assert listener.stats.jobs_submitted == 1


def test_listener_processes_in_step_order(tmp_path):
    steps = []
    listener = Listener(tmp_path, "l2_step*.gio", lambda p, s, t: steps.append(s))
    for s in (12, 3, 7):
        (tmp_path / f"l2_step{s:04d}.gio").write_bytes(b"x")
    listener.poll_once()
    assert steps == [3, 7, 12]
    assert listener.stats.max_backlog == 3


def test_listener_renders_batch_template(tmp_path):
    scripts = []
    listener = Listener(
        tmp_path,
        "l2_step*.gio",
        lambda p, s, t: scripts.append(t),
        template=BatchTemplate(nodes=4),
    )
    (tmp_path / "l2_step0042.gio").write_bytes(b"x")
    listener.poll_once()
    assert "nodes=4" in scripts[0]
    assert "--step 42" in scripts[0]
    assert "l2_step0042.gio" in scripts[0]


def test_listener_bad_filename_raises(tmp_path):
    listener = Listener(tmp_path, "*.gio", lambda *a: None)
    (tmp_path / "nostep.gio").write_bytes(b"x")
    with pytest.raises(ValueError):
        listener.poll_once()


def test_listener_threaded_catches_files_during_run(tmp_path):
    hits = []
    listener = Listener(
        tmp_path, "l2_step*.gio", lambda p, s, t: hits.append(s), poll_interval=0.02
    )
    listener.start()
    with pytest.raises(RuntimeError):
        listener.start()  # double start rejected
    try:
        for s in range(3):
            (tmp_path / f"l2_step{s:04d}.gio").write_bytes(b"x")
            time.sleep(0.05)
    finally:
        listener.stop(final_poll=True)
    assert sorted(hits) == [0, 1, 2]
    assert listener.stats.polls >= 3


def test_listener_final_poll_catches_last_file(tmp_path):
    """Paper: an extra listener pass after the run catches late output."""
    hits = []
    listener = Listener(tmp_path, "l2_step*.gio", lambda p, s, t: hits.append(s))
    listener.start()
    listener.stop(final_poll=False)
    (tmp_path / "l2_step0099.gio").write_bytes(b"x")  # lands after stop
    listener.stop(final_poll=True)
    assert hits == [99]


# --- storage ---------------------------------------------------------------------


def test_storage_accounting():
    disk = lustre_like()
    t = disk.write_seconds(int(1e9), 4)
    assert t > 0
    disk.read_seconds(int(5e8), 2)
    assert disk.bytes_written == int(1e9)
    assert disk.bytes_read == int(5e8)
    assert len(disk.write_events) == 1


def test_burst_buffer_faster_than_lustre():
    disk, bb = lustre_like(), burst_buffer_like()
    nbytes = int(1e10)
    assert bb.write_seconds(nbytes, 4) < disk.write_seconds(nbytes, 4) / 5


def test_storage_aggregate_cap():
    disk = lustre_like()
    # huge client counts saturate at the cap
    assert disk.read_seconds(int(35e9), 100000) == pytest.approx(1.0)


def test_storage_invalid_nodes():
    with pytest.raises(ValueError):
        lustre_like().write_seconds(10, 0)


# --- listener resilience + bounded stats ------------------------------------------


def test_listener_survives_failing_submit(tmp_path):
    """One bad job must not kill the poll loop (or lose later files)."""
    ok = []

    def submit(path, step, script):
        if step == 1:
            raise RuntimeError("qsub rejected the job")
        ok.append(step)

    listener = Listener(tmp_path, "l2_step*.gio", submit)
    for s in (0, 1, 2):
        (tmp_path / f"l2_step{s:04d}.gio").write_bytes(b"x")
    fresh = listener.poll_once()
    assert len(fresh) == 3  # the poll completed despite the failure
    assert ok == [0, 2]
    assert listener.stats.jobs_submitted == 2
    assert listener.stats.jobs_failed == 1
    assert listener.stats.files_seen == 3


def test_listener_failed_submit_records_error_event(tmp_path):
    from repro import obs

    def submit(path, step, script):
        raise ValueError("bad template")

    with obs.telemetry(run_id="fail-test") as rec:
        listener = Listener(tmp_path, "l2_step*.gio", submit)
        (tmp_path / "l2_step0005.gio").write_bytes(b"x")
        listener.poll_once()
    errors = rec.events.by_level("error")
    assert len(errors) == 1
    assert errors[0].name == "listener.submit_error"
    assert errors[0].step == 5
    assert "bad template" in errors[0].fields["error"]
    assert rec.metrics.counter("listener_jobs_failed_total").value == 1
    assert listener.stats.jobs_failed == 1


def test_listener_final_poll_flags_failures_without_raising(tmp_path):
    """stop(final_poll=True) must not blow up on a failing late submit."""

    def submit(path, step, script):
        raise RuntimeError("late failure")

    listener = Listener(tmp_path, "l2_step*.gio", submit, poll_interval=0.01)
    listener.start()
    listener.stop(final_poll=False)
    (tmp_path / "l2_step0099.gio").write_bytes(b"x")
    listener.stop(final_poll=True)  # no raise
    assert listener.stats.jobs_failed == 1
    assert listener.stats.jobs_submitted == 0


def test_listener_backlog_history_is_bounded(tmp_path):
    from repro.machines.listener import BACKLOG_HISTORY_LIMIT

    listener = Listener(tmp_path, "l2_step*.gio", lambda *a: None)
    n_polls = BACKLOG_HISTORY_LIMIT + 500
    for _ in range(n_polls):
        listener.poll_once()
    assert listener.stats.polls == n_polls
    assert len(listener.stats.backlog_history) == BACKLOG_HISTORY_LIMIT
    assert listener.stats.backlog_total == 0
    # aggregates stay exact even after samples age out of the window
    (tmp_path / "l2_step0000.gio").write_bytes(b"x")
    (tmp_path / "l2_step0001.gio").write_bytes(b"x")
    listener.poll_once()
    assert listener.stats.max_backlog == 2
    assert listener.stats.backlog_total == 2
    assert listener.stats.mean_backlog == pytest.approx(2 / (n_polls + 1))
