"""FaultPlan: seeded, site-keyed, bit-reproducible injection verdicts."""

import threading

import pytest

from repro.faults import (
    KNOWN_SITES,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fault_plan,
    get_fault_plan,
    load_plan,
    maybe_inject,
    reset_fault_plan,
    seeded_uniform,
    set_fault_plan,
)


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    """Each test starts and ends with no plan installed."""
    set_fault_plan(None)
    yield
    set_fault_plan(None)


# -- seeded_uniform ------------------------------------------------------------


def test_seeded_uniform_is_pure_and_in_range():
    a = seeded_uniform(7, "listener.submit", "12", 0)
    b = seeded_uniform(7, "listener.submit", "12", 0)
    assert a == b
    assert 0.0 <= a < 1.0


def test_seeded_uniform_varies_with_each_argument():
    base = seeded_uniform(7, "site", "k", 0)
    assert seeded_uniform(8, "site", "k", 0) != base
    assert seeded_uniform(7, "other", "k", 0) != base
    assert seeded_uniform(7, "site", "k2", 0) != base
    assert seeded_uniform(7, "site", "k", 1) != base


# -- FaultSpec validation ------------------------------------------------------


def test_spec_rejects_bad_probability():
    with pytest.raises(ValueError):
        FaultSpec(probability=1.5)


def test_spec_rejects_bad_mode():
    with pytest.raises(ValueError):
        FaultSpec(mode="explode")


def test_spec_roundtrips_through_dict():
    spec = FaultSpec(probability=0.25, fail_first=2, keys=(3, "x"), max_total=9)
    assert FaultSpec.from_dict(spec.to_dict()) == spec
    assert spec.keys == ("3", "x")  # keys normalized to strings


# -- verdicts ------------------------------------------------------------------


def test_fail_first_is_transient_per_key():
    plan = FaultPlan(seed=1, sites={"listener.submit": FaultSpec(fail_first=1)})
    assert plan.should_fail("listener.submit", key=5) is not None
    assert plan.should_fail("listener.submit", key=5) is None  # retry succeeds
    assert plan.should_fail("listener.submit", key=6) is not None  # fresh key
    assert plan.snapshot() == {"listener.submit": 2}


def test_always_is_a_permanent_outage():
    plan = FaultPlan(seed=1, sites={"offline.job": FaultSpec(always=True)})
    for _ in range(4):
        assert plan.should_fail("offline.job", key=0) is not None


def test_probability_verdicts_are_order_independent():
    """The hash-based verdict for (site, key, attempt) does not depend on
    how many other decisions were drawn first — the bit-reproducibility
    property under thread interleaving."""
    spec = {"storage.write": FaultSpec(probability=0.5)}
    forward = FaultPlan(seed=11, sites=dict(spec))
    backward = FaultPlan(seed=11, sites=dict(spec))
    keys = [str(k) for k in range(40)]
    verdict_fwd = {k: forward.should_fail("storage.write", key=k) is not None for k in keys}
    verdict_bwd = {
        k: backward.should_fail("storage.write", key=k) is not None
        for k in reversed(keys)
    }
    assert verdict_fwd == verdict_bwd
    assert 0 < sum(verdict_fwd.values()) < len(keys)  # p=0.5 actually splits


def test_keys_filter_restricts_injection():
    plan = FaultPlan(seed=1, sites={"io.read": FaultSpec(always=True, keys=("a",))})
    assert plan.should_fail("io.read", key="a") is not None
    assert plan.should_fail("io.read", key="b") is None


def test_max_total_caps_injections():
    plan = FaultPlan(seed=1, sites={"io.write": FaultSpec(always=True, max_total=2)})
    hits = sum(plan.should_fail("io.write", key=k) is not None for k in range(10))
    assert hits == 2
    assert plan.total_injected == 2


def test_unknown_site_never_fires():
    plan = FaultPlan(seed=1, sites={"listener.submit": FaultSpec(always=True)})
    assert plan.should_fail("storage.read", key=0) is None


def test_reset_restores_verdicts():
    plan = FaultPlan(seed=3, sites={"s": FaultSpec(fail_first=1)})
    first = [plan.should_fail("s", key=0) is not None for _ in range(3)]
    plan.reset()
    again = [plan.should_fail("s", key=0) is not None for _ in range(3)]
    assert first == again == [True, False, False]


def test_fresh_copy_reproduces_verdicts():
    plan = FaultPlan(seed=9, sites={"s": FaultSpec(probability=0.3)})
    before = [plan.should_fail("s", key=k) is not None for k in range(20)]
    after = [plan.fresh().should_fail("s", key=k) is not None for k in range(20)]
    # fresh() resets per-key attempt state, so attempt-0 verdicts agree
    assert before == after


def test_sequence_mode_keys_each_call():
    """key=None numbers the calls at the site — seeded flakiness for
    call sites that have no natural key."""
    plan = FaultPlan(seed=5, sites={"s": FaultSpec(probability=0.5)})
    run1 = [plan.should_fail("s") is not None for _ in range(30)]
    rerun = plan.fresh()
    run2 = [rerun.should_fail("s") is not None for _ in range(30)]
    assert run1 == run2
    assert 0 < sum(run1) < 30


def test_thread_interleaving_does_not_change_the_fault_set():
    spec = {"exec.item": FaultSpec(probability=0.4)}
    plan = FaultPlan(seed=13, sites=dict(spec))
    hits: set[str] = set()
    lock = threading.Lock()

    def worker(keys):
        for k in keys:
            if plan.should_fail("exec.item", key=k) is not None:
                with lock:
                    hits.add(k)

    keys = [str(k) for k in range(64)]
    threads = [threading.Thread(target=worker, args=(keys[i::4],)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    serial = {
        k for k in keys if FaultPlan(seed=13, sites=dict(spec)).should_fail("exec.item", key=k)
    }
    assert hits == serial


# -- plan (de)serialization and the process-wide hook --------------------------


def test_plan_roundtrips_through_json(tmp_path):
    plan = FaultPlan(
        seed=42,
        sites={
            "listener.submit": FaultSpec(fail_first=1),
            "staging.get": FaultSpec(mode="stall", stall_seconds=0.01),
        },
    )
    path = tmp_path / "plan.json"
    plan.save(path)
    loaded = load_plan(path)
    assert loaded.seed == plan.seed
    assert loaded.sites == plan.sites


def test_env_hook_installs_plan(tmp_path, monkeypatch):
    path = tmp_path / "plan.json"
    FaultPlan(seed=2, sites={"io.read": FaultSpec(always=True)}).save(path)
    monkeypatch.setenv("REPRO_FAULTS", str(path))
    reset_fault_plan()  # re-arm the env hook
    try:
        plan = get_fault_plan()
        assert plan is not None and plan.seed == 2
        with pytest.raises(FaultInjected):
            maybe_inject("io.read", key="x")
    finally:
        monkeypatch.delenv("REPRO_FAULTS")
        reset_fault_plan()


def test_maybe_inject_is_noop_without_plan():
    maybe_inject("listener.submit", key=0)  # must not raise


def test_fault_plan_context_scopes_and_restores():
    outer = FaultPlan(seed=1)
    set_fault_plan(outer)
    inner = FaultPlan(seed=2, sites={"s": FaultSpec(always=True)})
    with fault_plan(inner):
        assert get_fault_plan() is inner
        with pytest.raises(FaultInjected) as exc_info:
            maybe_inject("s", key="k")
        assert exc_info.value.site == "s"
        assert exc_info.value.key == "k"
    assert get_fault_plan() is outer


def test_known_sites_cover_the_documented_hops():
    assert "listener.submit" in KNOWN_SITES
    assert "offline.job" in KNOWN_SITES
    assert "stream.read" in KNOWN_SITES
    assert "service.job" in KNOWN_SITES
    assert len(KNOWN_SITES) == len(set(KNOWN_SITES)) == 12
