"""The failure model end-to-end: degradation, determinism, dead-letter.

Acceptance contracts from docs/failures.md:

* a permanently failing off-line leg degrades the combined run instead
  of killing it (``degraded=True``, catalog == the in-situ-only leg);
* the same FaultPlan seed reproduces the same faults, retry counts,
  dead-letter contents and final catalog hashes (``check_determinism``);
* scheduler deadlines requeue and then dead-letter; exec poison items
  are quarantined while every other halo completes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.check import check_determinism, output_hash
from repro.core import run_combined_workflow
from repro.exec import ExecutionEngine, WorkerError, parallel_halo_centers
from repro.faults import (
    DeadLetterBox,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    fault_plan,
    set_fault_plan,
)
from repro.machines import QueuePolicy, Scheduler
from repro.machines.scheduler import Job
from repro.sim import SimulationConfig

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    set_fault_plan(None)
    yield
    set_fault_plan(None)


@pytest.fixture(scope="module")
def small_config():
    return SimulationConfig(
        np_per_dim=20, box=36.0, z_initial=24.0, z_final=0.0, n_steps=12, ng=40
    )


def _run(config, spool, plan, retry=None, coschedule=True):
    with fault_plan(plan):
        return run_combined_workflow(
            config,
            spool,
            threshold=150,
            min_count=30,
            n_ranks=4,
            coschedule=coschedule,
            retry=retry,
        )


@pytest.fixture(scope="module")
def clean_run(small_config, tmp_path_factory):
    spool = tmp_path_factory.mktemp("spool_clean")
    with fault_plan(None):
        return run_combined_workflow(
            small_config, spool, threshold=150, min_count=30, n_ranks=4, coschedule=True
        )


# -- graceful degradation ------------------------------------------------------


def test_transient_faults_do_not_change_the_science(small_config, tmp_path, clean_run):
    """fail_first=1 on every submit: the shared retry policy absorbs it
    and the merged catalog is bit-identical to the clean run."""
    plan = FaultPlan(seed=7, sites={"listener.submit": FaultSpec(fail_first=1)})
    result = _run(small_config, tmp_path / "transient", plan)
    assert not result.degraded
    assert result.listener_stats.submit_retries >= 1
    assert result.listener_stats.jobs_failed == 0
    assert np.array_equal(result.catalog.records, clean_run.catalog.records)


def test_permanent_offline_outage_degrades_instead_of_raising(
    small_config, tmp_path, clean_run
):
    """FaultSpec(always=True) at offline.job: the run completes, flags
    degraded=True, records one FailureRecord per missing snapshot, and
    the Level 3 catalog equals the in-situ-only leg."""
    plan = FaultPlan(seed=7, sites={"offline.job": FaultSpec(always=True)})
    result = _run(small_config, tmp_path / "outage", plan)
    assert result.degraded
    assert len(result.offline_catalog) == 0
    assert len(result.failures) == len(result.level2_paths) >= 1
    for failure in result.failures:
        assert failure.stage == "offline"
        assert failure.as_dict()["attempts"] >= 1
    assert np.array_equal(
        result.catalog.records, result.insitu_catalog.sorted_by_tag().records
    )
    # the giants the clean run recovered off-line are exactly what's missing
    assert len(clean_run.catalog) - len(result.catalog) == len(
        clean_run.offline_catalog
    )


def test_clean_run_is_not_degraded(clean_run):
    assert not clean_run.degraded
    assert clean_run.failures == []


# -- determinism ---------------------------------------------------------------


def test_same_fault_seed_reproduces_run_bit_for_bit(small_config, tmp_path_factory):
    """Same FaultPlan seed ⇒ identical injected faults, retry counts and
    catalog hashes (the run-twice harness from repro.check)."""
    plans = []

    def campaign():
        plan = FaultPlan(
            seed=21,
            sites={
                "listener.submit": FaultSpec(probability=0.5),
                "io.read": FaultSpec(fail_first=1),
            },
        )
        plans.append(plan)
        spool = tmp_path_factory.mktemp("spool_det")
        result = _run(small_config, spool, plan, coschedule=False)
        return {
            "catalog": result.catalog.records,
            "injected": plan.snapshot(),
            "retries": result.listener_stats.submit_retries,
            "failed": result.listener_stats.jobs_failed,
            "degraded": result.degraded,
        }

    report = check_determinism(campaign, runs=2)
    assert report.ok
    assert plans[0].snapshot() == plans[1].snapshot()
    assert plans[0].total_injected > 0  # the faults actually fired


# -- scheduler deadlines, requeue, dead-letter ---------------------------------


def _toy_machine(nodes=4):
    from repro.machines import MachineSpec

    return MachineSpec(
        name="toy",
        n_nodes=nodes,
        cores_per_node=1,
        charge_factor=1.0,
        has_gpu=False,
        queue=QueuePolicy(),
    )


def test_deadline_breach_requeues_then_dead_letters():
    sched = Scheduler(_toy_machine())
    doomed = sched.submit(
        Job(name="wall-kill", n_nodes=1, duration=10.0, deadline=4.0, max_requeues=2)
    )
    ok = sched.submit(Job(name="fine", n_nodes=1, duration=3.0))
    makespan = sched.run()
    # 3 attempts (initial + 2 requeues), each cut off at the deadline
    assert doomed.attempts == 3
    assert doomed.failed
    assert "deadline" in (doomed.error or "")
    assert makespan == pytest.approx(3 * 4.0)
    assert ok.done and not ok.failed
    assert sched.dead_letter.total == 1
    [entry] = sched.dead_letter.entries()
    assert entry.key == "wall-kill"
    assert entry.attempts == 3


def test_payload_fault_is_retried_at_grant_time():
    plan = FaultPlan(seed=0, sites={"scheduler.payload": FaultSpec(fail_first=1)})
    ran = []
    sched = Scheduler(
        _toy_machine(), payload_retry=RetryPolicy(max_attempts=3, base_delay=0.0)
    )
    sched.submit(Job(name="analysis", n_nodes=1, duration=1.0, payload=lambda: ran.append(1)))
    with fault_plan(plan):
        sched.run()
    assert ran == [1]  # succeeded on the retry
    assert sched.dead_letter.total == 0
    assert plan.total_injected == 1


def test_payload_permanent_failure_dead_letters_and_run_continues():
    plan = FaultPlan(seed=0, sites={"scheduler.payload": FaultSpec(always=True)})
    sched = Scheduler(
        _toy_machine(), payload_retry=RetryPolicy(max_attempts=2, base_delay=0.0)
    )
    bad = sched.submit(Job(name="cursed", n_nodes=1, duration=1.0, payload=lambda: 1))
    ok = sched.submit(Job(name="fine", n_nodes=1, duration=1.0))
    with fault_plan(plan):
        sched.run()
    assert bad.failed
    assert ok.done and not ok.failed
    assert sched.dead_letter.keys() == ["cursed"]


def test_dead_letter_box_is_bounded_with_exact_total():
    box = DeadLetterBox("scheduler", limit=4)
    for i in range(10):
        box.add(f"job{i}", "boom")
    assert len(box) == 4
    assert box.total == 10
    assert box.keys() == ["job6", "job7", "job8", "job9"]  # most recent window


# -- exec engine: poison quarantine --------------------------------------------


@pytest.fixture(scope="module")
def tiny_catalog():
    rng = np.random.default_rng(8)
    pos_list, labels_list = [], []
    for i, size in enumerate([120, 80, 60, 50]):
        c = rng.uniform(10, 90, 3)
        pos_list.append(c + rng.normal(0, 1.0, (size, 3)))
        labels_list.append(np.full(size, i * 10, dtype=np.int64))
    pos = np.concatenate(pos_list)
    labels = np.concatenate(labels_list)
    tags = np.arange(len(pos), dtype=np.uint64)
    return pos, tags, labels


def test_exec_default_contract_worker_crashes(tiny_catalog):
    """item_retries=0 (the default): an injected item fault crashes the
    worker and the run raises WorkerError — the historical contract."""
    pos, tags, labels = tiny_catalog
    plan = FaultPlan(seed=0, sites={"exec.item": FaultSpec(always=True)})
    eng = ExecutionEngine(workers=2)
    with fault_plan(plan), pytest.raises(WorkerError):
        parallel_halo_centers(pos, tags, labels, engine=eng)


def test_exec_transient_item_fault_recovers(tiny_catalog):
    pos, tags, labels = tiny_catalog
    plan = FaultPlan(seed=0, sites={"exec.item": FaultSpec(fail_first=1)})
    eng = ExecutionEngine(workers=2, item_retries=2)
    with fault_plan(plan):
        res = parallel_halo_centers(pos, tags, labels, engine=eng)
    assert res.exec_report.item_failures >= 1
    assert res.exec_report.recovered_items >= 1
    assert res.exec_report.poisoned == []
    assert eng.dead_letter.total == 0
    from repro.analysis import halo_centers

    serial = halo_centers(pos, tags, labels)
    assert np.array_equal(serial.mbp_tags, res.mbp_tags)


def test_exec_poison_quarantine_excludes_only_the_poisoned_halos(tiny_catalog):
    pos, tags, labels = tiny_catalog
    plan = FaultPlan(seed=0, sites={"exec.item": FaultSpec(always=True, keys=("0",))})
    eng = ExecutionEngine(workers=2, item_retries=1)
    with fault_plan(plan):
        res = parallel_halo_centers(pos, tags, labels, engine=eng)
    assert res.exec_report.poisoned  # the poisoned item is quarantined…
    assert eng.dead_letter.total == len(res.exec_report.poisoned)
    assert len(res.halo_tags) >= 1  # …while the other halos completed
    assert len(res.halo_tags) < 4
    from repro.analysis import halo_centers

    serial = halo_centers(pos, tags, labels)
    kept = np.isin(serial.halo_tags, res.halo_tags)
    assert np.array_equal(serial.mbp_tags[kept], res.mbp_tags)
