"""Durable campaign store: round-trips, torn tails, replay, corruption."""

from __future__ import annotations

import json

import pytest

from repro.service.states import IllegalTransition, JobState
from repro.service.store import (
    JOBS_FILE,
    CampaignStore,
    IllegalDeadLetter,
    JobSpec,
    StoreCorruptError,
    StoreLockedError,
)


def make_store(path, n=3, clock=None, max_requeues=1):
    store = CampaignStore.create(path, seed=7, clock=clock)
    store.submit_campaign(
        "demo",
        [
            JobSpec(name=f"j{i}", params={"i": i}, max_requeues=max_requeues)
            for i in range(n)
        ],
        seed=3,
    )
    return store


def test_create_then_open_round_trip(tmp_path):
    store = make_store(tmp_path / "s")
    ids = [j.id for j in store.pending()]
    fp = store.fingerprint()
    store.close()

    reopened = CampaignStore.open(tmp_path / "s")
    assert [j.id for j in reopened.pending()] == ids
    assert reopened.fingerprint() == fp
    assert reopened.manifest.seed == 7
    assert reopened.recovered_bytes == 0
    reopened.close()


def test_create_refuses_existing_store(tmp_path):
    make_store(tmp_path / "s").close()
    with pytest.raises(FileExistsError):
        CampaignStore.create(tmp_path / "s")


def test_open_refuses_missing_store(tmp_path):
    with pytest.raises(FileNotFoundError):
        CampaignStore.open(tmp_path / "nope")


def test_deterministic_job_ids(tmp_path):
    store = make_store(tmp_path / "s")
    assert [j.id for j in store.pending()] == ["demo.00000", "demo.00001", "demo.00002"]
    store.close()


def test_submit_validation(tmp_path):
    store = make_store(tmp_path / "s")
    with pytest.raises(ValueError, match="already submitted"):
        store.submit_campaign("demo", [JobSpec(name="x")])
    with pytest.raises(ValueError, match="at least one job"):
        store.submit_campaign("empty", [])
    with pytest.raises(ValueError, match="invalid campaign name"):
        store.submit_campaign("bad/name", [JobSpec(name="x")])
    store.close()


def test_spec_validation():
    with pytest.raises(ValueError):
        JobSpec(name="x", n_nodes=0)
    with pytest.raises(ValueError):
        JobSpec(name="x", wall_estimate=0.0)
    with pytest.raises(ValueError):
        JobSpec(name="x", max_requeues=-1)


def test_transition_journals_and_replays(tmp_path):
    store = make_store(tmp_path / "s")
    store.transition("demo.00000", JobState.STAGED_IN)
    store.transition("demo.00000", JobState.PREPROCESSED)
    store.transition("demo.00001", JobState.STAGED_IN)
    store.close()

    reopened = CampaignStore.open(tmp_path / "s")
    assert reopened.jobs["demo.00000"].state is JobState.PREPROCESSED
    assert reopened.jobs["demo.00001"].state is JobState.STAGED_IN
    assert reopened.jobs["demo.00002"].state is JobState.CREATED
    assert [s for s, _ in reopened.jobs["demo.00000"].history] == [
        "CREATED",
        "STAGED_IN",
        "PREPROCESSED",
    ]
    reopened.close()


def test_illegal_transition_rejected_before_disk(tmp_path):
    store = make_store(tmp_path / "s")
    journal_size = (tmp_path / "s" / JOBS_FILE).stat().st_size
    with pytest.raises(IllegalTransition):
        store.transition("demo.00000", JobState.RUNNING)
    assert (tmp_path / "s" / JOBS_FILE).stat().st_size == journal_size
    assert store.jobs["demo.00000"].state is JobState.CREATED
    store.close()


def test_unknown_job_transition(tmp_path):
    store = make_store(tmp_path / "s")
    with pytest.raises(KeyError):
        store.transition("nope", JobState.STAGED_IN)
    store.close()


def test_attempts_count_failed_entries(tmp_path):
    store = make_store(tmp_path / "s")
    store.transition("demo.00000", JobState.STAGED_IN)
    store.transition("demo.00000", JobState.FAILED, error="boom")
    assert store.jobs["demo.00000"].attempts == 1
    store.transition("demo.00000", JobState.CREATED)  # requeue
    assert store.jobs["demo.00000"].attempts == 1
    store.transition("demo.00000", JobState.FAILED)
    assert store.jobs["demo.00000"].attempts == 2
    store.close()


def test_dead_letter_only_from_failed(tmp_path):
    store = make_store(tmp_path / "s")
    with pytest.raises(IllegalDeadLetter):
        store.mark_dead_letter("demo.00000", "nope")
    store.transition("demo.00000", JobState.FAILED, error="boom")
    job = store.mark_dead_letter("demo.00000", "budget gone")
    assert job.dead_lettered
    assert store.dead_letter.total == 1
    store.close()

    reopened = CampaignStore.open(tmp_path / "s")
    assert reopened.jobs["demo.00000"].dead_lettered
    assert reopened.dead_letter.total == 1  # replay repopulates the box
    reopened.close()


def test_torn_tail_recovery_re_derives_pending_set(tmp_path):
    """Garbage appended to the journal (a crash mid-write) is dropped on
    open and the pending set is identical to the pre-crash one."""
    store = make_store(tmp_path / "s")
    store.transition("demo.00000", JobState.STAGED_IN)
    pending_before = sorted(j.id for j in store.pending())
    store.close()

    jobs_path = tmp_path / "s" / JOBS_FILE
    with open(jobs_path, "ab") as fh:
        fh.write(b'{"kind": "job.transition", "job": "demo.00001", "fr')  # torn

    reopened = CampaignStore.open(tmp_path / "s")
    assert reopened.recovered_bytes > 0
    assert sorted(j.id for j in reopened.pending()) == pending_before
    assert reopened.jobs["demo.00000"].state is JobState.STAGED_IN
    # and the store is writable again after recovery
    reopened.transition("demo.00001", JobState.STAGED_IN)
    reopened.close()
    CampaignStore.open(tmp_path / "s").close()


def test_torn_tail_loses_at_most_the_last_transition(tmp_path):
    store = make_store(tmp_path / "s")
    store.transition("demo.00000", JobState.STAGED_IN)
    store.close()
    jobs_path = tmp_path / "s" / JOBS_FILE
    data = jobs_path.read_bytes()
    jobs_path.write_bytes(data[:-7])  # tear the final record

    reopened = CampaignStore.open(tmp_path / "s")
    # the torn record was the STAGED_IN transition: replay re-derives the
    # consistent earlier position
    assert reopened.jobs["demo.00000"].state is JobState.CREATED
    reopened.close()


def test_interior_corruption_raises(tmp_path):
    store = make_store(tmp_path / "s")
    store.transition("demo.00000", JobState.STAGED_IN)
    store.close()
    jobs_path = tmp_path / "s" / JOBS_FILE
    lines = jobs_path.read_bytes().splitlines(keepends=True)
    lines[1] = b"NOT JSON AT ALL\n"
    jobs_path.write_bytes(b"".join(lines))
    with pytest.raises(StoreCorruptError, match="interior record"):
        CampaignStore.open(tmp_path / "s")


def test_transition_for_unknown_job_is_corruption(tmp_path):
    store = make_store(tmp_path / "s")
    store.close()
    jobs_path = tmp_path / "s" / JOBS_FILE
    with open(jobs_path, "a", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {"kind": "job.transition", "job": "ghost", "from": "CREATED",
                 "to": "STAGED_IN", "wall": 0.0}
            )
            + "\n"
        )
    with pytest.raises(StoreCorruptError, match="unknown job"):
        CampaignStore.open(tmp_path / "s")


def test_manifest_format_tag_enforced(tmp_path):
    store = make_store(tmp_path / "s")
    store.close()
    manifest = tmp_path / "s" / "manifest.json"
    d = json.loads(manifest.read_text())
    d["format"] = "something-else/9"
    manifest.write_text(json.dumps(d))
    with pytest.raises(StoreCorruptError, match="format"):
        CampaignStore.open(tmp_path / "s")


def test_unknown_record_kinds_preserved(tmp_path):
    store = make_store(tmp_path / "s")
    store._append({"kind": "future.extension", "payload": {"x": 1}})
    store.close()
    reopened = CampaignStore.open(tmp_path / "s")  # no error
    assert len(reopened.jobs) == 3
    reopened.close()


def test_recover_rolls_back_in_flight_jobs(tmp_path):
    store = make_store(tmp_path / "s", n=4)
    store.transition("demo.00000", JobState.STAGED_IN)
    store.transition("demo.00001", JobState.STAGED_IN)
    store.transition("demo.00001", JobState.PREPROCESSED)
    store.transition("demo.00001", JobState.RUNNING)
    rolled = store.recover()
    assert sorted(rolled) == ["demo.00000", "demo.00001"]
    assert store.jobs["demo.00000"].state is JobState.CREATED
    assert store.jobs["demo.00001"].state is JobState.CREATED
    assert store.jobs["demo.00002"].state is JobState.CREATED
    assert store.jobs["demo.00003"].state is JobState.CREATED
    store.close()

    # the rollback is journaled: a reopen sees the recovered state
    reopened = CampaignStore.open(tmp_path / "s")
    assert reopened.jobs["demo.00001"].state is JobState.CREATED
    reopened.close()


def test_recover_requeues_stranded_failed_with_budget(tmp_path):
    """A crash between the FAILED append and the requeue: recovery
    finishes the requeue the dead worker would have performed."""
    store = make_store(tmp_path / "s", max_requeues=1)
    store.transition("demo.00000", JobState.STAGED_IN)
    store.transition("demo.00000", JobState.FAILED, error="boom")  # attempts=1
    store.close()

    reopened = CampaignStore.open(tmp_path / "s")
    rolled = reopened.recover()
    assert rolled == ["demo.00000"]
    job = reopened.jobs["demo.00000"]
    assert job.state is JobState.CREATED
    assert not job.dead_lettered
    assert job.attempts == 1  # the requeue does not refund the budget
    reopened.close()


def test_recover_dead_letters_stranded_failed_without_budget(tmp_path):
    """A crash between the FAILED append and the dead-letter record:
    recovery dead-letters the job so the store can still reach done."""
    store = make_store(tmp_path / "s", max_requeues=0)
    store.transition("demo.00001", JobState.STAGED_IN)
    store.transition("demo.00001", JobState.FAILED, error="boom")  # budget gone
    assert not store.done  # FAILED but not dead-lettered: unresolved
    store.close()

    reopened = CampaignStore.open(tmp_path / "s")
    rolled = reopened.recover()
    assert rolled == []  # dead-lettered, not requeued
    job = reopened.jobs["demo.00001"]
    assert job.state is JobState.FAILED
    assert job.dead_lettered
    assert reopened.dead_letter.total == 1
    # the other jobs drain normally; the resolution is durable
    for jid in ("demo.00000", "demo.00002"):
        for dst in (
            JobState.STAGED_IN,
            JobState.PREPROCESSED,
            JobState.RUNNING,
            JobState.RUN_DONE,
            JobState.POSTPROCESSED,
            JobState.JOB_FINISHED,
        ):
            reopened.transition(jid, dst)
    assert reopened.done
    reopened.close()

    again = CampaignStore.open(tmp_path / "s")
    assert again.jobs["demo.00001"].dead_lettered
    assert again.done
    again.close()


def test_status_and_done(tmp_path):
    store = make_store(tmp_path / "s", n=2)
    assert store.status() == {"demo": {"CREATED": 2}}
    assert not store.done
    for jid in ("demo.00000", "demo.00001"):
        for dst in (
            JobState.STAGED_IN,
            JobState.PREPROCESSED,
            JobState.RUNNING,
            JobState.RUN_DONE,
            JobState.POSTPROCESSED,
            JobState.JOB_FINISHED,
        ):
            store.transition(jid, dst)
    assert store.status() == {"demo": {"JOB_FINISHED": 2}}
    assert store.done
    store.close()


def test_fingerprint_ignores_clock(tmp_path):
    ticks_a = iter(float(i) for i in range(1000))
    ticks_b = iter(float(i * 100 + 5) for i in range(1000))
    a = make_store(tmp_path / "a", clock=lambda: next(ticks_a))
    b = make_store(tmp_path / "b", clock=lambda: next(ticks_b))
    a.transition("demo.00000", JobState.STAGED_IN)
    b.transition("demo.00000", JobState.STAGED_IN)
    assert a.fingerprint() == b.fingerprint()
    b.transition("demo.00001", JobState.STAGED_IN)
    assert a.fingerprint() != b.fingerprint()
    a.close()
    b.close()


def test_closed_store_refuses_writes(tmp_path):
    store = make_store(tmp_path / "s")
    store.close()
    with pytest.raises(RuntimeError, match="closed"):
        store.transition("demo.00000", JobState.STAGED_IN)


def test_context_manager(tmp_path):
    with make_store(tmp_path / "s") as store:
        assert not store.closed
    assert store.closed


def test_second_writer_is_rejected(tmp_path):
    """Two concurrent writable opens would interleave replayed job
    tables and corrupt the journal; the second must fail fast."""
    store = make_store(tmp_path / "s")
    with pytest.raises(StoreLockedError, match="another process"):
        CampaignStore.open(tmp_path / "s")
    store.close()
    # the lock dies with the holder: reopening after close works
    CampaignStore.open(tmp_path / "s").close()


def test_readonly_open_coexists_with_a_writer(tmp_path):
    store = make_store(tmp_path / "s")
    store.transition("demo.00000", JobState.STAGED_IN)

    view = CampaignStore.open(tmp_path / "s", readonly=True)
    assert view.jobs["demo.00000"].state is JobState.STAGED_IN
    assert view.status() == {"demo": {"CREATED": 2, "STAGED_IN": 1}}
    with pytest.raises(RuntimeError, match="read-only"):
        view.transition("demo.00001", JobState.STAGED_IN)
    view.close()
    assert view.closed

    # the writer is unaffected
    store.transition("demo.00001", JobState.STAGED_IN)
    store.close()


def test_readonly_open_ignores_torn_tail_without_truncating(tmp_path):
    store = make_store(tmp_path / "s")
    store.close()
    jobs_path = tmp_path / "s" / JOBS_FILE
    with open(jobs_path, "ab") as fh:
        fh.write(b'{"kind": "job.transition", "job": "demo.00000", "fr')
    size_before = jobs_path.stat().st_size

    view = CampaignStore.open(tmp_path / "s", readonly=True)
    assert view.jobs["demo.00000"].state is JobState.CREATED
    assert jobs_path.stat().st_size == size_before  # untouched
    view.close()


def test_partial_submission_is_discarded_and_resubmittable(tmp_path):
    """A crash mid-submission leaves campaign.create plus a prefix of
    the job.create records; the next writable open discards the partial
    campaign (journaled) and resubmission succeeds."""
    store = make_store(tmp_path / "s", n=3)
    store.close()
    jobs_path = tmp_path / "s" / JOBS_FILE
    lines = jobs_path.read_bytes().splitlines(keepends=True)
    assert len(lines) == 4  # campaign.create + 3 job.create
    jobs_path.write_bytes(b"".join(lines[:2]))  # crash after job #0

    reopened = CampaignStore.open(tmp_path / "s")
    assert reopened.campaigns == {}
    assert reopened.jobs == {}
    specs = [JobSpec(name=f"j{i}", params={"i": i}) for i in range(3)]
    reopened.submit_campaign("demo", specs, seed=3)
    assert sorted(reopened.jobs) == ["demo.00000", "demo.00001", "demo.00002"]
    reopened.close()

    # the discard is journaled: replay stays consistent across reopens
    again = CampaignStore.open(tmp_path / "s")
    assert sorted(again.jobs) == ["demo.00000", "demo.00001", "demo.00002"]
    assert again.campaigns["demo"].expected_jobs == 3
    again.close()


def test_partial_submission_hidden_from_readonly_view(tmp_path):
    store = make_store(tmp_path / "s", n=3)
    store.close()
    jobs_path = tmp_path / "s" / JOBS_FILE
    lines = jobs_path.read_bytes().splitlines(keepends=True)
    jobs_path.write_bytes(b"".join(lines[:2]))
    size_before = jobs_path.stat().st_size

    view = CampaignStore.open(tmp_path / "s", readonly=True)
    assert view.campaigns == {}  # hidden, but not journaled as discarded
    assert jobs_path.stat().st_size == size_before
    view.close()


def test_concurrent_transitions_from_threads_replay_cleanly(tmp_path):
    """validate+append+apply under one lock: racing threads can never
    journal two departures from the same replayed state."""
    import threading

    store = make_store(tmp_path / "s", n=8)
    errors = []

    def advance(jid):
        try:
            for dst in (
                JobState.STAGED_IN,
                JobState.PREPROCESSED,
                JobState.RUNNING,
                JobState.RUN_DONE,
                JobState.POSTPROCESSED,
                JobState.JOB_FINISHED,
            ):
                store.transition(jid, dst)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=advance, args=(f"demo.{i:05d}",)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert store.done
    store.close()

    reopened = CampaignStore.open(tmp_path / "s")  # replay accepts the journal
    assert reopened.done
    reopened.close()
