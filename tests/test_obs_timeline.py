"""Machine-utilization and workflow timelines (the Table-3 view).

Contracts of :mod:`repro.obs.timeline`:

* node assignment is deterministic first-fit (same allocations → same
  Gantt, run after run);
* utilization = busy-node-seconds / (nodes × makespan);
* the machine view rebuilds from journaled scheduler events alone;
* sim/analysis overlap fraction comes from merged span intervals.
"""

from __future__ import annotations

import pytest

from repro.machines import MachineSpec, QueuePolicy, Scheduler
from repro.machines.scheduler import Job
from repro.obs import Allocation, MachineTimeline, WorkflowTimeline, TelemetryRecorder
from repro.obs.spans import Span


def _span(name, t0, t1, thread="MainThread", **fields):
    return Span(name=name, t0=t0, t1=t1, wall0=0.0, thread=thread, fields=fields)


# -- machine timeline ----------------------------------------------------------


def test_node_assignment_is_deterministic_first_fit():
    allocs = [
        Allocation("a", 2, 0.0, 4.0),
        Allocation("b", 1, 0.0, 2.0),
        Allocation("c", 1, 2.0, 5.0),
    ]
    tl = MachineTimeline(n_nodes=3, allocations=allocs)
    asn = tl.node_assignment()
    # 'a' grabs nodes 0-1, 'b' node 2; 'c' reuses node 2 after 'b' frees it
    assert asn["a"] == [0, 1]
    assert asn["b"] == [2]
    assert asn["c"] == [2]
    tl2 = MachineTimeline(n_nodes=3, allocations=list(reversed(allocs)))
    assert tl2.node_assignment() == asn  # input order is irrelevant


def test_utilization_accounting():
    tl = MachineTimeline(
        n_nodes=2,
        allocations=[Allocation("a", 1, 0.0, 10.0), Allocation("b", 1, 5.0, 10.0)],
    )
    assert tl.makespan == pytest.approx(10.0)
    assert tl.busy_node_seconds() == pytest.approx(15.0)
    assert tl.utilization() == pytest.approx(0.75)
    assert tl.per_node_busy() == [pytest.approx(10.0), pytest.approx(5.0)]


def test_gantt_renders_every_node_row():
    tl = MachineTimeline(
        n_nodes=2,
        machine="titan",
        allocations=[Allocation("a", 2, 0.0, 1.0), Allocation("b", 1, 1.0, 2.0)],
    )
    art = tl.gantt(width=40)
    assert "titan" in art and "node   0" in art and "node   1" in art
    assert "a=a" in art and "b=b" in art  # legend maps letters to job names


def test_machine_timeline_from_scheduler_events():
    """The journal path: run a real scheduler, rebuild the view from the
    recorder's events only (what ``python -m repro.obs timeline`` does)."""
    rec = TelemetryRecorder(run_id="r1")
    from repro import obs

    prev = obs.set_recorder(rec)
    try:
        machine = MachineSpec(
            name="mira",
            n_nodes=4,
            cores_per_node=1,
            charge_factor=1.0,
            has_gpu=False,
            queue=QueuePolicy(),
        )
        sched = Scheduler(machine)
        for i, (nodes, dur) in enumerate([(2, 3600.0), (2, 1800.0), (4, 900.0)]):
            sched.submit(Job(name=f"j{i}", n_nodes=nodes, duration=dur))
        sched.run()
    finally:
        obs.set_recorder(prev)
    events = list(rec.events.snapshot())
    tl = MachineTimeline.from_events(events)
    assert tl.n_nodes == 4
    assert len(tl.allocations) == 3
    direct = MachineTimeline.from_scheduler(sched)
    assert tl.node_assignment() == direct.node_assignment()
    assert 0.0 < tl.utilization() <= 1.0


# -- workflow timeline ---------------------------------------------------------


def test_overlap_fraction_from_span_intervals():
    spans = [
        _span("workflow.sim", 0.0, 10.0),
        _span("insitu.execute", 2.0, 4.0),
        _span("offline.center_job", 8.0, 12.0, thread="listener"),
    ]
    wf = WorkflowTimeline(spans=spans, metrics={})
    assert wf.sim_seconds() == pytest.approx(10.0)
    # analysis inside [2,4] and [8,12]; overlap with sim = 2 + 2 = 4
    assert wf.overlap_fraction() == pytest.approx(0.4)


def test_solver_overlap_ignores_nested_serial_insitu():
    spans = [
        _span("workflow.sim", 0.0, 10.0),
        _span("sim.force", 0.0, 2.0),
        _span("sim.force", 4.0, 6.0),
        # serial in-situ: runs between force kernels, nested in workflow.sim
        _span("insitu.execute", 2.0, 4.0),
        # pipelined in-situ: runs *during* the second force kernel
        _span("insitu.execute", 4.5, 5.5, thread="insitu-pipeline_0"),
    ]
    wf = WorkflowTimeline(spans=spans, metrics={})
    # coarse metric counts both; solver metric only the overlapping one
    assert wf.overlap_fraction() == pytest.approx(0.3)
    assert wf.solver_overlap_fraction() == pytest.approx(1.0 / 4.0)
    assert wf.summary()["solver_overlap_fraction"] == pytest.approx(0.25)


def test_solver_overlap_zero_without_force_spans():
    wf = WorkflowTimeline(spans=[_span("insitu.x", 0.0, 1.0)], metrics={})
    assert wf.solver_overlap_fraction() == 0.0


def test_overlap_zero_without_sim():
    wf = WorkflowTimeline(spans=[_span("offline.x", 0.0, 1.0)], metrics={})
    assert wf.sim_seconds() == 0.0
    assert wf.overlap_fraction() == 0.0


def test_staging_throughput_uses_metrics_and_staging_spans():
    spans = [_span("staging.put", 0.0, 2.0)]
    wf = WorkflowTimeline(spans=spans, metrics={"staging_bytes_staged_total": 4.0e6})
    assert wf.staging_throughput() == pytest.approx(2.0e6)


def test_render_contains_a_lane_per_thread():
    spans = [
        _span("workflow.sim", 0.0, 1.0),
        _span("exec.item", 0.2, 0.4, thread="exec-worker-0"),
    ]
    art = WorkflowTimeline(spans=spans, metrics={}).render(width=40)
    assert "MainThread" in art and "exec-worker-0" in art
