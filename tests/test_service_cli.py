"""CLI flows for ``python -m repro.service`` (driven via ``main([...])``)."""

from __future__ import annotations

import json

import pytest

from repro.service.cli import demo_specs, main, read_specs
from repro.service.store import CampaignStore


def run(capsys, *args):
    code = main([str(a) for a in args])
    out = capsys.readouterr()
    return code, out.out, out.err


def test_init_submit_work_status(tmp_path, capsys):
    store = tmp_path / "store"
    code, out, _ = run(capsys, "init", store, "--seed", 7)
    assert code == 0 and "initialized" in out

    code, out, _ = run(
        capsys, "submit", store, "--campaign", "demo", "--demo", 3, "--demo-seed", 2
    )
    assert code == 0 and "3 jobs" in out

    code, out, _ = run(capsys, "ls", store, "--state", "CREATED")
    assert code == 0 and "3 job(s)" in out

    code, out, _ = run(capsys, "work", store)
    assert code == 0 and "finished 3 job(s)" in out

    code, out, _ = run(capsys, "status", store)
    assert code == 0
    assert "JOB_FINISHED=3" in out and "done: True" in out

    code, out, _ = run(capsys, "status", store, "--json")
    assert code == 0
    payload = json.loads(out)
    assert payload["campaigns"] == {"demo": {"JOB_FINISHED": 3}}
    assert payload["done"] is True
    assert len(payload["fingerprint"]) == 64


def test_submit_spec_file(tmp_path, capsys):
    store = tmp_path / "store"
    spec = tmp_path / "jobs.json"
    spec.write_text(
        json.dumps(
            [
                {"name": "a", "kind": "noop", "wall_estimate": 10.0},
                {"name": "b", "kind": "noop", "n_nodes": 2},
            ]
        )
    )
    run(capsys, "init", store)
    code, out, _ = run(capsys, "submit", store, "--campaign", "filed", "--spec", spec)
    assert code == 0 and "2 jobs" in out
    with CampaignStore.open(store) as s:
        assert s.jobs["filed.00001"].n_nodes == 2


def test_submit_requires_exactly_one_source(tmp_path, capsys):
    store = tmp_path / "store"
    run(capsys, "init", store)
    code, _, err = run(capsys, "submit", store, "--campaign", "x")
    assert code == 2 and "exactly one" in err
    code, _, err = run(
        capsys, "submit", store, "--campaign", "x", "--demo", 2, "--spec", "f.json"
    )
    assert code == 2


def test_pack_output(tmp_path, capsys):
    store = tmp_path / "store"
    run(capsys, "init", store)
    run(capsys, "submit", store, "--campaign", "demo", "--demo", 6)
    code, out, _ = run(capsys, "pack", store, "--max-nodes", 4, "--max-wall", 300)
    assert code == 0
    assert "pack-000" in out and "allocation(s)" in out


def test_resume_no_work(tmp_path, capsys):
    store = tmp_path / "store"
    run(capsys, "init", store)
    run(capsys, "submit", store, "--campaign", "demo", "--demo", 2)
    code, out, _ = run(capsys, "resume", store, "--no-work")
    assert code == 0 and "rolled 0 stranded" in out


def test_dead_letter_exit_code(tmp_path, capsys):
    store = tmp_path / "store"
    spec = tmp_path / "jobs.json"
    spec.write_text(
        json.dumps([{"name": "bad", "kind": "fail", "max_requeues": 0}])
    )
    run(capsys, "init", store)
    run(capsys, "submit", store, "--campaign", "doom", "--spec", spec)
    code, out, _ = run(capsys, "work", store)
    assert code == 1 and "finished 0 job(s)" in out
    code, out, _ = run(capsys, "status", store)
    assert code == 1 and "dead letters: 1" in out
    code, out, _ = run(capsys, "ls", store)
    assert "[dead-letter]" in out


def test_concurrent_writer_exits_2_but_inspection_works(tmp_path, capsys):
    """A second writer is refused (exit 2) while the read-only commands
    keep working against the locked store."""
    store = tmp_path / "store"
    run(capsys, "init", store)
    run(capsys, "submit", store, "--campaign", "demo", "--demo", 2)
    with CampaignStore.open(store):  # a live writer, e.g. a worker
        code, _, err = run(capsys, "work", store)
        assert code == 2 and "another process" in err
        code, _, err = run(capsys, "submit", store, "--campaign", "x", "--demo", 1)
        assert code == 2 and "another process" in err
        code, out, _ = run(capsys, "status", store)
        assert code == 0 and "CREATED=2" in out
        code, out, _ = run(capsys, "ls", store)
        assert code == 0 and "2 job(s)" in out
    code, out, _ = run(capsys, "work", store)  # lock released on close
    assert code == 0 and "finished 2 job(s)" in out


def test_error_paths_exit_2(tmp_path, capsys):
    code, _, err = run(capsys, "status", tmp_path / "missing")
    assert code == 2 and "error:" in err
    run(capsys, "init", tmp_path / "store")
    code, _, err = run(capsys, "init", tmp_path / "store")
    assert code == 2 and "already" in err


def test_read_specs_validation(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"not": "a list"}))
    with pytest.raises(ValueError, match="JSON list"):
        read_specs(str(bad))
    bad.write_text(json.dumps([{"kind": "noop"}]))
    with pytest.raises(ValueError, match="name"):
        read_specs(str(bad))


def test_demo_specs_deterministic():
    assert demo_specs(3, seed=1) == demo_specs(3, seed=1)
    assert demo_specs(3, seed=1) != demo_specs(3, seed=2)
    assert all(s.kind == "synthetic_centers" for s in demo_specs(2))
