"""Fused spectral PM engine vs the reference pipeline.

Cross-validates :class:`repro.sim.pmsolver.PMSolver` (4-FFT fusion,
bincount CIC, shared scatter/gather geometry) against the original
function-at-a-time chain in :mod:`repro.sim.pm`, and checks the solver's
physical and reproducibility contracts: determinism, momentum
conservation, scratch non-aliasing, and telemetry accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.check import check_determinism
from repro.sim import HACCSimulation, SimulationConfig
from repro.sim.pm import (
    cic_deposit,
    cic_interpolate,
    gradient_spectral,
    pm_accelerations,
    solve_poisson,
)
from repro.sim.pmsolver import (
    PMSolver,
    clear_solver_cache,
    get_solver,
    resolve_fft_workers,
)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


def reference_accelerations(pos_grid, ng, factor):
    delta = cic_deposit(pos_grid, ng)
    phi = solve_poisson(delta, factor=factor)
    return -cic_interpolate(gradient_spectral(phi), pos_grid)


# -- cross-validation against the reference pipeline --------------------------


@pytest.mark.parametrize("ng", [8, 16, 33])
def test_fused_matches_reference_accelerations(rng, ng):
    pos = rng.uniform(0, ng, (2500, 3))
    factor = 1.7
    ref = reference_accelerations(pos, ng, factor)
    fused = PMSolver(ng).accelerations(pos, factor)
    scale = np.abs(ref).max()
    np.testing.assert_allclose(fused, ref, rtol=1e-10, atol=1e-12 * scale)


def test_deposit_matches_reference(rng):
    ng = 16
    pos = rng.uniform(0, ng, (3000, 3))
    ref = cic_deposit(pos, ng)
    fused = PMSolver(ng).deposit(pos)
    np.testing.assert_allclose(fused, ref, rtol=1e-10, atol=1e-12)


def test_deposit_matches_reference_weighted(rng):
    ng = 12
    pos = rng.uniform(0, ng, (1000, 3))
    w = rng.uniform(0.5, 2.0, 1000)
    np.testing.assert_allclose(
        PMSolver(ng).deposit(pos, weights=w),
        cic_deposit(pos, ng, weights=w),
        rtol=1e-10,
        atol=1e-12,
    )


def test_potential_matches_solve_poisson(rng):
    ng = 16
    delta = rng.standard_normal((ng, ng, ng))
    delta -= delta.mean()
    np.testing.assert_allclose(
        PMSolver(ng).potential(delta, factor=2.5),
        solve_poisson(delta, factor=2.5),
        rtol=1e-10,
        atol=1e-12,
    )


def test_inverse_gradient_is_minus_grad_phi(rng):
    ng = 16
    delta = rng.standard_normal((ng, ng, ng))
    delta -= delta.mean()
    phi = solve_poisson(delta, factor=1.0)
    ref = -gradient_spectral(phi)
    fused = PMSolver(ng).inverse_gradient(delta)
    np.testing.assert_allclose(fused, ref, rtol=1e-10, atol=1e-12)


def test_pm_accelerations_method_dispatch(rng):
    ng = 12
    pos = rng.uniform(0, ng, (500, 3))
    fused = pm_accelerations(pos, ng, 1.0, method="fused")
    ref = pm_accelerations(pos, ng, 1.0, method="reference")
    scale = np.abs(ref).max()
    np.testing.assert_allclose(fused, ref, rtol=1e-10, atol=1e-12 * scale)
    with pytest.raises(ValueError, match="unknown PM method"):
        pm_accelerations(pos, ng, 1.0, method="nope")


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(1, 200),
    ng=st.integers(4, 12),
)
def test_bincount_deposit_equals_add_at(seed, n, ng):
    """Property: the bincount scatter ≡ np.add.at for any particle cloud."""
    pos = np.random.default_rng(seed).uniform(-ng, 2 * ng, (n, 3))
    np.testing.assert_allclose(
        PMSolver(ng).deposit(pos), cic_deposit(pos, ng), rtol=1e-9, atol=1e-11
    )


# -- physical/reproducibility contracts ----------------------------------------


def test_accelerations_deterministic(rng):
    ng = 16
    pos = rng.uniform(0, ng, (2000, 3))
    solver = PMSolver(ng)
    report = check_determinism(lambda: solver.accelerations(pos, 1.0), runs=3)
    assert report.ok


def test_momentum_conservation_single_eval(rng):
    """Matched CIC scatter/gather + antisymmetric spectral gradient
    conserve total momentum: net force vanishes to machine precision."""
    ng = 16
    pos = rng.uniform(0, ng, (5000, 3))
    acc = PMSolver(ng).accelerations(pos, 1.5)
    net = np.abs(acc.sum(axis=0)).max()
    assert net <= 1e-12 * np.abs(acc).sum()


def test_momentum_conservation_multi_step():
    """Total code momentum stays conserved across an N-body integration."""
    sim = HACCSimulation(
        SimulationConfig(np_per_dim=12, box=30.0, z_initial=30.0, n_steps=8)
    )
    p0 = sim.particles.vel.sum(axis=0)
    scale0 = np.abs(sim.particles.vel).sum()
    sim.run()
    p1 = sim.particles.vel.sum(axis=0)
    drift = np.abs(p1 - p0).max()
    scale = max(scale0, np.abs(sim.particles.vel).sum())
    assert drift <= 1e-10 * scale


def test_fused_and_reference_backends_agree_over_run():
    base = dict(np_per_dim=10, box=25.0, z_initial=30.0, n_steps=5)
    fused = HACCSimulation(SimulationConfig(pm_backend="fused", **base))
    ref = HACCSimulation(SimulationConfig(pm_backend="reference", **base))
    fused.run()
    ref.run()
    np.testing.assert_allclose(
        fused.particles.pos, ref.particles.pos, rtol=1e-8, atol=1e-9 * 25.0
    )
    np.testing.assert_allclose(
        fused.particles.vel, ref.particles.vel, rtol=1e-8, atol=1e-10
    )


def test_returned_arrays_not_aliased_to_scratch(rng):
    ng = 8
    solver = PMSolver(ng)
    pos = rng.uniform(0, ng, (300, 3))
    first = solver.accelerations(pos, 1.0)
    snapshot = first.copy()
    second = solver.accelerations(rng.uniform(0, ng, (300, 3)), 1.0)
    assert first is not second
    np.testing.assert_array_equal(first, snapshot)  # untouched by reuse


def test_empty_and_validation():
    solver = PMSolver(8)
    acc = solver.accelerations(np.empty((0, 3)), 1.0)
    assert acc.shape == (0, 3)
    assert np.array_equal(solver.deposit(np.empty((0, 3))), np.zeros((8, 8, 8)))
    with pytest.raises(ValueError, match="ng must be"):
        PMSolver(1)
    with pytest.raises(ValueError, match="pm_backend"):
        SimulationConfig(pm_backend="magic")


# -- caching / configuration ---------------------------------------------------


def test_get_solver_caches_per_ng_and_workers():
    clear_solver_cache()
    try:
        a = get_solver(16, workers=2)
        assert get_solver(16, workers=2) is a
        assert get_solver(16, workers=1) is not a
        assert get_solver(8, workers=2) is not a
    finally:
        clear_solver_cache()


def test_resolve_fft_workers(monkeypatch):
    assert resolve_fft_workers(3) == 3
    assert resolve_fft_workers(0) == 1  # clamped
    monkeypatch.setenv("REPRO_PM_WORKERS", "5")
    assert resolve_fft_workers() == 5
    monkeypatch.delenv("REPRO_PM_WORKERS")
    assert resolve_fft_workers() >= 1


def test_worker_count_bit_identical(rng):
    ng = 16
    pos = rng.uniform(0, ng, (1000, 3))
    a1 = PMSolver(ng, workers=1).accelerations(pos, 1.0)
    a4 = PMSolver(ng, workers=4).accelerations(pos, 1.0)
    np.testing.assert_array_equal(a1, a4)


# -- telemetry accounting ------------------------------------------------------


def test_fft_accounting_and_counters(rng):
    ng = 8
    pos = rng.uniform(0, ng, (200, 3))
    with obs.telemetry() as rec:
        solver = PMSolver(ng)
        solver.accelerations(pos, 1.0)
        assert solver.fft_count == 4  # the fusion claim: 4, not 6
        solver.accelerations(pos, 1.0)
        assert solver.fft_count == 8
        assert rec.counter("pm_force_evals_total").value == 2
        assert rec.counter("pm_fft_total").value == 8
        hist = rec.histogram("pm_fft_seconds")
        assert hist.count >= 2
        assert rec.histogram("pm_deposit_seconds").count == 2
