"""Domain decomposition: factorization, geometry, ownership (+ properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import CartesianDecomposition, factor_dims


@pytest.mark.parametrize(
    "n,expected",
    [(1, (1, 1, 1)), (2, (2, 1, 1)), (8, (2, 2, 2)), (12, (3, 2, 2)), (32, (4, 4, 2)), (27, (3, 3, 3))],
)
def test_factor_dims_known_cases(n, expected):
    assert factor_dims(n) == expected


@settings(max_examples=60, deadline=None)
@given(n=st.integers(1, 512))
def test_prop_factor_dims_product(n):
    dims = factor_dims(n)
    assert len(dims) == 3
    assert int(np.prod(dims)) == n
    assert list(dims) == sorted(dims, reverse=True)


def test_factor_dims_invalid():
    with pytest.raises(ValueError):
        factor_dims(0)


def test_rank_coords_roundtrip():
    d = CartesianDecomposition.for_ranks(10.0, 12)
    for r in range(d.nranks):
        assert d.rank_of_coords(*d.coords_of_rank(r)) == r


def test_coords_out_of_range_raises():
    d = CartesianDecomposition.for_ranks(10.0, 8)
    with pytest.raises(ValueError):
        d.coords_of_rank(8)


def test_bounds_tile_the_box():
    d = CartesianDecomposition.for_ranks(30.0, 8)
    total_volume = 0.0
    for r in range(8):
        lo, hi = d.bounds(r)
        total_volume += np.prod(hi - lo)
    assert np.isclose(total_volume, 30.0**3)


def test_ownership_consistent_with_bounds(rng):
    d = CartesianDecomposition.for_ranks(100.0, 32)
    pos = rng.uniform(0, 100, (2000, 3))
    owners = d.rank_of_position(pos)
    for r in range(32):
        mask = d.contains(r, pos)
        assert np.all(owners[mask] == r)
        assert np.all(owners[~mask] != r)


def test_positions_outside_box_are_wrapped():
    d = CartesianDecomposition.for_ranks(10.0, 8)
    assert d.rank_of_position(np.asarray([[11.0, 1.0, 1.0]]))[0] == d.rank_of_position(
        np.asarray([[1.0, 1.0, 1.0]])
    )[0]


def test_every_position_has_exactly_one_owner(rng):
    d = CartesianDecomposition.for_ranks(50.0, 12)
    pos = rng.uniform(-50, 100, (500, 3))  # includes out-of-box values
    owners = d.rank_of_position(pos)
    assert owners.min() >= 0 and owners.max() < 12


def test_neighbor_ranks_symmetry():
    d = CartesianDecomposition.for_ranks(10.0, 8)
    for r in range(8):
        for nb in d.neighbor_ranks(r):
            assert r in d.neighbor_ranks(nb)


def test_neighbor_count_small_grid():
    # 2x2x2 periodic grid: every other rank is a neighbor
    d = CartesianDecomposition.for_ranks(10.0, 8)
    assert len(d.neighbor_ranks(0)) == 7


def test_neighbor_count_large_grid():
    d = CartesianDecomposition(box=10.0, dims=(4, 4, 4))
    assert len(d.neighbor_ranks(0)) == 26


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 64),
    x=st.floats(0, 99.999),
    y=st.floats(0, 99.999),
    z=st.floats(0, 99.999),
)
def test_prop_owner_bounds_contain_position(n, x, y, z):
    d = CartesianDecomposition.for_ranks(100.0, n)
    p = np.asarray([[x, y, z]])
    r = int(d.rank_of_position(p)[0])
    lo, hi = d.bounds(r)
    assert np.all(p[0] >= lo - 1e-9) and np.all(p[0] < hi + 1e-9)
