"""Backend registry and per-backend building-block behaviour."""

import numpy as np
import pytest

from repro.dataparallel import (
    SerialBackend,
    available_backends,
    get_backend,
    set_default_backend,
    use_backend,
)

BACKENDS = ["serial", "vector"]


def test_registry_contains_both_backends():
    assert set(BACKENDS) <= set(available_backends())


def test_get_backend_by_name_and_instance():
    be = get_backend("serial")
    assert isinstance(be, SerialBackend)
    assert get_backend(be) is be


def test_get_backend_unknown_raises():
    with pytest.raises(KeyError, match="unknown backend"):
        get_backend("cuda")


def test_default_backend_switching():
    set_default_backend("serial")
    assert get_backend().name == "serial"
    set_default_backend("vector")
    assert get_backend().name == "vector"


def test_use_backend_context_restores():
    set_default_backend("vector")
    with use_backend("serial") as be:
        assert be.name == "serial"
        assert get_backend().name == "serial"
    assert get_backend().name == "vector"


@pytest.mark.parametrize("name", BACKENDS)
def test_map_applies_elementwise(name):
    be = get_backend(name)
    out = be.map(lambda x: x * 2, np.arange(5))
    assert np.array_equal(out, np.arange(5) * 2)


@pytest.mark.parametrize("name", BACKENDS)
def test_map_multiple_arrays(name):
    be = get_backend(name)
    out = be.map(lambda a, b: a + b, np.arange(4), np.ones(4))
    assert np.array_equal(out, np.arange(4) + 1)


def test_map_length_mismatch_raises():
    with pytest.raises(ValueError):
        get_backend("serial").map(lambda a, b: a + b, np.arange(3), np.arange(4))


@pytest.mark.parametrize("name", BACKENDS)
def test_reduce_sum(name):
    be = get_backend(name)
    assert be.reduce(np.arange(10), np.add, 0) == 45


@pytest.mark.parametrize("name", BACKENDS)
def test_reduce_empty_returns_init(name):
    be = get_backend(name)
    assert be.reduce(np.empty(0), np.add, 7) == 7


@pytest.mark.parametrize("name", BACKENDS)
def test_scan_inclusive_exclusive(name):
    be = get_backend(name)
    arr = np.asarray([1, 2, 3, 4])
    inc = be.scan(arr, np.add, exclusive=False, init=0)
    exc = be.scan(arr, np.add, exclusive=True, init=0)
    assert np.array_equal(inc, [1, 3, 6, 10])
    assert np.array_equal(exc, [0, 1, 3, 6])


@pytest.mark.parametrize("name", BACKENDS)
def test_sort_by_key_stable_and_parallel_arrays(name):
    be = get_backend(name)
    keys = np.asarray([3, 1, 2, 1])
    vals = np.asarray([30.0, 10.0, 20.0, 11.0])
    k, v = be.sort_by_key(keys, vals)
    assert np.array_equal(k, [1, 1, 2, 3])
    assert np.array_equal(v, [10.0, 11.0, 20.0, 30.0])  # stable ties


@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize(
    "op,expected",
    [("sum", [21.0, 9.0]), ("min", [10.0, 9.0]), ("max", [11.0, 9.0]), ("count", [2, 1])],
)
def test_reduce_by_key_ops(name, op, expected):
    be = get_backend(name)
    keys = np.asarray([1, 1, 2])
    vals = np.asarray([10.0, 11.0, 9.0])
    uk, rv = be.reduce_by_key(keys, vals, op)
    assert np.array_equal(uk, [1, 2])
    assert np.array_equal(rv, expected)


@pytest.mark.parametrize("name", BACKENDS)
def test_reduce_by_key_empty(name):
    be = get_backend(name)
    uk, rv = be.reduce_by_key(np.empty(0, dtype=int), np.empty(0), "sum")
    assert len(uk) == 0 and len(rv) == 0


@pytest.mark.parametrize("name", BACKENDS)
def test_gather_scatter_roundtrip(name):
    be = get_backend(name)
    src = np.asarray([10.0, 20.0, 30.0, 40.0])
    idx = np.asarray([3, 1])
    got = be.gather(idx, src)
    assert np.array_equal(got, [40.0, 20.0])
    out = np.zeros(4)
    be.scatter(got, idx, out)
    assert np.array_equal(out, [0.0, 20.0, 0.0, 40.0])


def test_backends_agree_on_random_inputs(rng):
    keys = rng.integers(0, 20, 200)
    vals = rng.normal(size=200)
    s = get_backend("serial")
    v = get_backend("vector")
    for op in ("sum", "min", "max", "count"):
        uk_s, rv_s = s.reduce_by_key(*s.sort_by_key(keys, vals), op)
        uk_v, rv_v = v.reduce_by_key(*v.sort_by_key(keys, vals), op)
        assert np.array_equal(uk_s, uk_v)
        assert np.allclose(rv_s, rv_v)
