"""Linear power spectrum: normalization, shape, growth scaling."""

import numpy as np
import pytest

from repro.sim import Cosmology, LinearPower, QCONTINUUM_COSMOLOGY, transfer_eisenstein_hu


@pytest.fixture(scope="module")
def power():
    return LinearPower(QCONTINUUM_COSMOLOGY)


def test_sigma8_normalization(power):
    assert power.sigma_r(8.0) == pytest.approx(QCONTINUUM_COSMOLOGY.sigma8, rel=1e-3)


def test_transfer_limits():
    cos = QCONTINUUM_COSMOLOGY
    k = np.asarray([1e-5, 1e3])
    t = transfer_eisenstein_hu(k, cos)
    assert t[0] == pytest.approx(1.0, abs=1e-2)  # T -> 1 on large scales
    assert t[1] < 1e-3  # strongly suppressed on small scales


def test_transfer_monotonic_decreasing():
    k = np.logspace(-4, 2, 200)
    t = transfer_eisenstein_hu(k, QCONTINUUM_COSMOLOGY)
    assert np.all(np.diff(t) <= 1e-12)


def test_power_positive_and_peaked(power):
    k = np.logspace(-3, 1, 100)
    p = power(k)
    assert np.all(p > 0)
    peak_k = k[np.argmax(p)]
    # matter power peaks near the equality scale ~0.01-0.03 h/Mpc
    assert 0.005 < peak_k < 0.1


def test_power_zero_at_k_zero(power):
    assert power(np.asarray([0.0]))[0] == 0.0


def test_power_small_scale_slope(power):
    # P(k) ~ k^(n_s - 4) asymptotically; slope must be steeply negative
    k = np.asarray([10.0, 20.0])
    p = power(k)
    slope = np.log(p[1] / p[0]) / np.log(2.0)
    assert slope < -2.0


def test_at_redshift_scales_with_growth(power):
    cos = QCONTINUUM_COSMOLOGY
    k = np.asarray([0.1])
    z = 2.0
    d = cos.growth_factor(1.0 / (1.0 + z))
    assert power.at_redshift(k, z)[0] == pytest.approx(power(k)[0] * d * d)


def test_sigma_r_decreasing(power):
    assert power.sigma_r(1.0) > power.sigma_r(8.0) > power.sigma_r(32.0)


def test_higher_sigma8_scales_power():
    lo = LinearPower(Cosmology(sigma8=0.7))
    hi = LinearPower(Cosmology(sigma8=0.9))
    k = np.asarray([0.1])
    assert hi(k)[0] / lo(k)[0] == pytest.approx((0.9 / 0.7) ** 2, rel=1e-3)
