"""Workflow engine: accounting, workload profiles, planner, strategies."""

import numpy as np
import pytest

from repro.core import (
    CombinedWorkflow,
    JobLedger,
    WorkloadProfile,
    evaluate_all,
    lpt_assign,
    plan_split,
    profile_from_context,
    qcontinuum_like_profile,
    synthetic_halo_catalog,
    test_run_like_profile as make_test_run_profile,
)
from repro.machines import MOONLIGHT, PAPER_CALIBRATION, TITAN

COST = PAPER_CALIBRATION


# --- accounting -------------------------------------------------------------------


def test_job_ledger_phases_and_core_hours():
    ledger = JobLedger(name="job", machine=TITAN, nodes=32)
    ledger.add("sim", 772.0)
    ledger.add("analysis", 722.0)
    assert ledger.total_seconds == pytest.approx(1494.0)
    assert ledger.core_hours == pytest.approx(1494 * 32 * 30 / 3600, rel=1e-6)
    assert ledger.seconds("sim") == 772.0
    assert ledger.seconds("nothing") == 0.0
    row = ledger.as_row()
    assert row["total"] == pytest.approx(1494.0)


# --- workload profiles --------------------------------------------------------------


def test_profile_derived_quantities():
    p = WorkloadProfile(
        n_particles=1000,
        n_sim_nodes=4,
        n_steps=10,
        halo_counts=np.asarray([50, 200, 500]),
        halo_owner=np.asarray([0, 1, 1]),
    )
    assert p.n_halos == 3
    assert p.largest_halo == 500
    assert p.level1_bytes == 36_000
    assert p.level2_particles(100) == 700
    assert p.level2_bytes(100) == 700 * 36
    pairs = p.pair_counts()
    assert pairs[2] == 500 * 499
    node = p.node_pairs()
    assert node[1] == pairs[1] + pairs[2]
    assert node[2] == 0 and node[3] == 0


def test_profile_validation():
    with pytest.raises(ValueError):
        WorkloadProfile(10, 2, 1, np.asarray([5]), np.asarray([0, 1]))
    with pytest.raises(ValueError):
        WorkloadProfile(10, 2, 1, np.asarray([5]), np.asarray([7]))


def test_profile_scaling_self_similar():
    p = WorkloadProfile(
        n_particles=1000,
        n_sim_nodes=2,
        n_steps=10,
        halo_counts=np.asarray([50, 500]),
        halo_owner=np.asarray([0, 1]),
    )
    big = p.scaled(8)
    assert big.n_particles == 8000
    assert big.n_sim_nodes == 16
    assert big.n_halos == 16
    assert big.largest_halo == 500  # same resolution: same max halo
    assert big.level1_bytes == 8 * p.level1_bytes


def test_synthetic_catalog_shape():
    c = synthetic_halo_catalog(50_000, seed=1)
    assert len(c) == 50_000
    assert c.min() >= 40
    # steeply falling: medians far below the tail
    assert np.median(c) < 0.01 * c.max()


def test_synthetic_catalog_cap_and_determinism():
    a = synthetic_halo_catalog(1000, seed=2, m_cap=5000)
    assert a.max() <= 5000
    b = synthetic_halo_catalog(1000, seed=2, m_cap=5000)
    assert np.array_equal(a, b)


def test_test_run_profile_matches_paper_quotes():
    p = make_test_run_profile()
    assert p.n_particles == 1024**3
    assert p.n_sim_nodes == 32
    assert p.largest_halo == 2_548_321  # the paper's quoted maximum
    assert p.n_halos == pytest.approx(167_686_789 // 512, rel=0.01)
    # off-loaded count ~ 84,719/512 within a factor ~2
    off = (p.halo_counts > 300_000).sum()
    assert 60 < off < 350


def test_qcontinuum_profile_giants():
    p = qcontinuum_like_profile()
    assert p.n_particles == 8192**3
    assert p.largest_halo == 25_000_000  # "up to 25 million particles"
    assert p.n_sim_nodes == 16384


def test_profile_from_context(mini_sim):
    from repro.insitu import HaloFinderAlgorithm, InSituAnalysisManager

    mgr = InSituAnalysisManager()
    mgr.register(HaloFinderAlgorithm(min_count=40, n_ranks=4))
    ctx = mgr.execute(mini_sim, 99, 1.0)
    p = profile_from_context(ctx, n_particles=len(mini_sim.particles), n_steps=24)
    assert p.n_sim_nodes == 4
    assert p.n_halos == len(ctx.store["fof"]["halos"])
    assert p.n_particles == 24**3


# --- planner -----------------------------------------------------------------------


def test_lpt_assign_balances():
    costs = np.asarray([10.0, 9, 8, 1, 1, 1])
    assign = lpt_assign(costs, 3)
    loads = np.bincount(assign, weights=costs, minlength=3)
    assert loads.max() <= 11.0
    assert loads.sum() == costs.sum()


def test_lpt_single_rank():
    assert np.all(lpt_assign(np.asarray([5.0, 3.0]), 1) == 0)


def test_planner_all_in_situ_when_halos_small():
    p = WorkloadProfile(
        n_particles=10_000_000,
        n_sim_nodes=32,
        n_steps=10,
        halo_counts=np.asarray([100, 500, 1000]),
        halo_owner=np.asarray([0, 1, 2]),
    )
    plan = plan_split(p, COST, TITAN)
    assert plan.all_in_situ
    assert plan.m_max_sim == 1000
    assert plan.n_offline_ranks == 0


def test_planner_test_run_is_borderline():
    """At 1024³ the largest halo (~422 s) just undercuts t_io (~439 s):
    the automated rule finds the test problem borderline, exactly the
    paper's point that the in-situ/off-line gap widens with volume."""
    p = make_test_run_profile()
    plan = plan_split(p, COST, TITAN)
    assert plan.m_max_io == pytest.approx(p.largest_halo, rel=0.15)


def test_planner_offloads_qcontinuum_giants():
    """At Q Continuum scale the 25M-particle monsters force off-loading."""
    p = qcontinuum_like_profile()
    plan = plan_split(p, COST, TITAN)
    assert not plan.all_in_situ
    assert plan.m_max_io < p.largest_halo
    assert plan.threshold == plan.m_max_io
    assert plan.offload_mask.sum() > 0
    # rank count = ceil(T / t_max)
    assert plan.n_offline_ranks == int(
        np.ceil(plan.offload_total_seconds / plan.offload_max_seconds)
    )
    # LPT assignment covers every offloaded halo
    assert len(plan.assignment) == plan.offload_mask.sum()


def test_planner_m_max_io_consistent_with_tio():
    p = qcontinuum_like_profile()
    plan = plan_split(p, COST, TITAN)
    rate = COST.pair_rate(TITAN, "gpu")
    t_of_mmax = plan.m_max_io * (plan.m_max_io - 1) / rate
    assert t_of_mmax == pytest.approx(plan.t_io, rel=0.01)


# --- strategies -----------------------------------------------------------------------


@pytest.fixture(scope="module")
def paper_profile():
    return make_test_run_profile()


@pytest.fixture(scope="module")
def reports(paper_profile):
    return {r.name: r for r in evaluate_all(paper_profile, COST, TITAN)}


def test_table3_core_hour_ordering(reports):
    """The paper's headline: combined < in-situ < off-line."""
    combined = reports["combined/simple"].analysis_core_hours
    insitu = reports["in-situ"].analysis_core_hours
    offline = reports["off-line"].analysis_core_hours
    assert combined < insitu < offline


def test_table3_magnitudes(reports):
    """Within ~25% of the paper's 193 / 356 / 135 core hours."""
    assert reports["in-situ"].analysis_core_hours == pytest.approx(193, rel=0.25)
    assert reports["off-line"].analysis_core_hours == pytest.approx(356, rel=0.25)
    assert reports["combined/simple"].analysis_core_hours == pytest.approx(135, rel=0.25)


def test_combined_variants_equal_core_hours(reports):
    """Co-scheduling changes scheduling, not cost (Table 3: "(same)")."""
    simple = reports["combined/simple"].analysis_core_hours
    cosched = reports["combined/coscheduled"].analysis_core_hours
    assert cosched == pytest.approx(simple, rel=1e-6)
    # in-transit drops the Level 2 file I/O -> never more expensive
    assert reports["combined/intransit"].analysis_core_hours <= simple


def test_io_and_queueing_descriptors(reports):
    assert reports["in-situ"].io_level == "none"
    assert reports["off-line"].io_level == "Level 1"
    assert reports["combined/simple"].io_level == "Level 2"
    assert reports["combined/intransit"].io_level == "none"
    assert reports["combined/coscheduled"].queueing == "partial simult"
    assert reports["off-line"].queueing == "full"


def test_insitu_has_no_postprocessing(reports):
    assert reports["in-situ"].postprocessing == []
    assert reports["off-line"].postprocessing[0].nodes == 32
    assert reports["combined/simple"].postprocessing[0].nodes == 4


def test_offline_pays_writes_and_redistribution(reports):
    post = reports["off-line"].postprocessing[0]
    assert post.seconds("redistribute") == pytest.approx(435, rel=0.1)
    assert post.seconds("read") == pytest.approx(5, rel=0.15)
    assert reports["off-line"].simulation.seconds("write") == pytest.approx(5, rel=0.15)


def test_combined_insitu_analysis_cheaper_than_full(reports):
    """Find + small centers (361 s paper) < find + all centers (722 s)."""
    combined = reports["combined/simple"].simulation.seconds("analysis")
    full = reports["in-situ"].simulation.seconds("analysis")
    assert combined < 0.7 * full


def test_intransit_queue_free(reports):
    post = reports["combined/intransit"].postprocessing[0]
    assert post.queue_wait == 0.0
    assert post.seconds("read") == 0.0


def test_time_to_science_ranking(paper_profile):
    """Co-scheduled analysis overlaps the simulation: makespan beats the
    simple variant's sim-then-analyze."""
    multi = qcontinuum_like_profile(scale_down=512)
    simple = CombinedWorkflow(COST, TITAN, variant="simple")
    cosched = CombinedWorkflow(COST, TITAN, variant="coscheduled")
    r_simple = simple.evaluate(multi)
    makespan = cosched.coscheduled_makespan(multi)
    end_simple = (
        r_simple.simulation.total_seconds
        + r_simple.postprocessing[0].queue_wait
        + r_simple.postprocessing[0].total_seconds
    )
    assert makespan < end_simple


def test_moonlight_offload(paper_profile):
    """Off-line analysis on Moonlight costs more node-seconds (0.55x
    slower GPUs) than the same analysis on Titan."""
    titan = CombinedWorkflow(COST, TITAN, variant="simple").evaluate(paper_profile)
    ml = CombinedWorkflow(
        COST, TITAN, variant="simple", analysis_machine=MOONLIGHT
    ).evaluate(paper_profile)
    t_titan = titan.postprocessing[0].seconds("analysis")
    t_ml = ml.postprocessing[0].seconds("analysis")
    assert t_titan / t_ml == pytest.approx(0.55, rel=0.01)


def test_threshold_none_uses_planner(paper_profile):
    wf = CombinedWorkflow(COST, TITAN, threshold=None, n_offline_nodes=None)
    report = wf.evaluate(paper_profile)
    assert "planner suggests" in report.notes


def test_invalid_variant():
    with pytest.raises(ValueError):
        CombinedWorkflow(COST, TITAN, variant="quantum")
