"""Pipelined in-situ analysis: bit-identity, overlap, and backpressure."""

import numpy as np
import pytest

from repro import obs
from repro.insitu import AsyncInSituManager, InSituAnalysisManager, PendingAnalysis
from repro.insitu.algorithm import InSituAlgorithm
from repro.insitu.algorithms import HaloCenterAlgorithm, HaloFinderAlgorithm
from repro.obs.timeline import WorkflowTimeline
from repro.sim.hacc import HACCSimulation, SimulationConfig


CONFIG = SimulationConfig(np_per_dim=16, n_steps=4, seed=11)


def _managers():
    serial = InSituAnalysisManager()
    piped = AsyncInSituManager()
    for mgr in (serial, piped):
        mgr.register(
            HaloFinderAlgorithm(at_steps=[2, 4], min_count=20, n_ranks=2)
        )
        mgr.register(HaloCenterAlgorithm(at_steps=[2, 4], threshold=10_000))
    return serial, piped


def test_pipelined_history_bit_identical_to_serial():
    serial, piped = _managers()
    HACCSimulation(CONFIG, analysis_manager=serial).run()
    with piped:
        HACCSimulation(CONFIG, analysis_manager=piped).run()
        piped.drain()

    assert sorted(serial.history) == sorted(piped.history) == [2, 4]
    for step in (2, 4):
        a = serial.history[step].store["centers"]["catalog"].records
        b = piped.history[step].store["centers"]["catalog"].records
        assert np.array_equal(a, b)
        assert (
            serial.history[step].store["centers"]["offloaded_halo_tags"]
            == piped.history[step].store["centers"]["offloaded_halo_tags"]
        )


def test_facade_proxies_wrapped_manager():
    mgr = AsyncInSituManager()
    alg = mgr.register(HaloCenterAlgorithm(at_steps=[1], threshold=5))
    assert mgr.get(alg.name) is alg
    assert len(mgr) == 1 and list(mgr) == [alg]
    assert mgr.latest() is None


def test_not_due_steps_return_bare_context_without_scheduling():
    mgr = AsyncInSituManager()
    mgr.register(HaloCenterAlgorithm(at_steps=[99], threshold=5))
    sim = HACCSimulation(SimulationConfig(np_per_dim=8, n_steps=2), analysis_manager=mgr)
    sim.run()
    assert mgr._executor is None  # nothing was ever due: no worker thread
    assert mgr.history == {}
    mgr.close()


class _SlowCountingAlgorithm(InSituAlgorithm):
    """Records max concurrent snapshots ever held by the pipeline."""

    name = "slow_count"
    seen_steps: list = None

    def should_execute(self, step, a):
        return True

    def execute(self, sim, context):
        import time

        time.sleep(0.02)
        self.seen_steps.append(sim.step)


def test_backpressure_bounds_in_flight_and_buffers():
    mgr = AsyncInSituManager(max_in_flight=1)
    alg = _SlowCountingAlgorithm()
    alg.seen_steps = []
    mgr.manager.register(alg)
    sim = HACCSimulation(SimulationConfig(np_per_dim=8, n_steps=5), analysis_manager=mgr)
    sim.run()
    with mgr:
        mgr.drain()
    assert alg.seen_steps == [1, 2, 3, 4, 5]  # step order preserved
    assert len(mgr._pending) == 0
    assert len(mgr._buffers) <= 2  # max_in_flight + 1 buffers total


def test_execute_returns_pending_handle():
    mgr = AsyncInSituManager()
    alg = _SlowCountingAlgorithm()
    alg.seen_steps = []
    mgr.manager.register(alg)
    sim = HACCSimulation(SimulationConfig(np_per_dim=8, n_steps=1), analysis_manager=mgr)
    record = sim.advance_step()
    pending = None
    with mgr:
        handles = list(mgr._pending)
        pending = handles[0][0] if handles else None
        assert isinstance(pending, PendingAnalysis)
        ctx = pending.result(timeout=30.0)
        assert ctx.step == 1
        mgr.drain()
    assert record.step == 1


class _ExplodingAlgorithm(InSituAlgorithm):
    name = "exploder"

    def should_execute(self, step, a):
        return True

    def execute(self, sim, context):
        raise RuntimeError("analysis exploded")


def test_drain_propagates_analysis_failure():
    mgr = AsyncInSituManager()
    mgr.manager.register(_ExplodingAlgorithm())
    sim = HACCSimulation(SimulationConfig(np_per_dim=8, n_steps=1), analysis_manager=mgr)
    sim.run()
    with pytest.raises(RuntimeError, match="analysis exploded"):
        mgr.drain()
    mgr.close()


def test_invalid_max_in_flight():
    with pytest.raises(ValueError):
        AsyncInSituManager(max_in_flight=0)


def test_overlap_fraction_positive_and_lanes_split():
    _, piped = _managers()
    with obs.telemetry() as rec:
        with piped:
            HACCSimulation(CONFIG, analysis_manager=piped).run()
            piped.drain()
        timeline = WorkflowTimeline(spans=rec.tracer.snapshot())
    assert timeline.overlap_fraction() > 0.0
    assert timeline.solver_overlap_fraction() > 0.0  # runs *during* sim.force
    lanes = timeline.lanes()
    assert any(lane.startswith("insitu-pipeline") for lane in lanes)
