"""repro.obs.metrics: counters, gauges, histogram bucketing, exposition."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs import Histogram, MetricsRegistry


def test_counter_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("jobs_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_is_shared_by_name():
    reg = MetricsRegistry()
    reg.counter("x").inc(2)
    reg.counter("x").inc(3)
    assert reg.counter("x").value == 5
    assert len(reg) == 1


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_gauge_watermarks():
    reg = MetricsRegistry()
    g = reg.gauge("backlog")
    g.set(3)
    g.set(10)
    g.set(1)
    g.dec()
    assert g.value == 0
    assert g.max == 10
    assert g.min == 0


def test_histogram_bucketing_is_cumulative_inclusive():
    h = Histogram("lat", buckets=[0.01, 0.1, 1.0])
    for v in (0.005, 0.01, 0.05, 0.5, 2.0):
        h.observe(v)
    cum = h.bucket_counts()
    assert cum[0.01] == 2  # 0.005 and the boundary value 0.01 (le semantics)
    assert cum[0.1] == 3
    assert cum[1.0] == 4
    assert cum[math.inf] == 5  # the 2.0 tail lands in +Inf
    assert h.count == 5
    assert h.sum == pytest.approx(2.565)
    assert h.mean == pytest.approx(2.565 / 5)


def test_histogram_quantile_upper_bound():
    h = Histogram("lat", buckets=[1, 2, 4, 8])
    for v in [*([0.5] * 50), *([3.0] * 49), 100.0]:
        h.observe(v)
    assert h.quantile(0.5) == 1
    assert h.quantile(0.99) == 4
    assert h.quantile(1.0) == math.inf


def test_histogram_concurrent_observe():
    h = Histogram("lat", buckets=[0.5])
    n, threads = 5000, 4

    def worker():
        for i in range(n):
            h.observe(i % 2)  # alternate 0 (<=0.5) and 1 (+Inf)

    ts = [threading.Thread(target=worker) for _ in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert h.count == n * threads
    cum = h.bucket_counts()
    assert cum[0.5] == n * threads // 2


def test_text_exposition_format():
    reg = MetricsRegistry()
    reg.counter("io_write_bytes_total", help="payload bytes written").inc(1024)
    reg.gauge("listener_backlog").set(3)
    reg.histogram("submit_seconds", buckets=[0.1, 1.0]).observe(0.05)
    text = reg.render_text()
    assert "# HELP io_write_bytes_total payload bytes written" in text
    assert "# TYPE io_write_bytes_total counter" in text
    assert "io_write_bytes_total 1024" in text
    assert "listener_backlog 3" in text
    assert 'submit_seconds_bucket{le="0.1"} 1' in text
    assert 'submit_seconds_bucket{le="+Inf"} 1' in text
    assert "submit_seconds_count 1" in text


def test_as_dict_flattens_histograms():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    h = reg.histogram("h", buckets=[1.0])
    h.observe(0.5)
    h.observe(1.5)
    d = reg.as_dict()
    assert d["c"] == 2
    assert d["h_count"] == 2
    assert d["h_sum"] == pytest.approx(2.0)
    assert d["h_mean"] == pytest.approx(1.0)


def test_sample_memory_sets_the_peak_rss_gauge():
    from repro import obs
    from repro.obs import PEAK_RSS_GAUGE, sample_memory

    reg = MetricsRegistry()
    peak = sample_memory(reg)
    assert peak > 0  # a running interpreter has a nonzero high-water mark
    gauge = reg.gauge(PEAK_RSS_GAUGE)
    assert gauge.value == peak
    # ru_maxrss is a kernel high-water mark: monotone within one process
    assert sample_memory(reg) >= peak
    assert PEAK_RSS_GAUGE == "process_peak_rss_bytes"
    # without a registry it goes through the recorder facade; with the
    # default NullRecorder that must be a safe no-op
    assert sample_memory() >= peak
