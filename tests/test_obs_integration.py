"""End-to-end telemetry: one co-scheduled run, one correlated timeline.

The acceptance property of the observability layer: a single
``run_combined_workflow(coschedule=True)`` produces a timeline spanning
simulation steps, in-situ algorithms, listener polls/submits and
off-line jobs; the Chrome trace validates as JSON; and with telemetry
disabled nothing is recorded (and nothing breaks).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.core import run_combined_workflow
from repro.core.driver import run_intransit_workflow
from repro.io.genericio import write_genericio
from repro.sim import SimulationConfig

#: Halo tag guaranteed not to collide with any real mini-sim halo
#: (real tags are particle tags < np_per_dim**3).
FAKE_HALO_TAG = 987_654_321


def seed_spool_file(spool, n_particles: int = 1200) -> str:
    """Write a synthetic Level 2 file (one big fake halo) into ``spool``.

    The paper's catch-up scenario: a file from an earlier job segment is
    already sitting in the spool when the listener starts, so its
    analysis job runs while the simulation is still stepping.
    """
    rng = np.random.default_rng(7)
    pos = rng.normal(10.0, 0.5, (n_particles, 3)).astype(np.float32)
    path = str(spool / "l2_step0000.gio")
    write_genericio(
        path,
        [
            {
                "pos": pos,
                "tag": (np.arange(n_particles) + 10**6).astype(np.uint64),
                "halo_tag": np.full(n_particles, FAKE_HALO_TAG, dtype=np.int64),
            }
        ],
    )
    return path


@pytest.fixture(scope="module")
def small_config():
    return SimulationConfig(np_per_dim=20, box=36.0, z_initial=30.0, n_steps=16)


@pytest.fixture(scope="module")
def traced_run(small_config, tmp_path_factory):
    """One co-scheduled run under telemetry, with a pre-seeded spool file
    so a listener submit provably overlaps the stepping simulation."""
    spool = tmp_path_factory.mktemp("spool_traced")
    seed_spool_file(spool)
    with obs.telemetry(run_id="cosched-test") as rec:
        result = run_combined_workflow(
            small_config,
            spool,
            threshold=100,  # the largest mini-sim halo (~150) is off-loaded
            min_count=40,
            n_ranks=4,
            coschedule=True,
            listener_poll=0.02,
        )
    assert result.offloaded_halo_tags  # the run's own Level 2 is non-empty
    return result, rec


def test_telemetry_attached_to_result(traced_run):
    result, _ = traced_run
    rt = result.telemetry
    assert rt is not None
    assert rt.run_id == "cosched-test"
    assert rt.wall_seconds > 0


def test_timeline_interleaves_sim_and_listener(traced_run, small_config):
    result, _ = traced_run
    rt = result.telemetry
    steps = rt.spans_named("sim.step")
    submits = rt.spans_named("listener.submit")
    polls = rt.spans_named("listener.poll")
    offline = rt.spans_named("offline.center_job")
    assert len(steps) == small_config.n_steps
    assert len(submits) >= 2  # the seeded file + the run's own Level 2
    assert offline and polls

    sim_t0 = min(s.t0 for s in steps)
    sim_t1 = max(s.t1 for s in steps)
    # listener polls tick while the simulation steps (co-scheduling)
    assert any(p.t0 <= sim_t1 and p.t1 >= sim_t0 for p in polls)
    # the catch-up submit overlaps the stepping simulation
    assert any(s.t0 <= sim_t1 and s.t1 >= sim_t0 for s in submits)
    # every span belongs to the same correlated run
    assert {s.run for s in rt.timeline()} == {"cosched-test"}
    # at least one submit ran on the listener thread, not the sim thread
    # (the final catch-up poll in stop() legitimately runs on the caller)
    sim_threads = {s.thread for s in steps}
    assert any(s.thread not in sim_threads for s in submits)


def test_insitu_spans_nested_in_sim_steps(traced_run):
    result, _ = traced_run
    rt = result.telemetry
    by_id = {s.span_id: s for s in rt.spans}
    insitu = rt.spans_named("insitu.")
    assert {s.name for s in insitu} >= {
        "insitu.execute",
        "insitu.halo_finder",
        "insitu.halo_centers",
        "insitu.level2_writer",
    }
    # insitu.execute sits under a sim.step span; algorithms under it
    for s in insitu:
        if s.name == "insitu.execute":
            assert by_id[s.parent_id].name == "sim.step"
        else:
            assert by_id[s.parent_id].name == "insitu.execute"


def test_offline_jobs_nested_under_listener_submits(traced_run):
    result, _ = traced_run
    rt = result.telemetry
    by_id = {s.span_id: s for s in rt.spans}
    jobs = rt.spans_named("offline.center_job")
    assert jobs
    for job in jobs:
        # the submit retry layer may interpose retry.attempt spans;
        # walk up until the enclosing listener.submit
        names = []
        s = job
        while s.parent_id is not None:
            s = by_id[s.parent_id]
            names.append(s.name)
            if s.name == "listener.submit":
                break
        assert "listener.submit" in names
        assert all(n in ("retry.attempt", "listener.submit") for n in names)


def test_metrics_cover_io_listener_and_sim(traced_run, small_config):
    _, rec = traced_run
    m = rec.metrics
    assert m.counter("sim_steps_total").value == small_config.n_steps
    assert m.counter("io_write_bytes_total").value > 0
    assert m.counter("io_read_bytes_total").value > 0
    assert m.counter("listener_jobs_submitted_total").value >= 2
    assert m.counter("listener_jobs_failed_total").value == 0
    assert m.histogram("listener_submit_seconds").count >= 2
    assert m.gauge("listener_backlog").max >= 1
    text = m.render_text()
    assert "io_write_bytes_total" in text and "listener_backlog" in text


def test_chrome_trace_validates_as_json(traced_run, tmp_path):
    result, _ = traced_run
    path = str(tmp_path / "trace.json")
    result.telemetry.write_chrome_trace(path)
    with open(path) as fh:
        trace = json.load(fh)  # must be plain JSON (chrome://tracing)
    names = {e["name"] for e in trace["traceEvents"] if e.get("ph") == "X"}
    assert {"sim.step", "insitu.halo_finder", "listener.submit"} <= names


def test_events_cover_workflow_lifecycle(traced_run):
    _, rec = traced_run
    names = [e.name for e in rec.events.snapshot()]
    assert "workflow.start" in names
    assert "listener.started" in names and "listener.stopped" in names
    assert "workflow.done" in names
    assert not [e for e in rec.events.snapshot() if e.level == "error"]


def test_phase_table_covers_the_run(traced_run):
    result, _ = traced_run
    table = result.telemetry.phase_table()
    for phase in ("Simulation", "In-situ analysis", "Listener", "Off-line analysis"):
        assert phase in table


def test_jsonl_sink_replays_the_run(small_config, tmp_path):
    jsonl = str(tmp_path / "run.jsonl")
    spool = tmp_path / "spool"
    with obs.telemetry(run_id="jsonl-test", jsonl_path=jsonl):
        run_combined_workflow(
            small_config, spool, threshold=100, min_count=40, n_ranks=4
        )
    events, spans = obs.read_jsonl(jsonl)
    assert any(e.name == "workflow.done" for e in events)
    span_names = {s["name"] for s in spans}
    assert {"sim.step", "insitu.halo_finder", "offline.center_job"} <= span_names
    assert all(s["run"] == "jsonl-test" for s in spans)


def test_disabled_telemetry_records_nothing(small_config, tmp_path):
    result = run_combined_workflow(
        small_config, tmp_path / "spool_off", threshold=250, min_count=40, n_ranks=4
    )
    assert result.telemetry is None
    assert not obs.get_recorder().enabled


def test_intransit_run_carries_telemetry(small_config):
    with obs.telemetry(run_id="intransit-test"):
        result = run_intransit_workflow(small_config, threshold=100, n_ranks=4)
    rt = result.telemetry
    assert rt is not None
    assert rt.spans_named("staging.put")
    assert rt.spans_named("staging.wait")
    assert rt.spans_named("offline.center_job")
    tags = result.catalog["halo_tag"]
    assert len(tags) == len(np.unique(tags))
