"""Pull worker: lifecycle, fault absorption, dead-letter, crash/resume."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.faults import FaultPlan, FaultSpec, RetryPolicy, fault_plan
from repro.service.states import JobState
from repro.service.store import CampaignStore, JobSpec
from repro.service.worker import (
    PAYLOADS,
    ServiceWorker,
    payload_digest,
    register_payload,
    run_payload,
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)

HAPPY_PATH = [
    "CREATED",
    "STAGED_IN",
    "PREPROCESSED",
    "RUNNING",
    "RUN_DONE",
    "POSTPROCESSED",
    "JOB_FINISHED",
]


def make_store(path, specs):
    store = CampaignStore.create(path, seed=7)
    store.submit_campaign("demo", specs, seed=3)
    return store


def test_full_lifecycle_order(tmp_path):
    store = make_store(tmp_path / "s", [JobSpec(name="a", kind="noop")])
    worker = ServiceWorker(store, retry=FAST_RETRY)
    assert worker.drain() == 1
    job = store.jobs["demo.00000"]
    assert [s for s, _ in job.history] == HAPPY_PATH
    assert job.result == {"ok": True, "echo": {}}
    product = json.loads(
        (tmp_path / "s" / "products" / "demo.00000.json").read_text()
    )
    assert product == {"job": "demo.00000", "result": {"ok": True, "echo": {}}}
    store.close()


def test_synthetic_centers_payload_is_deterministic():
    a = run_payload("synthetic_centers", {"seed": 11})
    b = run_payload("synthetic_centers", {"seed": 11})
    c = run_payload("synthetic_centers", {"seed": 12})
    assert a == b
    assert a["digest"] == payload_digest({k: v for k, v in a.items() if k != "digest"})
    assert a != c
    assert a["halos"] >= 1


def test_unknown_payload_kind():
    with pytest.raises(KeyError, match="registered"):
        run_payload("no-such-kind", {})


def test_register_payload_decorator():
    @register_payload("test_twice_kind")
    def double(params):
        return {"doubled": params["x"] * 2}

    try:
        assert run_payload("test_twice_kind", {"x": 21}) == {"doubled": 42}
    finally:
        del PAYLOADS["test_twice_kind"]


def test_stage_in_rejects_missing_input(tmp_path):
    store = make_store(
        tmp_path / "s",
        [JobSpec(name="a", kind="noop", params={"path": "/no/such/file"},
                 max_requeues=0)],
    )
    worker = ServiceWorker(store, retry=FAST_RETRY)
    assert worker.drain() == 0
    job = store.jobs["demo.00000"]
    assert job.state is JobState.FAILED
    assert job.dead_lettered
    assert "does not exist" in (job.error or "")
    store.close()


def test_transient_fault_absorbed_by_retry(tmp_path):
    """fail_first=1 at service.job: the retry layer absorbs it, the
    lifecycle shows no FAILED visit at all."""
    store = make_store(tmp_path / "s", [JobSpec(name="a", kind="noop")])
    plan = FaultPlan(seed=5, sites={"service.job": FaultSpec(fail_first=1)})
    with fault_plan(plan):
        worker = ServiceWorker(store, retry=FAST_RETRY)
        assert worker.drain() == 1
    job = store.jobs["demo.00000"]
    assert job.state is JobState.JOB_FINISHED
    assert job.attempts == 0
    assert [s for s, _ in job.history] == HAPPY_PATH
    assert plan.snapshot().get("service.job") == 1
    store.close()


def test_persistent_fault_requeues_then_dead_letters(tmp_path):
    store = make_store(
        tmp_path / "s", [JobSpec(name="a", kind="noop", max_requeues=1)]
    )
    plan = FaultPlan(seed=5, sites={"service.job": FaultSpec(probability=1.0)})
    with fault_plan(plan):
        worker = ServiceWorker(store, retry=FAST_RETRY)
        assert worker.drain() == 0
    job = store.jobs["demo.00000"]
    assert job.state is JobState.FAILED
    assert job.dead_lettered
    assert job.attempts == 2  # first visit + one requeue
    states = [s for s, _ in job.history]
    assert states.count("FAILED") == 2
    assert states.count("CREATED") == 2  # submit + requeue
    assert store.dead_letter.total == 1
    store.close()


def test_failing_payload_does_not_stop_campaign(tmp_path):
    store = make_store(
        tmp_path / "s",
        [
            JobSpec(name="bad", kind="fail", max_requeues=0),
            JobSpec(name="good", kind="noop"),
        ],
    )
    worker = ServiceWorker(store, retry=FAST_RETRY)
    assert worker.drain() == 1
    assert store.jobs["demo.00000"].dead_lettered
    assert store.jobs["demo.00001"].finished
    assert store.done
    store.close()


def test_drain_respects_job_ids_and_max_jobs(tmp_path):
    store = make_store(tmp_path / "s", [JobSpec(name=f"j{i}") for i in range(4)])
    worker = ServiceWorker(store, retry=FAST_RETRY)
    assert worker.drain(job_ids=["demo.00001", "demo.00003"]) == 2
    assert store.jobs["demo.00000"].pending
    assert store.jobs["demo.00001"].finished
    assert worker.drain(max_jobs=1) == 1
    assert store.jobs["demo.00000"].finished
    assert store.jobs["demo.00002"].pending
    store.close()


def _run_cli(args, env):
    return subprocess.run(
        [sys.executable, "-m", "repro.service", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


def test_hard_kill_then_resume_is_bit_identical(tmp_path):
    """The acceptance drill: a worker hard-killed mid-lifecycle
    (os._exit, no cleanup) leaves the store resumable, and the resumed
    campaign's fingerprint equals an uninterrupted run's."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)  # the drill is about crashes, not faults

    killed = tmp_path / "killed"
    clean = tmp_path / "clean"
    for root in (killed, clean):
        store = CampaignStore.create(root, seed=7)
        store.submit_campaign(
            "demo",
            [
                JobSpec(name=f"c{i}", kind="synthetic_centers",
                        params={"seed": 100 + i})
                for i in range(4)
            ],
            seed=3,
        )
        store.submit_campaign(
            "extra", [JobSpec(name="n0", kind="noop", params={"x": 1})]
        )
        store.close()

    # kill mid-lifecycle: 8 transitions = one finished job (6 edges) + two
    # edges into the second job (STAGED_IN, PREPROCESSED)
    proc = _run_cli(["work", str(killed), "--crash-after", "8"], env)
    assert proc.returncode == ServiceWorker.CRASH_EXIT_CODE, proc.stderr

    interrupted = CampaignStore.open(killed)
    stranded = [j.id for j in interrupted.jobs.values()
                if j.state not in (JobState.CREATED, JobState.JOB_FINISHED)]
    assert stranded  # the kill really landed mid-lifecycle
    interrupted.close()

    proc = _run_cli(["resume", str(killed)], env)
    assert proc.returncode == 0, proc.stderr

    proc = _run_cli(["work", str(clean)], env)
    assert proc.returncode == 0, proc.stderr

    a = CampaignStore.open(killed)
    b = CampaignStore.open(clean)
    assert a.done and b.done
    assert a.fingerprint() == b.fingerprint()
    # products are bit-identical too
    for jid in sorted(a.jobs):
        pa = os.path.join(a.products_dir, f"{jid}.json")
        pb = os.path.join(b.products_dir, f"{jid}.json")
        with open(pa, "rb") as fa, open(pb, "rb") as fb:
            assert fa.read() == fb.read(), jid
    a.close()
    b.close()


@pytest.mark.parametrize(
    "crash_after",
    [
        4,  # dies right after the first FAILED append, before the requeue
        15,  # dies after the second FAILED append, before the dead-letter
    ],
)
def test_hard_kill_on_failed_edge_resumes_bit_identical(tmp_path, crash_after):
    """The crash drill landing exactly on a FAILED transition: the job
    is stranded FAILED but neither requeued nor dead-lettered, and
    resume must finish the resolution the dead worker owed."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)

    killed = tmp_path / "killed"
    clean = tmp_path / "clean"
    specs = [
        JobSpec(name="bad", kind="fail", max_requeues=1),
        JobSpec(name="good", kind="noop", params={"x": 1}),
    ]
    for root in (killed, clean):
        store = CampaignStore.create(root, seed=7)
        store.submit_campaign("demo", specs, seed=3)
        store.close()

    # transition count: bad STAGED_IN(1)..FAILED(4) CREATED(5, requeue);
    # the requeued bad job re-enters pending on the *next* drain pass,
    # so good runs next, STAGED_IN(6)..JOB_FINISHED(11); then bad again,
    # STAGED_IN(12)..FAILED(15) + dead-letter (not a transition)
    proc = _run_cli(["work", str(killed), "--crash-after", str(crash_after)], env)
    assert proc.returncode == ServiceWorker.CRASH_EXIT_CODE, proc.stderr

    stranded = CampaignStore.open(killed)
    bad = stranded.jobs["demo.00000"]
    assert bad.state is JobState.FAILED and not bad.dead_lettered
    assert not stranded.done  # exactly the state recover() must resolve
    stranded.close()

    proc = _run_cli(["resume", str(killed)], env)
    assert proc.returncode == 1, proc.stderr  # dead letters present
    proc = _run_cli(["work", str(clean)], env)
    assert proc.returncode == 1, proc.stderr

    a = CampaignStore.open(killed)
    b = CampaignStore.open(clean)
    assert a.done and b.done
    assert a.jobs["demo.00000"].dead_lettered
    assert a.fingerprint() == b.fingerprint()
    a.close()
    b.close()


def test_in_process_crash_recover_resume(tmp_path):
    """Same drill without a subprocess: simulate the stranded state via
    direct transitions, then recover + drain."""
    store = make_store(tmp_path / "s", [JobSpec(name=f"j{i}") for i in range(3)])
    store.transition("demo.00000", JobState.STAGED_IN)
    store.transition("demo.00000", JobState.PREPROCESSED)
    store.transition("demo.00000", JobState.RUNNING)
    store.close()

    reopened = CampaignStore.open(tmp_path / "s")
    assert reopened.recover() == ["demo.00000"]
    worker = ServiceWorker(reopened, retry=FAST_RETRY)
    assert worker.drain() == 3
    assert reopened.done
    reopened.close()
