"""CosmoTools framework: algorithm ABC, manager dispatch, config parsing."""

import pytest

from repro.insitu import (
    AnalysisContext,
    CosmoToolsConfig,
    InputDeck,
    InSituAlgorithm,
    InSituAnalysisManager,
    parse_value,
)


class _Recorder(InSituAlgorithm):
    name = "recorder"
    at_steps: list | None = None

    def __init__(self, **kw):
        self.calls = []
        super().__init__(**kw)

    def should_execute(self, step, a):
        if self.at_steps is None:
            return True
        steps = self.at_steps if isinstance(self.at_steps, list) else [self.at_steps]
        return step in steps

    def execute(self, sim, context):
        self.calls.append(context.step)
        context.store[self.name] = f"ran@{context.step}"


class _Consumer(InSituAlgorithm):
    name = "consumer"

    def should_execute(self, step, a):
        return True

    def execute(self, sim, context):
        context.store["consumed"] = context.require("recorder")


# --- InSituAlgorithm ----------------------------------------------------------


def test_set_parameters_records_and_assigns():
    alg = _Recorder(at_steps=[3], custom=42)
    assert alg.parameters == {"at_steps": [3], "custom": 42}
    assert alg.at_steps == [3]


def test_abstract_base_cannot_instantiate():
    with pytest.raises(TypeError):
        InSituAlgorithm()


# --- AnalysisContext ----------------------------------------------------------


def test_context_require_present_and_missing():
    ctx = AnalysisContext(step=1, a=0.5)
    ctx.store["x"] = 7
    assert ctx.require("x") == 7
    with pytest.raises(KeyError, match="registered before"):
        ctx.require("missing")


# --- InSituAnalysisManager ------------------------------------------------------


def test_manager_registration_and_lookup():
    mgr = InSituAnalysisManager()
    alg = mgr.register(_Recorder())
    assert len(mgr) == 1
    assert mgr.get("recorder") is alg
    with pytest.raises(KeyError):
        mgr.get("nope")


def test_manager_rejects_duplicates_and_nonalgorithms():
    mgr = InSituAnalysisManager()
    mgr.register(_Recorder())
    with pytest.raises(ValueError):
        mgr.register(_Recorder())
    with pytest.raises(TypeError):
        mgr.register(object())


def test_manager_schedule_filtering():
    mgr = InSituAnalysisManager()
    alg = mgr.register(_Recorder(at_steps=[2, 4]))
    for step in range(1, 6):
        mgr.execute(None, step, step / 5.0)
    assert alg.calls == [2, 4]
    assert sorted(mgr.history) == [2, 4]


def test_manager_execution_order_enables_pipelines():
    mgr = InSituAnalysisManager()
    mgr.register(_Recorder())
    mgr.register(_Consumer())
    ctx = mgr.execute(None, 1, 0.1)
    assert ctx.store["consumed"] == "ran@1"


def test_manager_records_wall_times():
    mgr = InSituAnalysisManager()
    mgr.register(_Recorder())
    ctx = mgr.execute(None, 1, 0.1)
    assert "recorder" in ctx.timings["wall_seconds"]


def test_manager_latest():
    mgr = InSituAnalysisManager()
    assert mgr.latest() is None
    mgr.register(_Recorder())
    mgr.execute(None, 3, 0.3)
    mgr.execute(None, 7, 0.7)
    assert mgr.latest().step == 7


def test_empty_step_not_archived():
    mgr = InSituAnalysisManager()
    mgr.register(_Recorder(at_steps=[5]))
    mgr.execute(None, 1, 0.1)
    assert mgr.history == {}


# --- config parsing -------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ("yes", True),
        ("no", False),
        ("42", 42),
        ("3.5", 3.5),
        ("hello", "hello"),
        ("1, 2, 3", [1, 2, 3]),
        ("a, 2", ["a", 2]),
    ],
)
def test_parse_value(text, expected):
    assert parse_value(text) == expected


def test_input_deck_roundtrip():
    deck = InputDeck.from_text(
        """
        # the main run
        np_per_dim = 32
        box = 64.0
        n_steps = 30
        cosmotools = yes
        cosmotools_config = ./ct.cfg
        """
    )
    assert deck.get("np_per_dim") == 32
    assert deck.cosmotools_enabled
    assert deck.cosmotools_config_path == "./ct.cfg"
    cfg = deck.simulation_config()
    assert cfg.np_per_dim == 32 and cfg.box == 64.0 and cfg.n_steps == 30


def test_input_deck_rejects_sections():
    with pytest.raises(ValueError):
        InputDeck.from_text("[section]\nx = 1")


def test_cosmotools_config_sections():
    cfg = CosmoToolsConfig.from_text(
        """
        [power_spectrum]
        enabled = yes
        at_steps = 10, 20
        [halo_finder]
        enabled = no
        [so_mass]
        delta = 200.0
        """
    )
    assert set(cfg.sections) == {"power_spectrum", "halo_finder", "so_mass"}
    assert cfg.enabled_sections() == ["power_spectrum", "so_mass"]
    assert cfg.section("power_spectrum")["at_steps"] == [10, 20]
    with pytest.raises(KeyError):
        cfg.section("nope")


def test_cosmotools_config_errors():
    with pytest.raises(ValueError, match="outside"):
        CosmoToolsConfig.from_text("x = 1")
    with pytest.raises(ValueError, match="duplicate"):
        CosmoToolsConfig.from_text("[a]\n[a]")
    with pytest.raises(ValueError, match="malformed"):
        CosmoToolsConfig.from_text("[a]\nnot a kv line")


def test_build_manager_from_config():
    cfg = CosmoToolsConfig.from_text(
        """
        [halo_finder]
        at_steps = 9
        min_count = 20
        [halo_centers]
        at_steps = 9
        threshold = 100
        """
    )
    mgr = cfg.build_manager()
    assert [a.name for a in mgr] == ["halo_finder", "halo_centers"]
    assert mgr.get("halo_finder").min_count == 20
    assert mgr.get("halo_centers").threshold == 100


def test_build_manager_unknown_tool():
    cfg = CosmoToolsConfig.from_text("[frobnicator]\nx = 1")
    with pytest.raises(KeyError, match="unknown analysis tool"):
        cfg.build_manager()


def test_files_roundtrip(tmp_path):
    deck_path = tmp_path / "indat.params"
    deck_path.write_text("np_per_dim = 8\ncosmotools = yes\n")
    assert InputDeck.from_file(deck_path).get("np_per_dim") == 8
    ct_path = tmp_path / "ct.cfg"
    ct_path.write_text("[power_spectrum]\nng = 16\n")
    assert CosmoToolsConfig.from_file(ct_path).section("power_spectrum")["ng"] == 16
