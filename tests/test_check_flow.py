"""Unit and property tests for the CFG/dataflow engine (repro.check.flow).

The concurrency rules (RPR011-RPR015) only hold if the underlying CFG
is structurally sound, so the properties here are deliberately blunt:
every statement owns a block, edges are symmetric, dominators form a
rooted partial order, and path enumeration is acyclic.
"""

from __future__ import annotations

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.flow import (
    build_cfg,
    dominators,
    enumerate_paths,
    function_nodes,
    run_forward,
    stmt_exprs,
)
from repro.check.flow import ForwardAnalysis


def cfg_of(src: str):
    tree = ast.parse(textwrap.dedent(src))
    func = next(function_nodes(tree))
    return build_cfg(func), func


def labels(cfg) -> dict[int, str]:
    return {
        b.index: (b.label or type(b.stmt).__name__) for b in cfg.blocks
    }


# -- structural unit tests -----------------------------------------------------


def test_if_diamond_joins_at_successor():
    cfg, func = cfg_of(
        """
        def f(c):
            if c:
                a = 1
            else:
                a = 2
            return a
        """
    )
    if_head = cfg.block_of[func.body[0]]
    ret = cfg.block_of[func.body[1]]
    then_blk = cfg.block_of[func.body[0].body[0]]
    else_blk = cfg.block_of[func.body[0].orelse[0]]
    assert set(cfg.blocks[if_head].succs) == {then_blk, else_blk}
    assert ret in cfg.blocks[then_blk].succs
    assert ret in cfg.blocks[else_blk].succs


def test_while_has_back_edge_and_exit_edge():
    cfg, func = cfg_of(
        """
        def f():
            while True:
                x = 1
            y = 2
        """
    )
    head = cfg.block_of[func.body[0]]
    body = cfg.block_of[func.body[0].body[0]]
    after = cfg.block_of[func.body[1]]
    assert head in cfg.blocks[body].succs  # back edge
    # conservative exit edge is kept even for `while True`
    assert after in cfg.blocks[head].succs


def test_break_exits_loop_directly():
    cfg, func = cfg_of(
        """
        def f(q):
            while True:
                item = q.get()
                if item is None:
                    break
            return item
        """
    )
    brk = cfg.block_of[func.body[0].body[1].body[0]]
    ret = cfg.block_of[func.body[1]]
    assert cfg.blocks[brk].succs == [ret]


def test_return_routes_through_finally():
    cfg, func = cfg_of(
        """
        def f(shm):
            try:
                return shm.read()
            finally:
                shm.close()
        """
    )
    ret = cfg.block_of[func.body[0].body[0]]
    fin = cfg.block_of[func.body[0].finalbody[0]]
    for path in enumerate_paths(cfg, cfg.entry):
        if ret in path:
            assert fin in path, "return path must execute the finally body"


def test_exception_edges_only_inside_try():
    cfg, func = cfg_of(
        """
        def f():
            a = risky()
            try:
                b = risky()
            except Exception:
                b = None
            return b
        """
    )
    outside = cfg.block_of[func.body[0]]
    inside = cfg.block_of[func.body[1].body[0]]
    landing = [b.index for b in cfg.blocks if b.label == "landing"]
    assert len(landing) == 1
    assert landing[0] in cfg.blocks[inside].succs
    assert landing[0] not in cfg.blocks[outside].succs


def test_all_paths_return_still_wires_exit():
    cfg, _ = cfg_of(
        """
        def f(c):
            if c:
                return 1
            return 2
        """
    )
    assert cfg.exit in cfg.reachable()


def test_stmt_exprs_heads_only():
    tree = ast.parse("if cond(x):\n    nested(y)\n")
    names = {
        n.id for n in stmt_exprs(tree.body[0]) if isinstance(n, ast.Name)
    }
    assert "cond" in names and "x" in names
    assert "nested" not in names  # body lives in its own block


def test_enumerate_paths_acyclic_and_capped():
    cfg, _ = cfg_of(
        """
        def f(c):
            while c:
                if c:
                    x = 1
                else:
                    x = 2
            return x
        """
    )
    paths = enumerate_paths(cfg, cfg.entry, limit=4)
    assert 0 < len(paths) <= 4
    for path in paths:
        assert len(path) == len(set(path))  # no block repeats


# -- forward dataflow ----------------------------------------------------------


class _MustAssigned(ForwardAnalysis):
    """Must-analysis: names assigned on *every* path to a block."""

    def initial(self):
        return frozenset()

    def bottom(self):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def transfer(self, block, fact):
        if fact is None:
            return None
        stmt = block.stmt
        if isinstance(stmt, ast.Assign):
            names = {
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            }
            return frozenset(fact | names)
        return fact


def test_run_forward_must_join_intersects_branches():
    cfg, _ = cfg_of(
        """
        def f(c):
            a = 1
            if c:
                b = 2
            else:
                d = 3
            e = 4
        """
    )
    facts = run_forward(cfg, _MustAssigned())
    # at exit: `a` assigned on all paths, `b`/`d` on one branch each
    at_exit = facts[cfg.exit]
    assert "a" in at_exit and "e" in at_exit
    assert "b" not in at_exit and "d" not in at_exit


# -- property tests ------------------------------------------------------------


_stmt = st.deferred(
    lambda: st.one_of(
        st.just(("pass",)),
        st.just(("assign",)),
        st.just(("return",)),
        st.tuples(st.just("if"), _body, _body),
        st.tuples(st.just("while"), _body),
        st.tuples(st.just("for"), _body),
        st.tuples(st.just("try"), _body, _body),
    )
)
_body = st.lists(_stmt, min_size=1, max_size=3)


def _render(body, lines, indent):
    pad = "    " * indent
    for s in body:
        kind = s[0]
        if kind == "pass":
            lines.append(pad + "pass")
        elif kind == "assign":
            lines.append(pad + "x = 1")
        elif kind == "return":
            lines.append(pad + "return x")
        elif kind == "if":
            lines.append(pad + "if c:")
            _render(s[1], lines, indent + 1)
            lines.append(pad + "else:")
            _render(s[2], lines, indent + 1)
        elif kind == "while":
            lines.append(pad + "while c:")
            _render(s[1], lines, indent + 1)
        elif kind == "for":
            lines.append(pad + "for i in xs:")
            _render(s[1], lines, indent + 1)
        elif kind == "try":
            lines.append(pad + "try:")
            _render(s[1], lines, indent + 1)
            lines.append(pad + "finally:")
            _render(s[2], lines, indent + 1)


def _program(body) -> ast.FunctionDef:
    lines = ["def f(c, x, xs):"]
    _render(body, lines, 1)
    tree = ast.parse("\n".join(lines) + "\n")
    return tree.body[0]


def _own_statements(func):
    out = []
    stack = list(func.body)
    while stack:
        s = stack.pop()
        out.append(s)
        for fld in ("body", "orelse", "finalbody"):
            stack.extend(getattr(s, fld, []))
    return out


@settings(max_examples=60, deadline=None)
@given(_body)
def test_property_every_statement_owns_a_block(body):
    func = _program(body)
    cfg = build_cfg(func)
    for stmt in _own_statements(func):
        assert stmt in cfg.block_of


@settings(max_examples=60, deadline=None)
@given(_body)
def test_property_edges_are_symmetric(body):
    cfg = build_cfg(_program(body))
    for b in cfg.blocks:
        for s in b.succs:
            assert b.index in cfg.blocks[s].preds
        for p in b.preds:
            assert b.index in cfg.blocks[p].succs


@settings(max_examples=60, deadline=None)
@given(_body)
def test_property_dominators_rooted_antisymmetric(body):
    cfg = build_cfg(_program(body))
    doms = dominators(cfg)
    reach = cfg.reachable()
    assert cfg.entry in reach and cfg.exit in reach
    for b, ds in doms.items():
        assert cfg.entry in ds  # rooted
        assert b in ds  # reflexive
    for a, ds in doms.items():  # antisymmetric (no dominance cycles)
        for b in ds:
            if a != b:
                assert a not in doms[b]


@settings(max_examples=60, deadline=None)
@given(_body)
def test_property_paths_end_at_exit(body):
    cfg = build_cfg(_program(body))
    for path in enumerate_paths(cfg, cfg.entry, limit=32):
        assert path[0] == cfg.entry
        assert path[-1] == cfg.exit
        assert len(path) == len(set(path))
