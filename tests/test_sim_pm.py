"""Particle-mesh kernels: CIC deposit/interpolation, Poisson, forces."""

import numpy as np
import pytest

from repro.sim.pm import (
    cic_deposit,
    cic_interpolate,
    gradient_spectral,
    pm_accelerations,
    solve_poisson,
)


def test_cic_deposit_conserves_mass():
    rng = np.random.default_rng(0)
    pos = rng.uniform(0, 16, (500, 3))
    delta = cic_deposit(pos, 16)
    # overdensity has zero mean by construction (mass conservation)
    assert abs(delta.mean()) < 1e-12


def test_cic_deposit_particle_at_cell_center():
    # particle exactly at the center of cell (2,3,4): all weight in one cell
    delta = cic_deposit(np.asarray([[2.0, 3.0, 4.0]]), 8)
    rho = (delta + 1.0)  # mean-normalized density
    assert rho[2, 3, 4] == pytest.approx(rho.max())
    assert rho[2, 3, 4] == pytest.approx(512.0)  # all mass in 1 of 512 cells


def test_cic_deposit_splits_weight_between_cells():
    # particle halfway between cell centers along x
    delta = cic_deposit(np.asarray([[2.5, 3.0, 4.0]]), 8)
    rho = delta + 1.0
    assert rho[2, 3, 4] == pytest.approx(rho[3, 3, 4])


def test_cic_deposit_periodic_wrap():
    # particle at the box edge deposits into cells on both sides
    delta = cic_deposit(np.asarray([[7.9, 0.0, 0.0]]), 8)
    rho = delta + 1.0
    assert rho[7, 0, 0] > 1.0 and rho[0, 0, 0] > 1.0


def test_cic_interpolate_inverse_of_deposit_smooth_field():
    # interpolation of a smooth (linear-free) periodic field is exact at
    # deposit points up to CIC smoothing; test constancy
    field = np.full((8, 8, 8), 3.5)
    pos = np.random.default_rng(1).uniform(0, 8, (100, 3))
    vals = cic_interpolate(field, pos)
    assert np.allclose(vals, 3.5)


def test_cic_interpolate_vector_field():
    field = np.stack([np.full((8, 8, 8), float(i)) for i in range(3)])
    vals = cic_interpolate(field, np.asarray([[4.0, 4.0, 4.0]]))
    assert vals.shape == (1, 3)
    assert np.allclose(vals[0], [0.0, 1.0, 2.0])


def test_poisson_single_mode_eigenvalue():
    """For delta = sin(2 pi x / ng), ∇²φ = delta gives φ = -delta/k²."""
    ng = 32
    x = np.arange(ng)
    delta = np.sin(2 * np.pi * x / ng)[:, None, None] * np.ones((1, ng, ng))
    phi = solve_poisson(delta, factor=1.0)
    k = 2 * np.pi / ng
    assert np.allclose(phi, -delta / k**2, atol=1e-10)


def test_poisson_factor_linear():
    rng = np.random.default_rng(2)
    delta = rng.normal(size=(8, 8, 8))
    delta -= delta.mean()
    assert np.allclose(solve_poisson(delta, 2.0), 2.0 * solve_poisson(delta, 1.0))


def test_poisson_zero_mode_removed():
    delta = np.ones((8, 8, 8))  # pure k=0
    phi = solve_poisson(delta)
    assert np.allclose(phi, 0.0)


def test_gradient_spectral_of_sine():
    ng = 32
    x = np.arange(ng)
    field = np.sin(2 * np.pi * x / ng)[:, None, None] * np.ones((1, ng, ng))
    grad = gradient_spectral(field)
    k = 2 * np.pi / ng
    expected = k * np.cos(2 * np.pi * x / ng)[:, None, None]
    assert np.allclose(grad[0], expected * np.ones((1, ng, ng)), atol=1e-10)
    assert np.allclose(grad[1], 0.0, atol=1e-12)
    assert np.allclose(grad[2], 0.0, atol=1e-12)


def test_pm_accelerations_point_toward_overdensity():
    """A single massive clump attracts a distant test particle."""
    ng = 32
    rng = np.random.default_rng(3)
    clump = rng.normal([16, 16, 16], 0.5, (200, 3))
    test_particle = np.asarray([[24.0, 16.0, 16.0]])
    pos = np.concatenate([clump, test_particle])
    acc = pm_accelerations(pos, ng, poisson_factor=1.0)
    # test particle accelerates in -x (toward the clump)
    assert acc[-1, 0] < 0
    assert abs(acc[-1, 1]) < abs(acc[-1, 0])
    assert abs(acc[-1, 2]) < abs(acc[-1, 0])


def test_pm_accelerations_sum_to_zero():
    """Momentum conservation: net force over all particles ~ 0."""
    rng = np.random.default_rng(4)
    pos = rng.uniform(0, 16, (300, 3))
    acc = pm_accelerations(pos, 16, poisson_factor=1.0)
    net = acc.mean(axis=0)
    scale = np.abs(acc).max()
    assert np.all(np.abs(net) < 0.05 * scale)
