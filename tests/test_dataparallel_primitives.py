"""Primitive-level behaviour + hypothesis property tests (both backends)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dataparallel import (
    compact,
    count_if,
    exclusive_scan,
    gather,
    inclusive_scan,
    minloc,
    partition,
    reduce_,
    reduce_by_key,
    segmented_minloc,
    sort_by_key,
    unique,
    zip_arrays,
)

BACKENDS = ["serial", "vector"]

small_floats = hnp.arrays(
    np.float64,
    st.integers(0, 40),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)
small_keys = hnp.arrays(np.int64, st.integers(1, 40), elements=st.integers(0, 9))


@pytest.mark.parametrize("backend", BACKENDS)
def test_reduce_default_sum(backend):
    assert reduce_(np.arange(5), backend=backend) == 10


@pytest.mark.parametrize("backend", BACKENDS)
def test_scans_match_numpy(backend):
    arr = np.asarray([2.0, -1.0, 4.0])
    assert np.allclose(inclusive_scan(arr, backend=backend), np.cumsum(arr))
    assert np.allclose(exclusive_scan(arr, backend=backend), [0.0, 2.0, 1.0])


@pytest.mark.parametrize("backend", BACKENDS)
def test_reduce_by_key_unsorted_input(backend):
    k, v = reduce_by_key(
        np.asarray([2, 1, 2, 1]), np.asarray([1.0, 2.0, 3.0, 4.0]), "sum", backend=backend
    )
    assert np.array_equal(k, [1, 2])
    assert np.array_equal(v, [6.0, 4.0])


@pytest.mark.parametrize("backend", BACKENDS)
def test_unique_sorted(backend):
    u = unique(np.asarray([5, 3, 5, 1, 3]), backend=backend)
    assert np.array_equal(u, [1, 3, 5])


@pytest.mark.parametrize("backend", BACKENDS)
def test_count_if_and_partition(backend):
    arr = np.arange(10)
    assert count_if(arr, lambda x: x % 2 == 0, backend=backend) == 5
    evens, odds = partition(arr, lambda x: x % 2 == 0, backend=backend)
    assert np.array_equal(evens, [0, 2, 4, 6, 8])
    assert np.array_equal(odds, [1, 3, 5, 7, 9])


@pytest.mark.parametrize("backend", BACKENDS)
def test_compact_scan_scatter_idiom(backend):
    arr = np.arange(6)
    flags = np.asarray([1, 0, 1, 0, 0, 1])
    assert np.array_equal(compact(arr, flags, backend=backend), [0, 2, 5])


@pytest.mark.parametrize("backend", BACKENDS)
def test_compact_all_and_none(backend):
    arr = np.arange(4)
    assert np.array_equal(compact(arr, np.ones(4, dtype=int), backend=backend), arr)
    assert len(compact(arr, np.zeros(4, dtype=int), backend=backend)) == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_minloc(backend):
    idx, val = minloc(np.asarray([3.0, -1.0, 2.0]), backend=backend)
    assert idx == 1 and val == -1.0


def test_minloc_empty_raises():
    with pytest.raises(ValueError):
        minloc(np.empty(0))


@pytest.mark.parametrize("backend", BACKENDS)
def test_segmented_minloc_basic(backend):
    keys = np.asarray([1, 1, 2, 2, 2])
    vals = np.asarray([5.0, 3.0, 9.0, 1.0, 2.0])
    payload = np.arange(5) * 10
    uk, mv, pl = segmented_minloc(keys, vals, payload, backend=backend)
    assert np.array_equal(uk, [1, 2])
    assert np.array_equal(mv, [3.0, 1.0])
    assert np.array_equal(pl, [10, 30])


@pytest.mark.parametrize("backend", BACKENDS)
def test_segmented_minloc_ties_take_first(backend):
    keys = np.asarray([7, 7, 7])
    vals = np.asarray([1.0, 1.0, 1.0])
    payload = np.asarray([100, 200, 300])
    _, _, pl = segmented_minloc(keys, vals, payload, backend=backend)
    assert pl[0] == 100


def test_zip_arrays_shape():
    z = zip_arrays(np.arange(3), np.arange(3) * 2.0)
    assert z.shape == (3, 2)


def test_gather_matches_fancy_indexing(rng):
    src = rng.normal(size=50)
    idx = rng.integers(0, 50, 20)
    assert np.array_equal(gather(idx, src, backend="serial"), src[idx])


# ---------------------------------------------------------------------------
# property-based cross-backend equivalence
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(arr=small_floats)
def test_prop_scan_backends_agree(arr):
    a = inclusive_scan(arr, backend="serial")
    b = inclusive_scan(arr, backend="vector")
    assert np.allclose(a, b)


@settings(max_examples=40, deadline=None)
@given(keys=small_keys, data=st.data())
def test_prop_reduce_by_key_matches_bincount(keys, data):
    vals = np.asarray(
        data.draw(
            hnp.arrays(
                np.float64, len(keys), elements=st.floats(-1e3, 1e3, allow_nan=False)
            )
        )
    )
    for backend in BACKENDS:
        uk, rv = reduce_by_key(keys, vals, "sum", backend=backend)
        expect_keys = np.unique(keys)
        expected = np.asarray([vals[keys == k].sum() for k in expect_keys])
        assert np.array_equal(uk, expect_keys)
        assert np.allclose(rv, expected)


@settings(max_examples=40, deadline=None)
@given(keys=small_keys, data=st.data())
def test_prop_segmented_minloc_is_argmin_per_key(keys, data):
    vals = np.asarray(
        data.draw(
            hnp.arrays(
                np.float64, len(keys), elements=st.floats(-1e3, 1e3, allow_nan=False)
            )
        )
    )
    payload = np.arange(len(keys))
    uk, mv, pl = segmented_minloc(keys, vals, payload, backend="vector")
    for k, m, p in zip(uk, mv, pl):
        seg = vals[keys == k]
        assert m == seg.min()
        assert vals[p] == seg.min() and keys[p] == k


@settings(max_examples=40, deadline=None)
@given(arr=small_floats)
def test_prop_compact_equals_boolean_indexing(arr):
    flags = (arr > 0).astype(int)
    for backend in BACKENDS:
        assert np.array_equal(compact(arr, flags, backend=backend), arr[arr > 0])


@settings(max_examples=30, deadline=None)
@given(keys=small_keys)
def test_prop_sort_by_key_is_sorted_permutation(keys):
    (sk,) = sort_by_key(keys, backend="vector")
    assert np.array_equal(np.sort(keys), sk)
