"""Shared per-step spatial structures: cell index, SO routing, step cache.

Covers :class:`repro.analysis.spatial_index.PeriodicCellIndex` against
brute force, the indexed SO path against the full-scan reference, the
:class:`repro.insitu.spatial.SharedStepIndex` memoization contract, and
the end-to-end invariant that one analysis step builds at most one
spatial index (``spatial_index_misses`` telemetry).
"""

import numpy as np
import pytest

from repro import obs
from repro.analysis import PeriodicCellIndex, so_masses, so_masses_indexed
from repro.insitu import (
    HaloCenterAlgorithm,
    HaloFinderAlgorithm,
    InSituAnalysisManager,
    Level1WriterAlgorithm,
    Level2WriterAlgorithm,
    SOMassAlgorithm,
    SubhaloFinderAlgorithm,
)
from repro.insitu.algorithm import AnalysisContext
from repro.insitu.spatial import SharedStepIndex
from repro.parallel.decomposition import CartesianDecomposition
from repro.sim import HACCSimulation, SimulationConfig


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def brute_radius(pos, box, center, r):
    d = pos - np.asarray(center)
    d -= box * np.round(d / box)
    return np.flatnonzero(np.einsum("ij,ij->i", d, d) <= r * r)


# -- PeriodicCellIndex ---------------------------------------------------------


@pytest.mark.parametrize("cell_size", [0.7, 1.3, 5.0])
def test_query_radius_matches_brute_force(rng, cell_size):
    box = 10.0
    pos = rng.uniform(0, box, (800, 3))
    index = PeriodicCellIndex(pos, box, cell_size)
    for center in [(0.1, 9.9, 5.0), (5.0, 5.0, 5.0), (9.99, 0.01, 0.5)]:
        for r in (0.4, 1.7, 3.2):
            got = index.query_radius(np.asarray(center), r)
            expected = brute_radius(index.pos, box, center, r)
            np.testing.assert_array_equal(got, expected)


def test_query_radius_whole_box(rng):
    box = 6.0
    pos = rng.uniform(0, box, (200, 3))
    index = PeriodicCellIndex(pos, box, 1.0)
    # radius beyond half the box: every particle is a candidate and the
    # exact filter keeps everything within sqrt(3)/2 * box
    got = index.query_radius(np.zeros(3), box)
    np.testing.assert_array_equal(got, np.arange(200))


def test_query_radius_sorted_and_deterministic(rng):
    box = 8.0
    pos = rng.uniform(0, box, (500, 3))
    index = PeriodicCellIndex(pos, box, 1.0)
    a = index.query_radius(np.asarray([4.0, 4.0, 4.0]), 2.0)
    b = index.query_radius(np.asarray([4.0, 4.0, 4.0]), 2.0)
    assert np.all(np.diff(a) > 0)
    np.testing.assert_array_equal(a, b)


def test_cell_members_partition(rng):
    box = 5.0
    pos = rng.uniform(0, box, (300, 3))
    index = PeriodicCellIndex(pos, box, 1.0)
    seen = np.concatenate(
        [index.cell_members(c) for c in range(index.ncell**3)]
    )
    assert len(seen) == 300
    np.testing.assert_array_equal(np.sort(seen), np.arange(300))


def test_empty_index_and_validation():
    index = PeriodicCellIndex(np.empty((0, 3)), 4.0, 1.0)
    assert len(index) == 0
    assert index.query_radius(np.zeros(3), 1.0).size == 0
    with pytest.raises(ValueError, match="pos must have shape"):
        PeriodicCellIndex(np.zeros((3, 2)), 4.0, 1.0)
    with pytest.raises(ValueError, match="box must be positive"):
        PeriodicCellIndex(np.zeros((1, 3)), 0.0, 1.0)
    with pytest.raises(ValueError, match="radius must be non-negative"):
        PeriodicCellIndex(np.zeros((1, 3)), 4.0, 1.0).query_radius(np.zeros(3), -1)


def test_oversized_cell_size_degenerates_to_one_cell(rng):
    box = 3.0
    pos = rng.uniform(0, box, (50, 3))
    index = PeriodicCellIndex(pos, box, 100.0)
    assert index.ncell == 1
    got = index.query_radius(np.asarray([1.5, 1.5, 1.5]), 1.0)
    np.testing.assert_array_equal(got, brute_radius(index.pos, box, (1.5,) * 3, 1.0))


# -- indexed SO masses ---------------------------------------------------------


def _clumpy_box(rng, box=20.0):
    bg = rng.uniform(0, box, (4000, 3))
    clump = rng.normal(0, 0.3, (600, 3)) + 5.0
    wrapped = np.mod(rng.normal(0, 0.25, (400, 3)) + [19.5, 0.2, 10.0], box)
    return np.vstack([bg, clump, wrapped]), box


def test_so_masses_indexed_matches_full_scan(rng):
    pos, box = _clumpy_box(rng)
    rho = len(pos) / box**3
    centers = np.asarray([[5.0, 5.0, 5.0], [19.5, 0.2, 10.0]])
    ref = so_masses(pos, centers, 1.0, rho, delta=200.0, box=box)
    index = PeriodicCellIndex(pos, box, 1.0)
    got = so_masses_indexed(index, centers, 1.0, rho, delta=200.0)
    for a, b in zip(ref, got):
        assert a == b


def test_so_masses_indexed_retry_from_tiny_radius(rng):
    """A too-small initial radius must grow to the same converged answer."""
    pos, box = _clumpy_box(rng)
    rho = len(pos) / box**3
    centers = np.asarray([[5.0, 5.0, 5.0]])
    ref = so_masses(pos, centers, 1.0, rho, delta=200.0, box=box)[0]
    index = PeriodicCellIndex(pos, box, 1.0)
    got = so_masses_indexed(
        index, centers, 1.0, rho, delta=200.0, initial_radii=1e-3
    )[0]
    assert got == ref


def test_so_masses_indexed_underdense_caps_at_half_box(rng):
    box = 12.0
    pos = rng.uniform(0, box, (300, 3))  # no overdense structure
    index = PeriodicCellIndex(pos, box, 1.5)
    res = so_masses_indexed(index, np.asarray([[6.0, 6.0, 6.0]]), 1.0,
                            reference_density=1e6, delta=200.0)[0]
    assert not res.converged  # profile never reaches the threshold


# -- SharedStepIndex -----------------------------------------------------------


class _FakeParticles:
    def __init__(self, pos, tag, box):
        self.pos = pos
        self.tag = tag
        self.box = box


class _FakeSim:
    def __init__(self, particles):
        self.particles = particles


def _fake_sim(rng, n=200, box=10.0):
    pos = rng.uniform(0, box, (n, 3))
    tag = np.asarray(rng.permutation(n), dtype=np.uint64)
    return _FakeSim(_FakeParticles(pos, tag, box))


def test_shared_step_index_memoizes_and_counts(rng):
    sim = _fake_sim(rng)
    shared = SharedStepIndex(sim.particles)
    decomp = CartesianDecomposition.for_ranks(10.0, 8)
    with obs.telemetry() as rec:
        a = shared.cell_index()
        b = shared.cell_index()
        assert a is b
        assert rec.counter("spatial_index_misses").value == 1
        assert rec.counter("spatial_index_hits").value == 1

        t1 = shared.tag_index()
        t2 = shared.tag_index()
        assert t1 is t2
        np.testing.assert_array_equal(
            t1[sim.particles.tag], np.arange(len(sim.particles.pos))
        )
        assert rec.counter("tag_index_builds_total").value == 1
        assert rec.counter("tag_index_reuses_total").value == 1

        o1 = shared.owners(decomp)
        o2 = shared.owners(decomp)
        assert o1 is o2
        np.testing.assert_array_equal(
            o1, decomp.rank_of_position(sim.particles.pos)
        )
        assert rec.counter("owner_map_builds_total").value == 1
        assert rec.counter("owner_map_reuses_total").value == 1


def test_shared_step_index_distinct_keys_build_separately(rng):
    sim = _fake_sim(rng)
    shared = SharedStepIndex(sim.particles)
    assert shared.cell_index(1.0) is not shared.cell_index(2.0)
    d8 = CartesianDecomposition.for_ranks(10.0, 8)
    d4 = CartesianDecomposition.for_ranks(10.0, 4)
    assert shared.owners(d8) is not shared.owners(d4)


def test_context_shared_spatial_scoped_to_context(rng):
    sim = _fake_sim(rng)
    ctx = AnalysisContext(step=1, a=0.5)
    s1 = ctx.shared_spatial(sim)
    assert ctx.shared_spatial(sim) is s1
    # a new step gets a new context and therefore fresh structures
    assert AnalysisContext(step=2, a=0.6).shared_spatial(sim) is not s1


# -- end-to-end: one spatial index per analysis step ---------------------------


def test_chain_builds_at_most_one_spatial_index_per_step(tmp_path):
    analysis_steps = [6, 12]
    mgr = InSituAnalysisManager()
    mgr.register(HaloFinderAlgorithm(at_steps=analysis_steps, min_count=30, n_ranks=4))
    mgr.register(HaloCenterAlgorithm(at_steps=analysis_steps, threshold=150))
    mgr.register(
        SubhaloFinderAlgorithm(at_steps=analysis_steps, min_parent=120, min_size=15)
    )
    mgr.register(SOMassAlgorithm(at_steps=analysis_steps))
    mgr.register(
        Level1WriterAlgorithm(
            at_steps=analysis_steps, output_dir=str(tmp_path), n_ranks=4
        )
    )
    mgr.register(Level2WriterAlgorithm(at_steps=analysis_steps, output_dir=str(tmp_path)))
    sim = HACCSimulation(
        SimulationConfig(np_per_dim=16, box=30.0, z_initial=30.0, n_steps=12),
        analysis_manager=mgr,
    )
    with obs.telemetry() as rec:
        records = sim.run()
        misses = rec.counter("spatial_index_misses").value
        tag_builds = rec.counter("tag_index_builds_total").value
        tag_reuses = rec.counter("tag_index_reuses_total").value
        owner_builds = rec.counter("owner_map_builds_total").value

    # the acceptance invariant: at most one cell-index build per step
    assert misses <= len(analysis_steps)
    # tag map: one build per step, shared by centers/subhalos/L2 writer
    assert tag_builds == len(analysis_steps)
    assert tag_reuses >= len(analysis_steps)  # at least one reuse per step
    # owner map: FOF + L1 writer share one build per step (same 4-rank grid)
    assert owner_builds == len(analysis_steps)

    # satellite: StepRecord.io_seconds is populated from the writers
    for r in records:
        assert r.io_seconds <= r.analysis_seconds + 1e-9
        if r.step in analysis_steps:
            assert r.io_seconds > 0.0
        else:
            assert r.io_seconds == 0.0
