"""Spherical-overdensity mass estimation."""

import numpy as np
import pytest

from repro.analysis import so_mass, so_masses


def _uniform_sphere(rng, n, radius, center):
    r = radius * rng.uniform(0, 1, n) ** (1.0 / 3.0)
    u = rng.normal(size=(n, 3))
    u /= np.linalg.norm(u, axis=1)[:, None]
    return center + r[:, None] * u


def test_so_mass_analytic_uniform_sphere(rng):
    """Uniform sphere of density rho_s: R_delta satisfies
    rho_s = delta * rho_ref exactly at R_delta = R (rho_s/delta/rho_ref)^(1/3)
    ... for enclosed mean density profile of a uniform sphere (constant
    inside), the crossing is where the profile drops below threshold,
    i.e. at the sphere edge if rho_s > delta*rho_ref."""
    n, radius = 5000, 2.0
    center = np.asarray([10.0, 10.0, 10.0])
    pos = _uniform_sphere(rng, n, radius, center)
    rho_sphere = n / (4 / 3 * np.pi * radius**3)
    # choose reference so the sphere is 250x overdense
    rho_ref = rho_sphere / 250.0
    res = so_mass(pos, center, particle_mass=1.0, reference_density=rho_ref, delta=200.0)
    # threshold is crossed inside the sphere edge but near it
    assert res.radius == pytest.approx(radius * (250 / 200) ** (1 / 3) , rel=0.25)
    assert res.count == pytest.approx(n, rel=0.1)


def test_so_mass_grows_with_lower_delta(rng):
    pos = _uniform_sphere(rng, 2000, 1.0, np.zeros(3)) + np.random.default_rng(
        1
    ).normal(0, 2.0, (2000, 3)) * 0  # compact
    rho_ref = 1e-3
    hi = so_mass(pos, np.zeros(3), 1.0, rho_ref, delta=500.0)
    lo = so_mass(pos, np.zeros(3), 1.0, rho_ref, delta=100.0)
    assert lo.mass >= hi.mass
    assert lo.radius >= hi.radius


def test_so_mass_counts_match_radius(rng):
    pos = _uniform_sphere(rng, 800, 1.5, np.zeros(3))
    res = so_mass(pos, np.zeros(3), 1.0, 1e-2, delta=200.0)
    inside = np.sum(np.linalg.norm(pos, axis=1) <= res.radius + 1e-12)
    assert inside == res.count
    assert res.mass == pytest.approx(res.count * 1.0)


def test_so_mass_periodic_wrap():
    """A halo at the box corner must be measured via minimum image."""
    rng2 = np.random.default_rng(3)
    box = 10.0
    center = np.zeros(3)
    pos = np.mod(center + rng2.normal(0, 0.3, (500, 3)), box)
    res_wrapped = so_mass(pos, center, 1.0, 1e-3, delta=200.0, box=box)
    res_naive = so_mass(pos, center, 1.0, 1e-3, delta=200.0, box=None)
    assert res_wrapped.count > res_naive.count


def test_so_mass_empty():
    res = so_mass(np.empty((0, 3)), np.zeros(3), 1.0, 1.0)
    assert res.count == 0 and res.mass == 0.0 and not res.converged


def test_so_mass_underdense_not_converged(rng):
    pos = rng.uniform(0, 10, (100, 3))
    res = so_mass(pos, np.asarray([5.0, 5, 5]), 1.0, reference_density=10.0, delta=200.0)
    assert not res.converged or res.count <= 2


def test_search_radius_cap(rng):
    pos = _uniform_sphere(rng, 1000, 3.0, np.zeros(3))
    res = so_mass(pos, np.zeros(3), 1.0, 1e-4, delta=200.0, search_radius=1.0)
    assert res.radius <= 1.0


def test_so_masses_batch(rng):
    a = _uniform_sphere(rng, 500, 1.0, np.asarray([5.0, 5, 5]))
    b = _uniform_sphere(rng, 300, 1.0, np.asarray([15.0, 15, 15]))
    pos = np.concatenate([a, b])
    results = so_masses(
        pos, np.asarray([[5.0, 5, 5], [15.0, 15, 15]]), 1.0, 1e-2, delta=200.0
    )
    assert len(results) == 2
    assert results[0].count > results[1].count
