"""Halo catalogs: construction, persistence, merge reconciliation."""

import numpy as np
import pytest

from repro.io import HaloCatalog, merge_catalogs


def _catalog(tags, counts=None, offset=0.0):
    tags = np.asarray(tags, dtype=np.uint64)
    n = len(tags)
    counts = np.full(n, 50) if counts is None else np.asarray(counts)
    centers = np.column_stack([tags + offset, tags * 2.0, tags * 3.0]).astype(float)
    return HaloCatalog.from_columns(
        halo_tag=tags, count=counts, center=centers, particle_mass=2.0
    )


def test_from_columns_basic():
    cat = _catalog([3, 1, 2])
    assert len(cat) == 3
    assert np.array_equal(cat["halo_tag"], [3, 1, 2])
    assert np.allclose(cat["mass"], 100.0)  # count * particle_mass


def test_centers_property_shape():
    cat = _catalog([1, 2])
    assert cat.centers.shape == (2, 3)
    assert np.allclose(cat.centers[:, 1], [2.0, 4.0])


def test_center_shape_validation():
    with pytest.raises(ValueError):
        HaloCatalog.from_columns(
            halo_tag=np.asarray([1], dtype=np.uint64),
            count=np.asarray([5]),
            center=np.zeros((2, 3)),
        )


def test_sorted_by_tag():
    cat = _catalog([3, 1, 2]).sorted_by_tag()
    assert np.array_equal(cat["halo_tag"], [1, 2, 3])


def test_save_load_roundtrip(tmp_path):
    cat = _catalog([5, 9, 2], counts=[10, 20, 30])
    path = tmp_path / "cat.gio"
    cat.save(path)
    loaded = HaloCatalog.load(path)
    assert np.array_equal(loaded.records, cat.records)


def test_merge_disjoint():
    merged = merge_catalogs(_catalog([1, 3]), _catalog([2, 4]))
    assert np.array_equal(merged["halo_tag"], [1, 2, 3, 4])


def test_merge_with_empty():
    merged = merge_catalogs(_catalog([1]), HaloCatalog())
    assert len(merged) == 1
    assert len(merge_catalogs(HaloCatalog(), HaloCatalog())) == 0


def test_merge_duplicate_tags_rejected():
    with pytest.raises(ValueError, match="multiple catalogs"):
        merge_catalogs(_catalog([1, 2]), _catalog([2, 3]))


def test_merge_three_way():
    merged = merge_catalogs(_catalog([10]), _catalog([5]), _catalog([7]))
    assert np.array_equal(merged["halo_tag"], [5, 7, 10])


def test_empty_catalog_default():
    cat = HaloCatalog()
    assert len(cat) == 0
    assert cat.centers.shape == (0, 3)


def test_wrong_dtype_rejected():
    with pytest.raises(ValueError, match="dtype"):
        HaloCatalog(np.zeros(3, dtype=np.float64))
