"""repro.obs.events: ring semantics, correlation fields, JSONL replay."""

from __future__ import annotations

import json
import threading

from repro.obs import Event, EventLog, JsonlSink, read_jsonl
from repro.obs.events import merge_timelines


def test_emit_stamps_monotonic_and_fields():
    log = EventLog()
    e1 = log.emit("a", step=3, rank=1, path="/x")
    e2 = log.emit("b", level="error")
    assert e2.t >= e1.t
    assert e1.step == 3 and e1.rank == 1 and e1.fields == {"path": "/x"}
    assert e2.level == "error"
    assert len(log) == 2


def test_ring_is_bounded_and_counts_drops():
    log = EventLog(capacity=4)
    for i in range(10):
        log.emit("tick", i=i)
    assert len(log) == 4
    assert log.emitted_total == 10
    assert log.dropped_total == 6
    # oldest aged out, newest retained
    assert [e.fields["i"] for e in log.snapshot()] == [6, 7, 8, 9]


def test_by_level_filters():
    log = EventLog()
    log.emit("ok")
    log.emit("bad", level="error")
    log.emit("bad2", level="error")
    assert [e.name for e in log.by_level("error")] == ["bad", "bad2"]


def test_event_dict_round_trip():
    log = EventLog()
    ev = log.emit("x", level="warn", run="r1", step=7, rank=2, nbytes=123)
    back = Event.from_dict(json.loads(json.dumps(ev.to_dict())))
    assert back == ev


def test_concurrent_emit_is_safe():
    log = EventLog(capacity=100_000)
    n, threads = 2000, 8

    def worker(tid):
        for i in range(n):
            log.emit("w", tid=tid, i=i)

    ts = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert log.emitted_total == n * threads
    assert len(log) == n * threads


def test_jsonl_sink_replay(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog()
    with JsonlSink(path) as sink:
        for i in range(5):
            sink.write(log.emit("tick", i=i).to_dict())
        sink.write({"kind": "span", "name": "s", "t0": 0.0, "t1": 1.0, "span_id": 1})
        sink.write({"kind": "mystery"})  # unknown kinds are skipped
    events, spans = read_jsonl(path)
    assert [e.fields["i"] for e in events] == [0, 1, 2, 3, 4]
    assert len(spans) == 1 and spans[0]["name"] == "s"


def test_jsonl_sink_tolerates_late_writes(tmp_path):
    sink = JsonlSink(str(tmp_path / "x.jsonl"))
    sink.write({"kind": "event", "name": "a", "t": 0.0, "wall": 0.0})
    sink.close()
    sink.write({"kind": "event", "name": "late", "t": 1.0, "wall": 1.0})  # no raise
    events, _ = read_jsonl(str(tmp_path / "x.jsonl"))
    assert [e.name for e in events] == ["a"]


def test_merge_timelines_orders_by_monotonic_time():
    a, b = EventLog(), EventLog()
    a.emit("1")
    b.emit("2")
    a.emit("3")
    merged = merge_timelines(a.snapshot(), b.snapshot())
    assert [e.name for e in merged] == ["1", "2", "3"]
