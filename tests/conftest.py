"""Shared fixtures: small clustered particle sets and a cached mini-sim run."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.sim import HACCSimulation, SimulationConfig


@pytest.fixture(autouse=True)
def _reset_telemetry():
    """Keep the process-wide recorder a no-op unless a test enables it."""
    yield
    obs.set_recorder(obs.NullRecorder())


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20150715)


@pytest.fixture(scope="session")
def blob_points(rng):
    """Clustered synthetic point set: five tight blobs + uniform background
    in a (20 Mpc/h)^3 periodic box."""
    centers = np.asarray(
        [[5, 5, 5], [15, 15, 15], [5, 15, 10], [10, 5, 15], [16, 4, 6]], dtype=float
    )
    blobs = [rng.normal(c, 0.3, (250, 3)) for c in centers]
    background = rng.uniform(0, 20, (1500, 3))
    pos = np.mod(np.concatenate([*blobs, background]), 20.0)
    return pos


@pytest.fixture(scope="session")
def plummer_halo(rng):
    """A single Plummer-profile halo of 1200 particles centered at 10."""
    n = 1200
    u = rng.uniform(0.001, 0.999, n)
    r = 1.0 / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1)[:, None]
    return r[:, None] * v + 10.0


@pytest.fixture(scope="session")
def mini_sim():
    """A completed 24^3 mini-HACC run to z=0 (shared across tests)."""
    cfg = SimulationConfig(
        np_per_dim=24, box=40.0, z_initial=30.0, z_final=0.0, n_steps=24, ng=48
    )
    sim = HACCSimulation(cfg)
    sim.run()
    return sim
