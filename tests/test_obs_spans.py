"""repro.obs.spans: nesting, thread-safety, Chrome-trace round-trip."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import Tracer, load_chrome_trace, to_chrome_trace, write_chrome_trace


def test_span_records_duration_and_fields():
    tr = Tracer(run="r1")
    with tr.span("fof", step=12, rank=3, halos=7) as s:
        pass
    done = tr.snapshot()
    assert len(done) == 1
    assert done[0] is s
    assert s.name == "fof" and s.run == "r1" and s.step == 12 and s.rank == 3
    assert s.fields == {"halos": 7}
    assert s.t1 is not None and s.duration >= 0.0


def test_nesting_parent_links_and_depth():
    tr = Tracer()
    with tr.span("outer") as outer:
        with tr.span("mid") as mid:
            with tr.span("inner") as inner:
                assert tr.current() is inner
        assert tr.current() is outer
    assert outer.parent_id is None and outer.depth == 0
    assert mid.parent_id == outer.span_id and mid.depth == 1
    assert inner.parent_id == mid.span_id and inner.depth == 2
    # children finish (and are recorded) before their parents
    assert [s.name for s in tr.snapshot()] == ["inner", "mid", "outer"]


def test_sibling_spans_share_parent():
    tr = Tracer()
    with tr.span("step") as parent:
        with tr.span("a") as a:
            pass
        with tr.span("b") as b:
            pass
    assert a.parent_id == parent.span_id
    assert b.parent_id == parent.span_id
    assert a.depth == b.depth == 1


def test_exception_is_recorded_and_stack_unwinds():
    tr = Tracer()
    with pytest.raises(ValueError):
        with tr.span("risky"):
            raise ValueError("boom")
    (s,) = tr.snapshot()
    assert s.error == "ValueError: boom"
    assert tr.current() is None


def test_decorator_traces_each_call():
    tr = Tracer()

    @tr.traced("work", kind="unit")
    def work(x):
        return x * 2

    assert [work(i) for i in range(3)] == [0, 2, 4]
    spans = tr.snapshot()
    assert len(spans) == 3
    assert all(s.name == "work" and s.fields == {"kind": "unit"} for s in spans)


def test_threads_get_independent_stacks():
    tr = Tracer()
    errors: list[str] = []
    barrier = threading.Barrier(4)

    def worker(tid: int) -> None:
        barrier.wait()
        for _ in range(200):
            with tr.span(f"outer-{tid}") as outer:
                with tr.span(f"inner-{tid}") as inner:
                    if inner.parent_id != outer.span_id:
                        errors.append(f"{tid}: cross-thread parent")
                    if inner.thread != outer.thread:
                        errors.append(f"{tid}: thread mismatch")

    ts = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert errors == []
    spans = tr.snapshot()
    assert len(spans) == 4 * 200 * 2
    # every inner's parent is an outer from the same thread
    by_id = {s.span_id: s for s in spans}
    for s in spans:
        if s.name.startswith("inner"):
            parent = by_id[s.parent_id]
            assert parent.thread == s.thread


def test_finished_ring_is_bounded():
    tr = Tracer(capacity=10)
    for _ in range(50):
        with tr.span("s"):
            pass
    assert len(tr) == 10
    assert tr.finished_total == 50


def test_chrome_trace_round_trip(tmp_path):
    tr = Tracer(run="trace-test")
    with tr.span("sim.step", step=1):
        with tr.span("insitu.fof", step=1, halos=3):
            pass
    path = str(tmp_path / "trace.json")
    write_chrome_trace(path, tr.snapshot())

    # must parse as plain JSON (chrome://tracing contract)
    with open(path) as fh:
        raw = json.load(fh)
    assert "traceEvents" in raw

    events = load_chrome_trace(path)
    complete = [e for e in events if e.get("ph") == "X"]
    by_name = {e["name"]: e for e in complete}
    assert set(by_name) == {"sim.step", "insitu.fof"}
    for e in complete:
        assert e["ts"] >= 0 and e["dur"] >= 0 and e["pid"] == 1
    # the nested span lies within its parent on the trace timeline
    outer, inner = by_name["sim.step"], by_name["insitu.fof"]
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3
    # args carry the correlation fields
    assert inner["args"]["halos"] == 3 and inner["args"]["step"] == 1


def test_chrome_trace_separates_threads():
    tr = Tracer()

    def worker():
        with tr.span("listener.poll"):
            pass

    t = threading.Thread(target=worker, name="listener")
    t.start()
    t.join()
    with tr.span("sim.step"):
        pass
    trace = to_chrome_trace(tr.snapshot())
    xs = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    tids = {e["name"]: e["tid"] for e in xs}
    assert tids["listener.poll"] != tids["sim.step"]
    # thread-name metadata present for both tracks
    meta = [e for e in trace["traceEvents"] if e.get("ph") == "M"]
    names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert "listener" in names


def test_load_chrome_trace_rejects_non_trace(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        load_chrome_trace(str(p))
