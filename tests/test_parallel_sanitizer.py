"""Runtime collective-protocol sanitizer tests (REPRO_SANITIZE=1).

Each rank hashes its ordered collective sequence; barriers cross-check
the digests and fail fast naming the diverging rank.  Exercised on both
the thread transport (default) and the process transport.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import CollectiveProtocolError, SpmdError, run_spmd
from repro.parallel.communicator import _ProtocolRecorder, _protocol_verdict


def _clean_prog(comm):
    data = comm.bcast(comm.rank * 10 if comm.rank == 0 else None, root=0)
    total = comm.allreduce(comm.rank)
    comm.barrier()
    return data, total


def _skipping_prog(comm):
    # rank 1 skips the bcast: its protocol digest diverges at the barrier
    if comm.rank != 1:  # repro: noqa[RPR011] - deliberately divergent fixture
        comm.bcast("payload", root=0)
    comm.barrier()
    return comm.rank


@pytest.mark.parametrize("transport", ["thread", "process"])
def test_clean_program_unaffected(transport, monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    results = run_spmd(3, _clean_prog, transport=transport)
    assert all(r == (0, 0 + 1 + 2) for r in results)


@pytest.mark.parametrize("transport", ["thread", "process"])
def test_diverging_rank_is_named(transport, monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    with pytest.raises(SpmdError) as excinfo:
        run_spmd(3, _skipping_prog, transport=transport)
    chain: list[str] = []
    exc: BaseException | None = excinfo.value
    while exc is not None:
        chain.append(str(exc))
        exc = exc.__cause__
    text = "\n".join(chain)
    assert "rank(s) 1" in text
    assert "divergence" in text


def test_sanitizer_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert run_spmd(3, _skipping_prog) == [0, 1, 2]


def test_divergence_detected_even_with_equal_counts(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")

    def prog(comm):  # same op count, different op kind on rank 2
        if comm.rank == 2:  # repro: noqa[RPR011] - deliberately divergent fixture
            comm.allreduce(1)
        else:
            comm.bcast(1, root=0)
        comm.barrier()

    with pytest.raises(SpmdError) as excinfo:
        run_spmd(3, prog)
    chain = []
    exc: BaseException | None = excinfo.value
    while exc is not None:
        chain.append(str(exc))
        exc = exc.__cause__
    assert "rank(s) 2" in "\n".join(chain)


# -- recorder / verdict units --------------------------------------------------


def test_recorder_is_order_and_shape_sensitive():
    a, b, c = _ProtocolRecorder(), _ProtocolRecorder(), _ProtocolRecorder()
    a.record("bcast", 0, "nd[<f8,(4,)]")
    a.record("barrier")
    b.record("barrier")
    b.record("bcast", 0, "nd[<f8,(4,)]")
    c.record("bcast", 0, "nd[<f8,(8,)]")
    c.record("barrier")
    digests = {a.digest(), b.digest(), c.digest()}
    assert len(digests) == 3  # order and shape both change the hash
    assert a.count == b.count == c.count == 2


def test_recorder_value_insensitive():
    a, b = _ProtocolRecorder(), _ProtocolRecorder()
    a.record("bcast", 0, "nd[<f8,(4,)]")
    b.record("bcast", 0, "nd[<f8,(4,)]")
    assert a.digest() == b.digest()


def test_verdict_consistent_reports_empty():
    reports = {r: ("abc", 3, ("barrier",)) for r in range(4)}
    assert _protocol_verdict(reports) == ""


def test_verdict_names_minority():
    reports = {
        0: ("abc", 3, ("barrier", "bcast")),
        1: ("abc", 3, ("barrier", "bcast")),
        2: ("xyz", 2, ("barrier",)),
    }
    msg = _protocol_verdict(reports)
    assert "rank(s) 2" in msg
    assert "ranks 0, 1" in msg


def test_verdict_tie_breaks_toward_lowest_rank():
    reports = {
        0: ("abc", 1, ("bcast",)),
        1: ("xyz", 1, ("allreduce",)),
    }
    msg = _protocol_verdict(reports)
    # rank 0's group is the reference on a tie; rank 1 is the diverger
    assert "rank(s) 1" in msg


def test_protocol_error_is_spmd_error():
    assert issubclass(CollectiveProtocolError, SpmdError)


def test_numpy_payload_shapes_feed_signature(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")

    def prog(comm):  # rank-dependent *shape* through bcast diverges
        payload = np.zeros(4 if comm.rank == 0 else 8)
        out = comm.bcast(payload if comm.rank == 0 else None, root=0)
        comm.barrier()
        return out.shape

    # all ranks receive root's array -> same signature -> clean
    assert run_spmd(2, prog) == [(4,), (4,)]
