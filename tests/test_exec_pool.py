"""Worker-pool reuse: warm workers across engine runs, identical results."""

import multiprocessing
import time

import numpy as np
import pytest

from repro import obs
from repro.analysis.centers import halo_centers
from repro.check import sanitize
from repro.exec.engine import (
    ExecutionEngine,
    WorkerError,
    parallel_halo_centers,
    shutdown_pool,
)
from repro.exec.pool import WorkerPool


@pytest.fixture(autouse=True)
def _fresh_pool():
    shutdown_pool()
    yield
    shutdown_pool()


def _batch(seed=0, n=3000, halos=30):
    rng = np.random.default_rng(seed)
    return rng.random((n, 3)), np.arange(n), rng.integers(0, halos, n)


def _no_children(deadline=5.0):
    end = time.monotonic() + deadline
    while multiprocessing.active_children() and time.monotonic() < end:
        time.sleep(0.05)
    return multiprocessing.active_children() == []


def test_pool_reused_across_runs_with_counter():
    pos, tags, labels = _batch()
    with obs.telemetry() as rec:
        results = [parallel_halo_centers(pos, tags, labels, workers=2) for _ in range(3)]
        reuse = rec.metrics.as_dict().get("exec_pool_reuse_total", 0.0)
    assert reuse == 2.0  # first run forks, the next two reuse
    for r in results[1:]:
        assert np.array_equal(results[0].centers, r.centers)
        assert np.array_equal(results[0].mbp_tags, r.mbp_tags)


def test_pooled_results_bit_identical_to_serial():
    pos, tags, labels = _batch(seed=3)
    ref = halo_centers(pos, tags, labels)
    parallel_halo_centers(pos, tags, labels, workers=2)  # warm the pool
    got = parallel_halo_centers(pos, tags, labels, workers=2)  # reused workers
    assert np.array_equal(ref.centers, got.centers)
    assert np.array_equal(ref.mbp_tags, got.mbp_tags)
    assert np.array_equal(ref.potentials, got.potentials)


def test_pool_survives_worker_error():
    pos, tags, labels = _batch(seed=4)
    engine = ExecutionEngine(workers=2)
    counts = np.unique(labels, return_counts=True)[1].astype(np.int64)
    members = np.argsort(labels, kind="stable").astype(np.int64)
    starts = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    work = engine.build_queue(counts, splittable=False)
    with pytest.raises(WorkerError, match="explosion"):
        engine.run({"pos": pos, "members": members, "starts": starts}, work, {"task": "explode"})
    # the workers shipped the traceback and survived: the next batch reuses them
    with obs.telemetry() as rec:
        r = parallel_halo_centers(pos, tags, labels, workers=2)
        assert rec.metrics.as_dict().get("exec_pool_reuse_total", 0.0) == 1.0
    ref = halo_centers(pos, tags, labels)
    assert np.array_equal(ref.centers, r.centers)


def test_bigger_job_replaces_small_pool():
    pos, tags, labels = _batch(seed=5)
    parallel_halo_centers(pos, tags, labels, workers=2)
    with obs.telemetry() as rec:
        parallel_halo_centers(pos, tags, labels, workers=3)  # needs more workers
        assert rec.metrics.as_dict().get("exec_pool_reuse_total", 0.0) == 0.0
        parallel_halo_centers(pos, tags, labels, workers=2)  # fits in the new pool
        assert rec.metrics.as_dict().get("exec_pool_reuse_total", 0.0) == 1.0


def test_shutdown_pool_reaps_workers():
    pos, tags, labels = _batch(seed=6)
    parallel_halo_centers(pos, tags, labels, workers=2)
    assert multiprocessing.active_children()  # warm pool is alive
    shutdown_pool()
    assert _no_children()


def test_no_shared_memory_leaks_across_pooled_runs(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitize.reset_leak_tracker()
    pos, tags, labels = _batch(seed=7)
    for _ in range(3):
        parallel_halo_centers(pos, tags, labels, workers=2)
    assert sanitize.leak_report() == []


def test_worker_pool_validates_and_closes_idempotently():
    with pytest.raises(ValueError):
        WorkerPool(0)
    pool = WorkerPool(1)
    assert pool.alive
    pool.close()
    pool.close()  # idempotent
    assert not pool.alive
    assert _no_children()
