"""Power spectrum measurement: recovery of a known input spectrum."""

import numpy as np
import pytest

from repro.analysis import measure_power_spectrum
from repro.sim import (
    ICConfig,
    LinearPower,
    QCONTINUUM_COSMOLOGY,
    make_initial_conditions,
)


def test_uniform_lattice_has_no_power():
    n = 16
    cell = 1.0
    lattice = (np.arange(n) + 0.5) * cell
    qx, qy, qz = np.meshgrid(lattice, lattice, lattice, indexing="ij")
    pos = np.column_stack([qx.ravel(), qy.ravel(), qz.ravel()])
    res = measure_power_spectrum(pos, box=float(n), ng=n, subtract_shot_noise=False)
    # lattice modes alias to zero except at the Nyquist; power ~ shot only
    assert np.median(res.power[:-2]) < res.shot_noise * 1e-6


def test_random_points_give_shot_noise(rng):
    n, box, ng = 20000, 100.0, 32
    pos = rng.uniform(0, box, (n, 3))
    res = measure_power_spectrum(pos, box=box, ng=ng, subtract_shot_noise=False)
    assert res.shot_noise == pytest.approx(box**3 / n)
    mid = (res.k > 0.3) & (res.k < 0.8)
    assert res.power[mid].mean() == pytest.approx(res.shot_noise, rel=0.25)


def test_recovers_linear_spectrum_from_ics():
    """P(k) measured from ZA initial conditions matches D²(a) P_lin(k)
    on well-sampled scales."""
    cos = QCONTINUUM_COSMOLOGY
    power = LinearPower(cos)
    cfg = ICConfig(np_per_dim=48, box=300.0, z_initial=20.0, seed=11)
    particles = make_initial_conditions(cfg, cos, power)
    # lattice-displaced ICs are sub-Poisson: no shot-noise subtraction
    res = measure_power_spectrum(
        particles.pos, box=300.0, ng=48, subtract_shot_noise=False
    )
    d = cos.growth_factor(1.0 / 21.0)
    expected = power(res.k) * d * d
    sel = (res.k > 0.05) & (res.k < 0.3)  # well below Nyquist (0.5)
    ratio = res.power[sel] / expected[sel]
    assert np.abs(np.mean(ratio) - 1.0) < 0.25
    assert np.all((ratio > 0.4) & (ratio < 2.0))


def test_mode_counts_increase_with_k(rng):
    pos = rng.uniform(0, 50, (1000, 3))
    res = measure_power_spectrum(pos, box=50.0, ng=16)
    # shells grow as k^2: counts should broadly increase
    assert res.n_modes[-1] > res.n_modes[0]
    assert res.n_modes.sum() <= 16**3


def test_nyquist_property(rng):
    pos = rng.uniform(0, 100, (500, 3))
    res = measure_power_spectrum(pos, box=100.0, ng=32)
    assert res.nyquist == pytest.approx(np.pi * 32 / 100.0)
    assert res.k.max() <= res.nyquist * 1.01


def test_empty_input_raises():
    with pytest.raises(ValueError):
        measure_power_spectrum(np.empty((0, 3)), box=10.0, ng=8)


def test_n_bins_control(rng):
    pos = rng.uniform(0, 10, (200, 3))
    res = measure_power_spectrum(pos, box=10.0, ng=16, n_bins=5)
    assert len(res.k) <= 5


def test_deconvolution_raises_small_scale_power(rng):
    pos = rng.uniform(0, 50, (5000, 3))
    on = measure_power_spectrum(pos, 50.0, 32, deconvolve_cic=True, subtract_shot_noise=False)
    off = measure_power_spectrum(pos, 50.0, 32, deconvolve_cic=False, subtract_shot_noise=False)
    # CIC smoothing suppresses high-k power; deconvolution restores it
    assert on.power[-1] > off.power[-1]
    assert on.power[0] == pytest.approx(off.power[0], rel=0.05)  # low-k unaffected
