"""Cross-process / cross-thread trace propagation.

Contracts of :mod:`repro.obs.context`:

* ``TraceContext`` round-trips through a dict (the hop payload);
* a thread that binds a captured context parents its root spans under
  the capturing span (listener / in-transit consumer pattern);
* a worker recorder's snapshot merges into the parent with remapped
  span ids, re-parented roots, relabelled thread, and summed counters
  (the ``repro.exec`` subprocess pattern);
* the multi-process exec engine ships real worker telemetry home: its
  per-item spans parent under the driver's open ``exec.run`` span.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.obs.context import TraceContext, export_snapshot, merge_snapshot
from repro.exec import ExecutionEngine, parallel_halo_centers
from repro.faults import FaultPlan, FaultSpec, fault_plan, set_fault_plan


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    set_fault_plan(None)
    yield
    set_fault_plan(None)


def test_trace_context_roundtrip():
    ctx = TraceContext(run="r1", span_id=42)
    assert TraceContext.from_dict(ctx.to_dict()) == ctx
    assert TraceContext.from_dict({"run": "r2"}) == TraceContext(run="r2", span_id=None)


def test_current_trace_context_tracks_open_span():
    rec = obs.TelemetryRecorder(run_id="r1")
    assert rec.trace_context() == TraceContext(run="r1", span_id=None)
    with rec.span("outer") as s:
        assert rec.trace_context() == TraceContext(run="r1", span_id=s.span_id)
    assert rec.trace_context().span_id is None


def test_bound_thread_parents_under_capturing_span():
    """The listener pattern: capture on the driver thread, bind in the
    worker thread, and the worker's root spans join the driver's tree."""
    rec = obs.TelemetryRecorder(run_id="r1")
    done = threading.Event()

    def worker(ctx: TraceContext) -> None:
        rec.bind_thread(ctx)
        with rec.span("thread.child"):
            pass
        done.set()

    with rec.span("driver.parent") as parent:
        t = threading.Thread(target=worker, args=(rec.trace_context(),))
        t.start()
        t.join()
    assert done.is_set()
    spans = {s.name: s for s in rec.tracer.snapshot()}
    assert spans["thread.child"].parent_id == parent.span_id
    assert spans["thread.child"].depth == 1


def test_merge_snapshot_remaps_and_reparents():
    worker = obs.TelemetryRecorder(run_id="r1")
    with worker.span("w.root"):
        with worker.span("w.leaf"):
            worker.event("w.ev", k=1)
    worker.counter("widgets_total").inc(2)
    snap = export_snapshot(worker)

    parent = obs.TelemetryRecorder(run_id="r1")
    parent.counter("widgets_total").inc(1)
    with parent.span("p.outer") as outer:
        pass
    n_events, n_spans = merge_snapshot(
        parent, snap, parent_span_id=outer.span_id, thread="exec-worker-0"
    )
    assert (n_events, n_spans) == (1, 2)
    spans = {s.name: s for s in parent.tracer.snapshot()}
    # ids remapped into the parent's space, internal links preserved
    assert spans["w.leaf"].parent_id == spans["w.root"].span_id
    assert spans["w.root"].parent_id == outer.span_id
    assert all(spans[n].thread == "exec-worker-0" for n in ("w.root", "w.leaf"))
    assert all(spans[n].run == "r1" for n in ("w.root", "w.leaf"))
    # counters add across the hop
    assert parent.metrics.as_dict()["widgets_total"] == 3.0
    evs = [e for e in rec_events(parent) if e.name == "w.ev"]
    assert len(evs) == 1 and evs[0].run == "r1"


def rec_events(rec):
    return list(rec.events.snapshot())


def test_export_snapshot_none_when_disabled():
    assert export_snapshot(obs.NullRecorder()) is None


def _tiny_batch(rng, n_halos=6, size=80):
    pos_list, labels_list = [], []
    for i in range(n_halos):
        c = rng.uniform(10, 90, 3)
        pos_list.append(c + rng.normal(0, 1.0, (size, 3)))
        labels_list.append(np.full(size, i, dtype=np.int64))
    pos = np.concatenate(pos_list)
    labels = np.concatenate(labels_list)
    return pos, np.arange(len(pos), dtype=np.int64), labels


def test_exec_worker_spans_parent_under_exec_run(rng):
    """The acceptance link: every ``exec.item`` span hangs under the
    driver's ``exec.run`` span, and worker subprocess telemetry (fault
    events fired inside workers) lands in the driver's recorder."""
    pos, tags, labels = _tiny_batch(rng)
    with obs.telemetry(run_id="r-exec") as rec:
        with fault_plan(
            FaultPlan(seed=3, sites={"exec.item": FaultSpec(fail_first=1, keys=("0",))})
        ):
            engine = ExecutionEngine(workers=2, item_retries=2)
            parallel_halo_centers(pos, tags, labels, workers=2, engine=engine)
    spans = rec.tracer.snapshot()
    run_spans = [s for s in spans if s.name == "exec.run"]
    items = [s for s in spans if s.name == "exec.item"]
    assert len(run_spans) == 1 and items
    assert all(s.parent_id == run_spans[0].span_id for s in items)
    assert all(s.run == "r-exec" for s in items)
    # the worker-side fault fired in a subprocess yet reached this recorder
    evs = [e for e in rec.events.snapshot() if e.name == "fault.injected"]
    assert evs and all(e.run == "r-exec" for e in evs)
    assert rec.metrics.as_dict().get("faults_injected_total", 0) >= 1


def test_metrics_state_roundtrip_merges_all_kinds():
    a = obs.MetricsRegistry()
    b = obs.MetricsRegistry()
    a.counter("c_total").inc(2)
    b.counter("c_total").inc(3)
    a.gauge("g").set(1.0)
    b.gauge("g").set(9.0)
    a.histogram("h_seconds", buckets=(1.0, 2.0)).observe(0.5)
    b.histogram("h_seconds", buckets=(1.0, 2.0)).observe(1.5)
    a.absorb_state(b.export_state())
    d = a.as_dict()
    assert d["c_total"] == 5.0
    assert d["g"] == 9.0
    assert d["h_seconds_count"] == 2.0
    assert d["h_seconds_sum"] == pytest.approx(2.0)
