"""Concrete CosmoTools algorithms against a live mini-simulation."""

import numpy as np
import pytest

from repro.insitu import (
    HaloCenterAlgorithm,
    HaloFinderAlgorithm,
    InSituAnalysisManager,
    Level1WriterAlgorithm,
    Level2WriterAlgorithm,
    PowerSpectrumAlgorithm,
    SOMassAlgorithm,
    SubhaloFinderAlgorithm,
    tag_index_map,
)
from repro.io import GenericIOFile
from repro.sim import BYTES_PER_PARTICLE


@pytest.fixture(scope="module")
def analyzed(tmp_path_factory):
    """One mini run with the full algorithm pipeline at the final step."""
    from repro.sim import HACCSimulation, SimulationConfig

    out = tmp_path_factory.mktemp("spool")
    mgr = InSituAnalysisManager()
    last = 20
    mgr.register(PowerSpectrumAlgorithm(at_steps=last))
    mgr.register(
        HaloFinderAlgorithm(at_steps=last, min_count=40, n_ranks=4)
    )
    mgr.register(HaloCenterAlgorithm(at_steps=last, threshold=200))
    mgr.register(SubhaloFinderAlgorithm(at_steps=last, min_parent=150, min_size=15))
    mgr.register(SOMassAlgorithm(at_steps=last))
    mgr.register(Level1WriterAlgorithm(at_steps=last, output_dir=str(out), n_ranks=4))
    mgr.register(Level2WriterAlgorithm(at_steps=last, output_dir=str(out)))
    sim = HACCSimulation(
        SimulationConfig(np_per_dim=24, box=40.0, z_initial=30.0, n_steps=last, ng=48),
        analysis_manager=mgr,
    )
    sim.run()
    return sim, mgr.history[last]


def test_tag_index_map_inverse():
    tags = np.asarray([3, 0, 2, 1], dtype=np.uint64)
    m = tag_index_map(tags)
    assert np.array_equal(m[tags], np.arange(4))


def test_fof_results_stored(analyzed):
    sim, ctx = analyzed
    fof = ctx.store["fof"]
    assert len(fof["halos"]) > 0
    assert set(fof["owner_rank"]) == set(fof["halos"])
    assert all(len(m) >= 40 for m in fof["halos"].values())
    assert len(ctx.timings["halo_finder_rank_seconds"]) == 4


def test_fof_membership_tags_valid(analyzed):
    sim, ctx = analyzed
    n = len(sim.particles)
    for tag, members in ctx.store["fof"]["halos"].items():
        assert members.min() >= 0 and members.max() < n
        assert tag == members.min()


def test_center_split_respects_threshold(analyzed):
    sim, ctx = analyzed
    fof = ctx.store["fof"]
    cen = ctx.store["centers"]
    for tag in cen["offloaded_halo_tags"]:
        assert len(fof["halos"][tag]) > 200
    for rec in cen["catalog"].records:
        assert rec["count"] <= 200


def test_centers_are_halo_members(analyzed):
    sim, ctx = analyzed
    fof = ctx.store["fof"]
    for rec in ctx.store["centers"]["catalog"].records:
        assert rec["mbp_tag"] in fof["halos"][int(rec["halo_tag"])]


def test_power_spectrum_stored(analyzed):
    _, ctx = analyzed
    ps = ctx.store["power_spectrum"]
    assert len(ps.k) > 0
    assert np.all(ps.power[ps.k < ps.nyquist / 4] > 0)


def test_subhalos_only_large_parents(analyzed):
    sim, ctx = analyzed
    fof = ctx.store["fof"]
    sub = ctx.store["subhalos"]
    for tag in sub["by_halo"]:
        assert len(fof["halos"][tag]) > 150


def test_so_mass_per_insitu_halo(analyzed):
    _, ctx = analyzed
    cen = ctx.store["centers"]
    som = ctx.store["so_mass"]
    assert set(som) == set(int(t) for t in cen["catalog"]["halo_tag"])
    for res in som.values():
        assert res.mass >= 1.0


def test_level1_file_size(analyzed):
    sim, ctx = analyzed
    l1 = ctx.store["level1"]
    gio = GenericIOFile(l1["path"])
    assert gio.num_blocks == 4
    total_rows = sum(gio.block_rows(b) for b in range(4))
    assert total_rows == len(sim.particles)
    # wire size ~ 36 B/particle (pos 12 + vel 12 + tag 8 + mask 4)
    assert l1["bytes"] == len(sim.particles) * BYTES_PER_PARTICLE


def test_level2_contains_only_offloaded(analyzed):
    sim, ctx = analyzed
    l2 = ctx.store["level2"]
    offloaded = set(ctx.store["centers"]["offloaded_halo_tags"])
    data = GenericIOFile(l2["path"]).read_all()
    assert set(np.unique(data["halo_tag"]).tolist()) == offloaded
    fof = ctx.store["fof"]
    expected_particles = sum(len(fof["halos"][t]) for t in offloaded)
    assert l2["n_particles"] == expected_particles


def test_level2_reduction_factor(analyzed):
    sim, ctx = analyzed
    l1 = ctx.store["level1"]
    l2 = ctx.store["level2"]
    assert l2["bytes"] < l1["bytes"]


def test_scheduling_mixin_every():
    alg = PowerSpectrumAlgorithm(every=5)
    fires = [s for s in range(1, 21) if alg.should_execute(s, 0.5)]
    assert fires == [5, 10, 15, 20]


def test_scheduling_mixin_default_always():
    alg = PowerSpectrumAlgorithm()
    assert alg.should_execute(1, 0.1) and alg.should_execute(99, 0.9)
