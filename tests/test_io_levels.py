"""Data-level size model (Table 1 machinery)."""

import pytest

from repro.io import (
    DataLevel,
    DataLevelSizes,
    HALO_CENTER_RECORD_BYTES,
    level1_bytes,
    level2_bytes,
    level3_bytes,
    table1_row,
)
from repro.sim import BYTES_PER_PARTICLE


def test_level_enum_values():
    assert DataLevel.RAW == 1
    assert DataLevel.REDUCED == 2
    assert DataLevel.DERIVED == 3


def test_level1_is_36_bytes_per_particle():
    assert level1_bytes(1024**3) == 1024**3 * 36


def test_paper_level1_sizes():
    """Table 1: ~40 GB at 1024³ and ~20 TB at 8192³ raw particles."""
    assert level1_bytes(1024**3) == pytest.approx(40e9, rel=0.05)
    assert level1_bytes(8192**3) == pytest.approx(20e12, rel=0.05)


def test_level2_same_record_size():
    assert level2_bytes(100) == 100 * BYTES_PER_PARTICLE


def test_level3_record_order_of_magnitude():
    """Table 1: halo centers ~43 MB at 1024³ — implies O(50) bytes/halo
    for ~1M halos; our record is the same order."""
    n_halos_1024 = 167_686_789 // 512
    size = level3_bytes(n_halos_1024)
    assert 10e6 < size < 100e6


def test_sizes_dataclass_reduction_factor():
    s = DataLevelSizes(n_particles=1000, n_level2_particles=200, n_halos=10)
    assert s.reduction_factor == pytest.approx(5.0)
    assert s.level1 == 36000
    assert s.level2 == 7200
    assert s.level3 == 10 * HALO_CENTER_RECORD_BYTES


def test_reduction_factor_empty_level2():
    s = DataLevelSizes(n_particles=10, n_level2_particles=0, n_halos=1)
    assert s.reduction_factor == float("inf")


def test_scaled_preserves_reduction():
    s = DataLevelSizes(n_particles=1000, n_level2_particles=200, n_halos=10)
    big = s.scaled(512)
    assert big.n_particles == 512_000
    assert big.reduction_factor == pytest.approx(s.reduction_factor)
    assert big.n_halos == 5120


def test_table1_row_keys():
    row = table1_row(DataLevelSizes(100, 20, 5))
    assert set(row) == {"level1_bytes", "level2_bytes", "level3_bytes", "reduction_factor"}
