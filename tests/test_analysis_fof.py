"""FOF halo finding: cross-validation of all three implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fof_grid, fof_kdtree, halo_groups, parallel_fof
from repro.analysis.fof import _fof_brute_periodic
from repro.parallel import CartesianDecomposition, run_spmd


def test_two_points_linked_iff_within_ll():
    pos = np.asarray([[0, 0, 0], [0.5, 0, 0], [3, 0, 0]], dtype=float)
    r = fof_kdtree(pos, linking_length=1.0, min_count=2)
    assert r.n_halos == 1
    assert np.array_equal(r.labels, [0, 0, -1])


def test_chain_percolates():
    """FOF links transitively: a chain of near points is one halo."""
    pos = np.column_stack([np.arange(10) * 0.9, np.zeros(10), np.zeros(10)])
    r = fof_kdtree(pos, linking_length=1.0, min_count=2)
    assert r.n_halos == 1
    assert r.halo_counts[0] == 10


def test_chain_breaks_at_gap():
    x = np.concatenate([np.arange(5) * 0.9, np.arange(5) * 0.9 + 10.0])
    pos = np.column_stack([x, np.zeros(10), np.zeros(10)])
    r = fof_kdtree(pos, linking_length=1.0, min_count=2)
    assert r.n_halos == 2
    assert np.array_equal(r.halo_counts, [5, 5])


def test_min_count_discards_small(blob_points):
    r_all = fof_grid(blob_points, 0.2, min_count=2)
    r_big = fof_grid(blob_points, 0.2, min_count=100)
    assert r_big.n_halos <= r_all.n_halos
    assert np.all(r_big.halo_counts >= 100)


def test_labels_are_min_member_tag(blob_points):
    tags = np.arange(len(blob_points)) * 3 + 7  # arbitrary distinct tags
    r = fof_grid(blob_points, 0.2, tags=tags, min_count=10)
    for halo_tag in r.halo_tags:
        members = tags[r.labels == halo_tag]
        assert halo_tag == members.min()


def test_kdtree_and_grid_agree(blob_points):
    tags = np.arange(len(blob_points))
    a = fof_kdtree(blob_points, 0.2, tags=tags, min_count=10)
    b = fof_grid(blob_points, 0.2, tags=tags, min_count=10)
    assert np.array_equal(a.labels, b.labels)
    assert np.array_equal(a.halo_tags, b.halo_tags)
    assert np.array_equal(a.halo_counts, b.halo_counts)


def test_grid_periodic_matches_brute(rng):
    pos = np.mod(rng.normal(0, 1.5, (300, 3)), 10.0)
    a = fof_grid(pos, 0.5, min_count=5, box=10.0)
    b = _fof_brute_periodic(pos, 0.5, 10.0, None, 5)
    assert np.array_equal(a.labels, b.labels)


def test_periodic_halo_across_boundary():
    """A clump straddling the box edge is one halo with periodicity."""
    pos = np.asarray([[9.9, 5, 5], [0.1, 5, 5], [0.3, 5, 5]])
    r = fof_grid(pos, 0.5, min_count=2, box=10.0)
    assert r.n_halos == 1
    assert r.halo_counts[0] == 3


def test_empty_input():
    r = fof_grid(np.empty((0, 3)), 0.2)
    assert r.n_halos == 0
    assert len(r.labels) == 0


def test_halo_groups_mapping(blob_points):
    r = fof_grid(blob_points, 0.2, min_count=10)
    groups = halo_groups(r)
    assert set(groups) == set(int(t) for t in r.halo_tags)
    for tag, idx in groups.items():
        assert np.all(r.labels[idx] == tag)
    total = sum(len(v) for v in groups.values())
    assert total == int((r.labels >= 0).sum())


def test_members_accessor(blob_points):
    r = fof_grid(blob_points, 0.2, min_count=10)
    tag = int(r.halo_tags[0])
    assert len(r.members(tag)) == r.halo_counts[0]


@pytest.mark.parametrize("local_finder", ["grid", "kdtree"])
@pytest.mark.parametrize("nranks", [2, 8])
def test_parallel_matches_serial(blob_points, local_finder, nranks):
    box = 20.0
    tags = np.arange(len(blob_points))

    def prog(comm):
        decomp = CartesianDecomposition.for_ranks(box, comm.size)
        owners = decomp.rank_of_position(blob_points)
        mine = owners == comm.rank
        return parallel_fof(
            comm,
            decomp,
            blob_points[mine],
            tags[mine],
            linking_length=0.2,
            overload_width=2.0,
            min_count=10,
            local_finder=local_finder,
        )

    results = run_spmd(nranks, prog)
    parallel_halos = {}
    for r in results:
        for tag, members in r.items():
            assert tag not in parallel_halos, "halo owned by two ranks"
            parallel_halos[tag] = members

    serial = fof_grid(blob_points, 0.2, tags=tags, min_count=10, box=box)
    groups = halo_groups(serial)
    assert set(parallel_halos) == set(groups)
    for tag, idx in groups.items():
        assert np.array_equal(np.sort(tags[idx]), parallel_halos[tag])


def test_parallel_halo_spanning_rank_boundary():
    """A halo crossing a rank boundary is found whole by exactly one rank."""
    box = 20.0
    # clump centered on the x=10 plane (the 2-rank boundary)
    local = np.random.default_rng(5)
    pos = np.mod(local.normal([10, 5, 5], 0.2, (100, 3)), box)
    tags = np.arange(100)

    def prog(comm):
        decomp = CartesianDecomposition.for_ranks(box, comm.size)
        owners = decomp.rank_of_position(pos)
        mine = owners == comm.rank
        return parallel_fof(
            comm, decomp, pos[mine], tags[mine], 0.3, overload_width=3.0, min_count=10
        )

    # sanity: the clump truly straddles the boundary
    decomp = CartesianDecomposition.for_ranks(box, 2)
    owners = decomp.rank_of_position(pos)
    assert 0 < (owners == 0).sum() < 100

    results = run_spmd(2, prog)
    found = [h for r in results for h in r.items()]
    serial = fof_grid(pos, 0.3, tags=tags, min_count=10, box=box)
    assert len(found) == serial.n_halos
    # the dominant halo is complete on its single owning rank
    biggest = max(found, key=lambda kv: len(kv[1]))
    assert len(biggest[1]) == serial.halo_counts.max()


def test_parallel_halo_straddling_box_boundary():
    """Regression: a halo across the periodic box edge (not just an
    interior rank boundary) must come out complete — requires the ghost
    images to carry the correct periodic shift sign."""
    box = 20.0
    local = np.random.default_rng(9)
    pos = np.mod(local.normal([0.0, 10, 10], 0.3, (80, 3)), box)  # straddles x=0
    tags = np.arange(80)

    def prog(comm):
        decomp = CartesianDecomposition.for_ranks(box, comm.size)
        owners = decomp.rank_of_position(pos)
        mine = owners == comm.rank
        return parallel_fof(
            comm, decomp, pos[mine], tags[mine], 0.4, overload_width=3.0, min_count=10
        )

    results = run_spmd(8, prog)
    found = {t: m for r in results for t, m in r.items()}
    serial = fof_grid(pos, 0.4, tags=tags, min_count=10, box=box)
    groups = halo_groups(serial)
    assert set(found) == set(groups)
    for tag, idx in groups.items():
        assert np.array_equal(np.sort(tags[idx]), found[tag])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), ll=st.floats(0.2, 0.8))
def test_prop_kdtree_equals_brute_force(seed, ll):
    """k-d FOF must equal the O(n²) graph components for random input."""
    local = np.random.default_rng(seed)
    pos = local.uniform(0, 5, (80, 3))
    result = fof_kdtree(pos, ll, min_count=1)
    # brute force via union of all close pairs
    d2 = np.sum((pos[:, None, :] - pos[None, :, :]) ** 2, axis=-1)
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(80))
    ii, jj = np.nonzero(np.triu(d2 <= ll * ll, k=1))
    g.add_edges_from(zip(ii.tolist(), jj.tolist()))
    comps = list(nx.connected_components(g))
    assert result.n_halos == len(comps)
    for comp in comps:
        assert len({result.labels[i] for i in comp}) == 1
