"""Runtime sanitizer tests: guard_kernel, shm leak tracker, determinism.

Everything is gated on ``REPRO_SANITIZE``; the fixtures flip it through
``monkeypatch`` so tests are hermetic regardless of the outer env.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.sanitize import (
    DeterminismError,
    SanitizerError,
    check_determinism,
    guard_kernel,
    leak_report,
    output_hash,
    reset_leak_tracker,
    sanitize_enabled,
    track_store,
    untrack_store,
)


@pytest.fixture
def sanitize_on(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    reset_leak_tracker()
    yield
    reset_leak_tracker()


@pytest.fixture
def sanitize_off(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)


# -- gating --------------------------------------------------------------------


@pytest.mark.parametrize(
    ("value", "expected"),
    [("1", True), ("true", True), ("YES", True), ("on", True), ("0", False), ("", False)],
)
def test_sanitize_enabled_parsing(monkeypatch, value, expected):
    monkeypatch.setenv("REPRO_SANITIZE", value)
    assert sanitize_enabled() is expected


# -- guard_kernel --------------------------------------------------------------


@guard_kernel
def _nan_kernel(x: np.ndarray) -> np.ndarray:
    y = np.array(x, dtype=float)
    y[0] = np.nan
    return y


@guard_kernel(name="drifty")
def _drift_kernel(x: np.ndarray) -> np.ndarray:
    return x.astype(np.float32)


@guard_kernel
def _good_kernel(x: np.ndarray) -> np.ndarray:
    return x * 2.0


def test_guard_trips_on_nan(sanitize_on):
    with pytest.raises(SanitizerError, match="non-finite"):
        _nan_kernel(np.ones(4))


def test_guard_trips_on_inf_scalar(sanitize_on):
    @guard_kernel
    def inf_scalar(x: np.ndarray) -> float:
        return float(np.inf)

    with pytest.raises(SanitizerError, match="non-finite"):
        inf_scalar(np.ones(2))


def test_guard_trips_on_dtype_drift(sanitize_on):
    with pytest.raises(SanitizerError, match="drift"):
        _drift_kernel(np.ones(4, dtype=np.float64))


def test_guard_passes_clean_kernel(sanitize_on):
    out = _good_kernel(np.ones(4))
    np.testing.assert_array_equal(out, 2.0 * np.ones(4))


def test_guard_noop_when_disabled(sanitize_off):
    out = _nan_kernel(np.ones(4))  # no raise: sanitizer off
    assert np.isnan(out[0])
    out32 = _drift_kernel(np.ones(4))
    assert out32.dtype == np.float32


def test_guard_walks_dataclass_outputs(sanitize_on):
    from repro.analysis.so import SOResult

    @guard_kernel
    def wrapped(x: np.ndarray) -> SOResult:
        return SOResult(radius=float(np.nan), mass=1.0, count=1, converged=True)

    with pytest.raises(SanitizerError, match="non-finite"):
        wrapped(np.ones(3))


def test_guarded_so_mass_works(sanitize_on):
    from repro.analysis.so import so_mass

    rng = np.random.default_rng(7)
    pos = rng.normal(scale=0.05, size=(400, 3)) + 0.5
    res = so_mass(pos, np.array([0.5, 0.5, 0.5]), particle_mass=1.0, reference_density=1.0)
    assert res.mass > 0


# -- shared-memory leak tracker ------------------------------------------------


def test_leak_tracker_reports_unreleased_store(sanitize_on):
    from repro.exec.sharedmem import SharedParticleStore

    store = SharedParticleStore.create(pos=np.ones((8, 3)), starts=np.arange(3, dtype=np.int64))
    try:
        leaks = leak_report()
        assert len(leaks) == 1
        assert sorted(leaks[0]["fields"]) == ["pos", "starts"]
    finally:
        store.unlink()
    assert leak_report() == []


def test_leak_tracker_manual_api(sanitize_on):
    class FakeStore:
        fields = ["pos"]
        spec = {"pos": ("seg", (4,), "<f8")}
        nbytes = 32

    s = FakeStore()
    track_store(s)
    assert leak_report() == [{"fields": ["pos"], "segments": ["seg"], "nbytes": 32}]
    untrack_store(s)
    assert leak_report() == []


def test_leak_tracker_noop_when_disabled(sanitize_off):
    from repro.exec.sharedmem import SharedParticleStore

    reset_leak_tracker()
    store = SharedParticleStore.create(pos=np.ones((4, 3)))
    try:
        assert leak_report() == []
    finally:
        store.unlink()


def test_atexit_report_prints(sanitize_on, capsys):
    from repro.check.sanitize import _atexit_report

    class FakeStore:
        fields = ["vel"]
        spec = {"vel": ("segX", (4,), "<f8")}
        nbytes = 99

    track_store(FakeStore())
    _atexit_report()
    err = capsys.readouterr().err
    assert "never" in err and "RPR005" in err and "segX" in err
    reset_leak_tracker()
    _atexit_report()
    assert capsys.readouterr().err == ""


# -- output hashing ------------------------------------------------------------


def test_output_hash_stable_and_ulp_sensitive():
    a = np.linspace(0.0, 1.0, 16)
    assert output_hash(a) == output_hash(a.copy())
    b = a.copy()
    b[3] = np.nextafter(b[3], 2.0)  # one ulp
    assert output_hash(a) != output_hash(b)


def test_output_hash_dict_order_insensitive():
    assert output_hash({"a": 1, "b": 2}) == output_hash({"b": 2, "a": 1})


def test_output_hash_dataclass():
    from repro.analysis.so import SOResult

    x = SOResult(radius=1.0, mass=2.0, count=3, converged=True)
    y = SOResult(radius=1.0, mass=2.0, count=3, converged=True)
    z = SOResult(radius=1.0, mass=2.5, count=3, converged=True)
    assert output_hash(x) == output_hash(y)
    assert output_hash(x) != output_hash(z)


# -- determinism harness -------------------------------------------------------


def test_check_determinism_passes_pure_kernel():
    def pure(seed: int) -> np.ndarray:
        return np.random.default_rng(seed).standard_normal(32)

    report = check_determinism(pure, 42, runs=3)
    assert report.ok and report.distinct == 1 and report.runs == 3


def test_check_determinism_catches_order_dependent_sum():
    calls = {"n": 0}

    def order_dependent() -> float:
        # injected bug: float32 accumulation whose order flips per call —
        # catastrophic cancellation guarantees different rounded sums
        calls["n"] += 1
        vals = np.array([1e8, -1e8, 1.0], dtype=np.float32)
        if calls["n"] % 2 == 0:
            vals = vals[::-1]
        acc = np.float32(0.0)
        for v in vals:
            acc = np.float32(acc + v)
        return float(acc)

    with pytest.raises(DeterminismError, match="distinct output"):
        check_determinism(order_dependent)


def test_check_determinism_catches_unseeded_rng():
    def noisy() -> np.ndarray:
        rng = np.random.default_rng()  # repro: noqa[RPR001] - deliberate bug
        return rng.standard_normal(8)

    report = check_determinism(noisy, raise_on_mismatch=False, runs=4)
    assert not report.ok
    assert report.distinct > 1


def test_check_determinism_requires_two_runs():
    with pytest.raises(ValueError):
        check_determinism(lambda: 1, runs=1)
