"""Disjoint-set forest invariants (+ hypothesis model check)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import DisjointSet


def test_initially_all_singletons():
    dsu = DisjointSet(5)
    assert dsu.n_components == 5
    assert len(set(dsu.labels())) == 5


def test_union_reduces_components():
    dsu = DisjointSet(4)
    dsu.union(0, 1)
    assert dsu.n_components == 3
    dsu.union(0, 1)  # idempotent
    assert dsu.n_components == 3


def test_connected_transitive():
    dsu = DisjointSet(5)
    dsu.union(0, 1)
    dsu.union(1, 2)
    assert dsu.connected(0, 2)
    assert not dsu.connected(0, 3)


def test_labels_canonical_per_component():
    dsu = DisjointSet(6)
    dsu.union(0, 3)
    dsu.union(3, 5)
    dsu.union(1, 2)
    labels = dsu.labels()
    assert labels[0] == labels[3] == labels[5]
    assert labels[1] == labels[2]
    assert labels[0] != labels[1] != labels[4]


def test_component_sizes():
    dsu = DisjointSet(6)
    dsu.union_pairs([0, 1, 3], [1, 2, 4])
    roots, sizes = dsu.component_sizes()
    assert sorted(sizes) == [1, 2, 3]


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        DisjointSet(-1)


def test_empty_set():
    dsu = DisjointSet(0)
    assert dsu.n_components == 0
    assert len(dsu.labels()) == 0


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 60),
    edges=st.lists(st.tuples(st.integers(0, 59), st.integers(0, 59)), max_size=120),
)
def test_prop_matches_networkx_components(n, edges):
    """The DSU must agree with networkx's connected components."""
    import networkx as nx

    edges = [(a % n, b % n) for a, b in edges]
    dsu = DisjointSet(n)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for a, b in edges:
        dsu.union(a, b)
        g.add_edge(a, b)
    labels = dsu.labels()
    components = list(nx.connected_components(g))
    assert dsu.n_components == len(components)
    for comp in components:
        comp = sorted(comp)
        assert len({labels[i] for i in comp}) == 1
    # distinct components have distinct labels
    reps = {labels[min(c)] for c in components}
    assert len(reps) == len(components)
