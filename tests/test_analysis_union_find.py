"""Disjoint-set forest invariants (+ hypothesis model check)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import DisjointSet, GrowableDisjointSet


class ReferenceDSU:
    """The obvious dict-backed recursive union-find.

    Kept as the behavioral reference the array forest is cross-validated
    against: no rank/size heuristics, no path compression — just the
    definition of the partition.
    """

    def __init__(self, n):
        self.parent = {i: i for i in range(n)}

    def find(self, x):
        while self.parent[x] != x:
            x = self.parent[x]
        return x

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

    def partition(self):
        groups = {}
        for i in self.parent:
            groups.setdefault(self.find(i), []).append(i)
        return sorted(tuple(sorted(g)) for g in groups.values())


def test_initially_all_singletons():
    dsu = DisjointSet(5)
    assert dsu.n_components == 5
    assert len(set(dsu.labels())) == 5


def test_union_reduces_components():
    dsu = DisjointSet(4)
    dsu.union(0, 1)
    assert dsu.n_components == 3
    dsu.union(0, 1)  # idempotent
    assert dsu.n_components == 3


def test_connected_transitive():
    dsu = DisjointSet(5)
    dsu.union(0, 1)
    dsu.union(1, 2)
    assert dsu.connected(0, 2)
    assert not dsu.connected(0, 3)


def test_labels_canonical_per_component():
    dsu = DisjointSet(6)
    dsu.union(0, 3)
    dsu.union(3, 5)
    dsu.union(1, 2)
    labels = dsu.labels()
    assert labels[0] == labels[3] == labels[5]
    assert labels[1] == labels[2]
    assert labels[0] != labels[1] != labels[4]


def test_component_sizes():
    dsu = DisjointSet(6)
    dsu.union_pairs([0, 1, 3], [1, 2, 4])
    roots, sizes = dsu.component_sizes()
    assert sorted(sizes) == [1, 2, 3]


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        DisjointSet(-1)


def test_empty_set():
    dsu = DisjointSet(0)
    assert dsu.n_components == 0
    assert len(dsu.labels()) == 0


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 60),
    edges=st.lists(st.tuples(st.integers(0, 59), st.integers(0, 59)), max_size=120),
)
def test_prop_matches_networkx_components(n, edges):
    """The DSU must agree with networkx's connected components."""
    import networkx as nx

    edges = [(a % n, b % n) for a, b in edges]
    dsu = DisjointSet(n)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for a, b in edges:
        dsu.union(a, b)
        g.add_edge(a, b)
    labels = dsu.labels()
    components = list(nx.connected_components(g))
    assert dsu.n_components == len(components)
    for comp in components:
        comp = sorted(comp)
        assert len({labels[i] for i in comp}) == 1
    # distinct components have distinct labels
    reps = {labels[min(c)] for c in components}
    assert len(reps) == len(components)


def _partition_from_labels(labels):
    groups = {}
    for i, lab in enumerate(labels):
        groups.setdefault(int(lab), []).append(i)
    return sorted(tuple(sorted(g)) for g in groups.values())


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 50),
    edges=st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)), max_size=100),
)
def test_prop_array_forest_matches_reference_dsu(n, edges):
    """The optimized forest must induce the reference partition exactly."""
    edges = [(a % n, b % n) for a, b in edges]
    fast = DisjointSet(n)
    ref = ReferenceDSU(n)
    for a, b in edges:
        fast.union(a, b)
        ref.union(a, b)
    assert _partition_from_labels(fast.labels()) == ref.partition()
    assert fast.n_components == len(ref.partition())


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 50),
    edges=st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)), max_size=100),
)
def test_prop_growable_forest_matches_reference_dsu(n, edges):
    """Growing one element at a time must yield the same partition."""
    edges = [(a % n, b % n) for a, b in edges]
    dsu = GrowableDisjointSet(capacity=1)
    for _ in range(n):
        dsu.add()
    ref = ReferenceDSU(n)
    for a, b in edges:
        dsu.union(a, b)
        ref.union(a, b)
    assert _partition_from_labels(dsu.labels()) == ref.partition()
    assert len(dsu) == n


def test_find_many_matches_scalar_find():
    dsu = DisjointSet(10)
    dsu.union_pairs([0, 1, 5, 7], [2, 2, 6, 8])
    xs = np.array([0, 1, 2, 5, 6, 7, 8, 9])
    roots = dsu.find_many(xs)
    assert [dsu.find(int(x)) for x in xs] == roots.tolist()
    # write-back: queried elements now point straight at their roots
    assert np.array_equal(dsu.parent[xs], roots)


def test_growable_add_returns_first_new_id():
    dsu = GrowableDisjointSet(capacity=2)
    assert dsu.add(3) == 0
    assert dsu.add(2) == 3  # forces a buffer growth past capacity=2
    assert len(dsu) == 5
    assert dsu.n_components == 5
    assert dsu.add(0) == 5  # no-op append is allowed
    with pytest.raises(ValueError):
        dsu.add(-1)


def test_growable_compact_renumbers_and_remaps():
    dsu = GrowableDisjointSet()
    dsu.add(6)
    dsu.union(0, 1)
    dsu.union(2, 3)
    roots = dsu.roots()
    assert len(roots) == 4
    # keep the components of 0 and 2; drop 4 and 5
    keep = np.array([dsu.find(0), dsu.find(2)])
    old = dsu.compact(keep)
    assert np.array_equal(old, np.sort(keep))
    assert len(dsu) == 2
    assert dsu.n_components == 2
    # remap contract: new id of an old root is its rank in `old`
    new_of_0 = np.searchsorted(old, keep[0])
    new_of_2 = np.searchsorted(old, keep[1])
    assert sorted([int(new_of_0), int(new_of_2)]) == [0, 1]
    # survivors are fresh singletons that can union again
    dsu.union(0, 1)
    assert dsu.n_components == 1


def test_growable_compact_rejects_out_of_range():
    dsu = GrowableDisjointSet()
    dsu.add(3)
    with pytest.raises(IndexError):
        dsu.compact(np.array([5]))
    with pytest.raises(IndexError):
        dsu.compact(np.array([-1]))


def test_growable_compact_to_empty():
    dsu = GrowableDisjointSet()
    dsu.add(4)
    dsu.compact(np.empty(0, dtype=np.intp))
    assert len(dsu) == 0
    assert dsu.n_components == 0
    assert dsu.add(2) == 0  # reusable after full compaction
