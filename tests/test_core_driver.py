"""Live combined-workflow driver: end-to-end integration tests."""

import os

import numpy as np
import pytest

from repro.core import offline_center_job, run_combined_workflow
from repro.sim import SimulationConfig


@pytest.fixture(scope="module")
def small_config():
    return SimulationConfig(np_per_dim=20, box=36.0, z_initial=30.0, n_steps=16)


@pytest.fixture(scope="module")
def simple_run(small_config, tmp_path_factory):
    spool = tmp_path_factory.mktemp("spool_simple")
    return run_combined_workflow(
        small_config, spool, threshold=250, min_count=40, n_ranks=4
    )


def test_catalog_complete(simple_run):
    """Merged catalog covers every halo exactly once."""
    tags = simple_run.catalog["halo_tag"]
    assert len(tags) == len(np.unique(tags))
    assert len(simple_run.catalog) == len(simple_run.insitu_catalog) + len(
        simple_run.offline_catalog
    )


def test_offloaded_halos_analyzed_offline(simple_run):
    off_tags = set(simple_run.offloaded_halo_tags)
    assert set(int(t) for t in simple_run.offline_catalog["halo_tag"]) == off_tags
    for rec in simple_run.offline_catalog.records:
        assert rec["count"] > 250
    for rec in simple_run.insitu_catalog.records:
        assert rec["count"] <= 250


def test_level2_files_written(simple_run):
    assert len(simple_run.level2_paths) == 1
    assert os.path.exists(simple_run.level2_paths[0])


def test_coscheduled_produces_identical_results(small_config, tmp_path_factory, simple_run):
    spool = tmp_path_factory.mktemp("spool_cosched")
    cosched = run_combined_workflow(
        small_config, spool, threshold=250, min_count=40, n_ranks=4, coschedule=True
    )
    assert np.array_equal(cosched.catalog.records, simple_run.catalog.records)
    assert cosched.listener_stats.jobs_submitted >= 1


def test_combined_equals_full_insitu(small_config, tmp_path_factory, simple_run):
    """Workflow correctness: splitting the center finding must not change
    any center (the paper's final merge step reconciles to the same
    catalog a full in-situ run would produce)."""
    spool = tmp_path_factory.mktemp("spool_insitu")
    full = run_combined_workflow(
        small_config, spool, threshold=10**9, min_count=40, n_ranks=4
    )
    assert len(full.offloaded_halo_tags) == 0
    assert np.array_equal(
        full.catalog.records["halo_tag"], simple_run.catalog.records["halo_tag"]
    )
    assert np.array_equal(
        full.catalog.records["mbp_tag"], simple_run.catalog.records["mbp_tag"]
    )
    assert np.allclose(
        full.catalog.records["potential"], simple_run.catalog.records["potential"]
    )


def test_offline_center_job_single_block(simple_run):
    """The Moonlight pattern: analyzing one block at a time still yields
    centers for the block's halos."""
    path = simple_run.level2_paths[0]
    from repro.io import GenericIOFile

    gio = GenericIOFile(path)
    per_block = []
    for b in range(gio.num_blocks):
        cat = offline_center_job(path, block=b)
        per_block.append(cat)
    total = sum(len(c) for c in per_block)
    assert total == len(simple_run.offline_catalog)


def test_offline_center_job_empty_file(tmp_path):
    from repro.io import write_genericio

    path = tmp_path / "l2_step0000.gio"
    write_genericio(
        path,
        [
            {
                "pos": np.empty((0, 3), dtype=np.float32),
                "vel": np.empty((0, 3), dtype=np.float32),
                "tag": np.empty(0, dtype=np.uint64),
                "halo_tag": np.empty(0, dtype=np.int64),
            }
        ],
    )
    cat = offline_center_job(path)
    assert len(cat) == 0


def test_centers_from_level2_counts_match_membership():
    """The vectorized per-halo particle counts (one np.unique pass, not a
    per-tag scan) must equal exact membership sizes, in result order."""
    from repro.core.driver import centers_from_level2_arrays

    rng = np.random.default_rng(99)
    sizes = {11: 60, 5: 45, 42: 80, 7: 52}
    pos_parts, tag_parts, halo_parts = [], [], []
    next_tag = 0
    for halo, n in sizes.items():
        center = rng.uniform(2, 18, 3)
        pos_parts.append(rng.normal(center, 0.2, (n, 3)))
        tag_parts.append(np.arange(next_tag, next_tag + n, dtype=np.int64))
        halo_parts.append(np.full(n, halo, dtype=np.int64))
        next_tag += n
    data = {
        "pos": np.concatenate(pos_parts),
        "tag": np.concatenate(tag_parts),
        "halo_tag": np.concatenate(halo_parts),
    }
    cat = centers_from_level2_arrays(data)
    assert len(cat) == len(sizes)
    got = {int(r["halo_tag"]): int(r["count"]) for r in cat.records}
    assert got == sizes
