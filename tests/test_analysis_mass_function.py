"""Halo mass function binning, threshold split, volume scaling."""

import numpy as np
import pytest

from repro.analysis import mass_function, scale_counts, split_by_threshold


def test_mass_function_totals(rng):
    counts = rng.integers(40, 10_000, 500)
    mf = mass_function(counts)
    assert mf.total == 500
    assert len(mf.counts) == 32
    assert len(mf.bin_edges) == 33


def test_bins_are_log_spaced():
    mf = mass_function(np.asarray([10, 100, 1000, 10000]), n_bins=3)
    ratios = mf.bin_edges[1:] / mf.bin_edges[:-1]
    assert np.allclose(ratios, ratios[0])


def test_bin_centers_geometric():
    mf = mass_function(np.asarray([10.0, 1000.0]), n_bins=2)
    assert np.allclose(
        mf.bin_centers, np.sqrt(mf.bin_edges[:-1] * mf.bin_edges[1:])
    )


def test_every_halo_lands_in_a_bin(rng):
    counts = rng.integers(40, 500_000, 1000)
    mf = mass_function(counts, n_bins=20)
    assert mf.counts.sum() == 1000


def test_empty_catalog():
    mf = mass_function(np.empty(0))
    assert mf.total == 0


def test_explicit_range():
    mf = mass_function(np.asarray([50, 150]), lo=10, hi=1000, n_bins=2)
    assert mf.bin_edges[0] == pytest.approx(10)
    assert mf.bin_edges[-1] == pytest.approx(1000)


def test_split_by_threshold_paper_semantics():
    """Halos with count <= threshold are in-situ; larger are off-loaded."""
    counts = np.asarray([100, 300_000, 300_001, 2_000_000])
    in_situ, off = split_by_threshold(counts, 300_000)
    assert np.array_equal(in_situ, [True, True, False, False])
    assert np.array_equal(off, ~in_situ)


def test_split_fraction_like_figure3(rng):
    """With a steep mass function the off-loaded fraction is tiny by
    count (paper: 84,719 of 167,686,789 = 0.05%)."""
    from repro.core import synthetic_halo_catalog

    counts = synthetic_halo_catalog(100_000, seed=3)
    in_situ, off = split_by_threshold(counts, 300_000)
    assert off.sum() / len(counts) < 0.01
    assert in_situ.sum() + off.sum() == len(counts)


def test_scale_counts_volume_factor():
    mf = mass_function(np.asarray([50, 50, 500, 5000]), n_bins=4)
    big = scale_counts(mf, 512)
    assert big.total == pytest.approx(mf.total * 512, rel=0.01)
    assert np.array_equal(big.bin_edges, mf.bin_edges)


def test_scale_counts_invalid():
    mf = mass_function(np.asarray([50.0]))
    with pytest.raises(ValueError):
        scale_counts(mf, 0)


def test_measured_mass_function_is_steep(mini_sim):
    """The mini-HACC run's halo mass function falls steeply with mass —
    the shape behind Figure 3."""
    from repro.analysis import fof_grid

    p = mini_sim.particles
    r = fof_grid(
        p.pos, 0.2 * mini_sim.config.box / mini_sim.config.np_per_dim,
        min_count=20, box=mini_sim.config.box,
    )
    assert r.n_halos >= 10
    mf = mass_function(r.halo_counts.astype(float), n_bins=6)
    nz = mf.counts > 0
    # counts in the lowest occupied bin exceed the highest occupied bin
    first, last = np.flatnonzero(nz)[0], np.flatnonzero(nz)[-1]
    assert mf.counts[first] > mf.counts[last]
