"""FLRW background: expansion, growth factor, code-unit factors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Cosmology, QCONTINUUM_COSMOLOGY, a_of_z, z_of_a


def test_a_z_roundtrip():
    for z in (0.0, 0.5, 10.0, 199.0):
        assert z_of_a(a_of_z(z)) == pytest.approx(z)


def test_efunc_today_is_one():
    assert QCONTINUUM_COSMOLOGY.efunc(1.0) == pytest.approx(1.0)


def test_efunc_matter_dominated_scaling():
    cos = Cosmology(omega_m=1.0, omega_b=0.04)
    # E(a) = a^-1.5 in an EdS universe
    assert cos.efunc(0.25) == pytest.approx(0.25**-1.5)


def test_omega_m_a_limits():
    cos = QCONTINUUM_COSMOLOGY
    assert cos.omega_m_a(1.0) == pytest.approx(cos.omega_m)
    assert cos.omega_m_a(1e-3) == pytest.approx(1.0, abs=1e-4)  # early times


def test_growth_normalized_today():
    assert QCONTINUUM_COSMOLOGY.growth_factor(1.0) == pytest.approx(1.0)


def test_growth_eds_equals_a():
    cos = Cosmology(omega_m=1.0, omega_b=0.04)
    for a in (0.1, 0.3, 0.7):
        assert cos.growth_factor(a) == pytest.approx(a, rel=1e-3)


def test_growth_lcdm_suppressed_at_late_times():
    cos = QCONTINUUM_COSMOLOGY
    # Lambda suppresses growth: D(a) < a at late times (normalized D(1)=1
    # means D(a)/a > 1 for a < 1)
    assert cos.growth_factor(0.5) > 0.5


def test_growth_monotonic():
    cos = QCONTINUUM_COSMOLOGY
    a = np.linspace(0.02, 1.0, 30)
    d = cos.growth_factor(a)
    assert np.all(np.diff(d) > 0)


def test_growth_rate_limits():
    cos = QCONTINUUM_COSMOLOGY
    assert cos.growth_rate(1e-3) == pytest.approx(1.0, abs=1e-3)
    assert 0.4 < cos.growth_rate(1.0) < 0.6  # ~omega_m^0.55


def test_f_drift_definition():
    cos = QCONTINUUM_COSMOLOGY
    a = 0.37
    assert cos.f_drift(a) == pytest.approx(1.0 / (a * cos.efunc(a)))


def test_poisson_factor_scaling():
    cos = QCONTINUUM_COSMOLOGY
    assert cos.poisson_factor(0.5) == pytest.approx(2 * cos.poisson_factor(1.0))


@pytest.mark.parametrize(
    "kwargs",
    [
        {"omega_m": 0.0},
        {"omega_m": 1.5},
        {"omega_b": 0.5, "omega_m": 0.3},
        {"h": -1.0},
        {"sigma8": 0.0},
    ],
)
def test_invalid_parameters_raise(kwargs):
    with pytest.raises(ValueError):
        Cosmology(**kwargs)


@settings(max_examples=20, deadline=None)
@given(a=st.floats(0.01, 1.0))
def test_prop_growth_bounded_by_eds(a):
    """ΛCDM growth lies between 0 and the EdS value a (after normalizing
    at a=1 the ratio D/a decreases with a)."""
    cos = QCONTINUUM_COSMOLOGY
    d = cos.growth_factor(a)
    assert 0 < d <= 1.0
    assert d >= a * 0.99  # D(a)/a >= 1 for normalized LCDM growth
