"""Particle redistribution: conservation, ownership, accounting."""

import numpy as np
import pytest

from repro.parallel import (
    CartesianDecomposition,
    SpmdError,
    alltoallv_arrays,
    redistribute_arrays,
    run_spmd,
)


def test_redistribution_conserves_particles(rng):
    box = 80.0
    n_per_rank = 100

    def prog(comm):
        local_rng = np.random.default_rng(comm.rank)
        arrays = {
            "pos": local_rng.uniform(0, box, (n_per_rank, 3)),
            "tag": np.arange(n_per_rank, dtype=np.int64) + comm.rank * n_per_rank,
        }
        decomp = CartesianDecomposition.for_ranks(box, comm.size)
        merged, stats = redistribute_arrays(comm, decomp, arrays)
        return merged["tag"], stats

    results = run_spmd(4, prog)
    all_tags = np.sort(np.concatenate([tags for tags, _ in results]))
    assert np.array_equal(all_tags, np.arange(4 * n_per_rank))


def test_redistribution_ownership_correct():
    box = 40.0

    def prog(comm):
        local_rng = np.random.default_rng(comm.rank + 10)
        decomp = CartesianDecomposition.for_ranks(box, comm.size)
        arrays = {"pos": local_rng.uniform(0, box, (50, 3))}
        merged, _ = redistribute_arrays(comm, decomp, arrays)
        owners = decomp.rank_of_position(merged["pos"])
        return np.all(owners == comm.rank)

    assert all(run_spmd(4, prog))


def test_stats_account_for_every_particle():
    box = 40.0

    def prog(comm):
        local_rng = np.random.default_rng(comm.rank)
        decomp = CartesianDecomposition.for_ranks(box, comm.size)
        arrays = {"pos": local_rng.uniform(0, box, (64, 3))}
        _, stats = redistribute_arrays(comm, decomp, arrays)
        return stats

    results = run_spmd(4, prog)
    for stats in results:
        assert stats.total_particles == 64
        assert stats.bytes_sent >= 0


def test_multiple_attribute_arrays_travel_together():
    box = 40.0

    def prog(comm):
        local_rng = np.random.default_rng(comm.rank)
        decomp = CartesianDecomposition.for_ranks(box, comm.size)
        pos = local_rng.uniform(0, box, (30, 3))
        # value encodes position so we can verify alignment after exchange
        checksum = pos.sum(axis=1)
        merged, _ = redistribute_arrays(
            comm, decomp, {"pos": pos, "checksum": checksum}
        )
        return np.allclose(merged["pos"].sum(axis=1), merged["checksum"])

    assert all(run_spmd(4, prog))


def test_length_mismatch_raises():
    def prog(comm):
        decomp = CartesianDecomposition.for_ranks(10.0, comm.size)
        redistribute_arrays(
            comm, decomp, {"pos": np.zeros((3, 3)), "tag": np.zeros(2)}
        )

    with pytest.raises(SpmdError):
        run_spmd(2, prog, timeout=3.0)


def test_empty_rank_is_fine():
    def prog(comm):
        decomp = CartesianDecomposition.for_ranks(10.0, comm.size)
        if comm.rank == 0:
            local_rng = np.random.default_rng(0)
            arrays = {"pos": local_rng.uniform(0, 10, (40, 3))}
        else:
            arrays = {"pos": np.empty((0, 3))}
        merged, _ = redistribute_arrays(comm, decomp, arrays)
        return len(merged["pos"])

    assert sum(run_spmd(4, prog)) == 40


def test_alltoallv_requires_one_chunk_per_rank():
    def prog(comm):
        alltoallv_arrays(comm, [{}])  # wrong length

    with pytest.raises(SpmdError):
        run_spmd(2, prog, timeout=3.0)
