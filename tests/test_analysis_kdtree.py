"""Balanced k-d tree: structure, radius queries, kNN (vs brute force)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import KDTree
from repro.analysis.kdtree import box_gap_sq, box_span_sq


def test_empty_tree():
    tree = KDTree(np.empty((0, 3)))
    assert tree.n_nodes == 0
    assert len(tree.query_radius(np.zeros(3), 1.0)) == 0


def test_single_point():
    tree = KDTree(np.asarray([[1.0, 2.0, 3.0]]))
    assert tree.n_nodes == 1
    assert tree.nodes[0].is_leaf


def test_balanced_depth(rng):
    pts = rng.uniform(0, 1, (1024, 3))
    tree = KDTree(pts, leaf_size=1)
    # perfectly balanced: depth == log2(1024) = 10 (allow +1 slack)
    assert tree.depth() <= 11


def test_leaf_size_respected(rng):
    pts = rng.uniform(0, 1, (200, 3))
    tree = KDTree(pts, leaf_size=8)
    for node in tree.nodes:
        if node.is_leaf:
            assert node.count <= 8


def test_index_is_permutation(rng):
    pts = rng.uniform(0, 1, (100, 3))
    tree = KDTree(pts)
    assert np.array_equal(np.sort(tree.index), np.arange(100))


def test_bounding_boxes_contain_points(rng):
    pts = rng.uniform(0, 1, (300, 3))
    tree = KDTree(pts, leaf_size=4)
    for node in tree.nodes:
        covered = pts[tree.index[node.start : node.end]]
        assert np.all(covered >= node.lo - 1e-12)
        assert np.all(covered <= node.hi + 1e-12)


def test_query_radius_matches_brute_force(rng):
    pts = rng.uniform(0, 10, (500, 3))
    tree = KDTree(pts, leaf_size=8)
    for _ in range(10):
        center = rng.uniform(0, 10, 3)
        r = rng.uniform(0.5, 3.0)
        got = np.sort(tree.query_radius(center, r))
        expect = np.flatnonzero(np.sum((pts - center) ** 2, axis=1) <= r * r)
        assert np.array_equal(got, expect)


def test_query_knn_matches_brute_force(rng):
    pts = rng.uniform(0, 10, (400, 3))
    tree = KDTree(pts, leaf_size=8)
    for _ in range(10):
        center = rng.uniform(0, 10, 3)
        idx, dist = tree.query_knn(center, 7)
        d_all = np.sqrt(np.sum((pts - center) ** 2, axis=1))
        expect = np.sort(d_all)[:7]
        assert np.allclose(np.sort(dist), expect)
        assert np.all(np.diff(dist) >= -1e-12)  # ascending


def test_query_knn_k_clamped(rng):
    pts = rng.uniform(0, 1, (5, 3))
    tree = KDTree(pts)
    idx, dist = tree.query_knn(np.zeros(3), 10)
    assert len(idx) == 5


def test_query_knn_invalid_k():
    tree = KDTree(np.zeros((3, 3)))
    with pytest.raises(ValueError):
        tree.query_knn(np.zeros(3), 0)


def test_invalid_leaf_size():
    with pytest.raises(ValueError):
        KDTree(np.zeros((3, 3)), leaf_size=0)


def test_box_gap_and_span():
    lo_a, hi_a = np.zeros(3), np.ones(3)
    lo_b, hi_b = np.asarray([2.0, 0, 0]), np.asarray([3.0, 1, 1])
    assert box_gap_sq(lo_a, hi_a, lo_b, hi_b) == pytest.approx(1.0)
    assert box_span_sq(lo_a, hi_a, lo_b, hi_b) == pytest.approx(9.0 + 1 + 1)
    # overlapping boxes: gap 0
    assert box_gap_sq(lo_a, hi_a, lo_a, hi_a) == 0.0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 120),
    k=st.integers(1, 8),
)
def test_prop_knn_distances_are_k_smallest(seed, n, k):
    local = np.random.default_rng(seed)
    pts = local.uniform(0, 5, (n, 3))
    tree = KDTree(pts, leaf_size=4)
    center = local.uniform(0, 5, 3)
    k = min(k, n)
    _, dist = tree.query_knn(center, k)
    d_all = np.sort(np.sqrt(np.sum((pts - center) ** 2, axis=1)))
    assert np.allclose(np.sort(dist), d_all[:k])
