"""Unit tests for the repro.check static-analysis rules (RPR001-RPR010).

Each rule gets at least one positive fixture (violating source that must
be flagged), one negative fixture (conforming source that must pass),
and a ``# repro: noqa[...]`` suppression check.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.check import CheckConfig, all_rules, analyze_source
from repro.check.config import path_in_scope

ANALYSIS = "analysis/snippet.py"  # path fragment inside the scoped dirs
UNSCOPED = "sim/snippet.py"  # outside RPR002/RPR003 scopes


def run(src: str, rel: str = ANALYSIS, config: CheckConfig | None = None):
    return analyze_source(textwrap.dedent(src), path=f"src/repro/{rel}", rel=rel, config=config)


def codes(src: str, rel: str = ANALYSIS, config: CheckConfig | None = None) -> list[str]:
    return [f.code for f in run(src, rel=rel, config=config).findings]


# -- registry ------------------------------------------------------------------


def test_registry_has_all_fifteen_rules():
    assert sorted(all_rules()) == [f"RPR{i:03d}" for i in range(1, 16)]


def test_parse_error_reports_rpr000():
    res = analyze_source("def f(:\n", path="broken.py")
    assert [f.code for f in res.findings] == ["RPR000"]
    assert res.exit_code == 1


# -- RPR001: unseeded RNG ------------------------------------------------------


def test_rpr001_unseeded_default_rng():
    src = """
        import numpy as np
        rng = np.random.default_rng()
    """
    assert codes(src) == ["RPR001"]


def test_rpr001_seeded_default_rng_ok():
    src = """
        import numpy as np
        def make(seed: int):
            return np.random.default_rng(seed)
    """
    assert codes(src) == []


def test_rpr001_from_import_alias():
    src = """
        from numpy.random import default_rng
        r = default_rng()
    """
    assert codes(src) == ["RPR001"]


def test_rpr001_legacy_global_rng():
    src = """
        import numpy as np
        np.random.seed(0)
        x = np.random.standard_normal(4)
    """
    assert codes(src) == ["RPR001", "RPR001"]


def test_rpr001_noqa_suppression():
    src = """
        import numpy as np
        rng = np.random.default_rng()  # repro: noqa[RPR001]
    """
    res = run(src)
    assert res.findings == []
    assert res.suppressed == 1


# -- RPR002: unordered accumulation -------------------------------------------


def test_rpr002_set_iteration_accumulation():
    src = """
        def f(xs):
            total = 0.0
            for g in set(xs):
                total += g
            return total
    """
    assert "RPR002" in codes(src)


def test_rpr002_sum_over_set_literal():
    src = """
        def f():
            return sum({1.0, 2.0, 3.0})
    """
    assert "RPR002" in codes(src)


def test_rpr002_sorted_iteration_ok():
    src = """
        def f(xs):
            total = 0.0
            for g in sorted(set(xs)):
                total += g
            return total
    """
    assert codes(src) == []


def test_rpr002_out_of_scope_ignored():
    src = """
        def f(xs):
            total = 0.0
            for g in set(xs):
                total += g
            return total
    """
    assert codes(src, rel=UNSCOPED) == []


# -- RPR003: wall clock in kernels --------------------------------------------


def test_rpr003_perf_counter_in_analysis():
    src = """
        import time
        def kernel(x):
            t = time.perf_counter()
            return x * t
    """
    assert codes(src) == ["RPR003"]


def test_rpr003_allowed_outside_scope():
    src = """
        import time
        def kernel(x):
            return x * time.perf_counter()
    """
    assert codes(src, rel="obs/snippet.py") == []


def test_rpr003_scope_override_via_config():
    cfg = CheckConfig(scopes={"RPR003": ("sim",)})
    src = """
        import time
        t = time.monotonic()
    """
    assert codes(src, rel=UNSCOPED, config=cfg) == ["RPR003"]
    assert codes(src, rel=ANALYSIS, config=cfg) == []


# -- RPR004: float equality ----------------------------------------------------


def test_rpr004_float_literal_equality():
    src = """
        def f(x):
            return x == 0.5
    """
    assert codes(src) == ["RPR004"]


def test_rpr004_int_equality_ok():
    src = """
        def f(x):
            return x == 1
    """
    assert codes(src) == []


def test_rpr004_noqa():
    src = """
        def f(x):
            return x != 0.0  # repro: noqa[RPR004]
    """
    res = run(src)
    assert res.findings == []
    assert res.suppressed == 1


# -- RPR005: shared-memory lifecycle ------------------------------------------


def test_rpr005_unprotected_shared_memory():
    src = """
        from multiprocessing import shared_memory
        def f():
            shm = shared_memory.SharedMemory(create=True, size=16)
            return shm
    """
    assert codes(src) == ["RPR005"]


def test_rpr005_try_finally_ok():
    src = """
        from multiprocessing import shared_memory
        def f():
            shm = shared_memory.SharedMemory(create=True, size=16)
            try:
                return bytes(shm.buf[:4])
            finally:
                shm.close()
                shm.unlink()
    """
    assert codes(src) == []


def test_rpr005_store_create_flagged():
    src = """
        def f(arrays):
            store = SharedParticleStore.create(**arrays)
            return store["pos"]
    """
    # RPR012's ownership dataflow confirms the leak on the same line.
    assert codes(src) == ["RPR005", "RPR012"]


# -- RPR006: silent broad except ----------------------------------------------


def test_rpr006_silent_swallow():
    src = """
        def f():
            try:
                risky()
            except Exception:
                pass
    """
    assert codes(src) == ["RPR006"]


def test_rpr006_telemetry_emission_ok():
    src = """
        def f(rec):
            try:
                risky()
            except Exception as exc:
                rec.event("boom", level="error", error=str(exc))
    """
    assert codes(src) == []


def test_rpr006_reraise_ok():
    src = """
        def f():
            try:
                risky()
            except Exception:
                raise
    """
    assert codes(src) == []


# -- RPR007: mutable default args ---------------------------------------------


def test_rpr007_list_default():
    src = """
        def f(x, acc=[]):
            acc.append(x)
            return acc
    """
    assert codes(src) == ["RPR007"]


def test_rpr007_none_default_ok():
    src = """
        def f(x, acc=None):
            return acc
    """
    assert codes(src) == []


# -- RPR008: span outside with ------------------------------------------------


def test_rpr008_manual_span_lifecycle():
    src = """
        def f(rec):
            s = rec.span("phase")
            s.__enter__()
    """
    found = codes(src)
    assert found.count("RPR008") == 2


def test_rpr008_with_statement_ok():
    src = """
        def f(rec):
            with rec.span("phase"):
                pass
    """
    assert codes(src) == []


def test_rpr008_return_forwarding_ok():
    src = """
        class R:
            def span(self, name):
                return self.tracer.span(name)
    """
    assert codes(src) == []


# -- RPR009: hand-rolled sleep/retry loops ------------------------------------


def test_rpr009_sleep_retry_loop_flagged():
    src = """
        import time

        def fetch(submit):
            while True:
                try:
                    return submit()
                except OSError:
                    time.sleep(1.0)
    """
    assert codes(src) == ["RPR009"]


def test_rpr009_for_loop_with_backoff_flagged():
    src = """
        import time

        def fetch(submit):
            for attempt in range(3):
                try:
                    return submit()
                except OSError:
                    time.sleep(2 ** attempt)
    """
    assert codes(src) == ["RPR009"]


def test_rpr009_plain_poll_loop_ok():
    """Sleeping in a loop without exception handling is a poll loop,
    not a shadow retry mechanism."""
    src = """
        import time

        def poll(ready):
            while not ready():
                time.sleep(0.1)
    """
    assert codes(src) == []


def test_rpr009_try_without_sleep_ok():
    src = """
        def drain(q):
            while True:
                try:
                    q.get_nowait()
                except Exception:
                    raise
    """
    assert codes(src) == []


def test_rpr009_injected_sleep_callable_ok():
    """RetryPolicy's own pattern: the sleeper is injected, so the loop
    does not resolve to time.sleep."""
    src = """
        import time

        def run(fn, do_sleep=None):
            do_sleep = time.sleep if do_sleep is None else do_sleep
            for attempt in range(3):
                try:
                    return fn()
                except Exception as exc:
                    do_sleep(0.01)
    """
    assert codes(src, config=CheckConfig(select=("RPR009",))) == []


def test_rpr009_nested_function_owns_its_statements():
    """A try/sleep inside a nested def is not attributed to the outer
    loop (the nested function is judged on its own — and without a loop
    of its own it is not a retry loop)."""
    src = """
        import time

        def outer(items):
            for item in items:
                def handler():
                    try:
                        item()
                    except Exception:
                        time.sleep(0.1)
                handler()
    """
    assert codes(src, config=CheckConfig(select=("RPR009",))) == []


# -- select / ignore / scoping helpers ----------------------------------------


def test_select_limits_rules():
    cfg = CheckConfig(select=("RPR004",))
    src = """
        import numpy as np
        rng = np.random.default_rng()
        ok = 1.0 == 2.0
    """
    assert codes(src, config=cfg) == ["RPR004"]


def test_ignore_drops_rule():
    cfg = CheckConfig(ignore=("RPR001",))
    src = """
        import numpy as np
        rng = np.random.default_rng()
    """
    assert codes(src, config=cfg) == []


@pytest.mark.parametrize(
    ("rel", "scopes", "expected"),
    [
        ("analysis/sph.py", ("analysis",), True),
        ("exec/engine.py", ("analysis",), False),
        ("exec/engine.py", (), True),
        ("a/b/analysis/x.py", ("analysis",), True),
        ("analysis/sph.py", ("*",), True),
    ],
)
def test_path_in_scope(rel, scopes, expected):
    assert path_in_scope(rel, scopes) is expected


# -- RPR010: print() in library code ------------------------------------------


def test_rpr010_library_print_flagged():
    src = """
        def load(path):
            print("loading", path)
            return path
    """
    assert codes(src) == ["RPR010"]


def test_rpr010_stderr_print_flagged_too():
    src = """
        import sys

        def warn(msg):
            print(msg, file=sys.stderr)
    """
    assert codes(src) == ["RPR010"]


def test_rpr010_cli_modules_exempt():
    src = """
        def main():
            print("usage: ...")
    """
    assert codes(src, rel="obs/cli.py") == []
    assert codes(src, rel="check/__main__.py") == []


def test_rpr010_shadowed_print_ok():
    """A local function named print is not the builtin."""
    src = """
        from mylog import print

        def f():
            print("routed elsewhere")
    """
    assert codes(src) == []


def test_rpr010_noqa_suppression():
    src = """
        def f():
            print("intentional")  # repro: noqa[RPR010]
    """
    res = run(src)
    assert res.findings == []
    assert res.suppressed == 1


def test_blanket_noqa_suppresses_everything_on_line():
    src = """
        import numpy as np
        bad = np.random.default_rng() if 1.0 == 2.0 else None  # repro: noqa
    """
    res = run(src)
    assert res.findings == []
    assert res.suppressed == 2
