"""StreamingFOF exactness: streamed catalogs bit-identical to in-memory FOF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fof import fof_grid
from repro.streaming import (
    ArrayStream,
    GroupForest,
    StreamedCatalog,
    StreamingFOF,
    StreamOrderError,
    slab_order,
)


def _reference_catalog(pos, tags, box, ll, min_count):
    """In-memory FOF catalog as sorted ``(tag, count)`` pairs."""
    ref = fof_grid(np.mod(pos, box), ll, tags=tags, min_count=min_count, box=box)
    order = np.argsort(ref.halo_tags, kind="stable")
    return ref.halo_tags[order], ref.halo_counts[order]


def _stream_catalog(pos, tags, box, ll, min_count, chunk_rows):
    fof = StreamingFOF(box, ll, min_count=min_count)
    for chunk in ArrayStream(pos, box, tags=tags, chunk_rows=chunk_rows):
        fof.ingest(chunk["pos"], chunk["tag"])
    return fof.finalize()


def _assert_bit_identical(cat: StreamedCatalog, ref_tags, ref_counts):
    assert np.array_equal(cat.halo_tags, ref_tags)
    assert np.array_equal(cat.halo_counts, ref_counts)


def test_streamed_catalog_matches_in_memory(blob_points):
    box, ll, min_count = 20.0, 0.4, 10
    tags = np.arange(len(blob_points), dtype=np.int64)
    ref_tags, ref_counts = _reference_catalog(blob_points, tags, box, ll, min_count)
    assert len(ref_tags) >= 5  # the five blobs must actually be found
    for chunk_rows in (37, 256, 1000, len(blob_points) + 1):
        cat = _stream_catalog(blob_points, tags, box, ll, min_count, chunk_rows)
        _assert_bit_identical(cat, ref_tags, ref_counts)
        assert cat.n_particles == len(blob_points)


def test_wrap_straddling_halo_is_exact():
    """A blob across the periodic x boundary joins head + tail slabs."""
    rng = np.random.default_rng(42)
    box = 10.0
    blob = np.mod(rng.normal([0.0, 5.0, 5.0], 0.15, (300, 3)), box)
    background = rng.uniform(0, box, (700, 3))
    pos = np.concatenate([blob, background])
    tags = np.arange(len(pos), dtype=np.int64)
    ref_tags, ref_counts = _reference_catalog(pos, tags, box, 0.3, 50)
    assert len(ref_tags) >= 1
    for chunk_rows in (50, 128, 333):
        cat = _stream_catalog(pos, tags, box, 0.3, 50, chunk_rows)
        _assert_bit_identical(cat, ref_tags, ref_counts)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    n=st.integers(20, 400),
    chunk_rows=st.integers(1, 100),
    box=st.floats(5.0, 50.0),
    ll_frac=st.floats(0.01, 0.08),
    min_count=st.integers(1, 8),
)
def test_prop_streamed_equals_in_memory(seed, n, chunk_rows, box, ll_frac, min_count):
    """Bit-identity holds for arbitrary data, chunking, and linking."""
    rng = np.random.default_rng(seed)
    # half clustered around a few seeds, half uniform — exercises both
    # dense components spanning many chunks and isolated singletons
    n_centers = rng.integers(1, 5)
    centers = rng.uniform(0, box, (n_centers, 3))
    clustered = centers[rng.integers(0, n_centers, n // 2)] + rng.normal(
        0, box * ll_frac, (n // 2, 3)
    )
    uniform = rng.uniform(0, box, (n - n // 2, 3))
    pos = np.mod(np.concatenate([clustered, uniform]), box)
    tags = rng.permutation(np.arange(10, 10 + n)).astype(np.int64)
    ll = box * ll_frac
    ref_tags, ref_counts = _reference_catalog(pos, tags, box, ll, min_count)
    cat = _stream_catalog(pos, tags, box, ll, min_count, chunk_rows)
    _assert_bit_identical(cat, ref_tags, ref_counts)


def test_retirement_is_incremental(blob_points):
    """Halos must retire mid-stream, not pile up until finalize."""
    box, ll = 20.0, 0.4
    tags = np.arange(len(blob_points), dtype=np.int64)
    batches = []
    fof = StreamingFOF(box, ll, min_count=10, on_retire=lambda t, c: batches.append(len(t)))
    for chunk in ArrayStream(blob_points, box, tags=tags, chunk_rows=200):
        fof.ingest(chunk["pos"], chunk["tag"])
    mid_stream = sum(batches)
    cat = fof.finalize()
    assert mid_stream > 0  # some halos finished before the end
    assert sum(batches) == cat.n_halos  # finalize retires the rest via the hook


def test_resident_state_is_bounded(blob_points):
    """Peak resident particles ≪ total for small chunks (the whole point)."""
    box, ll = 20.0, 0.4
    tags = np.arange(len(blob_points), dtype=np.int64)
    fof = StreamingFOF(box, ll, min_count=10)
    for chunk in ArrayStream(blob_points, box, tags=tags, chunk_rows=100):
        fof.ingest(chunk["pos"], chunk["tag"])
    fof.finalize()
    assert fof.peak_resident < len(blob_points) / 2


def test_out_of_order_chunk_rejected():
    fof = StreamingFOF(10.0, 0.2, min_count=1)
    fof.ingest(np.array([[5.0, 1.0, 1.0]]), np.array([0]))
    with pytest.raises(StreamOrderError):
        fof.ingest(np.array([[1.0, 1.0, 1.0]]), np.array([1]))


def test_ingest_after_finalize_rejected():
    fof = StreamingFOF(10.0, 0.2, min_count=1)
    fof.finalize()
    with pytest.raises(RuntimeError):
        fof.ingest(np.array([[1.0, 1.0, 1.0]]), np.array([0]))


def test_constructor_validation():
    with pytest.raises(ValueError):
        StreamingFOF(0.0, 0.2)
    with pytest.raises(ValueError):
        StreamingFOF(10.0, 0.0)
    with pytest.raises(ValueError):
        StreamingFOF(10.0, 10.0)


def test_empty_stream_yields_empty_catalog():
    fof = StreamingFOF(10.0, 0.2, min_count=1)
    cat = fof.finalize()
    assert cat.n_halos == 0
    assert cat.n_particles == 0
    # finalize is idempotent
    assert fof.finalize().n_halos == 0


def test_slab_order_is_stable_on_wrapped_x():
    pos = np.array([[9.9, 0, 0], [-0.5, 0, 0], [0.1, 0, 0], [19.5, 0, 0]], dtype=float)
    order = slab_order(pos, 10.0)  # wrapped x: 9.9, 9.5, 0.1, 9.5
    assert order.tolist() == [2, 1, 3, 0]


# -- GroupForest ---------------------------------------------------------------


def test_group_forest_union_folds_aggregates():
    forest = GroupForest()
    a, b = forest.new_groups(2)
    forest.fold(np.array([a, b]), np.array([5, 7]), np.array([30, 10]))
    r = forest.union(int(a), int(b))
    assert forest.counts[r] == 12
    assert forest.min_tags[r] == 10


def test_group_forest_growth_past_initial_capacity():
    forest = GroupForest()
    ids = forest.new_groups(50)  # initial buffers hold 16
    assert len(forest) == 50
    forest.fold(ids, np.ones(50, dtype=np.int64), np.arange(50, dtype=np.int64))
    assert forest.counts[:50].sum() == 50


def test_group_forest_compact_gathers_by_sorted_old_root():
    forest = GroupForest()
    ids = forest.new_groups(4)
    forest.fold(ids, np.array([1, 2, 3, 4]), np.array([40, 30, 20, 10]))
    old = forest.compact(np.array([ids[3], ids[1]]))
    assert old.tolist() == [ids[1], ids[3]]
    assert forest.counts[:2].tolist() == [2, 4]
    assert forest.min_tags[:2].tolist() == [30, 10]
