"""SPH kernel and local density estimation."""

import numpy as np
import pytest
from scipy import integrate

from repro.analysis import cubic_spline_kernel, knn_neighbors, sph_density, tophat_density


def test_kernel_positive_with_compact_support():
    h = 2.0
    r = np.linspace(0, 3, 100)
    w = cubic_spline_kernel(r, h)
    assert np.all(w[r < h] > 0)
    assert np.all(w[r >= h] == 0)


def test_kernel_monotone_decreasing():
    w = cubic_spline_kernel(np.linspace(0, 1.99, 50), 2.0)
    assert np.all(np.diff(w) <= 1e-12)


def test_kernel_normalized_in_3d():
    """∫ W(r) 4πr² dr = 1."""
    h = 1.7

    def integrand(r):
        return 4 * np.pi * r * r * cubic_spline_kernel(np.asarray([r]), h)[0]

    val, _ = integrate.quad(integrand, 0, h)
    assert val == pytest.approx(1.0, rel=1e-6)


def test_knn_excludes_self(rng):
    pos = rng.uniform(0, 5, (60, 3))
    idx, dist = knn_neighbors(pos, 4)
    assert idx.shape == (60, 4)
    for i in range(60):
        assert i not in idx[i]
        assert np.all(np.diff(dist[i]) >= -1e-12)


def test_knn_matches_brute_force(rng):
    pos = rng.uniform(0, 5, (80, 3))
    idx, dist = knn_neighbors(pos, 5)
    for i in range(0, 80, 13):
        d = np.sqrt(np.sum((pos - pos[i]) ** 2, axis=1))
        d[i] = np.inf
        expect = np.sort(d)[:5]
        assert np.allclose(np.sort(dist[i]), expect)


def test_knn_k_too_large():
    with pytest.raises(ValueError):
        knn_neighbors(np.zeros((3, 3)), 3)


def test_density_higher_in_cluster(rng):
    """Particles inside a tight blob must have higher density than
    isolated background particles."""
    blob = rng.normal(5.0, 0.2, (100, 3))
    background = rng.uniform(0, 10, (50, 3))
    pos = np.concatenate([blob, background])
    rho = sph_density(pos, k=16)
    assert np.median(rho[:100]) > 10 * np.median(rho[100:])


def test_density_ranking_consistent_between_estimators(rng):
    blob = rng.normal(5.0, 0.4, (80, 3))
    bg = rng.uniform(0, 10, (40, 3))
    pos = np.concatenate([blob, bg])
    a = sph_density(pos, k=12)
    b = tophat_density(pos, k=12)
    # rank correlation between the two estimators is strong
    ra = np.argsort(np.argsort(a))
    rb = np.argsort(np.argsort(b))
    corr = np.corrcoef(ra, rb)[0, 1]
    assert corr > 0.9


def test_density_scales_with_mass(rng):
    pos = rng.uniform(0, 2, (50, 3))
    a = sph_density(pos, mass=1.0, k=8)
    b = sph_density(pos, mass=3.0, k=8)
    assert np.allclose(b, 3 * a)


def test_density_uniform_field_approximates_mean(rng):
    """For a uniform distribution the SPH estimate is near n/V."""
    n, box = 600, 10.0
    pos = rng.uniform(0, box, (n, 3))
    rho = sph_density(pos, k=32)
    expected = n / box**3
    # interior particles only (edges are underdense by construction)
    interior = np.all((pos > 2) & (pos < 8), axis=1)
    assert np.median(rho[interior]) == pytest.approx(expected, rel=0.5)


def test_tiny_group_degenerate_path():
    rho = sph_density(np.zeros((3, 3)), k=32)
    assert len(rho) == 3
    assert np.all(rho == 3.0)
