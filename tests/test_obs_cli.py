"""``python -m repro.obs``: the campaign console, end to end.

The PR's acceptance flow: a fault-injected ``run_combined_workflow``
journals itself; ``report`` / ``timeline`` / ``trace`` reconstruct the
phase table, lanes, and one causally-linked Chrome trace from the
journal alone; the ``--canonical`` projections are **byte-identical**
across two independently-executed seeded runs; ``tail`` and ``report``
work mid-run on a live journal (and deterministically re-read it,
verified under ``check_determinism``); ``diff`` flags metric drift.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.check import check_determinism
from repro.core import run_combined_workflow
from repro.faults import FaultPlan, FaultSpec, fault_plan, set_fault_plan
from repro.obs.cli import main
from repro.obs.journal import RunJournal, read_journal
from repro.sim import SimulationConfig


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    set_fault_plan(None)
    yield
    set_fault_plan(None)


def _journaled_run(root, spool: str = "spool") -> str:
    """One seeded, fault-injected combined run journaled under ``root``.

    ``spool`` varies between the two fixture runs on purpose: journaled
    span fields carry spool-file paths, and the canonical projection
    must basename them away for byte-identity to survive runs in
    different directories (a real leak caught at the CLI surface).
    """
    cwd = os.getcwd()
    os.chdir(root)
    try:
        plan = FaultPlan(
            seed=7,
            sites={
                "io.write": FaultSpec(fail_first=1),
                "offline.job": FaultSpec(fail_first=1),
            },
        )
        with fault_plan(plan):
            run_combined_workflow(
                SimulationConfig(np_per_dim=20, box=36.0, z_initial=30.0, n_steps=16),
                spool_dir=spool,
                threshold=60,
                min_count=40,
                n_ranks=4,
                analysis_workers=2,
                journal_dir="journal",
                run_id="caseA",
            )
    finally:
        os.chdir(cwd)
    return str(root / "journal" / "caseA")


@pytest.fixture(scope="module")
def two_runs(tmp_path_factory):
    """The same seeded workflow executed twice, in separate directories."""
    a = _journaled_run(tmp_path_factory.mktemp("obs_cli_a"))
    b = _journaled_run(tmp_path_factory.mktemp("obs_cli_b"), spool="spool_b/deep")
    return a, b


# -- report --------------------------------------------------------------------


def test_report_reconstructs_phase_table_from_journal(two_runs, capsys):
    a, _ = two_runs
    assert main(["report", a]) == 0
    out = capsys.readouterr().out
    assert "Per-run phase breakdown" in out
    assert "Off-line analysis" in out and "Parallel exec" in out
    assert "faults injected" in out  # the failure summary made it in
    assert "config" in out and "seeds" in out  # manifest header


def test_exec_worker_spans_causally_parented_in_journal(two_runs):
    """The acceptance link, straight from the durable journal: exec-worker
    item spans parent under the driver's ``exec.run`` span."""
    a, _ = two_runs
    view = read_journal(a)
    spans = view.spans()
    run_spans = [s for s in spans if s.name == "exec.run"]
    items = [s for s in spans if s.name == "exec.item"]
    assert run_spans and items
    run_ids = {s.span_id for s in run_spans}
    assert all(s.parent_id in run_ids for s in items)
    assert all(s.thread.startswith("exec-worker-") for s in items)
    # ... and the whole chain carries one run id
    assert {s.run for s in spans} == {"caseA"}


def test_fault_and_retry_events_carry_the_run_id(two_runs):
    a, _ = two_runs
    view = read_journal(a)
    fault_evs = [e for e in view.events() if e.name == "fault.injected"]
    retry_evs = [e for e in view.events() if e.name.startswith("retry.")]
    assert fault_evs and retry_evs
    assert all(e.run == "caseA" for e in fault_evs + retry_evs)


# -- canonical byte-identity ---------------------------------------------------


def _capture(capsys, argv) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


def test_canonical_report_byte_identical_across_runs(two_runs, capsys):
    a, b = two_runs
    out_a = _capture(capsys, ["report", a, "--canonical"])
    out_b = _capture(capsys, ["report", b, "--canonical"])
    assert out_a == out_b
    payload = json.loads(out_a)
    assert payload["complete"] is True
    assert payload["counters"]["faults_injected_total"] >= 1


def test_canonical_timeline_byte_identical_across_runs(two_runs, capsys):
    a, b = two_runs
    out_a = _capture(capsys, ["timeline", a, "--canonical"])
    out_b = _capture(capsys, ["timeline", b, "--canonical"])
    assert out_a == out_b
    lanes = json.loads(out_a)["lanes"]
    assert "exec-worker" in lanes and lanes["exec-worker"] >= 1


def test_canonical_trace_byte_identical_across_runs(two_runs, tmp_path, capsys):
    a, b = two_runs
    ta, tb = str(tmp_path / "a.json"), str(tmp_path / "b.json")
    assert main(["trace", a, "--canonical", "-o", ta]) == 0
    assert main(["trace", b, "--canonical", "-o", tb]) == 0
    capsys.readouterr()
    bytes_a, bytes_b = open(ta, "rb").read(), open(tb, "rb").read()
    assert bytes_a == bytes_b
    trace = json.loads(bytes_a)
    names = {e["name"] for e in trace["traceEvents"]}
    assert "exec.run" in names and "exec.item" in names
    items = [e for e in trace["traceEvents"] if e["name"] == "exec.item"]
    assert all(e["args"]["parent"] == "exec.run" for e in items)


# -- full-fidelity outputs -----------------------------------------------------


def test_timeline_ascii_and_json(two_runs, capsys):
    a, _ = two_runs
    out = _capture(capsys, ["timeline", a])
    assert "workflow lanes" in out and "overlap" in out
    payload = json.loads(_capture(capsys, ["timeline", a, "--json"]))
    assert payload["workflow"]["sim_seconds"] > 0
    assert any(lane.startswith("exec-worker-") for lane in payload["workflow"]["lanes"])


def test_trace_is_one_causally_linked_chrome_trace(two_runs, tmp_path, capsys):
    a, _ = two_runs
    out_path = str(tmp_path / "trace.json")
    assert main(["trace", a, "-o", out_path]) == 0
    trace = json.load(open(out_path))
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    assert any(e.get("name") == "exec.item" for e in events)


def test_tail_prints_records(two_runs, capsys):
    a, _ = two_runs
    assert main(["tail", a, "--last", "3"]) == 0
    out = capsys.readouterr().out
    assert "run.end" in out and len(out.strip().splitlines()) == 3


# -- live journals (mid-run) ---------------------------------------------------


def test_tail_and_report_on_a_live_journal(tmp_path, capsys):
    """Re-opening a journal that has no ``run.end`` yet must work — that
    is the whole point of ``tail``-ing a running campaign."""
    j = RunJournal.create(tmp_path, run_id="live")
    j.write({"kind": "event", "name": "step", "fields": {"i": 0}})
    j.flush()  # mid-run: journal is open, no run.end

    assert main(["tail", str(tmp_path / "live")]) == 0
    assert "step" in capsys.readouterr().out
    assert main(["report", str(tmp_path / "live")]) == 0
    assert "no run.end" in capsys.readouterr().out

    def read_live():
        view = read_journal(tmp_path / "live")
        return [r.get("name") for r in view.records], view.complete

    check_determinism(read_live, runs=3)  # re-reads are stable mid-run
    j.close()
    assert main(["report", str(tmp_path / "live")]) == 0
    assert "no run.end" not in capsys.readouterr().out


def test_follow_stops_at_run_end(tmp_path, capsys):
    j = RunJournal.create(tmp_path, run_id="done")
    j.write({"kind": "event", "name": "only"})
    j.close()
    assert main(["tail", str(tmp_path / "done"), "--follow", "--max-seconds", "5"]) == 0
    out = capsys.readouterr().out
    assert "only" in out and "run.end" in out


# -- diff ----------------------------------------------------------------------


def test_diff_identical_runs_is_clean(two_runs, capsys):
    a, b = two_runs
    assert main(["diff", a, b, "--tolerance", "5.0"]) == 0
    assert "no drift" in capsys.readouterr().out


def test_diff_flags_count_drift_and_bench_regression(tmp_path, capsys):
    for rid, widgets in (("r1", 3.0), ("r2", 5.0)):
        j = RunJournal.create(tmp_path, run_id=rid, config={"k": 1})
        j.metrics_snapshot({"widgets_total": widgets, "wall_seconds": 1.0 + widgets})
        j.close()
    a, b = str(tmp_path / "r1"), str(tmp_path / "r2")
    assert main(["diff", a, b]) == 1
    out = capsys.readouterr().out
    assert "count drift widgets_total" in out

    bench = tmp_path / "BENCH_obs.json"
    bench.write_text(json.dumps({"wall_seconds": 1.0}))
    assert main(["diff", a, b, "--bench", str(bench), "--tolerance", "0.5"]) == 1
    assert "regression vs baseline wall_seconds" in capsys.readouterr().out


def test_missing_journal_is_a_usage_error(capsys):
    assert main(["report", "/nonexistent/journal"]) == 2
    assert "error:" in capsys.readouterr().err
