"""Fixture tests for the flow-sensitive concurrency rules (RPR011-RPR015).

Every rule gets at least one injected-defect fixture (must be flagged)
and one near-miss (structurally similar, must pass), mirroring the bug
classes the SPMD transports can actually hit.  Call-graph expansion is
covered separately at the bottom.
"""

from __future__ import annotations

import ast
import textwrap

from repro.check import CheckConfig, analyze_source
from repro.check.analyzer import ModuleContext
from repro.check.callgraph import (
    ModuleCallGraph,
    blocking_call_name,
    collective_of,
)

ANALYSIS = "parallel/snippet.py"


def codes(src: str, select: tuple[str, ...] | None = None) -> list[str]:
    cfg = CheckConfig(select=select or ())
    res = analyze_source(
        textwrap.dedent(src), path=f"src/repro/{ANALYSIS}", rel=ANALYSIS, config=cfg
    )
    return [f.code for f in res.findings]


def messages(src: str, select: tuple[str, ...]) -> list[str]:
    cfg = CheckConfig(select=select)
    res = analyze_source(
        textwrap.dedent(src), path=f"src/repro/{ANALYSIS}", rel=ANALYSIS, config=cfg
    )
    return [f.message for f in res.findings]


# -- RPR011: collective matching ----------------------------------------------


def test_rpr011_rank_guarded_barrier_flagged():
    src = """
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            return comm.rank
    """
    assert codes(src, ("RPR011",)) == ["RPR011"]


def test_rpr011_message_shows_divergence():
    src = """
        def prog(comm):
            if comm.rank == 0:
                comm.bcast(1, root=0)
    """
    (msg,) = messages(src, ("RPR011",))
    assert "bcast" in msg and "no collective" in msg


def test_rpr011_both_arms_collective_ok():
    src = """
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.barrier()
            return comm.rank
    """
    assert codes(src, ("RPR011",)) == []


def test_rpr011_collective_after_join_ok():
    src = """
        def prog(comm):
            if comm.rank == 0:
                data = load()
            else:
                data = None
            data = comm.bcast(data, root=0)
            comm.barrier()
            return data
    """
    assert codes(src, ("RPR011",)) == []


def test_rpr011_sees_through_local_helper():
    src = """
        def exchange(comm):
            comm.allreduce(1)

        def prog(comm):
            if comm.rank == 0:
                exchange(comm)
            return comm.rank
    """
    assert codes(src, ("RPR011",)) == ["RPR011"]


def test_rpr011_matching_helper_ok():
    src = """
        def exchange(comm):
            comm.allreduce(1)

        def prog(comm):
            if comm.rank == 0:
                exchange(comm)
            else:
                comm.allreduce(1)
            return comm.rank
    """
    assert codes(src, ("RPR011",)) == []


def test_rpr011_non_rank_branch_ignored():
    src = """
        def prog(comm, verbose):
            if verbose:
                comm.barrier()
            return comm.rank
    """
    assert codes(src, ("RPR011",)) == []


def test_rpr011_noqa_suppression():
    src = """
        def prog(comm):
            if comm.rank == 0:  # repro: noqa[RPR011] - deliberate for the test
                comm.barrier()
    """
    res = analyze_source(
        textwrap.dedent(src),
        path=f"src/repro/{ANALYSIS}",
        rel=ANALYSIS,
        config=CheckConfig(select=("RPR011",)),
    )
    assert res.findings == []
    assert res.suppressed == 1


# -- RPR012: shared-memory ownership ------------------------------------------


def test_rpr012_use_after_unlink_flagged():
    src = """
        def f(arrays):
            store = SharedParticleStore.create(**arrays)
            store.unlink()
            return store["pos"]
    """
    msgs = messages(src, ("RPR012",))
    assert any("use-after-transfer" in m for m in msgs)


def test_rpr012_double_unlink_flagged():
    src = """
        def f(arrays):
            store = SharedParticleStore.create(**arrays)
            store.unlink()
            store.unlink()
    """
    msgs = messages(src, ("RPR012",))
    assert any("double release" in m for m in msgs)


def test_rpr012_leak_on_branch_flagged():
    src = """
        def f(arrays, keep):
            store = SharedParticleStore.create(**arrays)
            if not keep:
                store.unlink()
    """
    msgs = messages(src, ("RPR012",))
    assert any("leaked segment" in m for m in msgs)


def test_rpr012_linear_release_ok():
    src = """
        def f(arrays):
            store = SharedParticleStore.create(**arrays)
            pos = store["pos"]
            store.unlink()
            return pos
    """
    assert codes(src, ("RPR012",)) == []


def test_rpr012_try_finally_ok():
    src = """
        def f(arrays):
            store = SharedParticleStore.create(**arrays)
            try:
                return store["pos"]
            finally:
                store.unlink()
    """
    assert codes(src, ("RPR012",)) == []


def test_rpr012_escape_stops_tracking():
    src = """
        def f(arrays):
            store = SharedParticleStore.create(**arrays)
            return store
    """
    assert codes(src, ("RPR012",)) == []


def test_rpr012_supersedes_rpr005_for_proven_release():
    """Linear create→use→unlink satisfies RPR005 via the dataflow proof
    even without a try/finally."""
    src = """
        def f(arrays):
            store = SharedParticleStore.create(**arrays)
            pos = store["pos"]
            store.unlink()
            return pos
    """
    assert codes(src, ("RPR005", "RPR012")) == []


# -- RPR013: blocking under a lock --------------------------------------------


def test_rpr013_get_under_lock_flagged():
    src = """
        def f(self, q):
            with self._lock:
                return q.get()
    """
    assert codes(src, ("RPR013",)) == ["RPR013"]


def test_rpr013_bounded_get_ok():
    src = """
        def f(self, q):
            with self._lock:
                return q.get(timeout=0.5)
    """
    assert codes(src, ("RPR013",)) == []


def test_rpr013_nowait_ok():
    src = """
        def f(self, q):
            with self._lock:
                return q.get_nowait()
    """
    assert codes(src, ("RPR013",)) == []


def test_rpr013_blocking_outside_lock_ok():
    src = """
        def f(self, q):
            with self._lock:
                n = self.count
            return q.get()
    """
    assert codes(src, ("RPR013",)) == []


def test_rpr013_condition_wait_on_held_lock_ok():
    """``cond.wait()`` releases the lock it is waiting on — exempt."""
    src = """
        def f(self):
            with self._lock:
                self._lock.wait()
    """
    assert codes(src, ("RPR013",)) == []


# -- RPR014: unbounded receive loop -------------------------------------------


def test_rpr014_bare_receive_loop_flagged():
    src = """
        def drain(q):
            while True:
                item = q.get()
                handle(item)
    """
    assert codes(src, ("RPR014",)) == ["RPR014"]


def test_rpr014_sentinel_break_ok():
    src = """
        def drain(q):
            while True:
                item = q.get()
                if item is None:
                    break
                handle(item)
    """
    assert codes(src, ("RPR014",)) == []


def test_rpr014_timeout_ok():
    src = """
        def drain(q):
            while True:
                item = q.get(timeout=1.0)
                handle(item)
    """
    assert codes(src, ("RPR014",)) == []


def test_rpr014_abort_flag_ok():
    src = """
        def drain(q, stop):
            while not stop.is_set():
                item = q.get()
                handle(item)
    """
    assert codes(src, ("RPR014",)) == []


def test_rpr014_mapping_get_ok():
    src = """
        def walk(parents, cur):
            while cur is not None:
                cur = parents.get(cur)
    """
    assert codes(src, ("RPR014",)) == []


# -- RPR015: fork after threads -----------------------------------------------


def test_rpr015_fork_after_thread_flagged():
    src = """
        import multiprocessing
        import threading

        def f(work):
            t = threading.Thread(target=work)
            t.start()
            p = multiprocessing.Process(target=work)
            p.start()
    """
    assert codes(src, ("RPR015",)) == ["RPR015"]


def test_rpr015_fork_before_thread_ok():
    src = """
        import multiprocessing
        import threading

        def f(work):
            p = multiprocessing.Process(target=work)
            p.start()
            t = threading.Thread(target=work)
            t.start()
    """
    assert codes(src, ("RPR015",)) == []


def test_rpr015_thread_only_ok():
    src = """
        import threading

        def f(work):
            t = threading.Thread(target=work)
            t.start()
            t.join(1.0)
    """
    assert codes(src, ("RPR015",)) == []


def test_rpr015_fork_in_branch_after_thread_flagged():
    src = """
        import multiprocessing
        import threading

        def f(work, heavy):
            t = threading.Thread(target=work)
            t.start()
            if heavy:
                p = multiprocessing.Process(target=work)
                p.start()
    """
    assert codes(src, ("RPR015",)) == ["RPR015"]


# -- call-graph summaries ------------------------------------------------------


def _ctx(src: str) -> ModuleContext:
    source = textwrap.dedent(src)
    return ModuleContext(
        tree=ast.parse(source),
        source=source,
        path="snippet.py",
        rel=None,
        config=CheckConfig(),
    )


def test_collective_of_vocabulary():
    assert collective_of(ast.parse("comm.barrier()").body[0].value) == "barrier"
    assert collective_of(ast.parse("comm.gather(x)").body[0].value) == "gather"
    # array-op gather on a non-communicator receiver is not a rendezvous
    assert collective_of(ast.parse("backend.gather(x)").body[0].value) is None


def test_blocking_call_name_bounds():
    assert blocking_call_name(ast.parse("q.get()").body[0].value) == "q.get"
    assert blocking_call_name(ast.parse("q.get(timeout=1)").body[0].value) is None
    assert blocking_call_name(ast.parse("d.get(key)").body[0].value) is None
    assert blocking_call_name(ast.parse("q.get_nowait()").body[0].value) is None


def test_callgraph_expands_local_helpers():
    ctx = _ctx(
        """
        def leaf(comm):
            comm.barrier()

        def mid(comm):
            leaf(comm)
            comm.bcast(1, root=0)

        def top(comm):
            mid(comm)
        """
    )
    cg = ModuleCallGraph(ctx)
    assert cg.expanded_collectives("mid") == ("barrier", "bcast")
    assert cg.expanded_collectives("top") == ("barrier", "bcast")


def test_callgraph_recursion_terminates():
    ctx = _ctx(
        """
        def a(comm):
            b(comm)
            comm.barrier()

        def b(comm):
            a(comm)
        """
    )
    cg = ModuleCallGraph(ctx)
    assert "barrier" in cg.expanded_collectives("a")


def test_callgraph_transitive_effects():
    ctx = _ctx(
        """
        import threading

        def spin(work):
            t = threading.Thread(target=work)
            t.start()

        def outer(work):
            spin(work)
        """
    )
    cg = ModuleCallGraph(ctx)
    assert cg.transitively("outer", "thread_start")
    assert not cg.transitively("outer", "fork")
