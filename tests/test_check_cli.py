"""CLI and reporter tests for ``python -m repro.check``.

Covers exit codes (0 clean / 1 findings / 2 usage error), the golden
JSON report shape, byte-stability of both reporters, and the acceptance
criterion that the shipped tree lints clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.check import analyze_paths, render_json, render_text
from repro.check.cli import main

REPO = Path(__file__).resolve().parents[1]

DIRTY = textwrap.dedent(
    """\
    import numpy as np


    def kernel(x, acc=[]):
        rng = np.random.default_rng()
        return x == 0.5
    """
)

CLEAN = textwrap.dedent(
    """\
    import numpy as np


    def kernel(x: np.ndarray, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return x + rng.standard_normal(x.shape)
    """
)


def write(tmp_path: Path, name: str, source: str) -> Path:
    p = tmp_path / name
    p.write_text(source)
    return p


# -- exit codes ----------------------------------------------------------------


def test_clean_file_exits_zero(tmp_path, capsys):
    p = write(tmp_path, "clean.py", CLEAN)
    assert main([str(p), "--no-config"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_dirty_file_exits_one(tmp_path, capsys):
    p = write(tmp_path, "dirty.py", DIRTY)
    assert main([str(p), "--no-config"]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "RPR004" in out and "RPR007" in out


def test_unknown_rule_code_exits_two(tmp_path, capsys):
    p = write(tmp_path, "clean.py", CLEAN)
    assert main([str(p), "--no-config", "--select", "RPR999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_no_paths_exits_two(capsys):
    assert main(["--no-config"]) == 2
    assert "no paths" in capsys.readouterr().err


def test_missing_config_exits_two(tmp_path, capsys):
    p = write(tmp_path, "clean.py", CLEAN)
    assert main([str(p), "--config", str(tmp_path / "nope.toml")]) == 2
    assert "error" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR008"):
        assert code in out


def test_select_filters_findings(tmp_path, capsys):
    p = write(tmp_path, "dirty.py", DIRTY)
    assert main([str(p), "--no-config", "--select", "RPR004"]) == 1
    out = capsys.readouterr().out
    assert "RPR004" in out and "RPR001" not in out


def test_rules_json_listing(capsys):
    assert main(["--rules"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    codes = [r["code"] for r in payload["rules"]]
    assert codes == sorted(codes)
    assert codes[0] == "RPR001" and "RPR015" in codes
    for rule in payload["rules"]:
        assert sorted(rule) == ["code", "name", "scopes", "summary"]
        assert rule["summary"]


# -- --changed (git-diff-scoped runs) ------------------------------------------


def _git(cwd: Path, *argv: str) -> None:
    subprocess.run(
        ["git", *argv],
        cwd=str(cwd),
        check=True,
        capture_output=True,
        env={
            "PATH": "/usr/bin:/bin",
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
        },
    )


def test_changed_analyzes_only_modified_files(tmp_path, capsys, monkeypatch):
    _git(tmp_path, "init", "-q")
    write(tmp_path, "clean.py", CLEAN)
    write(tmp_path, "other.py", DIRTY)
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    # dirty only clean.py; other.py stays committed and untouched
    write(tmp_path, "clean.py", DIRTY)
    monkeypatch.chdir(tmp_path)
    assert main(["--changed", "--no-config"]) == 1
    out = capsys.readouterr().out
    assert "clean.py" in out and "other.py" not in out


def test_changed_includes_untracked_files(tmp_path, capsys, monkeypatch):
    _git(tmp_path, "init", "-q")
    write(tmp_path, "tracked.py", CLEAN)
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    write(tmp_path, "fresh.py", DIRTY)
    monkeypatch.chdir(tmp_path)
    assert main(["--changed", "--no-config"]) == 1
    assert "fresh.py" in capsys.readouterr().out


def test_changed_clean_tree_exits_zero(tmp_path, capsys, monkeypatch):
    _git(tmp_path, "init", "-q")
    write(tmp_path, "clean.py", CLEAN)
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    monkeypatch.chdir(tmp_path)
    assert main(["--changed", "--no-config"]) == 0
    assert "no changed" in capsys.readouterr().out


def test_changed_bad_ref_exits_two(tmp_path, capsys, monkeypatch):
    _git(tmp_path, "init", "-q")
    write(tmp_path, "clean.py", CLEAN)
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    monkeypatch.chdir(tmp_path)
    assert main(["--changed", "no-such-ref", "--no-config"]) == 2
    assert "--changed" in capsys.readouterr().err


# -- golden JSON report --------------------------------------------------------


def test_json_report_shape(tmp_path, capsys):
    p = write(tmp_path, "dirty.py", DIRTY)
    assert main([str(p), "--no-config", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)

    assert payload["tool"] == "repro.check"
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["suppressed"] == 0
    assert set(payload["counts"]) == {"RPR001", "RPR004", "RPR007"}
    assert all(c in payload["rule_index"] for c in payload["counts"])

    by_code = {f["code"]: f for f in payload["findings"]}
    assert set(by_code) == {"RPR001", "RPR004", "RPR007"}
    f = by_code["RPR001"]
    assert f["path"] == str(p)
    assert f["line"] == 5
    assert sorted(f) == ["code", "col", "line", "message", "path"]


def test_reports_are_byte_stable(tmp_path):
    p = write(tmp_path, "dirty.py", DIRTY)
    first = analyze_paths([str(p)])
    second = analyze_paths([str(p)])
    assert render_json(first) == render_json(second)
    assert render_text(first, statistics=True) == render_text(second, statistics=True)
    assert render_json(first).endswith("\n")


def test_findings_sorted_in_reports(tmp_path):
    a = write(tmp_path, "a.py", DIRTY)
    b = write(tmp_path, "b.py", DIRTY)
    result = analyze_paths([str(b), str(a)])  # reversed input order
    paths = [f.path for f in sorted(result.findings)]
    assert paths == sorted(paths)
    assert result.files_checked == 2


# -- acceptance: shipped tree is clean ----------------------------------------


def test_shipped_tree_is_clean():
    result = analyze_paths([str(REPO / "src")])
    assert not result.findings, render_text(result)
    assert result.files_checked > 50
    # the two justified suppressions in the exec/parallel workers
    assert result.suppressed >= 2


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.check", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=str(REPO),
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "RPR001" in proc.stdout
