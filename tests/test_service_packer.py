"""Boxpack shelf packer: determinism, capacity, coverage, cost pricing."""

from __future__ import annotations

import pytest

from repro.check import check_determinism
from repro.machines.machine import TITAN
from repro.service.packer import JobPacker, estimate_center_job
from repro.service.store import JobRecord


def rec(i, nodes=1, wall=60.0):
    return JobRecord(
        id=f"c.{i:05d}",
        campaign="c",
        name=f"j{i}",
        kind="noop",
        n_nodes=nodes,
        wall_estimate=wall,
    )


def test_every_job_packed_exactly_once():
    jobs = [rec(i, nodes=1 + i % 3, wall=30.0 + (i % 7) * 20.0) for i in range(40)]
    allocs = JobPacker(max_nodes=8, max_wall=300.0).pack(jobs)
    packed = [jid for a in allocs for jid in a.job_ids]
    assert sorted(packed) == sorted(j.id for j in jobs)
    assert len(packed) == len(set(packed))


def test_capacity_respected():
    jobs = [rec(i, nodes=1 + i % 4, wall=10.0 + i) for i in range(60)]
    packer = JobPacker(max_nodes=6, max_wall=120.0)
    allocs = packer.pack(jobs)
    by_id = {j.id: j for j in jobs}
    for alloc in allocs:
        assert alloc.n_nodes == 6
        assert alloc.wall_seconds <= 120.0
        # re-derive the shelf structure: total job area fits the rectangle
        area = sum(by_id[j].n_nodes * by_id[j].wall_estimate for j in alloc.job_ids)
        assert area <= alloc.n_nodes * alloc.wall_seconds + 1e-9
        assert 0.0 < alloc.utilization <= 1.0


def test_oversize_job_raises():
    with pytest.raises(ValueError, match="nodes"):
        JobPacker(max_nodes=4, max_wall=100.0).pack([rec(0, nodes=5)])
    with pytest.raises(ValueError, match="capped"):
        JobPacker(max_nodes=4, max_wall=100.0).pack([rec(0, wall=101.0)])


def test_packer_param_validation():
    with pytest.raises(ValueError):
        JobPacker(max_nodes=0, max_wall=10.0)
    with pytest.raises(ValueError):
        JobPacker(max_nodes=4, max_wall=0.0)


def test_empty_pack():
    assert JobPacker(max_nodes=4, max_wall=100.0).pack([]) == []


def test_single_allocation_when_everything_fits():
    jobs = [rec(i, wall=10.0) for i in range(4)]
    allocs = JobPacker(max_nodes=4, max_wall=100.0).pack(jobs)
    assert len(allocs) == 1
    assert allocs[0].n_jobs == 4
    assert allocs[0].wall_seconds == 10.0  # one shelf, height of tallest


def test_wide_jobs_force_more_shelves():
    jobs = [rec(i, nodes=3, wall=50.0) for i in range(4)]
    allocs = JobPacker(max_nodes=4, max_wall=100.0).pack(jobs)
    # one 3-wide job per shelf; two shelves per allocation
    assert len(allocs) == 2
    assert all(a.wall_seconds == 100.0 for a in allocs)


def test_pack_is_deterministic_run_twice():
    jobs = [rec(i, nodes=1 + (i * 7) % 5, wall=15.0 + (i * 13) % 90) for i in range(64)]

    def run():
        allocs = JobPacker(max_nodes=8, max_wall=240.0).pack(list(jobs))
        return [(a.name, a.n_nodes, a.wall_seconds, tuple(a.job_ids)) for a in allocs]

    report = check_determinism(run, runs=3)
    assert report.ok


def test_pack_order_independent_of_input_order():
    jobs = [rec(i, nodes=1 + i % 3, wall=20.0 + i) for i in range(20)]
    a = JobPacker(max_nodes=5, max_wall=200.0).pack(jobs)
    b = JobPacker(max_nodes=5, max_wall=200.0).pack(list(reversed(jobs)))
    assert [x.job_ids for x in a] == [x.job_ids for x in b]


def test_estimate_center_job_prices_pairs():
    small = estimate_center_job([1000], TITAN, overhead_seconds=30.0)
    big = estimate_center_job([100_000], TITAN, overhead_seconds=30.0)
    assert small >= 30.0
    assert big > small
    # pair count scales ~n^2; so does the estimate above the overhead floor
    assert (big - 30.0) / (small - 30.0) == pytest.approx(
        (100_000 * 99_999) / (1000 * 999), rel=1e-6
    )


def test_estimate_center_job_empty():
    assert estimate_center_job([], TITAN, overhead_seconds=12.0) == pytest.approx(12.0)
