"""Pluggable SPMD transports: thread/process equivalence and failure paths.

The process transport must be observationally identical to the thread
reference — same results bit-for-bit, same message statistics, same
error contract — with the only difference being *where* ranks run.
These tests pin that equivalence on the real communication patterns
(redistribution, overload exchange, distributed FOF) and on the ugly
paths (rank death mid-collective, timeouts, orphan/leak hygiene).
"""

import glob
import multiprocessing
import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    CartesianDecomposition,
    SpmdConfig,
    SpmdError,
    alltoallv_arrays,
    redistribute_arrays,
    resolve_transport,
    run_spmd,
)
from repro.parallel.transport import TRANSPORT_ENV, RemoteRankError


@pytest.fixture(autouse=True, scope="module")
def _quiesce_exec_pool():
    # earlier test files may leave the warm exec worker pool alive;
    # reap it so active_children() is a clean orphan detector here
    from repro.exec import shutdown_pool

    shutdown_pool()
    yield


def _no_orphans():
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    return multiprocessing.active_children() == []


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


# ---------------------------------------------------------------------------
# configuration / selection
# ---------------------------------------------------------------------------


def test_spmd_config_validates_transport():
    with pytest.raises(ValueError, match="transport"):
        SpmdConfig(transport="mpi")


def test_resolve_transport_accepts_str_config_none():
    assert resolve_transport("process").transport == "process"
    cfg = SpmdConfig(transport="process", shm_threshold=1)
    assert resolve_transport(cfg) is cfg
    assert resolve_transport(None).transport == "thread"


def test_resolve_transport_env_var(monkeypatch):
    monkeypatch.setenv(TRANSPORT_ENV, "process")
    assert resolve_transport(None).transport == "process"
    monkeypatch.delenv(TRANSPORT_ENV)
    assert resolve_transport(None).transport == "thread"


def test_single_rank_is_inline_for_any_transport():
    # nranks == 1 never forks, whatever the transport says
    assert run_spmd(1, lambda comm: os.getpid(), transport="process") == [os.getpid()]


# ---------------------------------------------------------------------------
# thread/process equivalence on the real communication patterns
# ---------------------------------------------------------------------------


def _run_both(nranks, prog, **kw):
    """Run a program on both transports; assert no process orphans."""
    before = _shm_segments()
    thread = run_spmd(nranks, prog, transport="thread", **kw)
    process = run_spmd(nranks, prog, transport="process", **kw)
    assert _no_orphans()
    assert _shm_segments() == before, "process transport leaked shm segments"
    return thread, process


def test_process_ranks_are_real_processes():
    pids = run_spmd(2, lambda comm: os.getpid(), transport="process")
    assert len(set(pids)) == 2 and os.getpid() not in pids


def test_collectives_identical_across_transports():
    def prog(comm):
        part = np.arange(4, dtype=np.float64) + 10 * comm.rank
        total = comm.allreduce(float(part.sum()))
        gathered = comm.allgather(part)
        bcast = comm.bcast(part * 2 if comm.rank == 0 else None, root=0)
        return total, [g.copy() for g in gathered], bcast.copy()

    thread, process = _run_both(3, prog)
    for t, p in zip(thread, process):
        assert t[0] == p[0]
        assert all(np.array_equal(a, b) for a, b in zip(t[1], p[1]))
        assert np.array_equal(t[2], p[2])


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(8, 200))
def test_prop_redistribute_identical_across_transports(seed, n):
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3))
    tag = np.arange(n, dtype=np.uint64)

    def prog(comm):
        decomp = CartesianDecomposition.for_ranks(1.0, comm.size)
        mine = np.arange(comm.rank, n, comm.size)
        local, stats = redistribute_arrays(
            comm, decomp, {"pos": pos[mine], "tag": tag[mine]}
        )
        order = np.argsort(local["tag"])
        return local["pos"][order].copy(), local["tag"][order].copy(), stats.bytes_sent

    thread, process = _run_both(2, prog)
    for t, p in zip(thread, process):
        assert np.array_equal(t[0], p[0])
        assert np.array_equal(t[1], p[1])
        assert t[2] == p[2]


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_prop_alltoallv_identical_across_transports(seed):
    rng = np.random.default_rng(seed)
    sizes = rng.integers(0, 50, size=(2, 2))  # ragged chunk sizes

    def prog(comm):
        local = np.random.default_rng(seed + comm.rank)
        chunks = [
            {"x": local.random((int(sizes[comm.rank][d]), 3))}
            for d in range(comm.size)
        ]
        received = alltoallv_arrays(comm, chunks)
        return [r["x"].copy() for r in received]

    thread, process = _run_both(2, prog)
    for t, p in zip(thread, process):
        assert all(np.array_equal(a, b) for a, b in zip(t, p))


def test_parallel_fof_identical_across_transports():
    from repro.analysis.fof import parallel_fof

    rng = np.random.default_rng(42)
    # clustered points so FOF finds real groups
    centers = rng.random((12, 3))
    pos = np.concatenate([c + 0.01 * rng.standard_normal((30, 3)) for c in centers])
    pos = np.mod(pos, 1.0)
    tags = np.arange(len(pos), dtype=np.uint64)

    def prog(comm):
        decomp = CartesianDecomposition.for_ranks(1.0, comm.size)
        mine = decomp.rank_of_position(pos) == comm.rank
        halos = parallel_fof(
            comm, decomp, pos[mine], tags[mine], linking_length=0.02,
            overload_width=0.06, min_count=10,
        )
        return {int(k): np.sort(v).copy() for k, v in halos.items()}

    thread, process = _run_both(2, prog)
    for t, p in zip(thread, process):
        assert sorted(t) == sorted(p)
        for k in t:
            assert np.array_equal(t[k], p[k])


def test_shm_payload_path_identical(tmp_path):
    # force every array through the shared-memory codec
    cfg = SpmdConfig(transport="process", shm_threshold=1)

    def prog(comm):
        big = np.arange(50_000, dtype=np.float64) * (comm.rank + 1)
        gathered = comm.allgather(big)
        return [g.sum() for g in gathered]

    before = _shm_segments()
    thread = run_spmd(2, prog, transport="thread")
    process = run_spmd(2, prog, transport=cfg)
    assert thread == process
    assert _no_orphans()
    assert _shm_segments() == before


def test_message_stats_match_thread_transport():
    def prog(comm):
        comm.send(np.ones(100), dest=(comm.rank + 1) % comm.size)
        comm.recv(source=(comm.rank - 1) % comm.size)
        comm.barrier()
        return comm.rank

    _, tworld = run_spmd(2, prog, transport="thread", return_world=True)
    _, pworld = run_spmd(2, prog, transport="process", return_world=True)
    assert pworld.messages_sent == tworld.messages_sent
    assert pworld.bytes_sent == tworld.bytes_sent


# ---------------------------------------------------------------------------
# failure paths (satellite: actionable barrier/abort errors on both sides)
# ---------------------------------------------------------------------------


def test_thread_barrier_error_names_failed_rank_and_chains():
    def prog(comm):
        if comm.rank == 1:  # repro: noqa[RPR011] - deliberately divergent (asserts rank named)
            raise ValueError("rank one exploded")
        comm.barrier()

    with pytest.raises(SpmdError, match=r"rank 1 raised ValueError") as info:
        run_spmd(2, prog, transport="thread", timeout=10.0)
    assert isinstance(info.value.__cause__, ValueError)


def test_process_error_names_failed_rank_and_chains():
    def prog(comm):
        if comm.rank == 1:  # repro: noqa[RPR011] - deliberately divergent (asserts rank named)
            raise ValueError("rank one exploded")
        comm.barrier()
        return comm.rank

    with pytest.raises(SpmdError, match=r"rank 1 raised ValueError") as info:
        run_spmd(2, prog, transport="process", timeout=10.0)
    cause = info.value.__cause__
    assert isinstance(cause, RemoteRankError)
    assert cause.rank == 1
    assert "rank one exploded" in cause.formatted_traceback
    assert _no_orphans()


def test_process_rank_death_mid_collective_fails_cleanly():
    before = _shm_segments()

    def prog(comm):
        if comm.rank == 1:
            os._exit(13)  # simulate a hard crash, no exception machinery
        comm.barrier()
        return comm.rank

    with pytest.raises(SpmdError, match=r"rank 1"):
        run_spmd(2, prog, transport="process", timeout=10.0)
    assert _no_orphans()
    assert _shm_segments() == before


def test_process_timeout_reports_waiting_ranks():
    def prog(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=99)  # never sent
        return comm.rank

    with pytest.raises(SpmdError):
        run_spmd(2, prog, transport="process", timeout=1.0)
    assert _no_orphans()


def test_faults_injection_reaches_process_ranks():
    from repro.faults import FaultPlan, get_fault_plan, set_fault_plan

    plan = FaultPlan.from_dict(
        {"seed": 0, "sites": {"spmd.rank": {"always": True, "keys": [1]}}}
    )
    old = get_fault_plan()
    set_fault_plan(plan)
    try:
        def prog(comm):
            from repro.faults import maybe_inject

            maybe_inject("spmd.rank", key=comm.rank)
            comm.barrier()
            return comm.rank

        with pytest.raises(SpmdError, match="rank 1"):
            run_spmd(2, prog, transport="process", timeout=10.0)
    finally:
        set_fault_plan(old)
    assert _no_orphans()
