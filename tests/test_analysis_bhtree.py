"""Barnes–Hut octree: structure, moments, approximate potentials."""

import numpy as np
import pytest

from repro.analysis import BarnesHutTree
from repro.analysis.centers import potential_bruteforce


def test_empty_tree():
    tree = BarnesHutTree(np.empty((0, 3)))
    assert tree.n_nodes == 0
    assert tree.total_mass == 0.0


def test_total_mass_and_com(rng):
    pts = rng.uniform(0, 1, (100, 3))
    tree = BarnesHutTree(pts, masses=2.0)
    assert tree.total_mass == pytest.approx(200.0)
    assert np.allclose(tree.nodes[0].com, pts.mean(axis=0))


def test_variable_masses(rng):
    pts = rng.uniform(0, 1, (50, 3))
    m = rng.uniform(1, 3, 50)
    tree = BarnesHutTree(pts, masses=m)
    assert tree.total_mass == pytest.approx(m.sum())
    expected_com = (pts * m[:, None]).sum(axis=0) / m.sum()
    assert np.allclose(tree.nodes[0].com, expected_com)


def test_mass_length_mismatch():
    with pytest.raises(ValueError):
        BarnesHutTree(np.zeros((3, 3)), masses=np.ones(2))


def test_index_is_permutation(rng):
    pts = rng.uniform(0, 1, (128, 3))
    tree = BarnesHutTree(pts, leaf_size=4)
    assert np.array_equal(np.sort(tree.index), np.arange(128))


def test_children_partition_parent(rng):
    pts = rng.uniform(0, 1, (200, 3))
    tree = BarnesHutTree(pts, leaf_size=8)
    for node in tree.nodes:
        if node.children:
            child_counts = sum(
                tree.nodes[c].end - tree.nodes[c].start for c in node.children
            )
            assert child_counts == node.end - node.start


def test_node_mass_consistency(rng):
    pts = rng.uniform(0, 1, (150, 3))
    tree = BarnesHutTree(pts, leaf_size=8)
    for node in tree.nodes:
        if node.children:
            assert node.mass == pytest.approx(
                sum(tree.nodes[c].mass for c in node.children)
            )


def test_potential_theta_zero_is_exact(plummer_halo):
    pos = plummer_halo[:300]
    tree = BarnesHutTree(pos, leaf_size=8)
    exact = potential_bruteforce(pos, softening=1e-5, backend="vector")
    approx = tree.potential(pos, theta=0.0, softening=1e-5)
    assert np.allclose(approx, exact, rtol=1e-10)


def test_potential_accuracy_improves_with_theta(plummer_halo):
    pos = plummer_halo[:400]
    tree = BarnesHutTree(pos, leaf_size=8)
    exact = potential_bruteforce(pos, softening=1e-5, backend="vector")
    err = {}
    for theta in (0.3, 1.0):
        approx = tree.potential(pos, theta=theta, softening=1e-5)
        err[theta] = np.max(np.abs((approx - exact) / exact))
    assert err[0.3] < err[1.0]
    assert err[0.3] < 0.02  # sub-2% at theta=0.3


def test_potential_external_target(plummer_halo):
    """A faraway target sees approximately a point mass."""
    pos = plummer_halo[:200]
    tree = BarnesHutTree(pos)
    far = np.asarray([[1000.0, 0.0, 0.0]])
    phi = tree.potential(far, theta=0.5)
    d = np.linalg.norm(pos - far, axis=1).mean()
    assert phi[0] == pytest.approx(-200.0 / d, rel=0.01)


def test_query_radius_matches_brute(rng):
    pts = rng.uniform(0, 10, (300, 3))
    tree = BarnesHutTree(pts, leaf_size=8)
    center = np.asarray([5.0, 5.0, 5.0])
    got = np.sort(tree.query_radius(center, 2.0))
    expect = np.flatnonzero(np.sum((pts - center) ** 2, axis=1) <= 4.0)
    assert np.array_equal(got, expect)
