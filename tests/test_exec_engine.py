"""The work-stealing multi-process execution engine.

Covers the engine's contract end to end: zero-copy shared-memory
arrays, cost-model-guided work decomposition (LPT + chunking + giant
halo slab splitting), bit-identical parallel batch drivers for centers
and subhalos, crash isolation, telemetry (per-worker Chrome-trace
tracks + the Figure-4 imbalance gauge), and the scheduler's payload
execution hook.
"""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.analysis import (
    group_halo_members,
    halo_centers,
    potential_bruteforce,
    potential_reference,
)
from repro.analysis.centers import center_finding_cost
from repro.analysis.subhalos import find_subhalos
from repro.dataparallel import ProcessBackend, available_backends, get_backend
from repro.exec import (
    ExecutionEngine,
    HaloWorkQueue,
    SharedParticleStore,
    WorkerError,
    parallel_halo_centers,
    parallel_subhalos,
)
from repro.machines.machine import MOONLIGHT
from repro.machines.scheduler import Job, Scheduler
from repro.obs.report import RunTelemetry


# ---------------------------------------------------------------------------
# fixtures: a skewed catalog (the paper's Figure 4 shape)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def skewed_catalog():
    """One giant halo + many small ones + fluff, shuffled."""
    rng = np.random.default_rng(1234)
    sizes = [700, *rng.integers(30, 90, size=24)]
    pos_list, labels_list = [], []
    for i, s in enumerate(sizes):
        c = rng.uniform(5, 95, 3)
        pos_list.append(c + rng.normal(0, 1.0, (s, 3)))
        labels_list.append(np.full(s, i * 10, dtype=np.int64))
    pos_list.append(rng.uniform(0, 100, (300, 3)))  # fluff
    labels_list.append(np.full(300, -1, dtype=np.int64))
    pos = np.concatenate(pos_list)
    labels = np.concatenate(labels_list)
    perm = rng.permutation(len(pos))
    pos, labels = pos[perm], labels[perm]
    tags = rng.permutation(len(pos)).astype(np.int64)
    return pos, tags, labels


# ---------------------------------------------------------------------------
# satellites: grouping and the reference kernel
# ---------------------------------------------------------------------------


def test_group_halo_members_matches_flatnonzero(skewed_catalog):
    _, _, labels = skewed_catalog
    halo_tags, groups = group_halo_members(labels)
    expected_tags = np.unique(labels[labels >= 0])
    assert np.array_equal(halo_tags, expected_tags)
    for tag, members in zip(halo_tags, groups):
        assert np.array_equal(members, np.flatnonzero(labels == tag))


def test_group_halo_members_select_tags(skewed_catalog):
    _, _, labels = skewed_catalog
    halo_tags, groups = group_halo_members(labels, select_tags=np.asarray([0, 40]))
    assert halo_tags.tolist() == [0, 40]
    assert all(np.array_equal(g, np.flatnonzero(labels == t)) for t, g in zip(halo_tags, groups))


def test_group_halo_members_empty():
    tags, groups = group_halo_members(np.full(10, -1, dtype=np.int64))
    assert len(tags) == 0 and groups == []


def test_potential_reference_cross_validates_blocked_kernel():
    rng = np.random.default_rng(5)
    pos = rng.normal(0, 1, (60, 3))
    ref = potential_reference(pos, mass=1.5, softening=1e-4)
    fast = potential_bruteforce(pos, mass=1.5, softening=1e-4)
    assert np.allclose(ref, fast, rtol=1e-12, atol=1e-12)


def test_potential_bruteforce_block_boundaries():
    rng = np.random.default_rng(6)
    pos = rng.normal(0, 1, (100, 3))
    a = potential_bruteforce(pos, block=7)
    b = potential_bruteforce(pos, block=2048)
    assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# shared memory store
# ---------------------------------------------------------------------------


def test_shared_store_roundtrip():
    rng = np.random.default_rng(2)
    pos = rng.normal(0, 1, (100, 3))
    tags = np.arange(100, dtype=np.int64)
    store = SharedParticleStore.create(pos=pos, tags=tags)
    try:
        assert sorted(store.fields) == ["pos", "tags"]
        assert store.nbytes == pos.nbytes + tags.nbytes
        spec = store.spec
        attached = SharedParticleStore.attach(spec)
        try:
            assert np.array_equal(attached["pos"], pos)
            assert np.array_equal(attached["tags"], tags)
        finally:
            attached.close()
        assert np.array_equal(store["pos"], pos)
    finally:
        store.unlink()
    with pytest.raises(RuntimeError):
        store.array("pos")  # repro: noqa[RPR012] - asserts use-after-unlink raises


def test_shared_store_empty_array_and_idempotent_unlink():
    store = SharedParticleStore.create(empty=np.empty(0, dtype=np.float64))
    assert store["empty"].size == 0
    store.unlink()
    store.unlink()  # repro: noqa[RPR012] - asserts unlink is idempotent


# ---------------------------------------------------------------------------
# work queue
# ---------------------------------------------------------------------------


def test_workqueue_covers_every_halo_exactly():
    counts = np.asarray([5000, 400, 400, 60, 50, 45, 44, 43])
    q = HaloWorkQueue.build(counts, workers=4)
    covered = q.covered_halos()
    assert set(covered) == set(range(len(counts)))
    for h, spans in covered.items():
        if spans[0] == (0, 0):  # whole halo: exactly once
            assert spans == [(0, 0)]
        else:  # slabs: exact row partition
            spans = sorted(spans)
            assert spans[0][0] == 0 and spans[-1][1] == counts[h]
            for (_, e0), (s1, _) in zip(spans[:-1], spans[1:]):
                assert e0 == s1


def test_workqueue_splits_dominant_halo():
    counts = np.asarray([100_000, *([50] * 40)])
    q = HaloWorkQueue.build(counts, workers=4, min_split_rows=256)
    assert q.n_split_halos == 1
    slabs = [it for it in q.items if it.kind == "slab"]
    assert len(slabs) >= 2
    assert all(it.row_end - it.row_start >= 1 for it in slabs)
    # splitting must break the one-giant-pins-one-worker ceiling
    assert q.modeled_imbalance() < 2.0


def test_workqueue_not_splittable():
    counts = np.asarray([100_000, *([50] * 40)])
    q = HaloWorkQueue.build(counts, workers=4, splittable=False)
    assert q.n_split_halos == 0
    assert all(it.kind == "halos" for it in q.items)


def test_workqueue_chunks_small_halos():
    counts = np.asarray([40] * 200)
    q = HaloWorkQueue.build(counts, workers=2)
    assert q.n_items < 200  # amortized chunks, not one item per halo
    assert sum(it.n_halos for it in q.items) == 200


def test_workqueue_lpt_order_and_pool():
    counts = np.asarray([900, 800, 700, 60, 55, 50, 45, 40])
    q = HaloWorkQueue.build(counts, workers=2, split_factor=0.5)
    item_costs = [it.cost for it in q.items]
    assert item_costs == sorted(item_costs, reverse=True)
    seeded = [i for ids in q.seeds for i in ids]
    assert len(seeded) <= 2
    assert sorted(seeded + q.pool) == list(range(q.n_items))
    assert q.total_cost == int(center_finding_cost(counts).sum())


def test_workqueue_empty():
    q = HaloWorkQueue.build(np.empty(0, dtype=np.int64), workers=3)
    assert q.n_items == 0 and q.pool == []


# ---------------------------------------------------------------------------
# determinism: parallel == serial, bit for bit
# ---------------------------------------------------------------------------


def test_parallel_centers_bit_identical(skewed_catalog):
    pos, tags, labels = skewed_catalog
    serial = halo_centers(pos, tags, labels)
    for workers in (2, 4):
        par = halo_centers(pos, tags, labels, workers=workers)
        assert np.array_equal(serial.halo_tags, par.halo_tags)
        assert np.array_equal(serial.centers, par.centers)
        assert np.array_equal(serial.mbp_tags, par.mbp_tags)
        assert np.array_equal(serial.potentials, par.potentials)
        assert np.array_equal(serial.per_halo_pairs, par.per_halo_pairs)
        assert serial.stats.n_particles == par.stats.n_particles
        assert serial.stats.pair_evaluations == par.stats.pair_evaluations
        assert serial.stats.exact_potentials == par.stats.exact_potentials
        assert par.exec_report is not None
        assert par.exec_report.workers == workers


def test_parallel_centers_giant_halo_is_split(skewed_catalog):
    pos, tags, labels = skewed_catalog
    eng = ExecutionEngine(workers=2, min_split_rows=64)
    par = parallel_halo_centers(pos, tags, labels, engine=eng)
    assert par.exec_report.n_split_halos >= 1
    serial = halo_centers(pos, tags, labels)
    assert np.array_equal(serial.mbp_tags, par.mbp_tags)
    assert np.array_equal(serial.potentials, par.potentials)
    assert np.array_equal(serial.per_halo_pairs, par.per_halo_pairs)


def test_parallel_centers_astar_identical(skewed_catalog):
    pos, tags, labels = skewed_catalog
    serial = halo_centers(pos, tags, labels, method="astar")
    par = halo_centers(pos, tags, labels, method="astar", workers=2)
    assert np.array_equal(serial.mbp_tags, par.mbp_tags)
    assert np.array_equal(serial.potentials, par.potentials)
    assert np.array_equal(serial.per_halo_pairs, par.per_halo_pairs)


def test_parallel_centers_select_tags(skewed_catalog):
    pos, tags, labels = skewed_catalog
    pick = np.asarray([0, 30, 70])
    serial = halo_centers(pos, tags, labels, select_tags=pick)
    par = halo_centers(pos, tags, labels, select_tags=pick, workers=2)
    assert np.array_equal(serial.halo_tags, par.halo_tags)
    assert np.array_equal(serial.mbp_tags, par.mbp_tags)


def test_parallel_centers_empty_catalog():
    pos = np.random.default_rng(0).uniform(0, 1, (50, 3))
    labels = np.full(50, -1, dtype=np.int64)
    tags = np.arange(50)
    par = halo_centers(pos, tags, labels, workers=2)
    assert len(par.halo_tags) == 0


def test_parallel_subhalos_bit_identical():
    rng = np.random.default_rng(77)
    halos, pos_list, vel_list = {}, [], []
    off = 0
    for t, s in [(3, 400), (9, 200), (17, 120), (25, 90)]:
        c = rng.uniform(0, 50, 3)
        p = np.concatenate(
            [c + rng.normal(0, 0.5, (s // 2, 3)), c + 3 + rng.normal(0, 0.3, (s - s // 2, 3))]
        )
        pos_list.append(p)
        vel_list.append(rng.normal(0, 0.2, (s, 3)))
        halos[t] = np.arange(off, off + s)
        off += s
    pos, vel = np.concatenate(pos_list), np.concatenate(vel_list)

    serial = {t: find_subhalos(pos[i], vel[i], mass=1.0, g_constant=1.0) for t, i in halos.items()}
    batch = parallel_subhalos(pos, vel, halos, mass=1.0, g_constant=1.0, workers=2)
    assert set(batch.by_tag) == set(halos)
    for t in halos:
        a, b = serial[t], batch.by_tag[t]
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.subhalo_sizes, b.subhalo_sizes)
        assert a.n_candidates == b.n_candidates
        assert a.unbound_removed == b.unbound_removed
    assert set(batch.halo_seconds) == set(halos)
    assert batch.report is not None and batch.report.workers == 2


# ---------------------------------------------------------------------------
# backend registration and dispatch
# ---------------------------------------------------------------------------


def test_process_backend_registered():
    assert "process" in available_backends()
    be = get_backend("process")
    assert isinstance(be, ProcessBackend)
    assert be.workers >= 1
    assert be.kernel_backend == "vector"
    # primitives still behave like the vector backend
    assert np.array_equal(be.gather(np.asarray([2, 0]), np.asarray([10, 20, 30])), [30, 10])


def test_halo_centers_process_backend_dispatch(skewed_catalog):
    pos, tags, labels = skewed_catalog
    serial = halo_centers(pos, tags, labels)
    res = halo_centers(pos, tags, labels, backend=ProcessBackend(workers=2))
    assert np.array_equal(serial.mbp_tags, res.mbp_tags)
    assert np.array_equal(serial.potentials, res.potentials)
    assert res.exec_report is not None and res.exec_report.workers == 2


def test_halo_centers_workers_one_stays_serial(skewed_catalog):
    pos, tags, labels = skewed_catalog
    res = halo_centers(pos, tags, labels, workers=1)
    assert res.exec_report is None


# ---------------------------------------------------------------------------
# crash isolation
# ---------------------------------------------------------------------------


def test_worker_crash_surfaces_without_hang():
    eng = ExecutionEngine(workers=2, result_timeout=60.0)
    counts = np.asarray([100] * 6)
    work = eng.build_queue(counts, splittable=False)
    arrays = {
        "pos": np.zeros((600, 3)),
        "members": np.arange(600, dtype=np.int64),
        "starts": np.arange(0, 700, 100, dtype=np.int64),
    }
    t0 = time.monotonic()
    with pytest.raises(WorkerError) as exc_info:
        eng.run(arrays, work, {"task": "explode", "message": "deliberate test crash"})
    assert time.monotonic() - t0 < 30.0  # surfaced promptly, no hang
    err = exc_info.value
    assert "deliberate test crash" in err.remote_traceback
    assert err.worker_id is not None


def test_engine_inline_path_single_worker(skewed_catalog):
    pos, tags, labels = skewed_catalog
    eng = ExecutionEngine(workers=1)
    res = parallel_halo_centers(pos, tags, labels, engine=eng)
    serial = halo_centers(pos, tags, labels)
    assert np.array_equal(serial.mbp_tags, res.mbp_tags)


# ---------------------------------------------------------------------------
# telemetry: worker spans, imbalance gauge, Chrome trace
# ---------------------------------------------------------------------------


def test_engine_telemetry_spans_and_gauge(skewed_catalog, tmp_path):
    pos, tags, labels = skewed_catalog
    with obs.telemetry() as rec:
        halo_centers(pos, tags, labels, workers=2)
        snap = RunTelemetry.from_recorder(rec)
    names = {s.name for s in snap.spans}
    assert "exec.run" in names and "exec.item" in names
    worker_tracks = {s.thread for s in snap.spans if s.name == "exec.item"}
    assert {"exec-worker-0", "exec-worker-1"} <= worker_tracks
    # the Figure-4 gauge + steal counter + dispatch histogram
    metrics = snap.metrics
    assert metrics["exec_load_imbalance_ratio"] >= 1.0
    assert metrics["exec_runs_total"] == 1
    assert metrics["exec_steals_total"] >= 0
    assert any(k.startswith("exec_dispatch_overhead_seconds") for k in metrics)
    # phase report buckets exec time under its own phase
    assert "Parallel exec" in snap.phase_table()
    # Chrome trace export renders per-worker tracks
    path = tmp_path / "trace.json"
    snap.write_chrome_trace(str(path))
    events = json.loads(path.read_text())["traceEvents"]
    track_names = {
        e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    assert {"exec-worker-0", "exec-worker-1"} <= track_names


def test_record_span_api():
    with obs.telemetry() as rec:
        t0 = time.perf_counter()
        s = rec.record_span("exec.item", t0, t0 + 0.5, thread="exec-worker-9", cost=7)
        assert s.thread == "exec-worker-9"
        assert s.duration == pytest.approx(0.5)
        assert s.fields["cost"] == 7
        assert s in rec.tracer.snapshot()


# ---------------------------------------------------------------------------
# scheduler payload hook
# ---------------------------------------------------------------------------


def test_scheduler_executes_job_payload():
    sched = Scheduler(MOONLIGHT)
    ran: list[str] = []

    def work():
        ran.append("analysis")
        return 42

    sim = sched.submit(Job("sim", n_nodes=4, duration=10.0))
    job = sched.submit(Job("analysis", n_nodes=1, duration=5.0, after=[sim], payload=work))
    with obs.telemetry() as rec:
        sched.run()
        snap = RunTelemetry.from_recorder(rec)
    assert ran == ["analysis"]
    assert job.result == 42
    assert any(s.name == "scheduler.job_exec" for s in snap.spans)
    assert snap.metrics["scheduler_payloads_executed_total"] == 1
