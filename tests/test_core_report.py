"""Table/figure renderers."""

import numpy as np
import pytest

from repro.core import (
    InSituOnlyWorkflow,
    OfflineOnlyWorkflow,
    WorkloadProfile,
    figure_histogram,
    format_bytes,
    render_table,
    table3,
    table4,
)
from repro.machines import PAPER_CALIBRATION, TITAN


@pytest.fixture(scope="module")
def small_profile():
    return WorkloadProfile(
        n_particles=10_000_000,
        n_sim_nodes=8,
        n_steps=10,
        halo_counts=np.asarray([100, 5_000, 50_000]),
        halo_owner=np.asarray([0, 1, 2]),
    )


@pytest.mark.parametrize(
    "nbytes,expected",
    [
        (500, "500 B"),
        (2_048, "2.0 KB"),
        (38.7e9, "38.7 GB"),
        (20e12, "20.0 TB"),
        (2.5e15, "2.5 PB"),
    ],
)
def test_format_bytes(nbytes, expected):
    assert format_bytes(nbytes) == expected


def test_render_table_alignment():
    out = render_table(["a", "bb"], [["1", "222"], ["33", "4"]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a " in lines[1] and "bb" in lines[1]
    # all rows have equal width
    assert len({len(l) for l in lines[2:]}) <= 2


def test_table3_contains_all_methods(small_profile):
    reports = [
        InSituOnlyWorkflow(PAPER_CALIBRATION, TITAN).evaluate(small_profile),
        OfflineOnlyWorkflow(PAPER_CALIBRATION, TITAN).evaluate(small_profile),
    ]
    out = table3(reports)
    assert "in-situ" in out and "off-line" in out
    assert "Core hrs" in out


def test_table4_includes_phases(small_profile):
    report = OfflineOnlyWorkflow(PAPER_CALIBRATION, TITAN).evaluate(small_profile)
    out = table4(report)
    assert "Sim" in out and "Redistribute" in out
    assert "core-hours" in out


def test_figure_histogram_log_bars():
    values = np.asarray([*([1.0] * 100), 5.0])
    edges = np.asarray([0.0, 2.0, 10.0])
    out = figure_histogram(values, edges, label="demo")
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "100" in lines[1] and lines[1].count("#") > lines[2].count("#")


def test_figure_histogram_precomputed_counts():
    edges = np.asarray([0.0, 1.0, 2.0])
    out = figure_histogram(np.empty(0), edges, counts=np.asarray([3, 7]))
    assert "3" in out and "7" in out


def test_figure_histogram_linear_mode():
    edges = np.asarray([0.0, 1.0, 2.0])
    out = figure_histogram(
        np.empty(0), edges, counts=np.asarray([1, 100]), log_counts=False, width=10
    )
    lines = out.splitlines()
    # linear scaling: the small bin renders (almost) no bar, the big one
    # the full width
    assert lines[0].count("#") <= 1
    assert lines[1].count("#") == 10
