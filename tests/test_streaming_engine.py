"""StreamingAnalysis end-to-end: accumulator exactness, determinism, preview."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.analysis import mass_function
from repro.analysis.fof import fof_grid
from repro.analysis.power_spectrum import measure_power_spectrum
from repro.check import check_determinism
from repro.streaming import (
    ArrayStream,
    GenericIOStream,
    MisraGries,
    StreamingAnalysis,
    StreamingMassFunction,
    StreamingPowerSpectrum,
    slab_order,
    write_slab_snapshot,
)

BOX, LL, MIN_COUNT = 20.0, 0.4, 10
MF_BINS = (10.0, 1000.0, 16)


@pytest.fixture
def reference(blob_points):
    tags = np.arange(len(blob_points), dtype=np.int64)
    ref = fof_grid(np.mod(blob_points, BOX), LL, tags=tags, min_count=MIN_COUNT, box=BOX)
    order = np.argsort(ref.halo_tags, kind="stable")
    return ref.halo_tags[order], ref.halo_counts[order]


def _engine(**overrides):
    params = dict(
        linking_length=LL,
        min_count=MIN_COUNT,
        mass_function_bins=MF_BINS,
        power_spectrum_ng=16,
        heavy_hitter_k=8,
    )
    params.update(overrides)
    return StreamingAnalysis(**params)


def test_full_pass_matches_in_memory_pipeline(tmp_path, blob_points, reference):
    """The headline exactness gate, through the on-disk path."""
    ref_tags, ref_counts = reference
    path = tmp_path / "snap.gio"
    tags = np.arange(len(blob_points), dtype=np.int64)
    write_slab_snapshot(path, blob_points, box=BOX, tags=tags, block_rows=500)
    for chunk_rows in (128, 700, 5000):
        result = _engine().run(GenericIOStream(path, chunk_rows=chunk_rows))
        assert np.array_equal(result.catalog.halo_tags, ref_tags)
        assert np.array_equal(result.catalog.halo_counts, ref_counts)
        ref_mf = mass_function(ref_counts, MF_BINS[2], MF_BINS[0], MF_BINS[1])
        assert np.array_equal(result.mass_function.counts, ref_mf.counts)
        assert np.array_equal(result.mass_function.bin_edges, ref_mf.bin_edges)
        assert result.n_particles == len(blob_points)
        assert result.peak_rss_bytes > 0


def test_memory_telemetry_flows_through_obs(blob_points):
    rec = obs.TelemetryRecorder(run_id="stream-run")
    obs.set_recorder(rec)
    stream = ArrayStream(blob_points, BOX, chunk_rows=300)
    result = _engine().run(stream)
    m = rec.metrics
    assert m.counter("stream_chunks_total").value == result.n_chunks
    assert m.counter("stream_particles_total").value == len(blob_points)
    assert m.counter("stream_halos_retired_total").value == result.catalog.n_halos
    assert m.gauge("process_peak_rss_bytes").value == result.peak_rss_bytes
    assert m.counter("stream_prefetch_chunks_total").value == result.n_chunks


def test_prefetch_does_not_change_any_result(blob_points):
    tags = np.arange(len(blob_points), dtype=np.int64)
    runs = {
        depth: _engine(prefetch_depth=depth).run(
            ArrayStream(blob_points, BOX, tags=tags, chunk_rows=256)
        )
        for depth in (0, 1, 3)
    }
    base = runs[0]
    for result in (runs[1], runs[3]):
        assert np.array_equal(result.catalog.halo_tags, base.catalog.halo_tags)
        assert np.array_equal(result.catalog.halo_counts, base.catalog.halo_counts)
        assert np.array_equal(result.mass_function.counts, base.mass_function.counts)
        assert np.array_equal(result.power_spectrum.power, base.power_spectrum.power)
        assert result.heavy_hitters == base.heavy_hitters


def test_streamed_campaign_is_deterministic(tmp_path, blob_points):
    """check_determinism run-twice over the full disk-to-catalog pass."""
    path = tmp_path / "snap.gio"
    write_slab_snapshot(path, blob_points, box=BOX, block_rows=400)

    def campaign():
        result = _engine().run(GenericIOStream(path, chunk_rows=150))
        return {
            "tags": result.catalog.halo_tags,
            "counts": result.catalog.halo_counts,
            "mf": result.mass_function.counts,
            "pk": result.power_spectrum.power,
            "heavy": result.heavy_hitters,
        }

    report = check_determinism(campaign, runs=2)
    assert report.ok


# -- power spectrum ------------------------------------------------------------


def test_single_chunk_pk_bit_identical_to_sorted_in_memory(blob_points):
    """One chunk replays the exact op sequence on the slab-sorted order."""
    spos = np.mod(blob_points, BOX)[slab_order(blob_points, BOX)]
    ref = measure_power_spectrum(spos, box=BOX, ng=16)
    acc = StreamingPowerSpectrum(BOX, 16)
    acc.update(spos)
    got = acc.finalize()
    assert np.array_equal(got.power, ref.power)
    assert np.array_equal(got.k, ref.k)


def test_multi_chunk_pk_matches_to_float_reordering(blob_points):
    ref = measure_power_spectrum(np.mod(blob_points, BOX), box=BOX, ng=16)
    result = _engine().run(ArrayStream(blob_points, BOX, chunk_rows=137))
    np.testing.assert_allclose(result.power_spectrum.power, ref.power, rtol=1e-10)


# -- Misra–Gries ---------------------------------------------------------------


def test_heavy_hitters_find_the_big_blobs(blob_points, reference):
    ref_tags, ref_counts = reference
    result = _engine().run(ArrayStream(blob_points, BOX, chunk_rows=256))
    top = dict(result.heavy_hitters)
    # every halo heavier than W/(k+1) is guaranteed present
    threshold = ref_counts.sum() / (8 + 1)
    for tag, count in zip(ref_tags, ref_counts):
        if count > threshold:
            assert tag in top


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(1, 10),
    weights=st.lists(st.integers(1, 500), min_size=1, max_size=120),
)
def test_prop_misra_gries_guarantees(k, weights):
    """Survival + undercount bounds for arbitrary weighted streams."""
    sketch = MisraGries(k)
    true = {}
    for i, w in enumerate(weights):
        key = i % max(1, len(weights) // 3)  # repeat keys
        sketch.offer(key, w)
        true[key] = true.get(key, 0) + w
    total = sum(weights)
    assert sketch.total_weight == total
    bound = total / (k + 1)
    assert sketch.error_bound == bound
    for key, w in true.items():
        est = sketch.estimate(key)
        assert est <= w  # never overcounts
        assert w - est <= bound  # bounded undercount
        if w > bound:
            assert est > 0  # heavy keys always survive


def test_misra_gries_rejects_bad_inputs():
    with pytest.raises(ValueError):
        MisraGries(0)
    with pytest.raises(ValueError):
        MisraGries(4).offer(1, 0)


# -- accumulator edges ---------------------------------------------------------


def test_streaming_mass_function_additivity(rng):
    counts = rng.integers(10, 1000, 200)
    one_shot = StreamingMassFunction(*MF_BINS)
    one_shot.update(counts)
    chunked = StreamingMassFunction(*MF_BINS)
    for part in np.array_split(counts, 7):
        chunked.update(part)
    chunked.update(np.empty(0))  # empty batches are no-ops
    assert np.array_equal(one_shot.finalize().counts, chunked.finalize().counts)
    ref = mass_function(counts, MF_BINS[2], MF_BINS[0], MF_BINS[1])
    assert np.array_equal(one_shot.finalize().counts, ref.counts)


def test_streaming_pk_rejects_empty_stream():
    with pytest.raises(ValueError):
        StreamingPowerSpectrum(BOX, 16).finalize()


def test_engine_validates_prefetch_depth():
    with pytest.raises(ValueError):
        StreamingAnalysis(linking_length=0.4, prefetch_depth=-1)


# -- in-situ preview tier ------------------------------------------------------


def test_streaming_preview_algorithm(mini_sim):
    from repro.insitu import ALGORITHM_REGISTRY, StreamingPreviewAlgorithm
    from repro.insitu.algorithm import AnalysisContext

    assert ALGORITHM_REGISTRY["streaming_preview"] is StreamingPreviewAlgorithm
    alg = StreamingPreviewAlgorithm()
    alg.set_parameters(min_count=8, chunk_rows=2048, heavy_hitter_k=8)
    ctx = AnalysisContext(step=10, a=1.0)
    alg.execute(mini_sim, ctx)
    preview = ctx.store["streaming_preview"]
    assert "streaming_preview_seconds" in ctx.timings

    box = float(mini_sim.config.box)
    ll = 0.2 * box / mini_sim.config.np_per_dim
    ref = fof_grid(
        np.mod(np.asarray(mini_sim.particles.pos, dtype=np.float64), box),
        ll,
        tags=np.asarray(mini_sim.particles.tag, dtype=np.int64),
        min_count=8,
        box=box,
    )
    order = np.argsort(ref.halo_tags, kind="stable")
    assert np.array_equal(preview["halo_tags"], ref.halo_tags[order])
    assert np.array_equal(preview["halo_counts"], ref.halo_counts[order])
    assert preview["n_halos"] == len(ref.halo_tags)
    assert preview["peak_resident_particles"] < mini_sim.config.np_per_dim**3
