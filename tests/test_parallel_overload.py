"""Overload (ghost) region construction: coverage and periodic shifts."""

import numpy as np
import pytest

from repro.parallel import CartesianDecomposition, overload_destinations, select_overload


@pytest.fixture
def decomp():
    return CartesianDecomposition.for_ranks(100.0, 8)  # 2x2x2 grid, 50-cells


def _rank_points(decomp, rank, n, rng):
    lo, hi = decomp.bounds(rank)
    return rng.uniform(lo, hi, (n, 3))


def test_interior_particles_not_replicated(decomp, rng):
    lo, hi = decomp.bounds(0)
    center = 0.5 * (lo + hi)
    pts = rng.uniform(center - 5, center + 5, (100, 3))  # deep interior
    plan = overload_destinations(decomp, 0, pts, width=2.0)
    assert plan == {}


def test_boundary_particles_go_to_face_neighbor(decomp):
    lo, hi = decomp.bounds(0)
    # single particle near the +x face of rank 0
    p = np.asarray([[hi[0] - 0.5, (lo[1] + hi[1]) / 2, (lo[2] + hi[2]) / 2]])
    plan = overload_destinations(decomp, 0, p, width=2.0)
    face_rank = decomp.rank_of_coords(1, 0, 0)
    assert face_rank in plan
    idx, shift = plan[face_rank]
    assert np.array_equal(idx, [0])


def test_corner_particle_replicated_to_many(decomp):
    lo, hi = decomp.bounds(0)
    p = np.asarray([hi - 0.1])  # near the +++ corner
    plan = overload_destinations(decomp, 0, p, width=2.0)
    # on a 2x2x2 periodic grid the 7 other ranks are all corner-adjacent
    assert len(plan) == 7


def test_periodic_shift_applied_across_box_edge(decomp):
    lo, hi = decomp.bounds(0)
    p = np.asarray([[lo[0] + 0.1, lo[1] + 10, lo[2] + 10]])  # near x=0 edge
    plan = overload_destinations(decomp, 0, p, width=2.0)
    neighbor = decomp.rank_of_coords(-1, 0, 0)
    assert neighbor in plan
    shifted = select_overload(p, plan, neighbor)
    # the receiving (wrapped, high-x) rank's frame ends at x=box: the
    # ghost must appear just above box, adjacent to its high face
    assert shifted[0, 0] == pytest.approx(p[0, 0] + 100.0)


def test_width_zero_replicates_nothing(decomp, rng):
    pts = _rank_points(decomp, 0, 200, rng)
    assert overload_destinations(decomp, 0, pts, width=0.0) == {}


def test_negative_width_raises(decomp):
    with pytest.raises(ValueError):
        overload_destinations(decomp, 0, np.zeros((1, 3)), width=-1.0)


def test_excessive_width_raises(decomp):
    with pytest.raises(ValueError, match="too large"):
        overload_destinations(decomp, 0, np.zeros((1, 3)), width=30.0)


def test_ghost_coverage_complete(rng):
    """Every particle within `width` of a rank's sub-box must be visible
    to that rank after the exchange — the property FOF correctness
    rests on."""
    box = 60.0
    width = 3.0
    decomp = CartesianDecomposition.for_ranks(box, 8)
    pos = rng.uniform(0, box, (3000, 3))
    owners = decomp.rank_of_position(pos)

    # build each rank's ghost view
    views = {r: [pos[owners == r]] for r in range(8)}
    for r in range(8):
        mine = pos[owners == r]
        plan = overload_destinations(decomp, r, mine, width)
        for nb in plan:
            views[nb].append(select_overload(mine, plan, nb))

    for r in range(8):
        view = np.concatenate(views[r])
        lo, hi = decomp.bounds(r)
        # particles whose minimum-image distance to the sub-box is < width
        gap = np.maximum(
            np.maximum(lo - pos, 0.0), np.maximum(pos - hi, 0.0)
        )
        # account for periodic images
        gap = np.minimum(gap, box - np.maximum(np.maximum(lo - pos, 0.0), pos - hi))
        near = np.all(gap < width * 0.999, axis=1)
        # every near particle must appear in the view (as owned or ghost)
        for p in pos[near]:
            d = view - p
            d -= box * np.round(d / box)
            assert np.min(np.sum(d * d, axis=1)) < 1e-18
