"""In-transit staging area: put/get, blocking, capacity back-pressure."""

import threading

import numpy as np
import pytest

from repro.machines import StagingArea


def _blocks(n=10):
    return [{"pos": np.zeros((n, 3), dtype=np.float32), "tag": np.arange(n, dtype=np.uint64)}]


def test_put_get_roundtrip():
    area = StagingArea()
    nbytes = area.put("l2_step0001", _blocks())
    assert nbytes == 10 * 12 + 10 * 8
    item = area.get("l2_step0001")
    assert item.n_rows == 10
    data = item.read_all()
    assert np.array_equal(data["tag"], np.arange(10))


def test_get_drains_by_default():
    area = StagingArea()
    area.put("a", _blocks())
    area.get("a")
    assert len(area) == 0
    with pytest.raises(KeyError):
        area.get("a")


def test_get_without_drain_keeps_item():
    area = StagingArea()
    area.put("a", _blocks())
    area.get("a", drain=False)
    assert "a" in list(area)


def test_duplicate_name_rejected():
    area = StagingArea()
    area.put("a", _blocks())
    with pytest.raises(KeyError):
        area.put("a", _blocks())


def test_capacity_back_pressure():
    area = StagingArea(capacity_bytes=250)
    area.put("a", _blocks(10))  # 200 bytes
    with pytest.raises(MemoryError):
        area.put("b", _blocks(10))
    area.get("a")  # drain frees space
    area.put("b", _blocks(10))


def test_accounting():
    area = StagingArea()
    area.put("a", _blocks(5))
    area.put("b", _blocks(5))
    assert area.puts == 2
    assert area.bytes_staged_total == 2 * (5 * 12 + 5 * 8)
    assert area.used_bytes == area.bytes_staged_total
    area.get("a")
    assert area.gets == 1
    assert area.used_bytes == 5 * 12 + 5 * 8


def test_wait_for_blocks_until_producer():
    area = StagingArea()
    got = []

    def consumer():
        got.append(area.wait_for("late", timeout=5.0))

    t = threading.Thread(target=consumer)
    t.start()
    area.put("late", _blocks(3))
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert got[0].n_rows == 3


def test_wait_for_timeout():
    area = StagingArea()
    with pytest.raises(TimeoutError):
        area.wait_for("never", timeout=0.1)


def test_intransit_workflow_matches_file_transport(tmp_path):
    """The live in-transit variant produces the identical catalog with
    zero Level 2 files on disk."""
    from repro.core import run_combined_workflow, run_intransit_workflow
    from repro.sim import SimulationConfig

    cfg = SimulationConfig(np_per_dim=16, box=30.0, z_initial=30.0, n_steps=12)
    a = run_combined_workflow(cfg, tmp_path, threshold=100, min_count=30, n_ranks=4)
    b = run_intransit_workflow(cfg, threshold=100, min_count=30, n_ranks=4)
    assert np.array_equal(a.catalog.records, b.catalog.records)
    assert b.level2_paths == []
    assert len(b.listener_stats) == 0  # device fully drained
