"""RetryPolicy: backoff shape properties + execution semantics."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    RetryError,
    RetryPolicy,
    default_retry,
    fault_plan,
    resolve_retry,
)


# -- construction --------------------------------------------------------------


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(max_delay=0.001, base_delay=0.01)
    with pytest.raises(ValueError):
        RetryPolicy(attempt_timeout=0.0)


def test_jitter_must_keep_delays_monotone():
    # jitter > multiplier - 1 could reorder consecutive delays
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=2.0, jitter=1.5)
    RetryPolicy(multiplier=2.0, jitter=1.0)  # boundary is allowed


def test_resolve_retry_defaults():
    assert resolve_retry(None) is default_retry()
    custom = RetryPolicy(max_attempts=5)
    assert resolve_retry(custom) is custom


# -- backoff shape (property-tested) -------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    base=st.floats(min_value=1e-4, max_value=0.1),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    jitter_frac=st.floats(min_value=0.0, max_value=1.0),
    cap_factor=st.floats(min_value=1.0, max_value=100.0),
    attempts=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_delays_are_monotone_and_capped(
    base, multiplier, jitter_frac, cap_factor, attempts, seed
):
    """For any valid policy the delay sequence is non-decreasing and
    never exceeds max_delay — the guarantee docs/failures.md promises."""
    policy = RetryPolicy(
        max_attempts=attempts,
        base_delay=base,
        multiplier=multiplier,
        max_delay=base * cap_factor,
        jitter=jitter_frac * (multiplier - 1.0),
        seed=seed,
    )
    delays = policy.delays(key="k")
    assert len(delays) == attempts - 1
    assert all(d <= policy.max_delay + 1e-12 for d in delays)
    assert all(b >= a - 1e-12 for a, b in zip(delays, delays[1:]))


def test_delays_are_deterministic_per_seed_and_key():
    a = RetryPolicy(seed=3, max_attempts=6).delays(key="step7")
    b = RetryPolicy(seed=3, max_attempts=6).delays(key="step7")
    c = RetryPolicy(seed=4, max_attempts=6).delays(key="step7")
    assert a == b
    assert a != c


# -- execution semantics -------------------------------------------------------


def _flaky(failures, exc=RuntimeError):
    """A callable that fails ``failures`` times, then returns 'ok'."""
    state = {"calls": 0}

    def fn():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise exc(f"boom {state['calls']}")
        return "ok"

    fn.state = state
    return fn


def test_first_try_success_makes_no_retries():
    outcome = RetryPolicy(max_attempts=3).run(_flaky(0), sleep=lambda d: None)
    assert outcome.value == "ok"
    assert outcome.attempts == 1
    assert not outcome.retried
    assert outcome.total_delay == 0.0


def test_transient_failure_is_absorbed():
    outcome = RetryPolicy(max_attempts=3).run(_flaky(2), sleep=lambda d: None)
    assert outcome.value == "ok"
    assert outcome.attempts == 3
    assert outcome.retried


def test_exhaustion_reraises_the_last_real_exception():
    fn = _flaky(99, exc=OSError)
    with pytest.raises(OSError, match="boom 3"):
        RetryPolicy(max_attempts=3).run(fn, sleep=lambda d: None)
    assert fn.state["calls"] == 3


def test_non_retryable_errors_propagate_immediately():
    fn = _flaky(99, exc=KeyError)
    with pytest.raises(KeyError):
        RetryPolicy(max_attempts=3).run(fn, retryable=(OSError,), sleep=lambda d: None)
    assert fn.state["calls"] == 1


def test_attempt_timeout_raises_retry_error():
    policy = RetryPolicy(max_attempts=2, attempt_timeout=0.01, base_delay=0.0)

    def slow():
        time.sleep(0.03)
        return "late"

    with pytest.raises(RetryError) as exc_info:
        policy.run(slow, site="staging.get", sleep=lambda d: None)
    assert exc_info.value.site == "staging.get"


def test_sleep_receives_the_deterministic_delays():
    slept = []
    policy = RetryPolicy(max_attempts=4, seed=1)
    with pytest.raises(RuntimeError):
        policy.run(_flaky(99), key="j", sleep=slept.append)
    assert slept == policy.delays(key="j")


def test_max_attempts_one_disables_retrying():
    fn = _flaky(99)
    with pytest.raises(RuntimeError):
        RetryPolicy(max_attempts=1).run(fn, sleep=lambda d: None)
    assert fn.state["calls"] == 1


def test_retry_absorbs_injected_transient_fault():
    """The canonical pairing: fail_first=1 at a site, the default policy
    succeeds on attempt 2."""
    plan = FaultPlan(seed=0, sites={"listener.submit": FaultSpec(fail_first=1)})

    def attempt():
        from repro.faults import maybe_inject

        maybe_inject("listener.submit", key=12)
        return "submitted"

    with fault_plan(plan):
        outcome = RetryPolicy(max_attempts=3).run(
            attempt, site="listener.submit", key=12, sleep=lambda d: None
        )
    assert outcome.value == "submitted"
    assert outcome.attempts == 2
    assert plan.total_injected == 1


def test_retry_telemetry_counters_and_events():
    from repro.faults import maybe_inject

    with obs.telemetry(run_id="retry-telemetry") as rec:
        RetryPolicy(max_attempts=3).run(_flaky(1), site="io.write", sleep=lambda d: None)
        with pytest.raises(FaultInjected):
            with fault_plan(FaultPlan(seed=0, sites={"s": FaultSpec(always=True)})):
                RetryPolicy(max_attempts=2).run(
                    maybe_inject,
                    "s",
                    site="s",
                    retryable=(FaultInjected,),
                    sleep=lambda d: None,
                )
        names = [e.name for e in rec.events.snapshot()]
        span_names = {s.name for s in rec.tracer.snapshot()}
        assert rec.metrics.counter("retries_total").value == 2
        assert rec.metrics.counter("retry_exhausted_total").value == 1
        assert rec.metrics.counter("faults_injected_total").value == 2
    assert "retry.backoff" in names
    assert "retry.exhausted" in names
    assert "fault.injected" in names
    assert "retry.attempt" in span_names
