"""Durable run journal: format, crash recovery, recorder bounding.

The acceptance contracts of :mod:`repro.obs.journal`:

* a journal is a run directory — atomic ``manifest.json`` plus an
  append-only ``journal.jsonl`` with one complete JSON record per line;
* a torn final line (crash mid-write) is dropped on read and truncated
  away on re-open, so the journal survives its producer dying;
* concurrent writers interleave at line granularity (atomic framing);
* attaching a journal to a recorder bounds the in-memory buffers (the
  journal is the archive; RAM holds a spill window);
* a process that exits without ``close()`` still flushes via ``atexit``
  — crashed runs keep their tail, and the missing ``run.end`` marks
  them incomplete.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading

import pytest

from repro import obs
from repro.obs.journal import (
    RunJournal,
    RunManifest,
    config_hash,
    find_journal,
    read_journal,
    recover_tail,
)

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


# -- manifest ------------------------------------------------------------------


def test_config_hash_is_order_insensitive():
    a = config_hash({"b": 1, "a": {"y": 2, "x": [1, 2]}})
    b = config_hash({"a": {"x": [1, 2], "y": 2}, "b": 1})
    assert a == b
    assert a != config_hash({"b": 2, "a": {"y": 2, "x": [1, 2]}})


def test_manifest_roundtrip(tmp_path):
    m = RunManifest(
        run_id="r1",
        created=123.0,
        config={"threshold": 5},
        seeds={"sim": 42},
        fault_plan={"seed": 7, "sites": {}},
        code_version="git:abc",
        extra={"note": "hi"},
    )
    m.save(tmp_path / "manifest.json")
    back = RunManifest.load(tmp_path / "manifest.json")
    assert back.run_id == "r1"
    assert back.seeds == {"sim": 42}
    assert back.fault_plan == {"seed": 7, "sites": {}}
    assert back.config_hash == config_hash({"threshold": 5})
    assert json.loads((tmp_path / "manifest.json").read_text())["format"] == "repro-journal/1"


# -- journal write / read ------------------------------------------------------


def test_journal_create_write_close_read(tmp_path):
    with RunJournal.create(tmp_path, run_id="caseA", config={"k": 1}) as j:
        j.write({"kind": "event", "name": "hello", "fields": {"n": 1}})
        j.metrics_snapshot({"x_total": 3.0}, label="final")
        j.failure({"stage": "offline", "key": "7"})
    view = read_journal(tmp_path / "caseA")
    assert view.complete and not view.truncated and view.corrupt == 0
    kinds = [r["kind"] for r in view.records]
    assert kinds[0] == "run.start" and kinds[-1] == "run.end"
    assert [r["seq"] for r in view.records] == list(range(len(view.records)))
    assert view.last_metrics() == {"x_total": 3.0}
    assert view.failures() == [{"kind": "failure", "seq": 3, "stage": "offline", "key": "7"}]


def test_duplicate_run_id_refused(tmp_path):
    RunJournal.create(tmp_path, run_id="caseA").close()
    with pytest.raises(FileExistsError):
        RunJournal.create(tmp_path, run_id="caseA")


def test_write_after_close_is_refused(tmp_path):
    j = RunJournal.create(tmp_path, run_id="caseA")
    assert j.write({"kind": "event", "name": "a"}) >= 0
    j.close()
    assert j.write({"kind": "event", "name": "late"}) == -1


def test_find_journal_resolves_file_dir_and_root(tmp_path):
    j = RunJournal.create(tmp_path, run_id="caseA")
    j.close()
    p = str(tmp_path / "caseA" / "journal.jsonl")
    assert find_journal(p) == p
    assert find_journal(tmp_path / "caseA") == p
    assert find_journal(tmp_path) == p  # root with exactly one run
    RunJournal.create(tmp_path, run_id="caseB").close()
    with pytest.raises(FileNotFoundError):
        find_journal(tmp_path)  # ambiguous root names the candidates


# -- crash recovery ------------------------------------------------------------


def test_truncated_tail_is_dropped_on_read(tmp_path):
    j = RunJournal.create(tmp_path, run_id="caseA")
    j.write({"kind": "event", "name": "kept"})
    j.flush()
    path = tmp_path / "caseA" / "journal.jsonl"
    with open(path, "ab") as fh:  # simulate a crash mid-write
        fh.write(b'{"kind": "event", "name": "torn", "fie')
    view = read_journal(path)
    assert view.truncated
    assert [r.get("name") for r in view.records] == [None, "kept"]
    assert not view.complete


def test_reopen_truncates_torn_tail_and_continues_seq(tmp_path):
    j = RunJournal.create(tmp_path, run_id="caseA")
    j.write({"kind": "event", "name": "kept"})
    j.flush()
    path = tmp_path / "caseA" / "journal.jsonl"
    with open(path, "ab") as fh:
        fh.write(b'{"kind": "ev')
    j2 = RunJournal.open(tmp_path / "caseA")
    j2.write({"kind": "event", "name": "resumed"})
    j2.close()
    view = read_journal(path)
    assert not view.truncated and view.complete
    names = [r.get("name") for r in view.records if r["kind"] == "event"]
    assert names == ["kept", "resumed"]
    seqs = [r["seq"] for r in view.records]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_recover_tail_noop_on_clean_file(tmp_path):
    p = tmp_path / "j.jsonl"
    p.write_bytes(b'{"a": 1}\n{"b": 2}\n')
    assert recover_tail(p) == 0
    p.write_bytes(b'{"a": 1}\n{"b"')
    assert recover_tail(p) == 4
    assert p.read_bytes() == b'{"a": 1}\n'


def test_corrupt_interior_line_is_counted_not_fatal(tmp_path):
    j = RunJournal.create(tmp_path, run_id="caseA")
    j.write({"kind": "event", "name": "a"})
    j.flush()
    path = tmp_path / "caseA" / "journal.jsonl"
    with open(path, "ab") as fh:
        fh.write(b"NOT JSON AT ALL\n")
    j2 = RunJournal.open(tmp_path / "caseA")
    j2.write({"kind": "event", "name": "b"})
    j2.close()
    view = read_journal(path)
    assert view.corrupt == 1
    assert [e.name for e in view.events()] == ["a", "b"]


def test_concurrent_writers_interleave_at_line_granularity(tmp_path):
    j = RunJournal.create(tmp_path, run_id="caseA")
    n_threads, per_thread = 8, 200

    def pound(t: int) -> None:
        for i in range(per_thread):
            j.write({"kind": "event", "name": f"t{t}", "fields": {"i": i}})

    threads = [threading.Thread(target=pound, args=(t,)) for t in range(n_threads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    j.close()
    view = read_journal(tmp_path / "caseA")
    assert view.corrupt == 0 and not view.truncated
    events = view.events()
    assert len(events) == n_threads * per_thread
    # every thread's records arrive in its own program order
    for t in range(n_threads):
        seq = [e.fields["i"] for e in events if e.name == f"t{t}"]
        assert seq == list(range(per_thread))
    # seq numbering is a total order with no gaps
    seqs = [r["seq"] for r in view.records]
    assert seqs == list(range(len(view.records)))


def test_atexit_flush_preserves_tail_of_crashed_run(tmp_path):
    """A producer that never calls close() still lands its records."""
    script = (
        "import sys\n"
        "from repro.obs.journal import RunJournal\n"
        "j = RunJournal.create(sys.argv[1], run_id='crashy', flush_every=10**9)\n"
        "for i in range(5):\n"
        "    j.write({'kind': 'event', 'name': f'e{i}'})\n"
        # no close(), no flush(): interpreter exit must save the tail
    )
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    subprocess.run(
        [sys.executable, "-c", script, str(tmp_path)], check=True, env=env, timeout=60
    )
    view = read_journal(tmp_path / "crashy")
    assert not view.complete  # no run.end: this run crashed
    assert [e.name for e in view.events()] == [f"e{i}" for i in range(5)]


# -- recorder integration (satellite: bounded buffers) -------------------------


def test_attach_journal_bounds_recorder_buffers(tmp_path):
    rec = obs.TelemetryRecorder(run_id="caseA", capacity=100_000)
    j = RunJournal.create(tmp_path, run_id="caseA")
    rec.attach_journal(j, spill_capacity=16)
    for i in range(200):
        rec.event("tick", i=i)
        with rec.span("work", i=i):
            pass
    assert len(rec.events) <= 16
    assert len(rec.tracer) <= 16
    rec.detach_journal()
    j.close()
    view = read_journal(tmp_path / "caseA")
    # ... but the journal archived every one of them
    assert sum(1 for e in view.events() if e.name == "tick") == 200
    assert sum(1 for s in view.spans() if s.name == "work") == 200


def test_journal_records_spans_events_metrics_from_recorder(tmp_path):
    rec = obs.TelemetryRecorder(run_id="caseA")
    j = RunJournal.create(tmp_path, run_id="caseA")
    rec.attach_journal(j)
    with rec.span("outer"):
        with rec.span("inner"):
            rec.event("deep", level="warning")
    rec.counter("widgets_total").inc(3)
    j.metrics_snapshot(rec.metrics.as_dict(), label="final")
    rec.detach_journal()
    j.close()
    view = read_journal(tmp_path / "caseA")
    spans = {s.name: s for s in view.spans()}
    assert spans["inner"].parent_id == spans["outer"].span_id
    assert [e.name for e in view.events()] == ["deep"]
    assert view.last_metrics()["widgets_total"] == 3.0
