"""MBP center finding: correctness across methods and backends."""

import numpy as np
import pytest

from repro.analysis import (
    approximate_center_densest_cell,
    approximate_center_of_mass,
    center_finding_cost,
    halo_centers,
    mbp_center_astar,
    mbp_center_bruteforce,
    potential_bruteforce,
)


def test_potential_serial_vector_agree(plummer_halo):
    pos = plummer_halo[:200]
    a = potential_bruteforce(pos, backend="serial")
    b = potential_bruteforce(pos, backend="vector")
    assert np.allclose(a, b, rtol=1e-10)


def test_potential_two_particles_symmetric():
    pos = np.asarray([[0.0, 0, 0], [1.0, 0, 0]])
    phi = potential_bruteforce(pos, mass=2.0, softening=0.0, backend="vector")
    assert phi[0] == pytest.approx(phi[1]) == pytest.approx(-2.0)


def test_potential_excludes_self_term():
    pos = np.asarray([[0.0, 0, 0], [10.0, 0, 0]])
    phi = potential_bruteforce(pos, softening=1e-5, backend="vector")
    # without self-exclusion phi would be ~ -1e5
    assert phi[0] == pytest.approx(-1.0 / 10.0, rel=1e-3)


def test_potential_blocked_matches_unblocked(plummer_halo):
    pos = plummer_halo[:500]
    a = potential_bruteforce(pos, backend="vector", block=64)
    b = potential_bruteforce(pos, backend="vector", block=100000)
    assert np.allclose(a, b)


def test_mbp_bruteforce_finds_deepest(plummer_halo):
    idx, phi, stats = mbp_center_bruteforce(plummer_halo, backend="vector")
    full = potential_bruteforce(plummer_halo, backend="vector")
    assert idx == int(np.argmin(full))
    assert phi == pytest.approx(full.min())
    assert stats.pair_evaluations == len(plummer_halo) * (len(plummer_halo) - 1)


def test_mbp_center_near_density_peak(plummer_halo):
    """The MBP of a Plummer sphere lies near the profile center (10,10,10)."""
    idx, _, _ = mbp_center_bruteforce(plummer_halo, backend="vector")
    assert np.linalg.norm(plummer_halo[idx] - 10.0) < 0.5


def test_mbp_astar_matches_bruteforce(plummer_halo):
    i_b, phi_b, _ = mbp_center_bruteforce(plummer_halo, backend="vector")
    i_a, phi_a, stats = mbp_center_astar(plummer_halo)
    assert i_a == i_b
    assert phi_a == pytest.approx(phi_b, rel=1e-10)
    # pruning must have avoided most exact evaluations
    assert stats.exact_potentials < len(plummer_halo) / 2


def test_mbp_astar_small_halo_delegates():
    pos = np.random.default_rng(1).normal(0, 1, (50, 3))
    i_a, phi_a, _ = mbp_center_astar(pos)
    i_b, phi_b, _ = mbp_center_bruteforce(pos)
    assert i_a == i_b and phi_a == pytest.approx(phi_b)


def test_mbp_singleton_and_empty():
    idx, phi, _ = mbp_center_bruteforce(np.zeros((1, 3)))
    assert idx == 0 and phi == 0.0
    with pytest.raises(ValueError):
        mbp_center_bruteforce(np.empty((0, 3)))
    with pytest.raises(ValueError):
        mbp_center_astar(np.empty((0, 3)))


def test_approximate_centers_close_but_not_exact(plummer_halo):
    com = approximate_center_of_mass(plummer_halo)
    dc = approximate_center_densest_cell(plummer_halo)
    assert np.linalg.norm(com - 10.0) < 1.0
    assert np.linalg.norm(dc - 10.0) < 1.0


def test_halo_centers_batch(rng):
    """Two separated blobs with labels: one center per halo, correct tags."""
    blob_a = rng.normal(5.0, 0.3, (150, 3))
    blob_b = rng.normal(15.0, 0.3, (100, 3))
    pos = np.concatenate([blob_a, blob_b])
    tags = np.arange(250) + 1000
    labels = np.concatenate([np.full(150, 7), np.full(100, 9)])
    res = halo_centers(pos, tags, labels)
    assert np.array_equal(res.halo_tags, [7, 9])
    assert np.linalg.norm(res.centers[0] - 5.0) < 0.5
    assert np.linalg.norm(res.centers[1] - 15.0) < 0.5
    # mbp tag belongs to the right halo
    assert res.mbp_tags[0] < 1150 and res.mbp_tags[1] >= 1150
    assert res.stats.pair_evaluations == res.per_halo_pairs.sum()


def test_halo_centers_select_subset(rng):
    pos = rng.normal(5.0, 0.3, (120, 3))
    tags = np.arange(120)
    labels = np.concatenate([np.full(60, 1), np.full(60, 2)])
    res = halo_centers(pos, tags, labels, select_tags=np.asarray([2]))
    assert np.array_equal(res.halo_tags, [2])


def test_halo_centers_skips_fluff(rng):
    pos = rng.normal(0, 1, (50, 3))
    labels = np.full(50, -1)
    labels[:30] = 4
    res = halo_centers(pos, np.arange(50), labels)
    assert np.array_equal(res.halo_tags, [4])


def test_halo_centers_astar_method_agrees(plummer_halo):
    labels = np.zeros(len(plummer_halo), dtype=int)
    tags = np.arange(len(plummer_halo))
    a = halo_centers(plummer_halo, tags, labels, method="bruteforce")
    b = halo_centers(plummer_halo, tags, labels, method="astar")
    assert np.array_equal(a.mbp_tags, b.mbp_tags)


def test_halo_centers_unknown_method(plummer_halo):
    with pytest.raises(ValueError):
        halo_centers(plummer_halo, np.arange(len(plummer_halo)),
                     np.zeros(len(plummer_halo), dtype=int), method="magic")


def test_center_finding_cost_quadratic():
    """The paper's scaling: 10M-particle halo costs ~10,000x a 100k halo."""
    c = center_finding_cost(np.asarray([100_000, 10_000_000]))
    assert c[1] / c[0] == pytest.approx(10_000, rel=0.01)


def test_softening_prevents_singularity():
    pos = np.zeros((2, 3))  # coincident particles
    phi = potential_bruteforce(pos, softening=1e-3, backend="vector")
    assert np.all(np.isfinite(phi))
    assert phi[0] == pytest.approx(-1000.0)
