"""Subhalo finder: candidate growth, unbinding, load scaling."""

import numpy as np

from repro.analysis import find_subhalos, unbind_particles


def _two_component_halo(rng, n_main=400, n_sub=150, sep=4.0):
    """Parent halo with a dominant body and an infalling subclump, both
    with cold (bound) internal velocities."""
    main_pos = rng.normal(0.0, 1.0, (n_main, 3))
    sub_pos = rng.normal([sep, 0, 0], 0.3, (n_sub, 3))
    # velocity dispersions well below binding
    main_vel = rng.normal(0, 0.05, (n_main, 3))
    sub_vel = rng.normal([0.3, 0, 0], 0.05, (n_sub, 3))
    pos = np.concatenate([main_pos, sub_pos])
    vel = np.concatenate([main_vel, sub_vel])
    return pos, vel, n_main, n_sub


def test_two_components_found(rng):
    pos, vel, n_main, n_sub = _two_component_halo(rng)
    res = find_subhalos(pos, vel, g_constant=10.0, min_size=30, k_density=16)
    assert res.n_subhalos >= 2
    # subhalo 0 is the most massive (the main body)
    assert res.subhalo_sizes[0] > res.subhalo_sizes[1]
    # the subclump's particles predominantly share one label
    sub_labels = res.labels[n_main:]
    values, counts = np.unique(sub_labels[sub_labels >= 0], return_counts=True)
    dominant = values[np.argmax(counts)]
    assert counts.max() > 0.6 * n_sub
    # and that label is mostly composed of subclump particles
    members = np.flatnonzero(res.labels == dominant)
    assert (members >= n_main).mean() > 0.8


def test_single_smooth_halo_one_subhalo(rng):
    pos = rng.normal(0, 1.0, (500, 3))
    vel = rng.normal(0, 0.05, (500, 3))
    res = find_subhalos(pos, vel, g_constant=10.0, min_size=30, k_density=16)
    assert res.n_subhalos >= 1
    # dominant structure holds the overwhelming majority
    assert res.subhalo_sizes[0] > 0.7 * 500


def test_tiny_halo_returns_empty():
    res = find_subhalos(np.zeros((10, 3)), np.zeros((10, 3)), min_size=20)
    assert res.n_subhalos == 0
    assert np.all(res.labels == -1)


def test_labels_partition(rng):
    pos, vel, *_ = _two_component_halo(rng)
    res = find_subhalos(pos, vel, g_constant=10.0, min_size=30, k_density=16)
    for sid, size in enumerate(res.subhalo_sizes):
        assert (res.labels == sid).sum() == size


def test_no_unbind_keeps_more_particles(rng):
    pos, vel, *_ = _two_component_halo(rng)
    with_unbind = find_subhalos(pos, vel, g_constant=10.0, min_size=30, unbind=True)
    without = find_subhalos(pos, vel, g_constant=10.0, min_size=30, unbind=False)
    assert without.subhalo_sizes.sum() >= with_unbind.subhalo_sizes.sum()


# --- unbinding ---------------------------------------------------------------


def test_unbind_keeps_cold_bound_system(rng):
    pos = rng.normal(0, 1.0, (200, 3))
    vel = rng.normal(0, 0.01, (200, 3))  # very cold
    bound = unbind_particles(pos, vel, mass=1.0, g_constant=10.0, min_size=20)
    assert bound.sum() > 190


def test_unbind_dissolves_hot_system(rng):
    pos = rng.normal(0, 1.0, (200, 3))
    vel = rng.normal(0, 100.0, (200, 3))  # enormous kinetic energy
    bound = unbind_particles(pos, vel, mass=1.0, g_constant=1e-6, min_size=20)
    assert bound.sum() == 0


def test_unbind_removes_fast_interlopers(rng):
    pos = rng.normal(0, 1.0, (300, 3))
    vel = rng.normal(0, 0.01, (300, 3))
    vel[:15] = 1e3  # 15 interlopers moving absurdly fast
    bound = unbind_particles(pos, vel, mass=1.0, g_constant=10.0, min_size=20)
    assert not bound[:15].any()
    assert bound[15:].sum() > 270


def test_unbind_quarter_rule_is_gradual(rng):
    """With many marginally unbound particles the multi-pass rule removes
    at most a quarter of the positive-energy set per pass, so the bound
    remnant is larger than a single greedy cut would leave."""
    pos = rng.normal(0, 1.0, (200, 3))
    # tune velocities so roughly half the particles start unbound
    vel = rng.normal(0, 0.9, (200, 3))
    g = 0.5
    bound_gradual = unbind_particles(
        pos, vel, mass=1.0, g_constant=g, max_remove_fraction=0.25, min_size=10
    )
    bound_greedy = unbind_particles(
        pos, vel, mass=1.0, g_constant=g, max_remove_fraction=1.0, min_size=10
    )
    assert bound_gradual.sum() >= bound_greedy.sum()


def test_unbind_min_size_dissolution(rng):
    pos = rng.normal(0, 1, (25, 3))
    vel = rng.normal(0, 50.0, (25, 3))
    bound = unbind_particles(pos, vel, mass=1.0, g_constant=1e-6, min_size=20)
    assert bound.sum() == 0  # dropped below min_size -> dissolved


def test_subhalo_cost_grows_superlinearly(rng):
    """The imbalance driver: doubling the parent size should more than
    double the work (measured in wall time on this serial code)."""
    import time

    times = []
    for n in (400, 1600):
        pos = rng.normal(0, 1, (n, 3))
        vel = rng.normal(0, 0.05, (n, 3))
        t0 = time.perf_counter()
        find_subhalos(pos, vel, g_constant=10.0, min_size=30, k_density=16)
        times.append(time.perf_counter() - t0)
    assert times[1] > 2.0 * times[0]
