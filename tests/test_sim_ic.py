"""Initial conditions: Gaussian field statistics and Zel'dovich kinematics."""

import numpy as np
import pytest

from repro.sim import (
    ICConfig,
    LinearPower,
    QCONTINUUM_COSMOLOGY,
    gaussian_field,
    make_initial_conditions,
    za_displacements,
)
from repro.sim.pm import cic_deposit


@pytest.fixture(scope="module")
def power():
    return LinearPower(QCONTINUUM_COSMOLOGY)


def test_gaussian_field_zero_mean(power):
    f = gaussian_field(32, 64.0, power, seed=1)
    assert abs(f.mean()) < 1e-10


def test_gaussian_field_reproducible(power):
    a = gaussian_field(16, 64.0, power, seed=5)
    b = gaussian_field(16, 64.0, power, seed=5)
    assert np.array_equal(a, b)
    c = gaussian_field(16, 64.0, power, seed=6)
    assert not np.array_equal(a, c)


def test_gaussian_field_amplitude_scales_linearly(power):
    a = gaussian_field(16, 64.0, power, seed=5, amplitude=1.0)
    b = gaussian_field(16, 64.0, power, seed=5, amplitude=0.5)
    assert np.allclose(b, 0.5 * a)


def test_gaussian_field_variance_matches_pk(power):
    """The measured spectrum of the generated field must match P(k) at a
    well-sampled intermediate scale."""
    ng, box = 64, 200.0
    f = gaussian_field(ng, box, power, seed=3)
    fk = np.fft.rfftn(f)
    kf = 2 * np.pi / box
    kx = kf * np.fft.fftfreq(ng, d=1.0 / ng)
    kz = kf * np.fft.rfftfreq(ng, d=1.0 / ng)
    kmag = np.sqrt(kx[:, None, None] ** 2 + kx[None, :, None] ** 2 + kz[None, None, :] ** 2)
    pk3d = np.abs(fk) ** 2 * box**3 / ng**6
    sel = (kmag > 0.15) & (kmag < 0.35)
    measured = pk3d[sel].mean()
    expected = power(kmag[sel]).mean()
    assert measured == pytest.approx(expected, rel=0.25)  # cosmic variance


def test_za_displacements_divergence_recovers_delta(power):
    """δ = -∇·ψ by construction (checked spectrally on a smooth field)."""
    ng, box = 32, 100.0
    delta = gaussian_field(ng, box, power, seed=2)
    psi = za_displacements(delta, box)
    # spectral divergence
    kf = 2 * np.pi / box
    kx = kf * np.fft.fftfreq(ng, d=1.0 / ng)
    kz = kf * np.fft.rfftfreq(ng, d=1.0 / ng)
    div = np.zeros((ng, ng, ng))
    for axis, k in enumerate(
        (kx[:, None, None], kx[None, :, None], kz[None, None, :])
    ):
        div += np.fft.irfftn(
            1j * k * np.fft.rfftn(psi[axis]), s=(ng, ng, ng), axes=(0, 1, 2)
        )
    # exact up to the Nyquist modes, whose spectral derivative is
    # ill-defined for real fields; demand near-perfect correlation and a
    # small rms residual instead of exact equality
    assert np.corrcoef(-div.ravel(), delta.ravel())[0, 1] > 0.995
    assert np.sqrt(np.mean((-div - delta) ** 2)) < 0.15 * delta.std()


def test_ic_particle_count_and_tags():
    cfg = ICConfig(np_per_dim=8, box=32.0, z_initial=50.0)
    p = make_initial_conditions(cfg, QCONTINUUM_COSMOLOGY)
    assert len(p) == 512
    assert np.array_equal(np.sort(p.tag), np.arange(512))


def test_ic_positions_in_box():
    cfg = ICConfig(np_per_dim=8, box=32.0)
    p = make_initial_conditions(cfg, QCONTINUUM_COSMOLOGY)
    assert np.all(p.pos >= 0) and np.all(p.pos < 32.0)


def test_ic_displacements_small_at_high_z():
    """At z=50 the Zel'dovich displacements are a small fraction of the
    interparticle spacing."""
    cfg = ICConfig(np_per_dim=16, box=64.0, z_initial=50.0)
    p = make_initial_conditions(cfg, QCONTINUUM_COSMOLOGY)
    cell = 64.0 / 16
    lattice = (np.arange(16) + 0.5) * cell
    qx, qy, qz = np.meshgrid(lattice, lattice, lattice, indexing="ij")
    q = np.column_stack([qx.ravel(), qy.ravel(), qz.ravel()])
    d = p.pos - q
    d -= 64.0 * np.round(d / 64.0)
    rms = np.sqrt(np.mean(np.sum(d * d, axis=1)))
    assert rms < 0.5 * cell


def test_ic_velocity_parallel_to_displacement():
    """ZA: momentum is proportional to displacement (same growing mode)."""
    cfg = ICConfig(np_per_dim=8, box=32.0, z_initial=50.0)
    p = make_initial_conditions(cfg, QCONTINUUM_COSMOLOGY)
    cell = 32.0 / 8
    lattice = (np.arange(8) + 0.5) * cell
    qx, qy, qz = np.meshgrid(lattice, lattice, lattice, indexing="ij")
    q = np.column_stack([qx.ravel(), qy.ravel(), qz.ravel()])
    disp = p.pos - q
    disp -= 32.0 * np.round(disp / 32.0)
    ratio = p.vel / np.where(np.abs(disp) > 1e-9, disp, np.nan)
    finite = np.isfinite(ratio)
    assert np.nanstd(ratio[finite]) / abs(np.nanmean(ratio[finite])) < 1e-6


def test_ic_invalid_config():
    with pytest.raises(ValueError):
        ICConfig(np_per_dim=1, box=10.0)
    with pytest.raises(ValueError):
        ICConfig(np_per_dim=8, box=-5.0)
    with pytest.raises(ValueError):
        ICConfig(np_per_dim=8, box=10.0, z_initial=0.0)


def test_ic_grown_field_matches_growth_factor(power):
    """Depositing the IC particles recovers delta at the IC redshift."""
    cfg = ICConfig(np_per_dim=32, box=128.0, z_initial=50.0, seed=9)
    p = make_initial_conditions(cfg, QCONTINUUM_COSMOLOGY)
    delta = cic_deposit(p.pos / (128.0 / 32), 32)
    d_init = QCONTINUUM_COSMOLOGY.growth_factor(1.0 / 51.0)
    # linear field std at the cell scale, scaled by growth
    expected = gaussian_field(32, 128.0, power, seed=9, amplitude=d_init).std()
    # CIC smoothing lowers the measured std somewhat
    assert delta.std() == pytest.approx(expected, rel=0.35)
