"""Simulation driver: stepping, hooks, growth, particle container."""

import numpy as np
import pytest

from repro.sim import (
    BYTES_PER_PARTICLE,
    HACCSimulation,
    Particles,
    QCONTINUUM_COSMOLOGY,
    SimulationConfig,
)
from repro.sim.pm import cic_deposit


def test_config_validation():
    with pytest.raises(ValueError):
        SimulationConfig(n_steps=0)
    with pytest.raises(ValueError):
        SimulationConfig(z_initial=10.0, z_final=20.0)


def test_config_mesh_defaults_to_particles():
    assert SimulationConfig(np_per_dim=16).mesh_size == 16
    assert SimulationConfig(np_per_dim=16, ng=32).mesh_size == 32


def test_run_reaches_final_redshift():
    sim = HACCSimulation(SimulationConfig(np_per_dim=8, box=32.0, n_steps=5))
    sim.run()
    assert sim.z == pytest.approx(0.0, abs=1e-10)
    assert sim.step == 5
    assert len(sim.records) == 5


def test_particles_stay_in_box(mini_sim):
    assert np.all(mini_sim.particles.pos >= 0)
    assert np.all(mini_sim.particles.pos < mini_sim.config.box)


def test_structure_grows(mini_sim):
    """Final density contrast must exceed linear growth from the ICs —
    gravity is attractive and nonlinear collapse amplifies."""
    cfg = mini_sim.config
    sim0 = HACCSimulation(cfg)  # fresh ICs, same seed
    cell = cfg.box / cfg.np_per_dim
    s0 = cic_deposit(sim0.particles.pos / cell, cfg.np_per_dim).std()
    s1 = cic_deposit(mini_sim.particles.pos / cell, cfg.np_per_dim).std()
    d_ratio = QCONTINUUM_COSMOLOGY.growth_factor(1.0) / QCONTINUUM_COSMOLOGY.growth_factor(
        1.0 / 31.0
    )
    assert s1 / s0 > d_ratio  # super-linear growth


def test_growth_rate_matches_linear_theory_weak_field():
    """Evolving only to z=5 (weakly nonlinear), the measured growth of
    the density field must track D(a) within ~25%."""
    cfg = SimulationConfig(np_per_dim=16, box=100.0, z_initial=30.0, z_final=5.0, n_steps=16)
    sim = HACCSimulation(cfg)
    cell = cfg.box / 16
    s0 = cic_deposit(sim.particles.pos / cell, 16).std()
    sim.run()
    s1 = cic_deposit(sim.particles.pos / cell, 16).std()
    cos = QCONTINUUM_COSMOLOGY
    expected = cos.growth_factor(1.0 / 6.0) / cos.growth_factor(1.0 / 31.0)
    assert s1 / s0 == pytest.approx(expected, rel=0.25)


def test_analysis_hook_called_each_step():
    calls = []

    class Spy:
        def execute(self, sim, step, a):
            calls.append((step, a))

    sim = HACCSimulation(
        SimulationConfig(np_per_dim=8, box=32.0, n_steps=4), analysis_manager=Spy()
    )
    sim.run()
    assert [s for s, _ in calls] == [1, 2, 3, 4]
    assert calls[-1][1] == pytest.approx(1.0)


def test_call_at_start_invokes_step_zero():
    calls = []

    class Spy:
        def execute(self, sim, step, a):
            calls.append(step)

    sim = HACCSimulation(
        SimulationConfig(np_per_dim=8, box=32.0, n_steps=2),
        analysis_manager=Spy(),
        call_at_start=True,
    )
    sim.run()
    assert calls == [0, 1, 2]


def test_snapshot_is_deep_copy(mini_sim):
    snap = mini_sim.snapshot()
    snap.pos[:] = 0
    assert not np.allclose(mini_sim.particles.pos, 0)


def test_mesh_independence_of_state():
    """Same ICs evolved with ng=np vs ng=2np must agree on large scales."""
    a = HACCSimulation(SimulationConfig(np_per_dim=16, box=64.0, n_steps=10, z_final=2.0))
    b = HACCSimulation(
        SimulationConfig(np_per_dim=16, box=64.0, n_steps=10, z_final=2.0, ng=32)
    )
    a.run()
    b.run()
    da = cic_deposit(a.particles.pos / 8.0, 8)
    db = cic_deposit(b.particles.pos / 8.0, 8)
    # coarse (8^3) density fields agree well (the finer mesh adds genuine
    # small-scale force resolution, so correlation is high but not 1)
    assert np.corrcoef(da.ravel(), db.ravel())[0, 1] > 0.9


# --- Particles container -----------------------------------------------------


def test_particles_level1_bytes():
    p = Particles(
        pos=np.zeros((10, 3)), vel=np.zeros((10, 3)), tag=np.arange(10), box=1.0
    )
    assert p.level1_bytes == 10 * BYTES_PER_PARTICLE == 360


def test_particles_shape_validation():
    with pytest.raises(ValueError):
        Particles(pos=np.zeros((5, 2)), vel=np.zeros((5, 3)), tag=np.arange(5))
    with pytest.raises(ValueError):
        Particles(pos=np.zeros((5, 3)), vel=np.zeros((5, 3)), tag=np.arange(4))


def test_particles_select_and_concatenate():
    p = Particles(
        pos=np.arange(30, dtype=float).reshape(10, 3),
        vel=np.zeros((10, 3)),
        tag=np.arange(10),
        box=100.0,
    )
    a = p.select(np.asarray([0, 1]))
    b = p.select(np.asarray([5]))
    c = Particles.concatenate([a, b])
    assert len(c) == 3
    assert np.array_equal(c.tag, [0, 1, 5])
    assert c.box == 100.0


def test_particles_arrays_roundtrip():
    p = Particles(
        pos=np.random.default_rng(0).uniform(0, 9, (6, 3)),
        vel=np.zeros((6, 3)),
        tag=np.arange(6),
        box=9.0,
        extra={"phi": np.arange(6, dtype=float)},
    )
    q = Particles.from_arrays(p.to_arrays(), box=9.0)
    assert np.array_equal(q.pos, p.pos)
    assert np.array_equal(q.extra["phi"], p.extra["phi"])


def test_particles_wrap():
    p = Particles(
        pos=np.asarray([[10.5, -0.5, 3.0]]), vel=np.zeros((1, 3)), tag=[0], box=10.0
    )
    p.wrap()
    assert np.allclose(p.pos, [[0.5, 9.5, 3.0]])
