"""Subprocess worker for the streaming-vs-in-memory RSS benchmark.

``ru_maxrss`` is a per-process high-water mark, so the streamed and
in-memory passes must each run in a fresh interpreter to be comparable —
``test_stream_scaling.py`` launches one of these per (mode, size) cell.

Usage: ``python _stream_worker.py '<json config>'`` with keys ``mode``
(``"make"``, ``"stream"`` or ``"memory"``), ``path`` (slab snapshot),
``chunk_rows``, ``linking_length``, ``min_count``, ``mf_bins``.  Prints
one JSON line: baseline/peak RSS (bytes), analysis wall seconds, and a
catalog digest for the cross-mode bit-identity check.

``make`` generates the clustered snapshot — in a subprocess for the same
reason the measurements are: a forked child inherits the parent's
resident pages, so any large array the parent ever held would inflate
every later worker's baseline ``ru_maxrss``.
"""

import hashlib
import json
import sys
import time

import numpy as np

from repro.analysis.fof import fof_grid
from repro.analysis.mass_function import mass_function
from repro.io.genericio import GenericIOFile, read_genericio
from repro.obs import sample_memory
from repro.streaming import GenericIOStream, StreamingAnalysis, write_slab_snapshot


def _digest(tags: np.ndarray, counts: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(tags, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(counts, dtype=np.int64).tobytes())
    return h.hexdigest()


def run_make(cfg: dict) -> dict:
    """Clustered particles at fixed number density (box side ∝ n^{1/3})."""
    n = cfg["n"]
    rng = np.random.default_rng(cfg["seed"])
    box = float(round(n ** (1 / 3)))  # spacing 1 => ll = 0.2
    n_blob = n // 4
    n_centers = max(n // 2000, 8)
    centers = rng.uniform(0, box, (n_centers, 3))
    blob = centers[rng.integers(0, n_centers, n_blob)] + rng.normal(
        0, 0.15, (n_blob, 3)
    )
    pos = np.concatenate([blob, rng.uniform(0, box, (n - n_blob, 3))])
    nbytes = write_slab_snapshot(cfg["path"], np.mod(pos, box), box=box, block_rows=131072)
    return {"box": box, "payload_bytes": nbytes}


def run_stream(cfg: dict) -> dict:
    engine = StreamingAnalysis(
        linking_length=cfg["linking_length"],
        min_count=cfg["min_count"],
        mass_function_bins=tuple(cfg["mf_bins"]),
    )
    t0 = time.perf_counter()
    result = engine.run(GenericIOStream(cfg["path"], chunk_rows=cfg["chunk_rows"]))
    wall = time.perf_counter() - t0
    return {
        "wall_seconds": wall,
        "n_halos": result.catalog.n_halos,
        "n_chunks": result.n_chunks,
        "peak_resident_particles": result.peak_resident_particles,
        "catalog_sha256": _digest(result.catalog.halo_tags, result.catalog.halo_counts),
        "mf_sha256": hashlib.sha256(result.mass_function.counts.tobytes()).hexdigest(),
    }


def run_memory(cfg: dict) -> dict:
    box = GenericIOFile(cfg["path"]).meta["box"]
    t0 = time.perf_counter()
    data = read_genericio(cfg["path"])
    result = fof_grid(
        np.asarray(data["pos"], dtype=np.float64),
        cfg["linking_length"],
        tags=np.asarray(data["tag"], dtype=np.int64),
        min_count=cfg["min_count"],
        box=box,
    )
    order = np.argsort(result.halo_tags, kind="stable")
    tags, counts = result.halo_tags[order], result.halo_counts[order]
    lo, hi, n_bins = cfg["mf_bins"]
    mf = mass_function(counts, n_bins, lo, hi)
    wall = time.perf_counter() - t0
    return {
        "wall_seconds": wall,
        "n_halos": len(tags),
        "n_chunks": 1,
        "peak_resident_particles": len(data["tag"]),
        "catalog_sha256": _digest(tags, counts),
        "mf_sha256": hashlib.sha256(mf.counts.tobytes()).hexdigest(),
    }


def main() -> None:
    cfg = json.loads(sys.argv[1])
    if cfg["mode"] == "make":
        print(json.dumps(run_make(cfg)))
        return
    baseline = sample_memory()  # post-import, pre-data high-water mark
    out = run_stream(cfg) if cfg["mode"] == "stream" else run_memory(cfg)
    out["baseline_rss_bytes"] = baseline
    out["peak_rss_bytes"] = sample_memory()
    out["excess_rss_bytes"] = out["peak_rss_bytes"] - baseline
    print(json.dumps(out))


if __name__ == "__main__":
    main()
