"""Figure 4: distribution of projected per-node center-finding times.

Paper: histogram of the time each of Titan's 16,384 nodes would have
needed if all (large-halo) center finding had run in-situ — node counts
on a log scale in 1000-second bins; a long tail out to ~20,000 s, while
the in-situ small-halo work never exceeded ~60 s per node.
"""

import numpy as np

from repro.core import qcontinuum_like_profile
from repro.core.report import figure_histogram
from repro.machines import TITAN

from conftest import save_result

THRESHOLD = 300_000


def _node_times(profile, cost):
    mask = profile.halo_counts > THRESHOLD
    node_pairs = profile.node_pairs(mask)
    return np.asarray(cost.center_seconds(node_pairs, TITAN, backend="gpu"))


def test_figure4_node_time_histogram(benchmark, cost):
    profile = qcontinuum_like_profile()
    times = benchmark(_node_times, profile, cost)

    top = max(float(times.max()), 1000.0)
    edges = np.arange(0.0, top + 1000.0, 1000.0)
    text = figure_histogram(
        times,
        edges,
        label=(
            "Figure 4: projected per-node center time for off-loaded halos\n"
            f"(1000-s bins over {profile.n_sim_nodes:,} nodes, log-scaled bars)"
        ),
    )
    save_result("figure4", text)

    # shape: the overwhelming majority of nodes have little large-halo
    # work, with a long expensive tail (the load imbalance story)
    counts, _ = np.histogram(times, bins=edges)
    assert counts[0] > 0.5 * counts.sum()
    assert times.max() > 5_000.0  # tail reaches many thousands of seconds
    # the slowest node is many times the mean: imbalance
    assert times.max() > 5.0 * times.mean()


def test_figure4_insitu_work_is_under_a_minute(benchmark, cost):
    """Companion claim: the small-halo in-situ centers cost <~60 s/node."""
    profile = qcontinuum_like_profile()
    mask = profile.halo_counts <= THRESHOLD
    node_pairs = benchmark(profile.node_pairs, mask)
    times = np.asarray(cost.center_seconds(node_pairs, TITAN, backend="gpu"))
    save_result(
        "figure4_insitu",
        f"in-situ per-node center seconds: max {times.max():.0f}, "
        f"mean {times.mean():.0f} (paper: 'no node required more than "
        f"approximately 60 seconds')",
    )
    assert times.max() < 600
