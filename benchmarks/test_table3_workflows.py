"""Table 3: the five workflow strategies' summary comparison.

Paper (1024³ test problem, 32 Titan nodes):

====================  =======  =======  ==============  ========
method                I/O      redist.  queueing        core hrs
====================  =======  =======  ==============  ========
in-situ               none     none     none            193
off-line              Level 1  Level 1  full            356
combined/simple       Level 2  Level 2  partial         135
combined/co-sched.    Level 2  Level 2  partial simult  (same)
combined/in-transit   none     Level 2  partial simult  (n/a)
====================  =======  =======  ==============  ========
"""

import pytest

from repro.core import evaluate_all, table3
from repro.machines import TITAN

from conftest import save_result

PAPER = {"in-situ": 193.0, "off-line": 356.0, "combined/simple": 135.0}


def test_table3(benchmark, paper_profile, cost):
    reports = benchmark(evaluate_all, paper_profile, cost, TITAN)
    text = table3(reports) + "\npaper core hrs: in-situ 193 / off-line 356 / combined 135"
    save_result("table3", text)

    by_name = {r.name: r for r in reports}
    # ordering: combined < in-situ < off-line (the paper's conclusion)
    assert (
        by_name["combined/simple"].analysis_core_hours
        < by_name["in-situ"].analysis_core_hours
        < by_name["off-line"].analysis_core_hours
    )
    # magnitudes within 25%
    for name, expected in PAPER.items():
        assert by_name[name].analysis_core_hours == pytest.approx(expected, rel=0.25)
    # the combined workflow saves ~30%+ vs in-situ (paper: "~30%")
    saving = 1 - by_name["combined/simple"].analysis_core_hours / by_name[
        "in-situ"
    ].analysis_core_hours
    assert saving > 0.2
    # variants: same core-hours for co-scheduled, <= for in-transit
    assert by_name["combined/coscheduled"].analysis_core_hours == pytest.approx(
        by_name["combined/simple"].analysis_core_hours
    )
    assert (
        by_name["combined/intransit"].analysis_core_hours
        <= by_name["combined/simple"].analysis_core_hours
    )
    # descriptor columns match the paper rows
    assert by_name["in-situ"].io_level == "none"
    assert by_name["off-line"].io_level == "Level 1"
    assert by_name["combined/simple"].io_level == "Level 2"
    assert by_name["combined/intransit"].io_level == "none"
    assert by_name["combined/intransit"].redistribute_level == "Level 2"
