"""Ablation: co-scheduling listener behaviour (DESIGN.md #3).

Paper §3.2: "the rate at which the listener checks for new output files
should be chosen to be much higher than the rate at which the main code
generates new output files" — otherwise jobs pile up.  Also the core
co-scheduling claim: analysis jobs overlapping the simulation shorten
the time-to-science at identical core-hour cost.
"""

import numpy as np
import pytest

from repro.core import CombinedWorkflow, qcontinuum_like_profile
from repro.core.report import render_table
from repro.machines import Listener, TITAN

from conftest import save_result


def test_listener_pileup_vs_poll_rate(benchmark, tmp_path):
    """Slow polling causes backlog spikes; fast polling sees one file at
    a time (simulated with pre-written snapshot files, deterministic)."""
    def backlog(poll_every_n_snapshots):
        spool = tmp_path / f"spool_{poll_every_n_snapshots}"
        spool.mkdir()
        listener = Listener(spool, "l2_step*.gio", lambda *a: None)
        n_snaps = 24
        for s in range(n_snaps):
            (spool / f"l2_step{s:04d}.gio").write_bytes(b"x")
            if (s + 1) % poll_every_n_snapshots == 0:
                listener.poll_once()
        listener.poll_once()
        return listener.stats.max_backlog

    fast = benchmark.pedantic(backlog, args=(1,), rounds=1, iterations=1)
    slow = backlog(8)
    save_result(
        "ablation_listener",
        f"max job backlog: poll-per-snapshot {fast}, poll-every-8 {slow} "
        f"(paper: poll rate must be much higher than the output rate)",
    )
    assert fast == 1
    assert slow >= 8


def test_coscheduling_time_to_science(benchmark, cost):
    """Makespan of the co-scheduled campaign vs the simple variant for
    the multi-snapshot (scaled Q Continuum) workload."""
    profile = qcontinuum_like_profile(scale_down=512)

    wf = CombinedWorkflow(cost, TITAN, variant="coscheduled")
    makespan = benchmark.pedantic(
        wf.coscheduled_makespan, args=(profile,), rounds=1, iterations=1
    )
    simple = CombinedWorkflow(cost, TITAN, variant="simple").evaluate(profile)
    t_simple = (
        simple.simulation.total_seconds
        + simple.postprocessing[0].queue_wait
        + simple.postprocessing[0].total_seconds
    )
    save_result(
        "ablation_coscheduling",
        render_table(
            ["variant", "time-to-science (s)"],
            [
                ["co-scheduled (overlapped)", f"{makespan:,.0f}"],
                ["simple (queued after sim)", f"{t_simple:,.0f}"],
                ["speedup", f"{t_simple / makespan:.2f}x"],
            ],
            title="Co-scheduling: time to the last analysis result",
        ),
    )
    assert makespan < t_simple
