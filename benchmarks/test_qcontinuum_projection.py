"""§4.1 narrative: the Q Continuum production campaign numbers.

Paper quotes for the final (z=0) snapshot of the 8192³ run:

* center finding for the off-loaded halos took ~1770 node-hours on
  Moonlight (~985 Titan-equivalent node-hours, ~30k core-hours);
* the longest single-node analysis job ran 37.8 h, the shortest 6.0 h,
  the longest single block 10.6 h (the block holding the ~25M halo);
* total combined analysis ~0.52M core-hours vs ~3.4M if fully
  in-situ/off-line — "a factor of 6.5 more expensive than the approach
  taken".
"""

import numpy as np
import pytest

from repro.core import qcontinuum_like_profile
from repro.core.planner import lpt_assign
from repro.core.report import render_table
from repro.machines import MOONLIGHT, TITAN

from conftest import save_result

THRESHOLD = 300_000


@pytest.fixture(scope="module")
def q_profile():
    return qcontinuum_like_profile()


def test_moonlight_node_hours(benchmark, q_profile, cost):
    mask = q_profile.halo_counts > THRESHOLD
    total_pairs = benchmark(q_profile.weighted_pairs, mask)
    seconds_ml = total_pairs / cost.pair_rate(MOONLIGHT, "gpu")
    node_hours_ml = seconds_ml / 3600.0
    node_hours_titan = node_hours_ml * 0.55
    core_hours = node_hours_titan * TITAN.charge_factor

    save_result(
        "qcontinuum_nodehours",
        f"off-loaded center finding: {node_hours_ml:,.0f} Moonlight node-h "
        f"(paper 1770), {node_hours_titan:,.0f} Titan-equivalent (paper 985), "
        f"{core_hours:,.0f} core-h (paper ~30,000)",
    )
    # order of magnitude + factor-2 band
    assert 600 < node_hours_ml < 6000
    assert 10_000 < core_hours < 110_000


def test_job_duration_spread(benchmark, q_profile, cost):
    """128 aggregated files analyzed by single-node Moonlight jobs:
    longest 37.8 h, shortest 6.0 h (imbalance across files)."""
    mask = q_profile.halo_counts > THRESHOLD
    pairs = benchmark(lambda: q_profile.pair_counts()[mask]).astype(float) * q_profile.halo_weight[mask]
    seconds = pairs / cost.pair_rate(MOONLIGHT, "gpu")
    # halos were grouped into 128 files by originating node block, i.e.
    # essentially at random with respect to halo mass
    rng = np.random.default_rng(8)
    files = rng.integers(0, 128, len(seconds))
    per_file = np.bincount(files, weights=seconds, minlength=128) / 3600.0
    longest, shortest = per_file.max(), per_file.min()
    save_result(
        "qcontinuum_jobs",
        f"per-file Moonlight job hours: longest {longest:.1f} (paper 37.8), "
        f"shortest {shortest:.1f} (paper 6.0), ratio {longest/max(shortest,1e-9):.1f} "
        f"(paper 6.3)",
    )
    # the spread between longest and shortest job is a single-digit factor
    assert 2.0 < longest / max(shortest, 1e-9) < 40.0
    # the longest job runs for hours-to-days, not minutes
    assert longest > 5.0


def test_longest_block_holds_the_giant(benchmark, q_profile, cost):
    """The longest single block (10.6 h) held the ~25M-particle halo."""
    giant_pairs = benchmark(lambda: float(q_profile.largest_halo) ** 2)
    hours = giant_pairs / cost.pair_rate(MOONLIGHT, "gpu") / 3600.0
    save_result(
        "qcontinuum_giant",
        f"25M-particle halo alone: {hours:.1f} Moonlight GPU hours "
        f"(paper: longest block 10.6 h including several other large halos)",
    )
    assert 5 < hours < 40


def test_factor_65_saving(benchmark, q_profile, cost):
    """The headline: combined analysis 0.52M core-h vs 3.4M fully
    in-situ — 'a factor of 6.5 more expensive than the approach taken'."""
    n_nodes = q_profile.n_sim_nodes

    # combined approach: find (1 h on all nodes) + small centers (~1 min)
    # + off-loaded centers on Moonlight (Titan-equivalent)
    find_h = 1.0  # paper: "approximately one hour on 16,384 nodes"
    small_pairs = benchmark(q_profile.weighted_pairs, q_profile.halo_counts <= THRESHOLD)
    small_h = small_pairs / q_profile.n_sim_nodes / cost.pair_rate(TITAN, "gpu") / 3600
    combined_core_h = (find_h + small_h) * n_nodes * TITAN.charge_factor
    off_pairs = q_profile.weighted_pairs(q_profile.halo_counts > THRESHOLD)
    off_core_h = off_pairs / cost.pair_rate(TITAN, "gpu") / 3600 * TITAN.charge_factor
    combined_total = combined_core_h + off_core_h

    # fully in-situ: the slowest node dictates — every node waits for the
    # node holding the biggest halos
    node_pairs = q_profile.node_pairs(q_profile.halo_counts > THRESHOLD)
    slowest_h = float(
        np.max(cost.center_seconds(node_pairs, TITAN, backend="gpu"))
    ) / 3600
    insitu_total = (find_h + small_h + slowest_h) * n_nodes * TITAN.charge_factor

    factor = insitu_total / combined_total
    rows = [
        ["combined", f"{combined_total/1e6:.2f}M", "0.52M"],
        ["fully in-situ", f"{insitu_total/1e6:.2f}M", "3.4M"],
        ["factor", f"{factor:.1f}", "6.5"],
    ]
    save_result(
        "qcontinuum_factor",
        render_table(["approach", "core-hours", "paper"], rows,
                     title="Q Continuum: combined vs fully in-situ"),
    )
    # the combined approach wins by a mid-single-digit factor
    assert 2.5 < factor < 20.0
    assert combined_total < 2.0e6
    assert insitu_total > 1.5e6
