"""SPMD transport scaling + pipelined-workflow overlap harness.

Two measurements back the combined-workflow story:

* **Transport scaling** — the distributed FOF program run on 1 rank
  (inline), 2 thread ranks (the GIL-bound reference), and 2 *process*
  ranks (the :mod:`repro.parallel.transport` substrate: one OS process
  per rank, shared-memory array payloads).  The 2-rank runs must be
  bit-identical across transports (same decomposition, different rank
  substrate); with ≥2 real cores the process transport must beat 1 rank
  by ≥1.2x.  The 1-rank run is the timing baseline only — rank count
  changes the ghost-exchange pattern, so membership of halos straddling
  the periodic boundary legitimately differs from the 2-rank split.
* **Pipeline overlap** — the combined workflow with
  ``pipeline_insitu=True`` runs the in-situ chain of step *t*
  concurrently with the solver's step *t+1*; the
  :class:`~repro.obs.timeline.WorkflowTimeline` overlap fraction must
  be strictly positive (it is, even on one core: the heavy kernels
  release the GIL).

Results land in ``BENCH_spmd.json`` at the repo root (uploaded as a CI
artifact) plus a rendered text table under ``benchmarks/results/``.

Speedup gating
--------------
Real speedup needs real cores.  The harness always records
``cpu_count``; the ≥1.2x two-rank assertion is enforced only when the
host has ≥2 cores (or ``SPMD_BENCH_REQUIRE_SPEEDUP=1`` forces it, as CI
does).  ``SPMD_BENCH_MIN_SPEEDUP2`` overrides the threshold.  The
overlap gate has no core requirement and always holds.
"""

import json
import os
import tempfile
import time
from datetime import datetime, timezone

import numpy as np

from repro import obs
from repro.analysis.fof import parallel_fof
from repro.core.driver import run_combined_workflow
from repro.obs.timeline import WorkflowTimeline
from repro.parallel import CartesianDecomposition, run_spmd
from repro.sim.hacc import SimulationConfig

from conftest import save_result

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_spmd.json")
)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _clustered_points(rng, n_clumps=60, per_clump=600, box=100.0):
    """Dense clumps spread through the box: real work for distributed FOF."""
    centers = rng.uniform(0, box, (n_clumps, 3))
    pos = np.concatenate(
        [c + rng.normal(0, 0.4, (per_clump, 3)) for c in centers]
    )
    pos = np.mod(pos, box)
    return pos, np.arange(len(pos), dtype=np.uint64)


def _fof_program(pos, tags, box):
    def prog(comm):
        decomp = CartesianDecomposition.for_ranks(box, comm.size)
        mine = decomp.rank_of_position(pos) == comm.rank
        halos = parallel_fof(
            comm,
            decomp,
            pos[mine],
            tags[mine],
            linking_length=0.25,
            overload_width=4.0,
            min_count=20,
        )
        return {int(k): np.sort(v) for k, v in halos.items()}

    return prog


def _merge(results):
    out = {}
    for r in results:
        out.update(r)
    return out


def test_spmd_transport_scaling(bench_rng):
    box = 100.0
    pos, tags = _clustered_points(bench_rng)
    prog = _fof_program(pos, tags, box)
    cpu_count = _cpu_count()

    variants = {}
    baselines = {}
    for name, nranks, transport in (
        ("1rank", 1, "thread"),
        ("2rank_thread", 2, "thread"),
        ("2rank_process", 2, "process"),
    ):
        times = []
        for _ in range(2):  # best of 2: first call pays warm-up/fork cost
            t0 = time.perf_counter()
            halos = _merge(run_spmd(nranks, prog, transport=transport))
            times.append(time.perf_counter() - t0)
        variants[name] = {"seconds": min(times), "n_halos": len(halos)}
        baselines[name] = halos

    # bit-identity across transports at the same rank count: the process
    # substrate must be observationally indistinguishable from threads
    ref = baselines["2rank_thread"]
    proc = baselines["2rank_process"]
    assert sorted(proc) == sorted(ref), "2rank_process: halo tag set diverged"
    for tag in ref:
        assert np.array_equal(proc[tag], ref[tag]), f"2rank_process: halo {tag} diverged"

    serial_seconds = variants["1rank"]["seconds"]
    for name in ("2rank_thread", "2rank_process"):
        variants[name]["speedup_vs_1rank"] = (
            serial_seconds / variants[name]["seconds"]
            if variants[name]["seconds"] > 0
            else 0.0
        )

    require_speedup = (
        cpu_count >= 2 or os.environ.get("SPMD_BENCH_REQUIRE_SPEEDUP") == "1"
    )
    min_speedup2 = float(os.environ.get("SPMD_BENCH_MIN_SPEEDUP2", "1.2"))
    speedup2 = variants["2rank_process"]["speedup_vs_1rank"]

    # -- pipelined combined workflow: overlap measured from the trace -----
    config = SimulationConfig(np_per_dim=24, n_steps=6, seed=7)
    overlap = {}
    solver_overlap = {}
    for pipelined in (False, True):
        with obs.telemetry() as rec:
            with tempfile.TemporaryDirectory() as spool:
                run_combined_workflow(
                    config,
                    spool,
                    threshold=200,
                    n_ranks=4,
                    min_count=20,
                    pipeline_insitu=pipelined,
                    analysis_steps=[3, 4, 5, 6],
                )
            timeline = WorkflowTimeline(spans=rec.tracer.snapshot())
            key = "pipelined" if pipelined else "serial"
            overlap[key] = round(timeline.overlap_fraction(), 4)
            # the strict metric: analysis running *while the force kernel
            # computes* — ~0 for the serial manager by construction
            solver_overlap[key] = round(timeline.solver_overlap_fraction(), 4)
    assert overlap["pipelined"] > 0.0, "pipelined run shows no sim/analysis overlap"
    assert solver_overlap["pipelined"] > solver_overlap["serial"], (
        "pipelining did not increase analysis/solver concurrency"
    )

    payload = {
        "benchmark": "spmd_scaling",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "cpu_count": cpu_count,
        "workload": {
            "n_particles": int(len(pos)),
            "n_halos": int(len(ref)),
            "box": box,
        },
        "variants": variants,
        "speedup_gate": {
            "enforced": require_speedup,
            "min_speedup_at_2_process_ranks": min_speedup2,
            "passed": (not require_speedup) or speedup2 >= min_speedup2,
        },
        "pipeline_overlap_fraction": overlap,
        "solver_overlap_fraction": solver_overlap,
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    lines = [
        f"SPMD transport scaling (distributed FOF, {len(pos)} particles, "
        f"{len(ref)} halos, {cpu_count} cores)",
        f"  1 rank (inline):    {variants['1rank']['seconds']:.3f} s",
        f"  2 ranks (thread):   {variants['2rank_thread']['seconds']:.3f} s  "
        f"speedup {variants['2rank_thread']['speedup_vs_1rank']:.2f}x",
        f"  2 ranks (process):  {variants['2rank_process']['seconds']:.3f} s  "
        f"speedup {speedup2:.2f}x",
        f"  gate: enforced={require_speedup} (min {min_speedup2:.2f}x) "
        f"passed={payload['speedup_gate']['passed']}",
        "pipelined combined workflow overlap fraction (coarse / solver-strict):",
        f"  serial manager:    {overlap['serial']:.4f} / {solver_overlap['serial']:.4f}",
        f"  pipelined manager: {overlap['pipelined']:.4f} / {solver_overlap['pipelined']:.4f}",
    ]
    save_result("spmd_scaling", "\n".join(lines))

    if require_speedup:
        assert speedup2 >= min_speedup2, (
            f"2-process-rank speedup {speedup2:.2f}x below the "
            f"{min_speedup2:.2f}x gate (cores={cpu_count})"
        )
