"""Ablation: sweep of the in-situ/off-load threshold (DESIGN.md #1).

The paper chose 300,000 particles manually and sketches an automated
rule.  This ablation sweeps the threshold for the 1024³ test workload
and shows the core-hour curve: too low and the Level 2 data balloons
(approaching the off-line cost); too high and the slowest node's
center-finding dominates (approaching the in-situ cost).
"""

import numpy as np
import pytest

from repro.core import CombinedWorkflow, InSituOnlyWorkflow, plan_split
from repro.core.report import render_table
from repro.machines import TITAN

from conftest import save_result

THRESHOLDS = [3_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000]


def test_threshold_sweep(benchmark, paper_profile, cost):
    def sweep():
        out = {}
        for thr in THRESHOLDS:
            wf = CombinedWorkflow(cost, TITAN, threshold=thr, n_offline_nodes=4)
            out[thr] = wf.evaluate(paper_profile)
        return out

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    insitu = InSituOnlyWorkflow(cost, TITAN).evaluate(paper_profile)

    rows = []
    for thr, rep in reports.items():
        rows.append(
            [
                f"{thr:,}",
                f"{rep.analysis_core_hours:.0f}",
                f"{rep.simulation.seconds('analysis'):.0f}",
                f"{rep.postprocessing[0].total_seconds:.0f}",
            ]
        )
    rows.append(["in-situ only", f"{insitu.analysis_core_hours:.0f}", "-", "-"])
    save_result(
        "ablation_threshold",
        render_table(
            ["threshold", "core-h", "in-situ analysis s", "post s"],
            rows,
            title="Ablation: off-load threshold sweep (1024^3 test workload)",
        ),
    )

    ch = {t: r.analysis_core_hours for t, r in reports.items()}
    # the paper's 300k sits in the flat optimum region: within 25% of the
    # sweep's minimum
    best = min(ch.values())
    assert ch[300_000] < 1.25 * best
    # pushing the threshold to the largest halo recovers ~the in-situ cost
    assert ch[3_000_000] == pytest.approx(insitu.analysis_core_hours, rel=0.25)
    # the planner's automated threshold lands within the flat region too
    plan = plan_split(paper_profile, cost, TITAN)
    auto_thr = plan.threshold or paper_profile.largest_halo
    wf = CombinedWorkflow(cost, TITAN, threshold=auto_thr, n_offline_nodes=4)
    auto_ch = wf.evaluate(paper_profile).analysis_core_hours
    # the borderline 1024^3 workload: the t_io rule picks all-in-situ,
    # which costs ~1.8x the swept optimum — an honest limitation of the
    # paper's heuristic at small scale (it shines at Q Continuum scale)
    assert auto_ch < 2.0 * best


def test_offline_nodes_sweep(benchmark, paper_profile, cost):
    """§4.2: 'the computational costs between one node and four nodes
    are roughly the same while the wall clock reduced for four nodes by
    a factor of four'."""
    def run(n):
        wf = CombinedWorkflow(cost, TITAN, threshold=300_000, n_offline_nodes=n)
        return wf.evaluate(paper_profile)

    r1 = benchmark.pedantic(run, args=(1,), rounds=1, iterations=1)
    r4 = run(4)
    wall1 = r1.postprocessing[0].seconds("analysis")
    wall4 = r4.postprocessing[0].seconds("analysis")
    core1 = r1.postprocessing[0].core_hours
    core4 = r4.postprocessing[0].core_hours
    save_result(
        "ablation_nodes",
        f"off-line analysis: 1 node {wall1:.0f}s/{core1:.0f} core-h vs "
        f"4 nodes {wall4:.0f}s/{core4:.0f} core-h "
        f"(paper: same cost, ~4x wall-clock)",
    )
    # wall clock drops ~4x with 4 nodes...
    assert wall1 / wall4 == pytest.approx(4.0, rel=0.3)
    # ...while core-hours stay roughly flat (within 35%)
    assert core4 == pytest.approx(core1, rel=0.35)
