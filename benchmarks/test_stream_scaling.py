"""Streaming engine memory scaling: bounded-RSS one-pass vs in-memory FOF.

The tentpole claim of the streaming engine quantified: at a fixed
``chunk_rows`` the streamed pass holds O(chunk + ring + groups) resident,
so its peak RSS stays flat as the snapshot (and therefore the chunk
count) grows, while the in-memory pipeline's peak grows linearly.  Each
(mode, size) cell runs in a fresh subprocess (``_stream_worker.py``)
because ``ru_maxrss`` is a per-process high-water mark.

Three gates, enforced when ``STREAM_BENCH_REQUIRE=1`` (as CI sets):

* **bit-identity** — streamed and in-memory catalog/mass-function
  digests match at every size (always asserted, not just under the env
  gate: a wrong answer is never a benchmark configuration issue);
* **flatness** — streamed peak RSS varies ≤ ±10% across sizes
  (``STREAM_BENCH_FLATNESS`` overrides);
* **bounded memory** — streamed *excess* RSS (peak − post-import
  baseline) ≤ 0.5× the in-memory pass's at the largest size
  (``STREAM_BENCH_MAX_RSS_RATIO``), and streamed wall ≤ 1.5× in-memory
  (``STREAM_BENCH_MAX_WALL_RATIO``) on boxes that fit either way.

Results land in ``BENCH_stream.json`` at the repo root (uploaded as a CI
artifact) plus a rendered table under ``benchmarks/results/``.
"""

import json
import os
import subprocess
import sys
from datetime import datetime, timezone

import numpy as np

from conftest import save_result

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_stream.json")
)
WORKER = os.path.join(os.path.dirname(__file__), "_stream_worker.py")
SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))

CHUNK_ROWS = 32768
MIN_COUNT = 10
MF_BINS = (10.0, 1e6, 32)


def _sizes() -> list[int]:
    raw = os.environ.get("STREAM_BENCH_SIZES", "")
    if raw:
        return [int(s) for s in raw.split(",")]
    return [2**18, 2**19, 2**20]


def _run_worker(mode, path, chunk_rows=CHUNK_ROWS, ll=0.2, **extra):
    # everything that touches particle arrays runs in a subprocess: a
    # forked child inherits the parent's resident pages, so a big array
    # held here would inflate every later worker's baseline ru_maxrss
    cfg = {
        "mode": mode,
        "path": str(path),
        "chunk_rows": chunk_rows,
        "linking_length": ll,
        "min_count": MIN_COUNT,
        "mf_bins": list(MF_BINS),
        **extra,
    }
    # pin glibc's mmap threshold: its dynamic adjustment makes RSS
    # high-water marks vary run to run even on identical allocations
    env = dict(os.environ, PYTHONPATH=SRC, MALLOC_MMAP_THRESHOLD_="131072")
    proc = subprocess.run(
        [sys.executable, WORKER, json.dumps(cfg)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert proc.returncode == 0, f"{mode} worker failed:\n{proc.stderr}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_stream_scaling(tmp_path):
    sizes = _sizes()
    require = os.environ.get("STREAM_BENCH_REQUIRE") == "1"
    flatness = float(os.environ.get("STREAM_BENCH_FLATNESS", "0.10"))
    max_rss_ratio = float(os.environ.get("STREAM_BENCH_MAX_RSS_RATIO", "0.5"))
    max_wall_ratio = float(os.environ.get("STREAM_BENCH_MAX_WALL_RATIO", "1.5"))

    cells = {}
    for n in sizes:
        path = tmp_path / f"snap_{n}.gio"
        made = _run_worker("make", path, n=n, seed=19371115 + n)
        box, ll = made["box"], 0.2
        stream = _run_worker("stream", path, ll=ll)
        memory = _run_worker("memory", path, ll=ll)
        # exactness is unconditional: the comparison below is only
        # meaningful on verified-identical catalogs
        assert stream["catalog_sha256"] == memory["catalog_sha256"], (
            f"n={n}: streamed catalog differs from in-memory"
        )
        assert stream["mf_sha256"] == memory["mf_sha256"]
        path.unlink()  # free the disk before the next, larger size
        cells[n] = {
            "box": box,
            "linking_length": ll,
            "n_chunks": stream["n_chunks"],
            "n_halos": stream["n_halos"],
            "catalog_sha256": stream["catalog_sha256"],
            "stream": stream,
            "memory": memory,
        }

    largest = sizes[-1]
    peaks = [cells[n]["stream"]["peak_rss_bytes"] for n in sizes]
    spread = float((max(peaks) - min(peaks)) / np.mean(peaks))
    peak_ratio = cells[largest]["stream"]["peak_rss_bytes"] / max(
        cells[largest]["memory"]["peak_rss_bytes"], 1
    )
    rss_ratio = cells[largest]["stream"]["excess_rss_bytes"] / max(
        cells[largest]["memory"]["excess_rss_bytes"], 1
    )
    wall_ratio = max(
        cells[n]["stream"]["wall_seconds"] / max(cells[n]["memory"]["wall_seconds"], 1e-9)
        for n in sizes
    )

    payload = {
        "benchmark": "stream_scaling",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "chunk_rows": CHUNK_ROWS,
        "min_count": MIN_COUNT,
        "sizes": {str(n): cells[n] for n in sizes},
        "gates": {
            "enforced": require,
            "peak_rss_spread": spread,
            "max_peak_rss_spread": flatness,
            "peak_rss_ratio_at_largest": peak_ratio,
            "excess_rss_ratio_at_largest": rss_ratio,
            "max_excess_rss_ratio": max_rss_ratio,
            "worst_wall_ratio": wall_ratio,
            "max_wall_ratio": max_wall_ratio,
            "passed": (
                spread <= flatness
                and peak_ratio <= max_rss_ratio
                and rss_ratio <= max_rss_ratio
                and wall_ratio <= max_wall_ratio
            ),
        },
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    mib = 1 / (1024 * 1024)
    lines = [
        f"Streaming vs in-memory FOF (chunk_rows={CHUNK_ROWS}, "
        f"bit-identical catalogs at every size)"
    ]
    for n in sizes:
        c = cells[n]
        lines.append(
            f"  n=2^{int(np.log2(n))} ({c['n_chunks']:3d} chunks, "
            f"{c['n_halos']:5d} halos): "
            f"stream peak {c['stream']['peak_rss_bytes'] * mib:6.1f} MiB "
            f"(excess {c['stream']['excess_rss_bytes'] * mib:6.1f}) "
            f"wall {c['stream']['wall_seconds']:6.2f} s | "
            f"memory peak {c['memory']['peak_rss_bytes'] * mib:6.1f} MiB "
            f"(excess {c['memory']['excess_rss_bytes'] * mib:6.1f}) "
            f"wall {c['memory']['wall_seconds']:6.2f} s"
        )
    lines.append(
        f"  stream peak-RSS spread {spread:.1%} (gate ±{flatness:.0%}) | "
        f"peak ratio @ largest {peak_ratio:.2f}x, excess ratio "
        f"{rss_ratio:.2f}x (gate ≤{max_rss_ratio}) | "
        f"worst wall ratio {wall_ratio:.2f}x (gate ≤{max_wall_ratio}) | "
        f"enforced={require}"
    )
    save_result("stream_scaling", "\n".join(lines))

    if require:
        assert spread <= flatness, (
            f"streamed peak RSS not flat: spread {spread:.1%} > ±{flatness:.0%}"
        )
        assert peak_ratio <= max_rss_ratio, (
            f"streamed peak RSS {peak_ratio:.2f}x of in-memory at n={largest} "
            f"(gate ≤{max_rss_ratio}x)"
        )
        assert rss_ratio <= max_rss_ratio, (
            f"streamed excess RSS {rss_ratio:.2f}x of in-memory at n={largest} "
            f"(gate ≤{max_rss_ratio}x)"
        )
        assert wall_ratio <= max_wall_ratio, (
            f"streamed wall {wall_ratio:.2f}x of in-memory (gate ≤{max_wall_ratio}x)"
        )
