"""Table 4: per-phase time/core-hour breakdown of each workflow.

Paper anchors (1024³ on 32 Titan nodes, last time step):

* in-situ:   Sim 772  Analysis 722  Write 0.3   -> 399 core-h total
* off-line:  Sim 779 + Write 5; post: Read 5, Redistribute 435,
             Analysis 892, Write 0.3 -> post 355 core-h
* combined:  Sim 774, Analysis 361, Write 3; post (4 nodes): Read 3,
             Redistribute 75, Analysis 1075, Write 0.2 -> post 38 core-h
"""

import pytest

from repro.core import (
    CombinedWorkflow,
    InSituOnlyWorkflow,
    OfflineOnlyWorkflow,
    table4,
)
from repro.machines import TITAN

from conftest import save_result


def test_table4_insitu(benchmark, paper_profile, cost):
    report = benchmark(InSituOnlyWorkflow(cost, TITAN).evaluate, paper_profile)
    save_result("table4_insitu", table4(report))
    sim = report.simulation
    assert sim.seconds("sim") == pytest.approx(772, rel=0.05)
    assert sim.seconds("analysis") == pytest.approx(722, rel=0.3)
    assert sim.seconds("write") < 2.0
    assert report.simulation.core_hours == pytest.approx(399, rel=0.3)


def test_table4_offline(benchmark, paper_profile, cost):
    report = benchmark(OfflineOnlyWorkflow(cost, TITAN).evaluate, paper_profile)
    save_result("table4_offline", table4(report))
    assert report.simulation.seconds("write") == pytest.approx(5, rel=0.1)
    post = report.postprocessing[0]
    assert post.seconds("read") == pytest.approx(5, rel=0.1)
    assert post.seconds("redistribute") == pytest.approx(435, rel=0.1)
    assert post.seconds("analysis") == pytest.approx(892, rel=0.3)
    assert post.core_hours == pytest.approx(355, rel=0.3)


def test_table4_combined(benchmark, paper_profile, cost):
    wf = CombinedWorkflow(cost, TITAN, threshold=300_000, n_offline_nodes=4)
    report = benchmark(wf.evaluate, paper_profile)
    save_result("table4_combined", table4(report))
    sim = report.simulation
    # in-situ part roughly halves vs the full analysis (361 vs 722)
    assert sim.seconds("analysis") == pytest.approx(361, rel=0.35)
    post = report.postprocessing[0]
    assert post.nodes == 4
    # Level 2 read is seconds, not minutes
    assert post.seconds("read") < 10
    # Level 2 redistribution is far below the Level 1 cost (75 vs 435)
    assert post.seconds("redistribute") < 200
    # post-processing cost is a small fraction of the off-line approach
    assert post.core_hours < 100
    # the combined total undercuts everything (Table 3: 135)
    assert report.analysis_core_hours == pytest.approx(135, rel=0.3)


def test_table4_phase_consistency(benchmark, paper_profile, cost):
    """Internal consistency: the Table 3 number equals analysis+write of
    the simulation job plus the whole post-processing job."""
    wf = CombinedWorkflow(cost, TITAN, threshold=300_000, n_offline_nodes=4)
    report = benchmark(wf.evaluate, paper_profile)
    sim_part = sum(
        p.core_hours
        for p in report.simulation.phases
        if p.name in ("analysis", "write")
    )
    post_part = sum(j.core_hours for j in report.postprocessing)
    assert report.analysis_core_hours == pytest.approx(sim_part + post_part)
