"""PM force-engine scaling: fused :class:`PMSolver` vs the reference chain.

Times one full PM force evaluation (CIC deposit → Poisson → gradient →
gather) at ``ng ∈ {32, 64}`` with ``n = ng³`` particles for both
engines:

* **reference** — the original function-at-a-time pipeline in
  :mod:`repro.sim.pm`: 6 full-mesh FFTs (φ materialized, then re-FFT'd)
  and an ``np.add.at`` CIC scatter;
* **fused** — :class:`repro.sim.pmsolver.PMSolver`: Poisson and
  gradient combined in k-space (4 FFTs, φ never built), ``bincount``
  scatter, and one CIC geometry shared by scatter and gather.

Every timed pair is also cross-checked numerically (rtol 1e-10), so the
speedup is measured on verified-identical physics.  Results land in
``BENCH_pm.json`` at the repo root (uploaded as a CI artifact) plus a
rendered text table under ``benchmarks/results/``.

Speedup gating
--------------
The fusion win is algorithmic (fewer transforms + a faster scatter), so
unlike the exec benchmark it does not need multiple cores.  The ≥2x
gate at ``ng=64`` is enforced whenever the host has ≥2 cores or
``PM_BENCH_REQUIRE_SPEEDUP=1`` (as CI sets).  ``PM_BENCH_MIN_SPEEDUP``
overrides the threshold.
"""

import json
import os
import time
from datetime import datetime, timezone

import numpy as np

from repro.sim.pm import (
    cic_deposit,
    cic_interpolate,
    gradient_spectral,
    solve_poisson,
)
from repro.sim.pmsolver import PMSolver

from conftest import save_result

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_pm.json")
)

#: FFT counts per force evaluation, by construction.
FFTS_REFERENCE = 6  # rfftn+irfftn (Poisson) + rfftn+3 irfftn (gradient)
FFTS_FUSED = 4  # rfftn + 3 irfftn, φ never materialized


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _reference_eval(pos, ng, factor):
    delta = cic_deposit(pos, ng)
    phi = solve_poisson(delta, factor=factor)
    return -cic_interpolate(gradient_spectral(phi), pos)


def _time_best(fn, repeats):
    best, out = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_pm_scaling(bench_rng):
    cpu_count = _cpu_count()
    factor = 1.5
    meshes = {}
    for ng in (32, 64):
        pos = bench_rng.uniform(0, ng, (ng**3, 3))
        solver = PMSolver(ng)
        solver.accelerations(pos, factor)  # warm-up: scratch + FFT plans
        ffts_before = solver.fft_count

        fused_seconds, fused_acc = _time_best(
            lambda solver=solver, pos=pos: solver.accelerations(pos, factor),
            repeats=3,
        )
        fused_ffts = (solver.fft_count - ffts_before) // 3
        ref_seconds, ref_acc = _time_best(
            lambda pos=pos, ng=ng: _reference_eval(pos, ng, factor), repeats=2
        )

        # the speedup is only meaningful on verified-identical physics
        scale = float(np.abs(ref_acc).max())
        np.testing.assert_allclose(
            fused_acc, ref_acc, rtol=1e-10, atol=1e-12 * scale
        )
        assert fused_ffts == FFTS_FUSED

        meshes[ng] = {
            "n_particles": int(ng**3),
            "reference_seconds": ref_seconds,
            "fused_seconds": fused_seconds,
            "speedup": ref_seconds / fused_seconds if fused_seconds > 0 else 0.0,
            "ffts_per_eval": {"reference": FFTS_REFERENCE, "fused": fused_ffts},
            "verified_rtol": 1e-10,
        }

    require = cpu_count >= 2 or os.environ.get("PM_BENCH_REQUIRE_SPEEDUP") == "1"
    min_speedup = float(os.environ.get("PM_BENCH_MIN_SPEEDUP", "2.0"))

    payload = {
        "benchmark": "pm_scaling",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "cpu_count": cpu_count,
        "fft_workers": PMSolver(32).workers,
        "default_backend": "fused",
        "meshes": {str(ng): m for ng, m in meshes.items()},
        "speedup_gate": {
            "enforced": require,
            "min_speedup_at_ng64": min_speedup,
            "passed": (not require) or meshes[64]["speedup"] >= min_speedup,
        },
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    lines = [
        f"PM force evaluation: fused 4-FFT engine vs 6-FFT reference "
        f"({cpu_count} cores, {payload['fft_workers']} FFT workers)",
    ]
    for ng, m in meshes.items():
        lines.append(
            f"  ng={ng} ({m['n_particles']} particles): "
            f"reference {m['reference_seconds'] * 1e3:7.1f} ms  "
            f"fused {m['fused_seconds'] * 1e3:7.1f} ms  "
            f"speedup {m['speedup']:.2f}x  "
            f"FFTs {m['ffts_per_eval']['reference']}->{m['ffts_per_eval']['fused']}"
        )
    gate = payload["speedup_gate"]
    lines.append(
        f"  gate: enforced={gate['enforced']} "
        f"(min {min_speedup:.2f}x @ ng=64) passed={gate['passed']}"
    )
    save_result("pm_scaling", "\n".join(lines))

    if require:
        assert meshes[64]["speedup"] >= min_speedup, (
            f"fused speedup {meshes[64]['speedup']:.2f}x at ng=64 below the "
            f"{min_speedup:.2f}x gate (cores={cpu_count})"
        )


def test_pm_deposit_scaling(bench_rng):
    """The scatter alone: flattened ``bincount`` vs ``np.add.at``."""
    ng = 64
    pos = bench_rng.uniform(0, ng, (ng**3, 3))
    solver = PMSolver(ng)
    solver.deposit(pos)  # warm-up
    fused_seconds, fused = _time_best(lambda: solver.deposit(pos), repeats=3)
    ref_seconds, ref = _time_best(lambda: cic_deposit(pos, ng), repeats=2)
    np.testing.assert_allclose(fused, ref, rtol=1e-10, atol=1e-12)
    speedup = ref_seconds / fused_seconds if fused_seconds > 0 else 0.0
    save_result(
        "pm_deposit_scaling",
        f"CIC deposit at ng=64, {ng**3} particles:\n"
        f"  np.add.at  {ref_seconds * 1e3:7.1f} ms\n"
        f"  bincount   {fused_seconds * 1e3:7.1f} ms  ({speedup:.2f}x)",
    )
    assert speedup > 1.0
