"""Shared benchmark fixtures: one real mini-HACC run + paper-scale profiles.

Every benchmark regenerates a table or figure from the paper.  Rendered
outputs are printed and archived under ``benchmarks/results/`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from a run.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import profile_from_context
from repro.core import test_run_like_profile as _make_test_run_profile
from repro.insitu import (
    HaloCenterAlgorithm,
    HaloFinderAlgorithm,
    InSituAnalysisManager,
)
from repro.machines import PAPER_CALIBRATION
from repro.sim import HACCSimulation, SimulationConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str) -> None:
    """Print a rendered table/figure and archive it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def cost():
    return PAPER_CALIBRATION


@pytest.fixture(scope="session")
def bench_sim():
    """A 32³ mini-HACC run to z=0 with in-situ halo analysis (4 ranks)."""
    last = 30
    mgr = InSituAnalysisManager()
    mgr.register(HaloFinderAlgorithm(at_steps=last, min_count=40, n_ranks=4))
    mgr.register(HaloCenterAlgorithm(at_steps=last, threshold=500))
    sim = HACCSimulation(
        SimulationConfig(np_per_dim=32, box=50.0, z_initial=30.0, n_steps=last, ng=64),
        analysis_manager=mgr,
    )
    sim.run()
    return sim, mgr.history[last]


@pytest.fixture(scope="session")
def measured_profile(bench_sim):
    sim, ctx = bench_sim
    return profile_from_context(ctx, n_particles=len(sim.particles), n_steps=30)


@pytest.fixture(scope="session")
def paper_profile():
    """The synthesized 1024³ / 32-node test-run workload (§4.2)."""
    return _make_test_run_profile()


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(19371115)
