"""Figure 3: halo counts vs mass, split at the 300k off-load threshold.

Paper (Q Continuum, z=0): log-log histogram; 167,686,789 halos total, of
which 84,719 (0.05%) were off-loaded to Moonlight; the center finding
for the remaining 99.9% took ~1 minute on 16,384 Titan nodes.
"""

import numpy as np

from repro.analysis import mass_function, split_by_threshold
from repro.core import qcontinuum_like_profile
from repro.core.report import figure_histogram

from conftest import save_result

THRESHOLD = 300_000


def test_figure3_split(benchmark, cost):
    profile = qcontinuum_like_profile()
    counts = profile.halo_counts
    weights = profile.halo_weight

    in_situ_mask, off_mask = benchmark(split_by_threshold, counts, THRESHOLD)
    n_total = int(weights.sum())
    n_off = int(weights[off_mask].sum())

    mf = mass_function(counts.astype(float), n_bins=20, lo=40, hi=3e7)
    # weighted histogram for the figure
    hist, _ = np.histogram(counts, bins=mf.bin_edges, weights=weights)
    text = figure_histogram(
        counts,
        mf.bin_edges,
        counts=hist.astype(np.int64),
        label=(
            "Figure 3: halo counts vs mass (log bins; '#' bars are log-scaled)\n"
            f"total halos {n_total:,} (paper 167,686,789); "
            f"off-loaded {n_off:,} (paper 84,719); threshold {THRESHOLD:,}"
        ),
    )
    save_result("figure3", text)

    # shape: totals reproduce the paper's quotes
    assert n_total == 167_686_788 or abs(n_total - 167_686_789) < 2
    assert 0.3 < n_off / 84_719 < 3.0
    # off-loaded fraction is tiny by count
    assert n_off / n_total < 0.002
    # mass function is steeply falling: the first bin dominates
    assert hist[0] > 0.2 * hist.sum()
    # the in-situ 99.9% claim
    assert (n_total - n_off) / n_total > 0.997


def test_figure3_insitu_minute_claim(benchmark, cost):
    """Paper: 'The center finding for the remaining halos (99.9%) took
    approximately one minute on 16,384 nodes of Titan.'"""
    from repro.machines import TITAN

    profile = qcontinuum_like_profile()
    mask = profile.halo_counts <= THRESHOLD
    total_pairs = benchmark(profile.weighted_pairs, mask)
    per_node = total_pairs / profile.n_sim_nodes
    seconds = float(cost.center_seconds(per_node, TITAN, backend="gpu"))
    save_result(
        "figure3_minute",
        f"in-situ small-halo center finding: {seconds:.0f} s/node "
        f"(paper: 'just over one minute')",
    )
    assert 10 < seconds < 600
