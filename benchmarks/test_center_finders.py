"""§3.3.2 micro-results: center-finder backends and algorithms.

Paper claims exercised here:

* the PISTON/GPU brute-force center finder is ~50x faster than the
  serial CPU path (our ``vector`` vs ``serial`` backend ratio plays
  that role — the measured ratio calibrates the cost model);
* the serial A* search does a problem-dependent factor (~8x) less work
  than brute force (we report exact-evaluation reduction and wall
  time);
* cost scales as n², so "a halo with 10 million particles can take
  10,000 times longer than for a halo with 100,000 particles".
"""

import numpy as np
import pytest

from repro.analysis import (
    center_finding_cost,
    mbp_center_astar,
    mbp_center_bruteforce,
    potential_bruteforce,
    potential_reference,
)

from conftest import bench_rng, save_result


def _plummer(rng, n):
    u = rng.uniform(0.001, 0.999, n)
    r = 1.0 / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1)[:, None]
    return r[:, None] * v + 10.0


@pytest.fixture(scope="module")
def halo(bench_rng):
    return _plummer(bench_rng, 2000)


def test_bruteforce_vector(benchmark, halo):
    idx, phi, _ = benchmark(mbp_center_bruteforce, halo, backend="vector")
    assert phi < 0


def test_bruteforce_serial(benchmark, halo):
    """The CPU-reference path (expect orders of magnitude slower).

    The ``serial`` backend now shares the blocked vectorized kernel, so
    the per-element reference (:func:`potential_reference`) carries the
    historical pure-Python timing role.
    """
    small = halo[:300]
    benchmark.pedantic(potential_reference, args=(small,), rounds=2, iterations=1)


def test_astar(benchmark, halo):
    i_a, phi_a, stats = benchmark(mbp_center_astar, halo)
    i_b, phi_b, _ = mbp_center_bruteforce(halo, backend="vector")
    assert i_a == i_b
    assert phi_a == pytest.approx(phi_b)


def test_backend_speed_ratio(benchmark, halo, bench_rng):
    """Measure the serial/vector ratio — the stand-in for the paper's
    'approximately a factor of fifty speed-up' on Titan's GPUs."""
    import time

    small = halo[:400]
    t0 = time.perf_counter()
    potential_reference(small)  # per-element Python loop: the CPU stand-in
    t_serial = time.perf_counter() - t0
    benchmark.pedantic(
        mbp_center_bruteforce, args=(small,), kwargs={"backend": "vector"},
        rounds=1, iterations=1,
    )
    t0 = time.perf_counter()
    potential_bruteforce(small, backend="vector")
    t_vector = time.perf_counter() - t0
    ratio = t_serial / t_vector
    save_result(
        "center_backend_ratio",
        f"reference(Python)/vector center-finder time ratio at n=400: {ratio:.0f}x "
        f"(the paper's GPU speed-up analogue: ~50x)",
    )
    assert ratio > 5.0


def test_astar_work_reduction(benchmark, halo):
    """A* exact-evaluation pruning (paper: 'roughly eight' overall)."""
    n = len(halo)
    _, _, stats = benchmark.pedantic(mbp_center_astar, args=(halo,), rounds=1, iterations=1)
    eval_reduction = n / max(stats.exact_potentials, 1)
    _, _, brute = mbp_center_bruteforce(halo, backend="vector")
    work_reduction = brute.pair_evaluations / stats.pair_evaluations
    save_result(
        "center_astar",
        f"A*: exact potentials {stats.exact_potentials}/{n} "
        f"(reduction {eval_reduction:.0f}x); total pair-op reduction "
        f"{work_reduction:.1f}x (paper: ~8x, problem-dependent)",
    )
    assert eval_reduction > 2.0


def test_quadratic_cost_claim(benchmark):
    """10M vs 100k particle halos: exactly 10,000x the pair work."""
    costs = benchmark(center_finding_cost, np.asarray([100_000, 10_000_000]))
    assert costs[1] / costs[0] == pytest.approx(10_000, rel=0.01)


def test_imbalance_factor_measured(benchmark, measured_profile, cost):
    """§4.2: in the 1024³ test 'the imbalance between the fastest and
    the slowest node is a factor of 15'.  Our measured mini run shows
    the same few-to-tens factor across its ranks."""
    node = benchmark(measured_profile.node_pairs)
    imbalance = node.max() / max(node[node > 0].min(), 1.0)
    save_result(
        "center_imbalance",
        f"measured per-rank center-work imbalance: {imbalance:.1f}x "
        f"(paper test problem: 15x)",
    )
    assert imbalance > 2.0
