"""Journaled-instrumentation overhead gate for the combined workflow.

The durable run journal (PR: ``repro.obs.journal``) streams every
event, span, and metrics snapshot of a combined run to disk.  That only
earns its keep if it is effectively free: this harness runs the ng=32
combined workflow **plain** (telemetry off, no journal) and
**journaled** (``journal_dir=`` — live recorder + crash-safe JSONL
stream + exec-worker snapshot shipping) and measures the wall-time
ratio.

Results land in ``BENCH_obs.json`` at the repo root (uploaded as a CI
artifact) plus a rendered table under ``benchmarks/results/``.  The
JSON doubles as a ``python -m repro.obs diff --bench`` baseline.

Overhead gating
---------------
Sub-second walls are noisy on busy hosts, so each variant takes the
best of ``OBS_BENCH_REPEATS`` (default 7) alternating runs, and when
the gate is enforced a failing measurement accumulates up to
``OBS_BENCH_ATTEMPTS`` (default 3) rounds of extra samples before
asserting — a sustained regression still fails, a one-off noise spike
does not.  The <5 % assertion is enforced when
``OBS_BENCH_REQUIRE_OVERHEAD=1`` (as CI sets);
``OBS_BENCH_MAX_OVERHEAD`` overrides the threshold.
"""

import json
import os
import time
from datetime import datetime, timezone

from repro.core import run_combined_workflow
from repro.obs.journal import read_journal
from repro.sim import SimulationConfig

from conftest import save_result

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_obs.json")
)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _config() -> SimulationConfig:
    return SimulationConfig(
        np_per_dim=32, box=50.0, z_initial=30.0, z_final=0.0, n_steps=60, ng=32
    )


def _run_once(tmp_path_factory, journaled: bool, tag: str):
    d = tmp_path_factory.mktemp(f"obs_bench_{tag}")
    kwargs = dict(
        spool_dir=str(d / "spool"),
        threshold=250,
        min_count=40,
        n_ranks=4,
        analysis_workers=2,
    )
    t0 = time.perf_counter()
    if journaled:
        run_combined_workflow(
            _config(), journal_dir=str(d / "journal"), run_id="bench", **kwargs
        )
    else:
        run_combined_workflow(_config(), **kwargs)
    wall = time.perf_counter() - t0
    journal_dir = str(d / "journal" / "bench") if journaled else None
    return wall, journal_dir


def test_obs_overhead(tmp_path_factory):
    repeats = int(os.environ.get("OBS_BENCH_REPEATS", "7"))
    cpu_count = _cpu_count()

    # one warm-up of each variant (numpy/FFT plan warm-up, import costs)
    _run_once(tmp_path_factory, False, "warm0")
    _run_once(tmp_path_factory, True, "warm1")

    required = os.environ.get("OBS_BENCH_REQUIRE_OVERHEAD") == "1"
    limit = float(os.environ.get("OBS_BENCH_MAX_OVERHEAD", "0.05"))
    attempts = int(os.environ.get("OBS_BENCH_ATTEMPTS", "3")) if required else 1

    plain_walls, journal_walls = [], []
    journal_dir = None
    plain = journaled = overhead = 0.0
    for attempt in range(attempts):
        for i in range(repeats):  # alternate to spread host noise fairly
            tag = f"a{attempt}"
            plain_walls.append(_run_once(tmp_path_factory, False, f"{tag}p{i}")[0])
            wall, journal_dir = _run_once(tmp_path_factory, True, f"{tag}j{i}")
            journal_walls.append(wall)
        plain = min(plain_walls)
        journaled = min(journal_walls)
        overhead = (journaled - plain) / plain
        if not required or overhead < limit:
            break

    # the journaled run must actually have produced a complete journal
    assert journal_dir is not None
    view = read_journal(journal_dir)
    assert view.complete and not view.truncated and view.corrupt == 0
    n_records = len(view.records)
    journal_bytes = os.path.getsize(os.path.join(journal_dir, "journal.jsonl"))

    result = {
        "name": "obs_overhead",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "cpu_count": cpu_count,
        "repeats": len(plain_walls),
        "config": {"np_per_dim": 32, "ng": 32, "n_steps": 60, "analysis_workers": 2},
        "plain_seconds": plain,
        "journaled_seconds": journaled,
        "overhead_frac": overhead,
        "journal_records": n_records,
        "journal_bytes": journal_bytes,
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")

    n = len(plain_walls)
    lines = [
        "Journaled-instrumentation overhead (ng=32 combined workflow)",
        f"  cpu_count          : {cpu_count}",
        f"  best-of-{n} plain     : {plain * 1000.0:8.1f} ms",
        f"  best-of-{n} journaled : {journaled * 1000.0:8.1f} ms",
        f"  overhead           : {overhead * 100.0:+.2f}%",
        f"  journal            : {n_records} records, {journal_bytes} bytes",
    ]
    save_result("obs_overhead", "\n".join(lines))

    if required:
        assert overhead < limit, (
            f"journaled instrumentation costs {overhead * 100.0:.2f}% "
            f"(limit {limit * 100.0:.1f}%): plain {plain:.3f}s vs "
            f"journaled {journaled:.3f}s"
        )
