"""Table 2: per-node Find/Center times across time slices (redshifts).

Paper (16,384 Titan nodes, 8192³):

=====  =====  ========  ========  ==========  ==========
slice  z      Max Find  Min Find  Max Center  Min Center
=====  =====  ========  ========  ==========  ==========
60     1.680  433       352       449         19
64     1.433  483       385       668         19
73     0.959  663       532       1819        19
100    0      2143      1859      21250       2.4
=====  =====  ========  ========  ==========  ==========

We evolve the mini run to the same four redshifts, measure the per-rank
find times and center workloads of the *actual* analysis, and scale via
one calibration point (slice-60 max find / max center).  The reproduced
*shape* is what matters: find stays balanced while its total grows, and
the center max/min ratio explodes toward z=0.
"""

import numpy as np

from repro.core.report import render_table
from repro.insitu import HaloCenterAlgorithm, HaloFinderAlgorithm, InSituAnalysisManager
from repro.sim import HACCSimulation, SimulationConfig

from conftest import save_result

PAPER_ROWS = {
    60: (1.680, 433, 352, 449, 19),
    64: (1.433, 483, 385, 668, 19),
    73: (0.959, 663, 532, 1819, 19),
    100: (0.0, 2143, 1859, 21250, 2.4),
}

#: map the paper's slice numbers to our 30-step run (first output at
#: z=10, slice ~ linear in step count)
SLICES = {60: 1.680, 64: 1.433, 73: 0.959, 100: 0.0}


def _run_with_snapshots():
    """One run, analyzed at the four target redshifts."""
    n_steps = 30
    # a small box at high mass resolution, so structure is already in
    # place by z~1.7 (the paper's slice 60)
    cfg = SimulationConfig(np_per_dim=40, box=33.0, z_initial=40.0, n_steps=n_steps, ng=80)
    # find the steps closest to each target redshift
    import repro.sim.cosmology as C

    a_init = 1.0 / 41.0
    a_grid = a_init + (1.0 - a_init) * np.arange(1, n_steps + 1) / n_steps
    z_grid = 1.0 / a_grid - 1.0
    step_of = {
        s: int(np.argmin(np.abs(z_grid - z))) + 1 for s, z in SLICES.items()
    }
    mgr = InSituAnalysisManager()
    mgr.register(
        HaloFinderAlgorithm(at_steps=sorted(step_of.values()), min_count=40, n_ranks=8)
    )
    mgr.register(
        HaloCenterAlgorithm(at_steps=sorted(step_of.values()), threshold=None)
    )
    sim = HACCSimulation(cfg, analysis_manager=mgr)
    sim.run()
    return mgr, step_of


def test_table2_slice_timings(benchmark):
    mgr, step_of = benchmark.pedantic(
        _run_with_snapshots, rounds=1, iterations=1, warmup_rounds=0
    )

    measured = {}
    for s, step in step_of.items():
        ctx = mgr.history[step]
        find = np.asarray(ctx.timings["halo_finder_rank_seconds"])
        pairs = np.asarray(ctx.timings["center_rank_pairs"], dtype=float)
        measured[s] = (find.max(), find.min(), pairs.max(), max(pairs.min(), 1.0))

    # calibrate the two unit scales on slice 60
    f_scale = PAPER_ROWS[60][1] / measured[60][0]
    c_scale = PAPER_ROWS[60][3] / measured[60][2]

    rows = []
    for s in sorted(measured):
        z, pf_max, pf_min, pc_max, pc_min = PAPER_ROWS[s]
        mf_max, mf_min, mp_max, mp_min = measured[s]
        rows.append(
            [
                s,
                f"{z:.3f}",
                f"{mf_max * f_scale:.0f}",
                f"{mf_min * f_scale:.0f}",
                f"{mp_max * c_scale:.0f}",
                f"{mp_min * c_scale:.1f}",
                f"{pf_max}/{pf_min}",
                f"{pc_max}/{pc_min}",
            ]
        )
    text = render_table(
        ["Slice", "z", "MaxFind", "MinFind", "MaxCenter", "MinCenter",
         "paper find", "paper center"],
        rows,
        title="Table 2: slice timings (calibrated on slice 60, projected seconds)",
    )
    save_result("table2", text)

    # shape assertions:
    # 1. find stays balanced at every slice (paper max/min <= ~1.3)
    for s in measured:
        f_max, f_min, *_ = measured[s]
        assert f_max / max(f_min, 1e-9) < 4.0
    # 2. find work grows toward z=0
    assert measured[100][0] > measured[60][0] * 0.8
    # 3. the center workload explodes much faster than the find workload
    #    toward z=0 (paper: centers x47 vs find x5 from slice 60 to 100)
    find_growth = measured[100][0] / measured[60][0]
    center_growth = measured[100][2] / measured[60][2]
    assert center_growth > 3.0 * find_growth
    # 4. the z=0 center workload dwarfs the z=1.68 one (paper: 449 -> 21250)
    assert measured[100][2] > 5 * measured[60][2]
    # 5. center finding at z=0 is visibly imbalanced across ranks
    ctx = mgr.history[step_of[100]]
    pairs = np.asarray(ctx.timings["center_rank_pairs"], dtype=float)
    assert pairs.max() > 1.5 * pairs.mean()
