"""§4.2 subhalo result: imbalance of in-situ subhalo finding.

Paper: "Subhalo finding carried out in-situ on 32 nodes of Titan's CPUs
took 8172 secs for the slowest and 1457 secs for the fastest node, an
imbalance of more than a factor of five."  (And the tree code "does not
take advantage of GPUs".)
"""

import numpy as np
import pytest

from repro.core import test_run_like_profile as make_test_run_profile
from repro.machines import TITAN

from conftest import save_result


def test_subhalo_imbalance_projection(benchmark, cost):
    """Project per-node subhalo times for the 1024³ test workload using
    the n log n tree-code cost model; slowest/fastest ≈ the paper's >5x."""
    profile = make_test_run_profile()
    parents = profile.halo_counts
    owners = profile.halo_owner
    big = parents > 5000  # paper: subhalos for halos with > 5000 particles

    def node_times():
        out = np.zeros(profile.n_sim_nodes)
        for node in range(profile.n_sim_nodes):
            mine = parents[big & (owners == node)]
            out[node] = cost.subhalo_seconds(mine)
        return out

    times = benchmark(node_times)
    slowest, fastest = times.max(), times[times > 0].min()
    save_result(
        "subhalo_imbalance",
        f"projected per-node subhalo seconds: slowest {slowest:.0f} "
        f"(paper 8172), fastest {fastest:.0f} (paper 1457), "
        f"imbalance {slowest / fastest:.1f}x (paper >5x)",
    )
    # our synthetic owners are uniform-random over 32 nodes, which
    # smooths the per-node sums relative to the spatially clustered real
    # assignment; the imbalance survives but is milder than the paper's
    assert slowest / fastest > 1.3
    # magnitudes: thousands of seconds per node at this calibration
    assert 500 < slowest < 100_000


def test_subhalo_measured_cost_scaling(benchmark, bench_rng):
    """Measured (not modeled): the serial subhalo finder's cost grows
    super-linearly with parent size — the imbalance driver."""
    import time

    from repro.analysis import find_subhalos

    timings = {}
    for n in (500, 2000):
        pos = bench_rng.normal(0, 1, (n, 3))
        vel = bench_rng.normal(0, 0.05, (n, 3))
        t0 = time.perf_counter()
        find_subhalos(pos, vel, g_constant=10.0, min_size=30, k_density=16)
        timings[n] = time.perf_counter() - t0
    growth = timings[2000] / timings[500]
    save_result(
        "subhalo_scaling",
        f"measured subhalo cost growth for 4x parent size: {growth:.1f}x "
        f"(superlinear, as the n log n tree model predicts)",
    )
    benchmark.pedantic(
        find_subhalos,
        args=(bench_rng.normal(0, 1, (500, 3)), bench_rng.normal(0, 0.05, (500, 3))),
        kwargs={"g_constant": 10.0, "min_size": 30, "k_density": 16},
        rounds=1,
        iterations=1,
    )
    assert growth > 3.0
