"""Table 1: Level 1/2/3 data product sizes at 1024³ and 8192³.

Paper row (last step only):

=========  ============  ============  ============
run        Level 1       Level 2       Level 3
=========  ============  ============  ============
1024³      ~40 GB        ~5 GB         ~43 MB
8192³      ~20 TB        ~4 TB         ~10 GB
=========  ============  ============  ============
"""

import numpy as np

from repro.core import qcontinuum_like_profile
from repro.core.report import format_bytes, render_table
from repro.io import DataLevelSizes

from conftest import save_result


def _sizes(profile, threshold):
    return DataLevelSizes(
        n_particles=profile.n_particles,
        n_level2_particles=profile.level2_particles(threshold),
        n_halos=profile.n_halos,
    )


def test_table1_sizes(benchmark, paper_profile):
    threshold = 300_000
    s1024 = benchmark(_sizes, paper_profile, threshold)
    q = qcontinuum_like_profile()
    s8192 = _sizes(q, threshold)

    rows = [
        [
            "1024^3",
            format_bytes(s1024.level1),
            format_bytes(s1024.level2),
            format_bytes(s1024.level3),
            f"{s1024.reduction_factor:.1f}x",
            "~40 GB / ~5 GB / ~43 MB",
        ],
        [
            "8192^3",
            format_bytes(s8192.level1),
            format_bytes(s8192.level2),
            format_bytes(s8192.level3),
            f"{s8192.reduction_factor:.1f}x",
            "~20 TB / ~4 TB / ~10 GB",
        ],
    ]
    text = render_table(
        ["Run", "Level 1", "Level 2", "Level 3", "L1/L2", "paper"],
        rows,
        title="Table 1: data levels, last step only (threshold 300k)",
    )
    save_result("table1", text)

    # Level 1 exact by construction (36 B/particle)
    assert s1024.level1 == 1024**3 * 36
    assert s8192.level1 == 8192**3 * 36
    # Level 2 reduction: paper ~5-8x; our synthetic mass function gives
    # the same order (single-digit factor)
    assert 3 < s8192.reduction_factor < 30
    # Level 3 is MBs at 1024³ scale, GBs at 8192³
    assert 10e6 < s1024.level3 < 100e6
    assert 1e9 < s8192.level3 < 30e9


def test_measured_reduction_factor(benchmark, bench_sim, measured_profile):
    """The measured mini-run Level 2 fraction: with the threshold placed
    at the same mass-function percentile as the paper's 300k, Level 2 is
    a single-digit fraction of Level 1 — the compression that makes the
    combined workflow win."""
    counts = np.sort(measured_profile.halo_counts)
    # paper: 84,719 / 167,686,789 of halos are above the threshold
    q = 1.0 - 84_719 / 167_686_789
    threshold = int(np.quantile(counts, q))
    l2 = benchmark(measured_profile.level2_bytes, threshold)
    ratio = measured_profile.level1_bytes / max(l2, 1)
    save_result(
        "table1_measured",
        f"measured mini-run: L1={format_bytes(measured_profile.level1_bytes)} "
        f"L2={format_bytes(l2)} reduction={ratio:.1f}x (threshold={threshold})",
    )
    assert l2 < measured_profile.level1_bytes
