"""Halo finder benchmarks: serial k-d tree vs grid, parallel scaling.

The paper's FOF is "efficiently parallelizable" (Table 2 shows max/min
find ratios near 1).  These benches measure our implementations and the
overload-region ablation (DESIGN.md #4): a too-small overload width
breaks halo completeness.
"""

import numpy as np
import pytest

from repro.analysis import fof_grid, fof_kdtree, parallel_fof
from repro.parallel import CartesianDecomposition, run_spmd

from conftest import save_result


@pytest.fixture(scope="module")
def particle_set(bench_sim):
    sim, _ = bench_sim
    return np.asarray(sim.particles.pos, dtype=float), sim.config.box


def test_fof_grid(benchmark, particle_set):
    pos, box = particle_set
    ll = 0.2 * box / 32
    result = benchmark(fof_grid, pos, ll, min_count=40, box=box)
    assert result.n_halos > 0


def test_fof_kdtree(benchmark, particle_set):
    pos, box = particle_set
    ll = 0.2 * box / 32
    # non-periodic reference on a subvolume (the per-rank usage pattern)
    sub = pos[np.all(pos < box / 2, axis=1)]
    result = benchmark.pedantic(
        fof_kdtree, args=(sub, ll), kwargs={"min_count": 40}, rounds=2, iterations=1
    )
    assert result.labels is not None


@pytest.mark.parametrize("nranks", [2, 4, 8])
def test_parallel_fof_ranks(benchmark, particle_set, nranks):
    pos, box = particle_set
    ll = 0.2 * box / 32
    tags = np.arange(len(pos))

    def run():
        def prog(comm):
            decomp = CartesianDecomposition.for_ranks(box, comm.size)
            owners = decomp.rank_of_position(pos)
            mine = owners == comm.rank
            return parallel_fof(
                comm, decomp, pos[mine], tags[mine], ll,
                overload_width=8 * ll, min_count=40,
            )

        results = run_spmd(nranks, prog)
        return {t: m for r in results for t, m in r.items()}

    halos = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = fof_grid(pos, ll, tags=tags, min_count=40, box=box)
    assert len(halos) == serial.n_halos


def test_overload_width_ablation(particle_set, benchmark):
    """Too-small overload widths lose halo completeness: halos straddling
    rank boundaries come out truncated or duplicated."""
    pos, box = particle_set
    ll = 0.2 * box / 32
    tags = np.arange(len(pos))
    serial = fof_grid(pos, ll, tags=tags, min_count=40, box=box)
    total_serial = int(serial.halo_counts.sum())

    def total_with_width(width):
        def prog(comm):
            decomp = CartesianDecomposition.for_ranks(box, comm.size)
            owners = decomp.rank_of_position(pos)
            mine = owners == comm.rank
            return parallel_fof(
                comm, decomp, pos[mine], tags[mine], ll,
                overload_width=width, min_count=40,
            )

        results = run_spmd(8, prog)
        return sum(len(m) for r in results for m in r.values())

    good = benchmark.pedantic(total_with_width, args=(8 * ll,), rounds=1, iterations=1)
    bad = total_with_width(0.25 * ll)
    save_result(
        "ablation_overload",
        f"parallel FOF particle totals: serial {total_serial}, "
        f"overload 8ll -> {good}, overload 0.25ll -> {bad} "
        f"(insufficient width loses/duplicates members)",
    )
    assert good == total_serial
    assert bad != total_serial
