"""Ablation: the co-scheduled strategy under failures (docs/failures.md).

The Table 3/4 runs assume every submit and payload succeeds.  Here the
co-scheduled leg reruns with a seeded FaultPlan failing each off-line
payload at grant time with probability p; failed jobs requeue in
simulated time (FIFO preserved) before dead-lettering.  Two claims are
gated: the makespan degrades *gracefully* (a bounded tax, not a crash)
and the whole experiment is *bit-reproducible* from the plan seed.
"""

import pytest

from repro.core import CombinedWorkflow, qcontinuum_like_profile
from repro.core.report import render_table
from repro.machines import TITAN

from conftest import save_result

PROBABILITY = 0.10
SEED = 42


@pytest.fixture(scope="module")
def profile():
    return qcontinuum_like_profile(scale_down=512)


def test_coscheduled_makespan_under_faults(benchmark, cost, profile):
    """10% payload-failure plan: graceful degradation of time-to-science."""
    wf = CombinedWorkflow(cost, TITAN, variant="coscheduled")
    clean = wf.coscheduled_makespan(profile)

    def faulty_run():
        return wf.coscheduled_makespan_under_faults(
            profile, probability=PROBABILITY, seed=SEED
        )

    makespan, sched = benchmark.pedantic(faulty_run, rounds=1, iterations=1)
    requeued = sum(max(j.attempts - 1, 0) for j in sched.jobs)
    save_result(
        "ablation_faults",
        render_table(
            ["quantity", "clean", f"{PROBABILITY:.0%} payload faults"],
            [
                ["co-scheduled makespan (s)", f"{clean:,.0f}", f"{makespan:,.0f}"],
                ["overhead", "—", f"+{(makespan / clean - 1) * 100:.1f}%"],
                ["requeued attempts", "0", str(requeued)],
                ["dead-lettered jobs", "0", str(sched.dead_letter.total)],
            ],
            title="Strategy ablation under failures (seeded FaultPlan)",
        ),
    )
    # graceful: every faulted job is requeued and finishes; the tax is
    # the re-runs themselves, bounded well below a crashed campaign
    assert makespan > clean
    assert makespan < 2.0 * clean
    assert requeued > 0
    assert sched.dead_letter.total == 0
    assert all(j.done and not j.failed for j in sched.jobs)


def test_faulty_makespan_is_bit_reproducible(cost, profile):
    """Same plan seed ⇒ same faulted grants ⇒ same makespan to the digit."""
    wf = CombinedWorkflow(cost, TITAN, variant="coscheduled")
    m1, s1 = wf.coscheduled_makespan_under_faults(
        profile, probability=PROBABILITY, seed=SEED
    )
    m2, s2 = wf.coscheduled_makespan_under_faults(
        profile, probability=PROBABILITY, seed=SEED
    )
    assert m1 == m2
    assert [j.attempts for j in s1.jobs] == [j.attempts for j in s2.jobs]
    assert s1.dead_letter.keys() == s2.dead_letter.keys()
    # a different seed draws a different failure schedule
    m3, _ = wf.coscheduled_makespan_under_faults(
        profile, probability=PROBABILITY, seed=SEED + 1
    )
    assert m3 != m1
