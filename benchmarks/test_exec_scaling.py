"""Exec-engine scaling harness: serial vs N workers on a skewed catalog.

Reproduces the paper's §3.3.2 / Figure 4 situation in miniature: one
giant halo dominates the n(n-1) pair work of a batch, so naive per-halo
placement pins the makespan to one core.  The harness measures:

* serial wall time for batch MBP center finding;
* the same batch on the :class:`repro.exec.ExecutionEngine` at 2 and 4
  workers — asserting **bit-identical** centers / MBP tags / pair
  counts every time;
* per-run load imbalance (max/mean worker busy, the Figure 4 metric),
  steal counts, and split-halo counts.

Results land in ``BENCH_exec.json`` at the repo root (uploaded as a CI
artifact) plus a rendered text table under ``benchmarks/results/``.

Speedup gating
--------------
Real speedup needs real cores.  The harness always records
``cpu_count``; the ≥1.2x two-worker assertion is enforced only when the
host has ≥2 cores (or ``EXEC_BENCH_REQUIRE_SPEEDUP=1`` forces it, as CI
does).  ``EXEC_BENCH_MIN_SPEEDUP2`` overrides the threshold.
"""

import json
import os
import time
from datetime import datetime, timezone

import numpy as np

from repro.analysis import halo_centers
from repro.exec import ExecutionEngine, parallel_halo_centers

from conftest import save_result

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_exec.json")
)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _skewed_catalog(rng):
    """One giant (~2200 particles) + 160 small halos + fluff, shuffled."""
    sizes = [2200] + list(rng.integers(60, 100, size=160))
    pos_list, labels_list = [], []
    for i, s in enumerate(sizes):
        c = rng.uniform(5, 195, 3)
        pos_list.append(c + rng.normal(0, 1.0, (s, 3)))
        labels_list.append(np.full(s, i, dtype=np.int64))
    pos_list.append(rng.uniform(0, 200, (2000, 3)))
    labels_list.append(np.full(2000, -1, dtype=np.int64))
    pos = np.concatenate(pos_list)
    labels = np.concatenate(labels_list)
    perm = rng.permutation(len(pos))
    return pos[perm], np.arange(len(pos), dtype=np.int64), labels[perm]


def _identical(a, b) -> bool:
    return (
        np.array_equal(a.halo_tags, b.halo_tags)
        and np.array_equal(a.centers, b.centers)
        and np.array_equal(a.mbp_tags, b.mbp_tags)
        and np.array_equal(a.potentials, b.potentials)
        and np.array_equal(a.per_halo_pairs, b.per_halo_pairs)
        and a.stats.pair_evaluations == b.stats.pair_evaluations
    )


def test_exec_scaling(bench_rng):
    pos, tags, labels = _skewed_catalog(bench_rng)
    cpu_count = _cpu_count()

    # serial baseline (best of 2: first call pays numpy warm-up)
    serial_times = []
    for _ in range(2):
        t0 = time.perf_counter()
        serial = halo_centers(pos, tags, labels)
        serial_times.append(time.perf_counter() - t0)
    serial_seconds = min(serial_times)
    giant = int(serial.per_halo_pairs.max())
    skew = giant / max(int(np.median(serial.per_halo_pairs)), 1)

    runs = {}
    for workers in (2, 4):
        engine = ExecutionEngine(workers=workers, min_split_rows=128)
        t0 = time.perf_counter()
        par = parallel_halo_centers(pos, tags, labels, engine=engine)
        seconds = time.perf_counter() - t0
        rep = par.exec_report
        runs[workers] = {
            "seconds": seconds,
            "speedup": serial_seconds / seconds if seconds > 0 else 0.0,
            "imbalance": rep.imbalance,
            "busy_fraction": rep.busy_fraction,
            "steals": rep.total_steals,
            "n_items": rep.n_items,
            "n_split_halos": rep.n_split_halos,
            "identical": _identical(serial, par),
        }
        assert runs[workers]["identical"], f"workers={workers}: results diverged"
        assert rep.n_split_halos >= 1  # the giant must have been slab-split

    require_speedup = cpu_count >= 2 or os.environ.get("EXEC_BENCH_REQUIRE_SPEEDUP") == "1"
    min_speedup2 = float(os.environ.get("EXEC_BENCH_MIN_SPEEDUP2", "1.2"))

    payload = {
        "benchmark": "exec_scaling",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "cpu_count": cpu_count,
        "catalog": {
            "n_particles": int(len(pos)),
            "n_halos": int(len(serial.halo_tags)),
            "giant_pairs": giant,
            "pair_skew_vs_median": round(skew, 1),
        },
        "serial_seconds": serial_seconds,
        "workers": {str(w): r for w, r in runs.items()},
        "speedup_gate": {
            "enforced": require_speedup,
            "min_speedup_at_2_workers": min_speedup2,
            "passed": (not require_speedup) or runs[2]["speedup"] >= min_speedup2,
        },
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    lines = [
        "Exec-engine scaling (skewed catalog: "
        f"{payload['catalog']['n_halos']} halos, pair skew "
        f"{payload['catalog']['pair_skew_vs_median']:.0f}x, {cpu_count} cores)",
        f"  serial: {serial_seconds:.3f} s",
    ]
    for w, r in runs.items():
        lines.append(
            f"  {w} workers: {r['seconds']:.3f} s  speedup {r['speedup']:.2f}x  "
            f"imbalance {r['imbalance']:.2f}  steals {r['steals']}  "
            f"split halos {r['n_split_halos']}  identical {r['identical']}"
        )
    gate = payload["speedup_gate"]
    lines.append(
        f"  gate: enforced={gate['enforced']} "
        f"(min {min_speedup2:.2f}x @ 2 workers) passed={gate['passed']}"
    )
    save_result("exec_scaling", "\n".join(lines))

    if require_speedup:
        assert runs[2]["speedup"] >= min_speedup2, (
            f"2-worker speedup {runs[2]['speedup']:.2f}x below the "
            f"{min_speedup2:.2f}x gate (cores={cpu_count})"
        )


def test_exec_imbalance_projection(bench_rng):
    """The queue's modeled imbalance vs the measured one (Figure 4 story).

    Without splitting, one giant halo pins a worker: modeled max/mean
    load stays far above 1.  With slab splitting the model projects
    near-balance — which the measured run then exhibits.
    """
    from repro.exec import HaloWorkQueue

    sizes = np.asarray([20_000] + [100] * 200)
    unsplit = HaloWorkQueue.build(sizes, workers=4, splittable=False)
    split = HaloWorkQueue.build(sizes, workers=4, splittable=True)
    save_result(
        "exec_imbalance_projection",
        "modeled 4-worker load imbalance for 1 giant + 200 small halos:\n"
        f"  unsplittable (per-halo placement only): {unsplit.modeled_imbalance():.2f}x\n"
        f"  with row-slab splitting:               {split.modeled_imbalance():.2f}x\n"
        "(paper Figure 4: per-node pair-count skew of ~15x on the test problem)",
    )
    assert unsplit.modeled_imbalance() > 2.0
    assert split.modeled_imbalance() < 1.5
