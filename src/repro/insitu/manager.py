"""The CosmoTools in-situ analysis manager.

Paper §3.1: "The *InSituAnalysisManager* class holds a list of
references to concrete *InSituAlgorithm* instances and serves as the
primary object interacting with the simulation code."

The manager is the single hook the simulation driver calls
(:meth:`InSituAnalysisManager.execute`); it filters algorithms by their
``should_execute`` predicate, runs them in registration order (so
sequenced pipelines like halos → centers → SO masses work), times each,
and archives the per-step :class:`~repro.insitu.algorithm.AnalysisContext`.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from ..obs import get_recorder
from .algorithm import AnalysisContext, InSituAlgorithm

__all__ = ["InSituAnalysisManager"]


class InSituAnalysisManager:
    """Registry and dispatcher for in-situ analysis algorithms.

    Designed to be minimally intrusive: the simulation calls a single
    method per step; overhead when no algorithm fires is one predicate
    evaluation per registered algorithm (the paper notes the virtual-call
    overhead is negligible).
    """

    def __init__(self) -> None:
        self.algorithms: list[InSituAlgorithm] = []
        self.history: dict[int, AnalysisContext] = {}

    # -- registration ---------------------------------------------------------

    def register(self, algorithm: InSituAlgorithm) -> InSituAlgorithm:
        """Append an algorithm (execution follows registration order)."""
        if not isinstance(algorithm, InSituAlgorithm):
            raise TypeError(f"{algorithm!r} is not an InSituAlgorithm")
        if any(a.name == algorithm.name for a in self.algorithms):
            raise ValueError(f"algorithm name {algorithm.name!r} already registered")
        self.algorithms.append(algorithm)
        return algorithm

    def __iter__(self) -> Iterator[InSituAlgorithm]:
        return iter(self.algorithms)

    def __len__(self) -> int:
        return len(self.algorithms)

    def get(self, name: str) -> InSituAlgorithm:
        """Look up a registered algorithm by name."""
        for a in self.algorithms:
            if a.name == name:
                return a
        raise KeyError(f"no algorithm named {name!r}")

    # -- the simulation hook ----------------------------------------------------

    def execute(self, sim: Any, step: int, a: float) -> AnalysisContext:
        """Run every algorithm due at ``(step, a)`` against ``sim``.

        Returns the step's :class:`AnalysisContext` (also archived in
        ``self.history``).  An empty context is returned — and *not*
        archived — when nothing fires.
        """
        due = [alg for alg in self.algorithms if alg.should_execute(step, a)]
        context = AnalysisContext(step=step, a=a)
        if not due:
            return context
        rec = get_recorder()
        with rec.span("insitu.execute", step=step, algorithms=len(due)):
            for alg in due:
                t0 = time.perf_counter()
                with rec.span(f"insitu.{alg.name}", step=step):
                    alg.execute(sim, context)
                elapsed = time.perf_counter() - t0
                # keep the historical per-algorithm timings API: consumers
                # (workflow accounting, tests) read wall_seconds[alg.name]
                context.timings.setdefault("wall_seconds", {})[alg.name] = elapsed
                rec.counter("insitu_executions_total").inc()
                rec.histogram("insitu_algorithm_seconds").observe(elapsed)
        rec.event("insitu.step_archived", step=step, algorithms=[a.name for a in due])
        self.history[step] = context
        return context

    # -- results access ------------------------------------------------------

    def latest(self) -> AnalysisContext | None:
        """The most recent archived step context, if any."""
        if not self.history:
            return None
        return self.history[max(self.history)]
