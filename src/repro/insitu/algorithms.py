"""Concrete CosmoTools algorithms.

The five analysis tasks of the paper's §4.1 plus the data writers:

1. :class:`PowerSpectrumAlgorithm` — CIC density + FFT P(k).
2. :class:`HaloFinderAlgorithm` — distributed FOF over simulated ranks.
3. :class:`HaloCenterAlgorithm` — MBP centers with the in-situ/off-load
   threshold split (the heart of the combined workflow).
4. :class:`SubhaloFinderAlgorithm` — subhalos for large parents.
5. :class:`SOMassAlgorithm` — spherical-overdensity masses at centers.

Writers: :class:`Level1WriterAlgorithm` (full raw snapshot, off-line
workflow) and :class:`Level2WriterAlgorithm` (particles of off-loaded
halos only, combined workflow).

Each algorithm records per-rank wall-clock times in the step's
:class:`~repro.insitu.algorithm.AnalysisContext`, which is how the
workflow engine measures the load imbalance the paper reports (Table 2,
Figure 4).
"""

from __future__ import annotations

import os
import time
from typing import Any

import numpy as np

from ..analysis.centers import halo_centers
from ..analysis.fof import parallel_fof
from ..analysis.power_spectrum import measure_power_spectrum
from ..analysis.so import so_masses_indexed
from ..analysis.subhalos import find_subhalos
from ..io.catalog import HaloCatalog
from ..io.genericio import write_genericio
from ..parallel.communicator import Communicator, run_spmd
from ..parallel.decomposition import CartesianDecomposition
from .algorithm import AnalysisContext, InSituAlgorithm

__all__ = [
    "ALGORITHM_REGISTRY",
    "HaloCenterAlgorithm",
    "HaloFinderAlgorithm",
    "Level1WriterAlgorithm",
    "Level2StageAlgorithm",
    "Level2WriterAlgorithm",
    "PowerSpectrumAlgorithm",
    "SOMassAlgorithm",
    "StreamingPreviewAlgorithm",
    "SubhaloFinderAlgorithm",
    "tag_index_map",
]


def tag_index_map(tags: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``map[tag] = index`` for dense uint64 tags."""
    tags = np.asarray(tags)
    out = np.empty(int(tags.max()) + 1 if len(tags) else 0, dtype=np.intp)
    out[tags] = np.arange(len(tags), dtype=np.intp)
    return out


class _Scheduled(InSituAlgorithm):
    """Scheduling mixin: run at listed steps, at an interval, or always."""

    at_steps: list[int] | int | None = None
    every: int | None = None

    def should_execute(self, step: int, a: float) -> bool:
        if self.at_steps is not None:
            steps = self.at_steps if isinstance(self.at_steps, list) else [self.at_steps]
            return step in steps
        if self.every is not None:
            return step > 0 and step % int(self.every) == 0
        return True


class PowerSpectrumAlgorithm(_Scheduled):
    """In-situ density-fluctuation power spectrum (paper §1).

    Parameters: ``ng`` (FFT mesh, default = simulation mesh), ``n_bins``.
    Stores a :class:`~repro.analysis.power_spectrum.PowerSpectrumResult`
    under ``"power_spectrum"``.
    """

    name = "power_spectrum"
    ng: int | None = None
    n_bins: int | None = None

    def execute(self, sim: Any, context: AnalysisContext) -> None:
        ng = self.ng if self.ng is not None else sim.config.mesh_size
        result = measure_power_spectrum(
            sim.particles.pos, box=sim.config.box, ng=ng, n_bins=self.n_bins
        )
        context.store["power_spectrum"] = result


class HaloFinderAlgorithm(_Scheduled):
    """Distributed FOF halo identification (paper §3.3.1).

    Parameters
    ----------
    linking_length_factor:
        ``b`` in units of the mean interparticle separation (0.2 here
        and throughout cosmology, the HACC production value, unless
        ``linking_length`` overrides with an absolute length).
    min_count:
        Discard halos below this many particles.
    n_ranks:
        Simulated analysis ranks (the paper's Titan nodes).
    overload_factor:
        Overload width in linking lengths; must comfortably exceed the
        maximum halo extent over the linking length.
    transport:
        SPMD transport for the rank programs: ``"thread"`` (default,
        deterministic reference), ``"process"`` (one forked OS process
        per rank — real multi-core parallelism), or a full
        :class:`~repro.parallel.transport.SpmdConfig`.  Both produce
        bit-identical catalogs.

    Stores under ``"fof"``: ``halos`` (halo tag -> member particle
    tags), ``owner_rank`` (halo tag -> rank), ``counts``,
    ``rank_seconds`` (per-rank wall time: the Find column of Table 2).
    """

    name = "halo_finder"
    linking_length: float | None = None
    linking_length_factor: float = 0.2
    min_count: int = 40
    n_ranks: int = 8
    overload_factor: float = 8.0
    local_finder: str = "grid"
    transport: Any = None

    def execute(self, sim: Any, context: AnalysisContext) -> None:
        box = sim.config.box
        mean_sep = box / sim.config.np_per_dim
        ll = self.linking_length if self.linking_length else self.linking_length_factor * mean_sep
        overload = self.overload_factor * ll
        pos = np.asarray(sim.particles.pos, dtype=float)
        tags = np.asarray(sim.particles.tag, dtype=np.int64)
        decomp = CartesianDecomposition.for_ranks(box, self.n_ranks)
        # owner map computed once via the shared per-step cache (it used
        # to be rebuilt inside prog — i.e. n_ranks times per step)
        owners = context.shared_spatial(sim).owners(decomp)

        def prog(comm: Communicator) -> tuple[Any, float]:
            mine = owners == comm.rank
            t0 = time.perf_counter()
            halos = parallel_fof(
                comm,
                decomp,
                pos[mine],
                tags[mine],
                linking_length=ll,
                overload_width=overload,
                min_count=self.min_count,
                local_finder=self.local_finder,
            )
            return halos, time.perf_counter() - t0

        results = run_spmd(self.n_ranks, prog, transport=self.transport)
        halos: dict[int, np.ndarray] = {}
        owner_rank: dict[int, int] = {}
        rank_seconds = []
        for rank, (rhalos, secs) in enumerate(results):
            rank_seconds.append(secs)
            for tag, members in rhalos.items():
                halos[tag] = members
                owner_rank[tag] = rank
        context.store["fof"] = {
            "halos": halos,
            "owner_rank": owner_rank,
            "counts": {t: len(m) for t, m in halos.items()},
            "linking_length": ll,
            "n_ranks": self.n_ranks,
            "decomp": decomp,
        }
        context.timings["halo_finder_rank_seconds"] = rank_seconds


class HaloCenterAlgorithm(_Scheduled):
    """MBP center finding with the in-situ/off-load split (paper §4).

    Halos with at most ``threshold`` particles get centers in-situ;
    larger halos are flagged for off-loading.  Per-rank times are
    measured by executing each simulated rank's owned-halo workload and
    timing it (the Center column of Table 2; with ``threshold=None``
    everything is computed in-situ, the full-in-situ workflow).

    Stores under ``"centers"``: a :class:`HaloCatalog` of the in-situ
    centers, the list of off-loaded halo tags, and per-rank seconds.

    With ``workers > 1`` each simulated rank's owned-halo batch runs on
    the :mod:`repro.exec` work-stealing engine (bit-identical results).
    """

    name = "halo_centers"
    threshold: int | None = 300_000
    method: str = "bruteforce"
    backend: str = "vector"
    softening: float = 1.0e-5
    workers: int | None = None

    def execute(self, sim: Any, context: AnalysisContext) -> None:
        fof = context.require("fof")
        pos = np.asarray(sim.particles.pos, dtype=float)
        index_of = context.shared_spatial(sim).tag_index()
        halos: dict[int, np.ndarray] = fof["halos"]
        owner_rank: dict[int, int] = fof["owner_rank"]
        n_ranks: int = fof["n_ranks"]

        threshold = self.threshold if self.threshold is not None else np.inf
        offloaded = [t for t, m in halos.items() if len(m) > threshold]
        insitu_tags = [t for t, m in halos.items() if len(m) <= threshold]

        cat_tags: list[int] = []
        cat_counts: list[int] = []
        cat_centers: list[np.ndarray] = []
        cat_mbp: list[int] = []
        cat_phi: list[float] = []
        rank_seconds = np.zeros(n_ranks)
        rank_pairs = np.zeros(n_ranks, dtype=np.int64)

        by_rank: dict[int, list[int]] = {}
        for t in insitu_tags:
            by_rank.setdefault(owner_rank[t], []).append(t)

        parallel = bool(self.workers and int(self.workers) > 1)
        for rank in range(n_ranks):
            t0 = time.perf_counter()
            rank_tags = by_rank.get(rank, [])
            if parallel and rank_tags:
                # one engine batch per simulated rank: the exec layer
                # LPT-schedules (and slab-splits) the rank's halos across
                # worker processes; output order is re-mapped so the
                # catalog matches the serial path exactly
                idx = np.concatenate([index_of[halos[t]] for t in rank_tags])
                member_tags = np.concatenate([halos[t] for t in rank_tags])
                labels = np.concatenate(
                    [np.full(len(halos[t]), t, dtype=np.int64) for t in rank_tags]
                )
                res = halo_centers(
                    pos[idx],
                    member_tags,
                    labels,
                    mass=sim.particles.particle_mass,
                    softening=self.softening,
                    method=self.method,
                    backend=self.backend,
                    workers=int(self.workers),
                )
                row_of = {int(t): i for i, t in enumerate(res.halo_tags)}
                for halo_tag in rank_tags:
                    i = row_of[int(halo_tag)]
                    cat_tags.append(halo_tag)
                    cat_counts.append(len(halos[halo_tag]))
                    cat_centers.append(res.centers[i])
                    cat_mbp.append(int(res.mbp_tags[i]))
                    cat_phi.append(float(res.potentials[i]))
                rank_pairs[rank] += int(res.stats.pair_evaluations)
            else:
                for halo_tag in rank_tags:
                    members = halos[halo_tag]
                    idx = index_of[members]
                    hpos = pos[idx]
                    res = halo_centers(
                        hpos,
                        members,
                        np.full(len(members), halo_tag, dtype=np.int64),
                        mass=sim.particles.particle_mass,
                        softening=self.softening,
                        method=self.method,
                        backend=self.backend,
                    )
                    cat_tags.append(halo_tag)
                    cat_counts.append(len(members))
                    cat_centers.append(res.centers[0])
                    cat_mbp.append(int(res.mbp_tags[0]))
                    cat_phi.append(float(res.potentials[0]))
                    rank_pairs[rank] += int(res.stats.pair_evaluations)
            rank_seconds[rank] = time.perf_counter() - t0

        catalog = HaloCatalog.from_columns(
            halo_tag=np.asarray(cat_tags, dtype=np.uint64),
            count=np.asarray(cat_counts, dtype=np.int64),
            center=np.asarray(cat_centers) if cat_centers else np.empty((0, 3)),
            mbp_tag=np.asarray(cat_mbp, dtype=np.uint64),
            potential=np.asarray(cat_phi),
            particle_mass=sim.particles.particle_mass,
        )
        context.store["centers"] = {
            "catalog": catalog,
            "offloaded_halo_tags": sorted(offloaded),
            "threshold": self.threshold,
        }
        context.timings["center_rank_seconds"] = rank_seconds.tolist()
        context.timings["center_rank_pairs"] = rank_pairs.tolist()


class SubhaloFinderAlgorithm(_Scheduled):
    """Subhalo identification for large parent halos (paper §3.3.1/§4.2).

    Runs on parents above ``min_parent`` particles (paper: 5000 —
    "smaller halos will not exhibit much substructure").  Stores per-halo
    subhalo results and per-rank times; the workflow uses the latter for
    the subhalo imbalance result (8172 s vs 1457 s on 32 nodes).
    """

    name = "subhalo_finder"
    min_parent: int = 5000
    k_density: int = 32
    min_size: int = 20
    #: with ``workers > 1`` the whole parent batch runs on the
    #: :mod:`repro.exec` engine; per-rank seconds are rebuilt from the
    #: engine's per-halo timings so the imbalance metric is preserved
    workers: int | None = None

    def execute(self, sim: Any, context: AnalysisContext) -> None:
        fof = context.require("fof")
        pos = np.asarray(sim.particles.pos, dtype=float)
        vel = np.asarray(sim.particles.vel, dtype=float)
        index_of = context.shared_spatial(sim).tag_index()
        halos: dict[int, np.ndarray] = fof["halos"]
        owner_rank: dict[int, int] = fof["owner_rank"]
        n_ranks: int = fof["n_ranks"]
        a = context.a
        cosmo = sim.cosmo
        box = sim.config.box
        rho_mean = len(pos) * sim.particles.particle_mass / box**3
        g_code = 3.0 * cosmo.omega_m / (8.0 * np.pi * a * rho_mean)

        rank_seconds = np.zeros(n_ranks)
        results: dict[int, Any] = {}
        by_rank: dict[int, list[int]] = {}
        for t, m in halos.items():
            if len(m) > self.min_parent:
                by_rank.setdefault(owner_rank[t], []).append(t)

        if self.workers and int(self.workers) > 1 and by_rank:
            from ..exec import parallel_subhalos

            all_tags = [t for r in range(n_ranks) for t in by_rank.get(r, [])]
            batch = parallel_subhalos(
                pos,
                vel,
                {t: index_of[halos[t]] for t in all_tags},
                mass=sim.particles.particle_mass,
                g_constant=g_code,
                k_density=self.k_density,
                min_size=self.min_size,
                box=box,
                vel_scale=1.0 / a,  # proper peculiar velocity proxy
                workers=int(self.workers),
            )
            results = {t: batch.by_tag[t] for t in all_tags}
            for rank in range(n_ranks):
                rank_seconds[rank] = sum(
                    batch.halo_seconds.get(t, 0.0) for t in by_rank.get(rank, [])
                )
        else:
            for rank in range(n_ranks):
                t0 = time.perf_counter()
                for halo_tag in by_rank.get(rank, []):
                    idx = index_of[halos[halo_tag]]
                    # halo-local frame: unwrap periodic coordinates about the
                    # first member so distances are physical
                    hpos = pos[idx].copy()
                    hpos -= box * np.round((hpos - hpos[0]) / box)
                    hvel = vel[idx] / a  # proper peculiar velocity proxy
                    results[halo_tag] = find_subhalos(
                        hpos,
                        hvel,
                        mass=sim.particles.particle_mass,
                        g_constant=g_code,
                        k_density=self.k_density,
                        min_size=self.min_size,
                    )
                rank_seconds[rank] = time.perf_counter() - t0

        context.store["subhalos"] = {"by_halo": results, "min_parent": self.min_parent}
        context.timings["subhalo_rank_seconds"] = rank_seconds.tolist()


class SOMassAlgorithm(_Scheduled):
    """Spherical-overdensity masses seeded at the MBP centers (task 5).

    Candidate particles come from the step's shared
    :class:`~repro.analysis.spatial_index.PeriodicCellIndex`: each
    center queries a neighborhood sphere sized from the halo's FOF mass
    (the radius where the enclosed FOF mass would sit exactly at the
    ``Δ·ρ_mean`` threshold, doubled for margin) instead of scanning the
    whole box — and, unlike the old members-only scan, the sphere also
    includes non-member ambient particles, which is the correct SO
    candidate set.
    """

    name = "so_mass"
    delta: float = 200.0

    def execute(self, sim: Any, context: AnalysisContext) -> None:
        centers = context.require("centers")
        fof = context.require("fof")
        catalog: HaloCatalog = centers["catalog"]
        pos = np.asarray(sim.particles.pos, dtype=float)
        box = sim.config.box
        m = sim.particles.particle_mass
        rho_mean = len(pos) * m / box**3

        recs = list(catalog.records)
        if not recs:
            context.store["so_mass"] = {}
            return

        index = context.shared_spatial(sim).cell_index()
        halo_tags = [int(rec["halo_tag"]) for rec in recs]
        ctrs = np.asarray(
            [[rec["center_x"], rec["center_y"], rec["center_z"]] for rec in recs]
        )
        counts = np.asarray([fof["counts"][t] for t in halo_tags], dtype=float)
        # radius at which the halo's own FOF mass sits at the threshold
        # density; 2x margin so the first query usually converges
        r_est = (
            3.0 * counts * m / (4.0 * np.pi * self.delta * rho_mean)
        ) ** (1.0 / 3.0)
        initial = np.maximum(2.0 * r_est, 2.0 * index.cell_edge)

        results = so_masses_indexed(
            index,
            ctrs,
            particle_mass=m,
            reference_density=rho_mean,
            delta=self.delta,
            initial_radii=initial,
        )
        context.store["so_mass"] = dict(zip(halo_tags, results))


class Level1WriterAlgorithm(_Scheduled):
    """Write the full raw particle snapshot (Level 1) to storage.

    Used by the off-line workflow; one GenericIO block per simulated
    rank.  Stores the written path and byte count under ``"level1"``.
    """

    name = "level1_writer"
    output_dir: str = "."
    n_ranks: int = 8

    def execute(self, sim: Any, context: AnalysisContext) -> None:
        pos = np.asarray(sim.particles.pos, dtype=np.float32)
        vel = np.asarray(sim.particles.vel, dtype=np.float32)
        tags = np.asarray(sim.particles.tag, dtype=np.uint64)
        mask = np.asarray(sim.particles.mask, dtype=np.uint32)
        decomp = CartesianDecomposition.for_ranks(sim.config.box, self.n_ranks)
        owners = context.shared_spatial(sim).owners(decomp)
        blocks = []
        for rank in range(self.n_ranks):
            sel = owners == rank
            blocks.append(
                {"pos": pos[sel], "vel": vel[sel], "tag": tags[sel], "mask": mask[sel]}
            )
        os.makedirs(self.output_dir, exist_ok=True)
        path = os.path.join(self.output_dir, f"l1_step{context.step:04d}.gio")
        t0 = time.perf_counter()
        nbytes = write_genericio(path, blocks)
        context.store["level1"] = {"path": path, "bytes": nbytes}
        context.timings["level1_write_seconds"] = time.perf_counter() - t0


class Level2WriterAlgorithm(_Scheduled):
    """Write the off-loaded halos' particles (Level 2) to storage.

    The combined workflow's reduction step: only particles belonging to
    halos above the threshold are written ("we printed out all the
    particles that reside in halos with more than 300,000 particles to
    the file system — the resulting data was a factor of 5 less than the
    raw data").  Each owning rank contributes one block; the per-block
    layout is what lets the co-scheduled analysis jobs each read a
    single block (the Moonlight 128x128 scheme).
    """

    name = "level2_writer"
    output_dir: str = "."

    def execute(self, sim: Any, context: AnalysisContext) -> None:
        fof = context.require("fof")
        centers = context.require("centers")
        offloaded = centers["offloaded_halo_tags"]
        pos = np.asarray(sim.particles.pos, dtype=np.float32)
        vel = np.asarray(sim.particles.vel, dtype=np.float32)
        tags = np.asarray(sim.particles.tag, dtype=np.int64)
        index_of = context.shared_spatial(sim).tag_index()
        owner_rank = fof["owner_rank"]
        n_ranks = fof["n_ranks"]

        per_rank: dict[int, list[tuple[int, np.ndarray]]] = {}
        for halo_tag in offloaded:
            per_rank.setdefault(owner_rank[halo_tag], []).append(
                (halo_tag, fof["halos"][halo_tag])
            )
        blocks = []
        for rank in range(n_ranks):
            parts = per_rank.get(rank, [])
            if parts:
                idx = np.concatenate([index_of[m] for _, m in parts])
                halo_ids = np.concatenate(
                    [np.full(len(m), t, dtype=np.int64) for t, m in parts]
                )
            else:
                idx = np.empty(0, dtype=np.intp)
                halo_ids = np.empty(0, dtype=np.int64)
            blocks.append(
                {
                    "pos": pos[idx],
                    "vel": vel[idx],
                    "tag": tags[idx].astype(np.uint64),
                    "halo_tag": halo_ids,
                }
            )
        os.makedirs(self.output_dir, exist_ok=True)
        path = os.path.join(self.output_dir, f"l2_step{context.step:04d}.gio")
        t0 = time.perf_counter()
        nbytes = write_genericio(path, blocks)
        context.store["level2"] = {
            "path": path,
            "bytes": nbytes,
            "n_particles": sum(len(b["tag"]) for b in blocks),
            "halo_tags": list(offloaded),
        }
        context.timings["level2_write_seconds"] = time.perf_counter() - t0


class Level2StageAlgorithm(Level2WriterAlgorithm):
    """In-transit variant of the Level 2 writer: stage to shared memory.

    Identical block structure to :class:`Level2WriterAlgorithm`, but the
    product lands in a :class:`~repro.machines.staging.StagingArea`
    instead of the file system — the paper's hypothetical NVRAM path,
    implemented live.  Set ``staging`` (the shared area) before running.
    """

    name = "level2_stager"
    staging = None  # StagingArea, injected by the workflow driver

    def execute(self, sim: Any, context: AnalysisContext) -> None:
        if self.staging is None:
            raise RuntimeError("Level2StageAlgorithm.staging not configured")
        fof = context.require("fof")
        centers = context.require("centers")
        offloaded = centers["offloaded_halo_tags"]
        pos = np.asarray(sim.particles.pos, dtype=np.float32)
        vel = np.asarray(sim.particles.vel, dtype=np.float32)
        tags = np.asarray(sim.particles.tag, dtype=np.int64)
        index_of = context.shared_spatial(sim).tag_index()
        owner_rank = fof["owner_rank"]
        n_ranks = fof["n_ranks"]

        per_rank: dict[int, list[tuple[int, np.ndarray]]] = {}
        for halo_tag in offloaded:
            per_rank.setdefault(owner_rank[halo_tag], []).append(
                (halo_tag, fof["halos"][halo_tag])
            )
        blocks = []
        for rank in range(n_ranks):
            parts = per_rank.get(rank, [])
            if parts:
                idx = np.concatenate([index_of[m] for _, m in parts])
                halo_ids = np.concatenate(
                    [np.full(len(m), t, dtype=np.int64) for t, m in parts]
                )
            else:
                idx = np.empty(0, dtype=np.intp)
                halo_ids = np.empty(0, dtype=np.int64)
            blocks.append(
                {
                    "pos": pos[idx],
                    "vel": vel[idx],
                    "tag": tags[idx].astype(np.uint64),
                    "halo_tag": halo_ids,
                }
            )
        name = f"l2_step{context.step:04d}"
        t0 = time.perf_counter()
        nbytes = self.staging.put(name, blocks)
        context.store["level2"] = {
            "staged": name,
            "bytes": nbytes,
            "n_particles": sum(len(b["tag"]) for b in blocks),
            "halo_tags": list(offloaded),
        }
        context.timings["level2_stage_seconds"] = time.perf_counter() - t0


class StreamingPreviewAlgorithm(_Scheduled):
    """Cheap preview-tier analysis via the one-pass streaming engine.

    The co-scheduling motivation (arXiv:2208.09190): many concurrent
    campaigns can afford a bounded-memory preview of every snapshot
    even when the full in-memory chain cannot be scheduled.  Runs
    :class:`~repro.streaming.engine.StreamingAnalysis` over a
    slab-ordered chunk view of the live particle snapshot and stores a
    compact summary — halo catalog, one-pass mass function, heavy-hitter
    halo masses — under ``"streaming_preview"``.

    Parameters: ``linking_length``/``linking_length_factor`` and
    ``min_count`` as for the halo finder; ``chunk_rows`` bounds resident
    state; ``mass_function_bins`` is the fixed ``(lo, hi, n_bins)``
    triple one-pass binning requires; ``heavy_hitter_k`` the sketch
    budget; ``prefetch_depth`` the read-ahead window (0 = synchronous).
    """

    name = "streaming_preview"
    linking_length: float | None = None
    linking_length_factor: float = 0.2
    min_count: int = 40
    chunk_rows: int = 16384
    mass_function_bins: tuple[float, float, int] | None = None
    heavy_hitter_k: int = 16
    prefetch_depth: int = 1

    def execute(self, sim: Any, context: AnalysisContext) -> None:
        # local import: repro.streaming pulls repro.io, which this
        # module's writers already import lazily at call level elsewhere
        from ..streaming.engine import StreamingAnalysis
        from ..streaming.stream import ArrayStream

        box = float(sim.config.box)
        mean_sep = box / sim.config.np_per_dim
        ll = self.linking_length if self.linking_length else self.linking_length_factor * mean_sep
        bins = self.mass_function_bins
        if bins is None:
            bins = (float(self.min_count), float(sim.config.np_per_dim**3), 32)
        stream = ArrayStream(
            np.asarray(sim.particles.pos, dtype=np.float64),
            box=box,
            tags=np.asarray(sim.particles.tag, dtype=np.int64),
            chunk_rows=self.chunk_rows,
        )
        t0 = time.perf_counter()
        engine = StreamingAnalysis(
            linking_length=ll,
            min_count=self.min_count,
            mass_function_bins=bins,
            heavy_hitter_k=self.heavy_hitter_k,
            prefetch_depth=self.prefetch_depth,
        )
        result = engine.run(stream)
        context.store["streaming_preview"] = {
            "halo_tags": result.catalog.halo_tags,
            "halo_counts": result.catalog.halo_counts,
            "n_halos": result.catalog.n_halos,
            "mass_function": result.mass_function,
            "heavy_hitters": result.heavy_hitters,
            "linking_length": ll,
            "n_chunks": result.n_chunks,
            "peak_resident_particles": result.peak_resident_particles,
        }
        context.timings["streaming_preview_seconds"] = time.perf_counter() - t0


#: Config-section name -> algorithm class (used by
#: :meth:`repro.insitu.config.CosmoToolsConfig.build_manager`).
ALGORITHM_REGISTRY: dict[str, type[InSituAlgorithm]] = {
    "power_spectrum": PowerSpectrumAlgorithm,
    "halo_finder": HaloFinderAlgorithm,
    "halo_centers": HaloCenterAlgorithm,
    "subhalo_finder": SubhaloFinderAlgorithm,
    "so_mass": SOMassAlgorithm,
    "level1_writer": Level1WriterAlgorithm,
    "level2_writer": Level2WriterAlgorithm,
    "level2_stager": Level2StageAlgorithm,
    "streaming_preview": StreamingPreviewAlgorithm,
}
