"""CosmoTools: the in-situ analysis framework embedded in the simulation.

``InSituAlgorithm`` (set_parameters / should_execute / execute),
``InSituAnalysisManager`` (the hook the simulation calls each step),
configuration parsing (input deck + CosmoTools config), and the concrete
analysis algorithms.
"""

from .algorithm import AnalysisContext, InSituAlgorithm
from .algorithms import (
    ALGORITHM_REGISTRY,
    HaloCenterAlgorithm,
    HaloFinderAlgorithm,
    Level1WriterAlgorithm,
    Level2StageAlgorithm,
    Level2WriterAlgorithm,
    PowerSpectrumAlgorithm,
    SOMassAlgorithm,
    StreamingPreviewAlgorithm,
    SubhaloFinderAlgorithm,
    tag_index_map,
)
from .config import CosmoToolsConfig, InputDeck, parse_deck, parse_value
from .manager import InSituAnalysisManager
from .pipeline import AsyncInSituManager, PendingAnalysis, SimSnapshot
from .spatial import SharedStepIndex

__all__ = [
    "AsyncInSituManager",
    "PendingAnalysis",
    "SimSnapshot",
    "SharedStepIndex",
    "AnalysisContext",
    "InSituAlgorithm",
    "ALGORITHM_REGISTRY",
    "HaloCenterAlgorithm",
    "HaloFinderAlgorithm",
    "Level1WriterAlgorithm",
    "Level2StageAlgorithm",
    "Level2WriterAlgorithm",
    "PowerSpectrumAlgorithm",
    "SOMassAlgorithm",
    "StreamingPreviewAlgorithm",
    "SubhaloFinderAlgorithm",
    "tag_index_map",
    "CosmoToolsConfig",
    "InputDeck",
    "parse_deck",
    "parse_value",
    "InSituAnalysisManager",
]
