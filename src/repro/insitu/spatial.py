"""Shared per-step spatial structures for the in-situ analysis chain.

Several CosmoTools algorithms need the same derived structures over the
live particle arrays every analysis step: the tag→row inverse
permutation (halo member tags back to particle rows), the
domain-decomposition owner map (which simulated rank owns each
particle), and a neighborhood query index (particles near a point, for
the spherical-overdensity estimator).  Before this module each consumer
rebuilt its own copy — five ``tag_index_map`` calls and ``n_ranks``
owner scans per step.

:class:`SharedStepIndex` memoizes each structure on the step's
:class:`~repro.insitu.algorithm.AnalysisContext` so it is built *once*
per analysis step and shared by every stage (FOF → centers → subhalos →
SO → writers).  Build/reuse traffic is visible through ``repro.obs``
counters:

``spatial_index_misses`` / ``spatial_index_hits``
    :class:`~repro.analysis.spatial_index.PeriodicCellIndex` builds and
    reuses — the acceptance invariant is *at most one miss per step*.
``tag_index_builds_total`` / ``tag_index_reuses_total``
    tag→row map builds and reuses.
``owner_map_builds_total`` / ``owner_map_reuses_total``
    decomposition owner-map builds and reuses (keyed by grid shape).

The cache lives exactly as long as its context (one analysis step), so
it can never serve stale positions: a new step gets a new context and a
new :class:`SharedStepIndex`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..analysis.spatial_index import PeriodicCellIndex
from ..obs import get_recorder
from ..parallel.decomposition import CartesianDecomposition

__all__ = ["SharedStepIndex"]


class SharedStepIndex:
    """Per-step cache of shared spatial structures over one particle set.

    Parameters
    ----------
    particles:
        The live :class:`~repro.sim.particles.Particles` state at this
        step.  Only references are kept; nothing is copied until a
        structure is actually requested.
    """

    def __init__(self, particles: Any) -> None:
        self.particles = particles
        self.box = float(particles.box)
        self._cell_indexes: dict[float, PeriodicCellIndex] = {}
        self._tag_index: np.ndarray | None = None
        self._owners: dict[tuple[int, int, int], np.ndarray] = {}

    # -- neighborhood index ----------------------------------------------------

    def default_cell_size(self) -> float:
        """Target cell edge: two mean interparticle separations.

        Small enough that an SO neighborhood sphere covers few cells,
        large enough that per-cell occupancy (~8 particles) amortizes
        the gather.
        """
        n = len(self.particles.pos)
        mean_sep = self.box / max(round(n ** (1.0 / 3.0)), 1)
        return 2.0 * mean_sep

    def cell_index(self, cell_size: float | None = None) -> PeriodicCellIndex:
        """The step's :class:`PeriodicCellIndex`, built at most once.

        All stages that pass the same ``cell_size`` (or the default)
        share one index; the first call is a ``spatial_index_misses``
        count, every later call a ``spatial_index_hits`` count.
        """
        rec = get_recorder()
        key = float(cell_size) if cell_size is not None else self.default_cell_size()
        index = self._cell_indexes.get(key)
        if index is None:
            rec.counter(
                "spatial_index_misses", "per-step PeriodicCellIndex builds"
            ).inc()
            index = PeriodicCellIndex(self.particles.pos, self.box, key)
            self._cell_indexes[key] = index
        else:
            rec.counter(
                "spatial_index_hits", "per-step PeriodicCellIndex reuses"
            ).inc()
        return index

    # -- tag -> row map --------------------------------------------------------

    def tag_index(self) -> np.ndarray:
        """Inverse permutation ``map[tag] = row`` for the dense tags."""
        rec = get_recorder()
        if self._tag_index is None:
            rec.counter("tag_index_builds_total", "tag->row map builds").inc()
            tags = np.asarray(self.particles.tag)
            out = np.empty(int(tags.max()) + 1 if len(tags) else 0, dtype=np.intp)
            out[tags] = np.arange(len(tags), dtype=np.intp)
            self._tag_index = out
        else:
            rec.counter("tag_index_reuses_total", "tag->row map reuses").inc()
        return self._tag_index

    # -- decomposition owner map ----------------------------------------------

    def owners(self, decomp: CartesianDecomposition) -> np.ndarray:
        """Per-particle owner ranks under ``decomp``, built once per grid."""
        rec = get_recorder()
        key = tuple(decomp.dims)
        owners = self._owners.get(key)
        if owners is None:
            rec.counter("owner_map_builds_total", "owner-map builds").inc()
            owners = decomp.rank_of_position(np.asarray(self.particles.pos, dtype=float))
            self._owners[key] = owners
        else:
            rec.counter("owner_map_reuses_total", "owner-map reuses").inc()
        return owners

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SharedStepIndex n={len(self.particles.pos)} "
            f"cell_indexes={len(self._cell_indexes)} "
            f"tag_index={'yes' if self._tag_index is not None else 'no'} "
            f"owner_maps={len(self._owners)}>"
        )
