"""The CosmoTools in-situ algorithm interface.

Paper §3.1: "CosmoTools defines a pure abstract base class,
*InSituAlgorithm*, from which specific analysis tasks inherit.  Each
algorithm subclass must implement three virtual functions:
*SetParameters()* for configuration, *ShouldExecute()* to determine if
the analysis should be executed at a given time step, and *Execute()*
to perform the analysis."

The Python rendering keeps the same three-method contract
(:meth:`InSituAlgorithm.set_parameters`,
:meth:`InSituAlgorithm.should_execute`, :meth:`InSituAlgorithm.execute`)
plus a shared :class:`AnalysisContext` through which sequenced algorithms
pass intermediate products (halos → centers → SO masses), since the
paper notes "the three halo analysis steps have to be carried out in
sequence".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

__all__ = ["AnalysisContext", "InSituAlgorithm"]


@dataclass
class AnalysisContext:
    """Mutable blackboard shared by the algorithms of one analysis step.

    ``store`` holds named intermediate products (e.g. ``"fof"`` set by
    the halo finder, read by the center finder); ``timings`` collects
    per-algorithm (and per-rank, where applicable) wall-clock records
    that the workflow accounting consumes.  :meth:`shared_spatial`
    exposes the step's :class:`~repro.insitu.spatial.SharedStepIndex` —
    the memoized spatial structures (cell index, tag→row map, owner
    map) every stage shares instead of rebuilding.
    """

    step: int = 0
    a: float = 1.0
    store: dict[str, Any] = field(default_factory=dict)
    timings: dict[str, Any] = field(default_factory=dict)
    #: lazily-created per-step spatial cache (see :meth:`shared_spatial`)
    _spatial: Any = field(default=None, init=False, repr=False, compare=False)

    def shared_spatial(self, sim: Any) -> Any:
        """The step's shared spatial cache, created on first use.

        Keyed to this context's lifetime: a new analysis step gets a new
        context and therefore fresh structures over the current particle
        positions.  All algorithms of one step share the same instance,
        which is what bounds the per-step spatial-index builds to one
        (``spatial_index_misses`` telemetry).
        """
        if self._spatial is None:
            from .spatial import SharedStepIndex

            self._spatial = SharedStepIndex(sim.particles)
        return self._spatial

    def require(self, key: str) -> Any:
        """Fetch an upstream product, with a sequencing-aware error."""
        if key not in self.store:
            raise KeyError(
                f"analysis product {key!r} not available — check that the "
                "producing algorithm is registered before its consumers"
            )
        return self.store[key]


class InSituAlgorithm(ABC):
    """Abstract base class for in-situ analysis tasks.

    Subclasses are registered with the
    :class:`~repro.insitu.manager.InSituAnalysisManager`, which invokes
    them inside the simulation's main physics loop.  Implementations
    must be zero-copy-minded: they operate directly on the simulation's
    distributed particle arrays rather than reshaping them.
    """

    #: Unique registry name; subclasses must override.
    name: str = "abstract"

    def __init__(self, **parameters: Any) -> None:
        self.parameters: dict[str, Any] = {}
        if parameters:
            self.set_parameters(**parameters)

    def set_parameters(self, **parameters: Any) -> None:
        """Configure the algorithm (from the CosmoTools config file).

        The default implementation records parameters in
        ``self.parameters`` and assigns any matching attributes declared
        by the subclass; override for validation.
        """
        for key, value in parameters.items():
            self.parameters[key] = value
            if hasattr(self, key):
                setattr(self, key, value)

    @abstractmethod
    def should_execute(self, step: int, a: float) -> bool:
        """Whether to run at this time step / scale factor."""

    @abstractmethod
    def execute(self, sim: Any, context: AnalysisContext) -> None:
        """Perform the analysis against the live simulation state.

        ``sim`` is the running simulation (exposes ``particles``,
        ``config``, ``cosmo``); results and timings go into ``context``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} params={self.parameters}>"
