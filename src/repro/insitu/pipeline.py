"""Pipelined in-situ analysis: overlap analysis of step *t* with step *t+1*.

The plain :class:`~repro.insitu.manager.InSituAnalysisManager` runs the
analysis chain synchronously inside ``advance_step`` — the PM solver
stalls for the full FOF → centers → writers latency on every analysis
step, and the :class:`~repro.obs.timeline.WorkflowTimeline` overlap
fraction of the in-situ leg is structurally zero.  The paper's headline
win is the opposite: analysis executing *concurrently* with the
simulation.

:class:`AsyncInSituManager` wraps a manager and decouples the two:

1. When a step is due, the simulation's particle state is snapshotted
   into a recycled buffer (double-buffering: ``max_in_flight + 1``
   buffers total, copied with :meth:`~repro.sim.particles.Particles.copy_into`
   — no steady-state allocation).
2. The analysis chain runs against the snapshot on a dedicated worker
   thread while the solver advances the next step.  Heavy kernels
   release the GIL (NumPy/FFT) or fork SPMD rank processes
   (``HaloFinderAlgorithm(transport="process")``), so the overlap is
   real parallelism, not just interleaving.
3. Backpressure: at most ``max_in_flight`` analyses may be pending; a
   faster simulation blocks on the oldest future before snapshotting
   again, which bounds memory to the buffer pool.

Results are bit-identical to the serial manager: snapshots are taken
synchronously at the same points in simulation time, the chain runs in
step order on one worker, and the wrapped manager archives the exact
same per-step contexts.  The worker binds the submitting step's
:class:`~repro.obs.context.TraceContext`, so analysis spans parent under
the ``sim.step`` that produced the snapshot and land on their own
timeline lane — ``repro.obs timeline`` shows the overlap directly.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Iterator

from ..obs import get_recorder
from .algorithm import AnalysisContext, InSituAlgorithm
from .manager import InSituAnalysisManager

if TYPE_CHECKING:
    from ..sim.particles import Particles

__all__ = ["AsyncInSituManager", "PendingAnalysis", "SimSnapshot"]


class SimSnapshot:
    """Frozen stand-in for a live simulation at one analysis step.

    Duck-types the surface the in-situ algorithms touch (``particles``,
    ``config``, ``cosmo``, ``a``, ``step``) over a snapshot buffer, so
    the chain analyses a stable copy while the real simulation advances.
    """

    __slots__ = ("a", "config", "cosmo", "particles", "step")

    def __init__(self, sim: Any, particles: "Particles", step: int, a: float) -> None:
        self.particles = particles
        self.config = sim.config
        self.cosmo = sim.cosmo
        self.step = step
        self.a = a


class PendingAnalysis:
    """Handle returned by :meth:`AsyncInSituManager.execute`.

    The simulation driver treats the return value of the analysis hook
    opaquely (``getattr(context, "timings", None)``), so this handle can
    stand in for the eventual :class:`AnalysisContext`.  ``result()``
    blocks until the step's analysis finishes and returns that context.
    """

    __slots__ = ("future", "step")

    def __init__(self, step: int, future: "Future[AnalysisContext]") -> None:
        self.step = step
        self.future = future

    def result(self, timeout: float | None = None) -> AnalysisContext:
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future.done()


class AsyncInSituManager:
    """Drop-in analysis manager that pipelines the wrapped chain.

    Parameters
    ----------
    manager:
        The synchronous manager to wrap (owns algorithms and history).
        A fresh one is created when omitted.
    max_in_flight:
        Backpressure bound: how many step analyses may be pending before
        ``execute`` blocks on the oldest.  The buffer pool holds
        ``max_in_flight + 1`` particle snapshots.
    """

    def __init__(
        self,
        manager: InSituAnalysisManager | None = None,
        max_in_flight: int = 1,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.manager = manager if manager is not None else InSituAnalysisManager()
        self.max_in_flight = max_in_flight
        self._pending: deque[tuple[PendingAnalysis, Any]] = deque()
        self._buffers: list[Any] = []  # recycled snapshot Particles
        self._executor: ThreadPoolExecutor | None = None

    # -- manager facade -------------------------------------------------------

    @property
    def algorithms(self) -> list[InSituAlgorithm]:
        return self.manager.algorithms

    @property
    def history(self) -> dict[int, AnalysisContext]:
        return self.manager.history

    def register(self, algorithm: InSituAlgorithm) -> InSituAlgorithm:
        return self.manager.register(algorithm)

    def get(self, name: str) -> InSituAlgorithm:
        return self.manager.get(name)

    def latest(self) -> AnalysisContext | None:
        return self.manager.latest()

    def __iter__(self) -> Iterator[InSituAlgorithm]:
        return iter(self.manager)

    def __len__(self) -> int:
        return len(self.manager)

    # -- the simulation hook --------------------------------------------------

    def execute(self, sim: Any, step: int, a: float) -> Any:
        """Snapshot ``sim`` and schedule the analysis chain for ``step``.

        Returns a :class:`PendingAnalysis` when work was scheduled, or an
        empty (un-archived) :class:`AnalysisContext` when no algorithm is
        due — the same fast path as the synchronous manager.
        """
        due = any(alg.should_execute(step, a) for alg in self.manager.algorithms)
        if not due:
            return AnalysisContext(step=step, a=a)
        rec = get_recorder()
        # backpressure: bound pending work (and therefore live buffers)
        while len(self._pending) >= self.max_in_flight:
            rec.counter("insitu_pipeline_backpressure_waits_total").inc()
            self._collect_oldest()
        snapshot = sim.snapshot(into=self._buffers.pop() if self._buffers else None)
        proxy = SimSnapshot(sim, snapshot, step, a)
        # the analysis spans parent under the sim.step span that produced
        # the snapshot, on the worker's own timeline lane
        trace = rec.trace_context()

        def task() -> AnalysisContext:
            worker_rec = get_recorder()
            worker_rec.bind_thread(trace)
            context = self.manager.execute(proxy, step, a)
            # the per-step spatial cache holds views over the snapshot
            # buffer; drop it so the buffer can be recycled safely
            context._spatial = None
            return context

        pending = PendingAnalysis(step, self._ensure_executor().submit(task))
        self._pending.append((pending, snapshot))
        rec.counter("insitu_pipeline_submits_total").inc()
        rec.gauge("insitu_pipeline_in_flight").set(len(self._pending))
        return pending

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            # a single worker keeps the chain in step order (bit-identical
            # history, writers append in sequence)
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="insitu-pipeline"
            )
        return self._executor

    def _collect_oldest(self) -> AnalysisContext:
        pending, buffer = self._pending.popleft()
        try:
            return pending.future.result()
        finally:
            self._buffers.append(buffer)
            get_recorder().gauge("insitu_pipeline_in_flight").set(len(self._pending))

    # -- completion -----------------------------------------------------------

    def drain(self) -> dict[int, AnalysisContext]:
        """Wait for every pending analysis; re-raises the first failure.

        Call after the simulation loop finishes (the driver does).
        Returns the wrapped manager's history.
        """
        while self._pending:
            self._collect_oldest()
        return self.manager.history

    def close(self) -> None:
        """Drain and shut the worker down (idempotent)."""
        try:
            self.drain()
        finally:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            self._buffers.clear()

    def __enter__(self) -> "AsyncInSituManager":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
