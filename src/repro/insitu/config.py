"""Input deck and CosmoTools configuration parsing.

Paper §3: "The simulation 'input deck' contains all the simulation
parameters for the main run.  It also includes a trigger for CosmoTools
and a pointer to the CosmoTools configuration file.  That file has all
the details about the separate analysis tools, at which time steps to
run them, and which parameters to use for each."

Both files use a simple line-oriented format::

    # comment
    key = value                # input deck: flat
    [section]                  # cosmotools config: one section per tool
    enabled = yes
    at_steps = 30, 60, 100

Values are parsed into bool/int/float/str/lists thereof.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["parse_value", "parse_deck", "CosmoToolsConfig", "InputDeck"]

_BOOL_WORDS = {"yes": True, "true": True, "on": True, "no": False, "false": False, "off": False}


def parse_value(text: str) -> Any:
    """Parse one right-hand-side value: bool, int, float, list, or str."""
    text = text.strip()
    if "," in text:
        return [parse_value(tok) for tok in text.split(",") if tok.strip()]
    low = text.lower()
    if low in _BOOL_WORDS:
        return _BOOL_WORDS[low]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _iter_lines(text: str) -> Iterator[str]:
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            yield line


def parse_deck(text: str) -> dict[str, Any]:
    """Parse a flat ``key = value`` deck into a dict."""
    out: dict[str, Any] = {}
    for line in _iter_lines(text):
        if line.startswith("["):
            raise ValueError(f"unexpected section header in flat deck: {line!r}")
        if "=" not in line:
            raise ValueError(f"malformed deck line: {line!r}")
        key, value = line.split("=", 1)
        out[key.strip()] = parse_value(value)
    return out


@dataclass
class InputDeck:
    """The main simulation input deck.

    Recognized keys mirror :class:`~repro.sim.hacc.SimulationConfig`
    plus the CosmoTools trigger (``cosmotools`` / ``cosmotools_config``).
    """

    values: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str) -> "InputDeck":
        return cls(values=parse_deck(text))

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "InputDeck":
        with open(path, encoding="utf-8") as fh:
            return cls.from_text(fh.read())

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)

    @property
    def cosmotools_enabled(self) -> bool:
        return bool(self.values.get("cosmotools", False))

    @property
    def cosmotools_config_path(self) -> str | None:
        return self.values.get("cosmotools_config")

    def simulation_config(self) -> Any:
        """Build a :class:`~repro.sim.hacc.SimulationConfig` from the deck."""
        from ..sim.hacc import SimulationConfig

        keys = ("np_per_dim", "box", "z_initial", "z_final", "n_steps", "ng", "seed")
        kwargs = {k: self.values[k] for k in keys if k in self.values}
        return SimulationConfig(**kwargs)


@dataclass
class CosmoToolsConfig:
    """Sectioned CosmoTools configuration: one section per analysis tool."""

    sections: dict[str, dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str) -> "CosmoToolsConfig":
        sections: dict[str, dict[str, Any]] = {}
        current: dict[str, Any] | None = None
        for line in _iter_lines(text):
            if line.startswith("[") and line.endswith("]"):
                name = line[1:-1].strip()
                if not name:
                    raise ValueError("empty section name")
                if name in sections:
                    raise ValueError(f"duplicate section {name!r}")
                current = {}
                sections[name] = current
            elif "=" in line:
                if current is None:
                    raise ValueError(f"key outside any section: {line!r}")
                key, value = line.split("=", 1)
                current[key.strip()] = parse_value(value)
            else:
                raise ValueError(f"malformed config line: {line!r}")
        return cls(sections=sections)

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "CosmoToolsConfig":
        with open(path, encoding="utf-8") as fh:
            return cls.from_text(fh.read())

    def enabled_sections(self) -> list[str]:
        """Sections whose ``enabled`` flag is truthy (default: enabled)."""
        return [
            name
            for name, sec in self.sections.items()
            if sec.get("enabled", True)
        ]

    def section(self, name: str) -> dict[str, Any]:
        if name not in self.sections:
            raise KeyError(f"no section {name!r} in CosmoTools config")
        return dict(self.sections[name])

    def build_manager(self) -> Any:
        """Instantiate an :class:`InSituAnalysisManager` from this config.

        Each enabled section name must match a registered concrete
        algorithm in :mod:`repro.insitu.algorithms`; the section's keys
        (minus ``enabled``) become the algorithm's parameters.
        """
        from .algorithms import ALGORITHM_REGISTRY
        from .manager import InSituAnalysisManager

        manager = InSituAnalysisManager()
        for name in self.enabled_sections():
            if name not in ALGORITHM_REGISTRY:
                raise KeyError(
                    f"unknown analysis tool {name!r}; known: {sorted(ALGORITHM_REGISTRY)}"
                )
            params = {k: v for k, v in self.sections[name].items() if k != "enabled"}
            manager.register(ALGORITHM_REGISTRY[name](**params))
        return manager
