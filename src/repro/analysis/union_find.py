"""Disjoint-set (union-find) forests used by the FOF halo finders.

Friends-of-friends halo identification is connected components of the
proximity graph (paper §3.3.1); the component bookkeeping here is a
classic array-backed union-by-size forest with path halving, plus bulk
helpers for labeling all elements at once.

Two variants share the same core:

:class:`DisjointSet`
    Fixed universe ``0..n-1``, used by the in-memory finders where the
    particle count is known up front.

:class:`GrowableDisjointSet`
    The universe grows as elements arrive and can be *compacted* down to
    a chosen set of surviving roots — the shape the one-pass streaming
    halo finder needs, where group slots are created per chunk and
    retired groups must release their storage so the forest stays
    O(active groups) rather than O(all groups ever seen).
"""

from __future__ import annotations

import numpy as np

__all__ = ["DisjointSet", "GrowableDisjointSet"]


class DisjointSet:
    """Union-find over the integers ``0..n-1``.

    Amortized near-constant ``find``/``union`` via union by size and
    path halving.  :meth:`labels` canonicalizes every element in one
    vectorized pass, which is what the FOF finders call once at the end.
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.intp)
        self.size = np.ones(n, dtype=np.intp)
        self.n_components = n

    def __len__(self) -> int:
        return len(self.parent)

    def find(self, x: int) -> int:
        """Root of ``x``'s component (with path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> int:
        """Merge the components of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.n_components -= 1
        return ra

    def union_pairs(self, a: np.ndarray, b: np.ndarray) -> None:
        """Union many ``(a[i], b[i])`` pairs."""
        for x, y in zip(np.asarray(a, dtype=np.intp), np.asarray(b, dtype=np.intp)):
            self.union(int(x), int(y))

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)

    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Canonical roots for an array of elements (vectorized).

        Pointer-jumps the queried elements to their roots without
        touching the rest of the forest, then writes the roots back
        (full path compression for the queried set).
        """
        xs = np.asarray(xs, dtype=np.intp)
        if xs.size == 0:
            return xs.copy()
        parent = self.parent
        roots = parent[xs]
        while True:
            nxt = parent[roots]
            if np.array_equal(nxt, roots):
                break
            roots = nxt
        parent[xs] = roots
        return roots

    def labels(self) -> np.ndarray:
        """Canonical root label for every element (vectorized full pass)."""
        parent = self.parent
        # Pointer-jump until fixed point: O(log n) passes, each vectorized.
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        self.parent = parent
        return parent.copy()

    def component_sizes(self) -> tuple[np.ndarray, np.ndarray]:
        """``(roots, sizes)`` of all components."""
        labels = self.labels()
        return np.unique(labels, return_counts=True)


class GrowableDisjointSet(DisjointSet):
    """Union-find whose element universe grows (and compacts) over time.

    Shares the union-by-size + path-halving core with
    :class:`DisjointSet`; the parent/size arrays live in amortized-growth
    buffers so :meth:`add` is O(1) amortized, and :meth:`compact`
    renumbers a surviving subset of roots down to dense slots
    ``0..k-1`` so long streams never accumulate dead group storage.
    """

    def __init__(self, capacity: int = 16):
        cap = max(int(capacity), 1)
        self._parent = np.empty(cap, dtype=np.intp)
        self._size = np.empty(cap, dtype=np.intp)
        self._n = 0
        self.n_components = 0

    # the base-class core reads/writes ``parent``/``size``; expose the
    # live prefix of the growth buffers under those names
    @property
    def parent(self) -> np.ndarray:  # type: ignore[override]
        return self._parent[: self._n]

    @parent.setter
    def parent(self, value: np.ndarray) -> None:
        self._parent[: self._n] = value

    @property
    def size(self) -> np.ndarray:  # type: ignore[override]
        return self._size[: self._n]

    def __len__(self) -> int:
        return self._n

    def add(self, count: int = 1) -> int:
        """Append ``count`` singleton elements; returns the first new id."""
        if count < 0:
            raise ValueError("count must be non-negative")
        start = self._n
        end = start + count
        if end > len(self._parent):
            cap = max(2 * len(self._parent), end)
            self._parent = np.concatenate(
                [self._parent[:start], np.empty(cap - start, dtype=np.intp)]
            )
            self._size = np.concatenate(
                [self._size[:start], np.empty(cap - start, dtype=np.intp)]
            )
        self._parent[start:end] = np.arange(start, end, dtype=np.intp)
        self._size[start:end] = 1
        self._n = end
        self.n_components += count
        return start

    def roots(self) -> np.ndarray:
        """Sorted array of all current component roots."""
        return np.unique(self.labels())

    def compact(self, keep_roots: np.ndarray) -> np.ndarray:
        """Shrink the universe to ``keep_roots``, renumbered ``0..k-1``.

        Every kept root becomes a fresh singleton whose new id is its
        rank in the sorted unique root list; all other storage is
        dropped.  Returns that sorted root array so callers can remap
        old ids with ``np.searchsorted(old_roots, old_ids)``.
        """
        keep = np.unique(np.asarray(keep_roots, dtype=np.intp))
        if keep.size and (keep[0] < 0 or keep[-1] >= self._n):
            raise IndexError("keep_roots out of range")
        k = len(keep)
        self._parent[:k] = np.arange(k, dtype=np.intp)
        # sizes restart at 1: cross-compaction balance is irrelevant for
        # correctness and the forest stays shallow either way
        self._size[:k] = 1
        self._n = k
        self.n_components = k
        return keep
