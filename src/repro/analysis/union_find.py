"""Disjoint-set (union-find) forest used by the FOF halo finders.

Friends-of-friends halo identification is connected components of the
proximity graph (paper §3.3.1); the component bookkeeping here is a
classic union-by-size forest with path halving, plus bulk helpers for
labeling all elements at once.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DisjointSet"]


class DisjointSet:
    """Union-find over the integers ``0..n-1``.

    Amortized near-constant ``find``/``union`` via union by size and
    path halving.  :meth:`labels` canonicalizes every element in one
    vectorized pass, which is what the FOF finders call once at the end.
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.intp)
        self.size = np.ones(n, dtype=np.intp)
        self.n_components = n

    def find(self, x: int) -> int:
        """Root of ``x``'s component (with path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> int:
        """Merge the components of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.n_components -= 1
        return ra

    def union_pairs(self, a: np.ndarray, b: np.ndarray) -> None:
        """Union many ``(a[i], b[i])`` pairs."""
        for x, y in zip(np.asarray(a, dtype=np.intp), np.asarray(b, dtype=np.intp)):
            self.union(int(x), int(y))

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)

    def labels(self) -> np.ndarray:
        """Canonical root label for every element (vectorized full pass)."""
        parent = self.parent
        # Pointer-jump until fixed point: O(log n) passes, each vectorized.
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        self.parent = parent
        return parent.copy()

    def component_sizes(self) -> tuple[np.ndarray, np.ndarray]:
        """``(roots, sizes)`` of all components."""
        labels = self.labels()
        return np.unique(labels, return_counts=True)
