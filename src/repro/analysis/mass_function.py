"""Halo mass function and the in-situ/off-load split of Figure 3.

Figure 3 is a log-log histogram of halo counts versus halo mass at
z = 0, with the halos below the 300,000-particle threshold marked as
fully analyzed in-situ (red) and those above off-loaded to Moonlight
(blue).  The Q Continuum run found 167,686,789 halos of which 84,719
were off-loaded — a tiny fraction by count, dominating by cost.

``mass_function`` bins a halo catalog; ``split_by_threshold`` applies
the workflow's off-load rule; ``scale_counts`` self-similarly rescales
counts to larger simulation volumes for the paper-scale projection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MassFunction",
    "log_bin_edges",
    "mass_function",
    "split_by_threshold",
    "scale_counts",
]


def log_bin_edges(lo: float, hi: float, n_bins: int) -> np.ndarray:
    """Log-spaced bin edges with the boundary edges pinned exactly.

    ``10**log10(x)`` can land one ulp off, silently dropping the
    extremal halos from the histogram; pinning ``edges[0]``/``edges[-1]``
    makes the edge array a pure function of ``(lo, hi, n_bins)`` — the
    property the streaming accumulator relies on to fold per-chunk
    histograms that are bit-identical to the one-shot result.
    """
    if not 0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    edges = np.logspace(np.log10(lo), np.log10(hi), n_bins + 1)
    edges[0] = lo
    edges[-1] = hi
    return edges


@dataclass(frozen=True)
class MassFunction:
    """Binned halo counts vs mass (log-spaced bins)."""

    bin_edges: np.ndarray  # (nbins+1,) in particle-count units
    counts: np.ndarray  # (nbins,)

    @property
    def bin_centers(self) -> np.ndarray:
        """Geometric bin centers."""
        return np.sqrt(self.bin_edges[:-1] * self.bin_edges[1:])

    @property
    def total(self) -> int:
        return int(self.counts.sum())


def mass_function(
    halo_counts: np.ndarray,
    n_bins: int = 32,
    lo: float | None = None,
    hi: float | None = None,
) -> MassFunction:
    """Histogram halo sizes (particle counts) in log-spaced bins."""
    halo_counts = np.asarray(halo_counts, dtype=float)
    if halo_counts.size == 0:
        edges = np.logspace(0, 1, n_bins + 1)
        return MassFunction(bin_edges=edges, counts=np.zeros(n_bins, dtype=np.int64))
    if lo is None:
        lo = float(halo_counts.min())
    if hi is None:
        hi = float(halo_counts.max()) * 1.0001
    edges = log_bin_edges(lo, hi, n_bins)
    counts, _ = np.histogram(halo_counts, bins=edges)
    return MassFunction(bin_edges=edges, counts=counts.astype(np.int64))


def split_by_threshold(
    halo_counts: np.ndarray, threshold: int
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean masks ``(in_situ, off_loaded)`` for the workflow split.

    Halos with ``count <= threshold`` are analyzed in-situ; larger halos
    are off-loaded (paper: threshold 300,000 particles).
    """
    halo_counts = np.asarray(halo_counts)
    in_situ = halo_counts <= threshold
    return in_situ, ~in_situ


def scale_counts(mf: MassFunction, volume_factor: float) -> MassFunction:
    """Self-similar volume scaling of a mass function.

    At fixed mass resolution, halo abundance per mass bin scales with
    simulation volume (the paper scales its 1024³ test down from the
    8192³ Q Continuum run "by exactly a factor of 512").
    """
    if volume_factor <= 0:
        raise ValueError("volume_factor must be positive")
    return MassFunction(
        bin_edges=mf.bin_edges.copy(),
        counts=np.round(mf.counts * volume_factor).astype(np.int64),
    )
