"""Friends-of-friends (FOF) halo identification.

Three implementations, cross-validated by the test suite:

``fof_kdtree``
    The paper's serial algorithm (§3.3.1): build a balanced k-d tree and
    recursively merge, using subtree bounding boxes to merge or exclude
    whole subtrees at once.  The reference implementation.

``fof_grid``
    A vectorized cell-list finder (link cells of edge = linking length,
    examine the 13 forward neighbor offsets, connected components over
    the emitted short edges).  Supports periodic boxes; the fast path
    used on larger particle sets.

``parallel_fof``
    The distributed finder: particles live on ranks under a
    :class:`~repro.parallel.decomposition.CartesianDecomposition` with
    overload (ghost) regions wide enough to contain any halo, each rank
    runs a local finder, and halos found by multiple ranks are assigned
    to the unique owner of their minimum-tag particle (paper: "the
    parallel halo finder identifies halos found in whole or in part by
    multiple processes, and assigns them to a unique processor").

All finders discard halos below ``min_count`` particles ("to avoid
spurious identifications, halos with fewer than a specified number of
particles are discarded"); 40 was the production threshold quoted in the
paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from ..parallel.communicator import Communicator
from ..parallel.decomposition import CartesianDecomposition
from ..parallel.overload import overload_destinations
from .kdtree import KDTree, box_gap_sq, box_span_sq
from .union_find import DisjointSet

__all__ = ["FOFResult", "fof_kdtree", "fof_grid", "parallel_fof", "halo_groups", "DEFAULT_MIN_COUNT"]

#: Production minimum halo size (paper intro: "billions of halos with 40
#: particles were found").
DEFAULT_MIN_COUNT = 40


@dataclass
class FOFResult:
    """Output of a FOF run.

    ``labels`` assigns every input particle a halo label; particles in
    halos below ``min_count`` get label ``-1``.  Labels are the *minimum
    particle tag* in the halo when tags were supplied, otherwise the
    minimum particle index — a globally stable identifier that every
    finder (serial, grid, parallel) agrees on, making results directly
    comparable.
    """

    labels: np.ndarray
    min_count: int
    halo_tags: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    halo_counts: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def n_halos(self) -> int:
        return len(self.halo_tags)

    def members(self, halo_tag: int) -> np.ndarray:
        """Indices of the particles in one halo."""
        return np.flatnonzero(self.labels == halo_tag)


def _finalize(
    roots: np.ndarray, tags: np.ndarray | None, min_count: int
) -> FOFResult:
    """Convert union-find roots into stable tag-based halo labels."""
    n = len(roots)
    ids = np.arange(n, dtype=np.int64) if tags is None else np.asarray(tags, dtype=np.int64)
    # label of each component = min id within it
    order = np.argsort(roots, kind="stable")
    sroots = roots[order]
    sids = ids[order]
    boundaries = np.empty(n, dtype=bool)
    if n:
        boundaries[0] = True
        boundaries[1:] = sroots[1:] != sroots[:-1]
    seg = np.cumsum(boundaries) - 1 if n else np.empty(0, dtype=np.intp)
    min_ids = np.minimum.reduceat(sids, np.flatnonzero(boundaries)) if n else np.empty(0, np.int64)
    counts = np.diff(np.append(np.flatnonzero(boundaries), n)) if n else np.empty(0, np.intp)

    labels = np.empty(n, dtype=np.int64)
    labels[order] = min_ids[seg]
    keep = counts >= min_count
    kept_tags = min_ids[keep]
    kept_counts = counts[keep]
    discard = ~np.isin(labels, kept_tags)
    labels[discard] = -1
    srt = np.argsort(kept_tags)
    return FOFResult(
        labels=labels,
        min_count=min_count,
        halo_tags=kept_tags[srt],
        halo_counts=kept_counts[srt].astype(np.int64),
    )


# ---------------------------------------------------------------------------
# serial k-d tree FOF (paper-faithful reference)
# ---------------------------------------------------------------------------


def fof_kdtree(
    pos: np.ndarray,
    linking_length: float,
    tags: np.ndarray | None = None,
    min_count: int = DEFAULT_MIN_COUNT,
    leaf_size: int = 8,
) -> FOFResult:
    """Serial FOF via recursive traversal of a balanced k-d tree.

    Non-periodic (HACC applies it per rank to overloaded local volumes;
    periodicity is handled by the ghost images at the parallel layer).
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    n = len(pos)
    if n == 0:
        return _finalize(np.empty(0, dtype=np.intp), tags, min_count)
    tree = KDTree(pos, leaf_size=leaf_size)
    dsu = DisjointSet(n)
    ll2 = linking_length * linking_length

    def process(node_id: int) -> None:
        node = tree.nodes[node_id]
        if node.is_leaf:
            idx = tree.index[node.start : node.end]
            if len(idx) > 1:
                d2 = np.sum((pos[idx][:, None, :] - pos[idx][None, :, :]) ** 2, axis=-1)
                ii, jj = np.nonzero(np.triu(d2 <= ll2, k=1))
                for a, b in zip(idx[ii], idx[jj]):
                    dsu.union(int(a), int(b))
            return
        process(node.left)
        process(node.right)
        merge(node.left, node.right)

    def merge(na: int, nb: int) -> None:
        a = tree.nodes[na]
        b = tree.nodes[nb]
        if box_gap_sq(a.lo, a.hi, b.lo, b.hi) > ll2:
            return  # whole subtrees excluded at once
        if box_span_sq(a.lo, a.hi, b.lo, b.hi) <= ll2:
            # every cross pair is a link: merge both subtrees wholesale
            ia = tree.index[a.start : a.end]
            ib = tree.index[b.start : b.end]
            anchor = int(ia[0])
            for x in ia[1:]:
                dsu.union(anchor, int(x))
            for x in ib:
                dsu.union(anchor, int(x))
            return
        if a.is_leaf and b.is_leaf:
            ia = tree.index[a.start : a.end]
            ib = tree.index[b.start : b.end]
            d2 = np.sum((pos[ia][:, None, :] - pos[ib][None, :, :]) ** 2, axis=-1)
            ii, jj = np.nonzero(d2 <= ll2)
            for x, y in zip(ia[ii], ib[jj]):
                dsu.union(int(x), int(y))
            return
        # recurse into the children of the larger (or non-leaf) node
        if a.is_leaf or (not b.is_leaf and b.count > a.count):
            merge(na, b.left)
            merge(na, b.right)
        else:
            merge(a.left, nb)
            merge(a.right, nb)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        process(0)
    finally:
        sys.setrecursionlimit(old_limit)
    return _finalize(dsu.labels(), tags, min_count)


# ---------------------------------------------------------------------------
# vectorized cell-list FOF
# ---------------------------------------------------------------------------

_FORWARD_OFFSETS = [
    (0, 0, 1),
    (0, 1, -1),
    (0, 1, 0),
    (0, 1, 1),
    (1, -1, -1),
    (1, -1, 0),
    (1, -1, 1),
    (1, 0, -1),
    (1, 0, 0),
    (1, 0, 1),
    (1, 1, -1),
    (1, 1, 0),
    (1, 1, 1),
]


def _cross_block_pairs(
    order: np.ndarray,
    sa: np.ndarray,
    sb: np.ndarray,
    ca: np.ndarray,
    cb: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All cross pairs between variable-size index blocks — no Python loop.

    Block ``k`` contributes every ``(a, b)`` with ``a`` drawn from
    ``order[sa[k] : sa[k] + ca[k]]`` and ``b`` from
    ``order[sb[k] : sb[k] + cb[k]]``.  The flat pair index within each
    block is decomposed as ``a_local * cb + b_local`` (row-major), which
    reproduces the historical ``np.repeat``/``np.tile`` emission order
    exactly.  Returns ``(ai, bi, a_local, b_local)``; the local
    coordinates let the within-cell caller keep only the upper triangle
    (``a_local < b_local``).
    """
    blk = (ca * cb).astype(np.intp)
    total = int(blk.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty, empty, empty
    off = np.concatenate([[0], np.cumsum(blk)[:-1]])
    r = np.arange(total, dtype=np.intp) - np.repeat(off, blk)
    cb_rep = np.repeat(cb.astype(np.intp), blk)
    a_local = r // cb_rep
    b_local = r - a_local * cb_rep
    ai = order[np.repeat(sa.astype(np.intp), blk) + a_local]
    bi = order[np.repeat(sb.astype(np.intp), blk) + b_local]
    return ai, bi, a_local, b_local


def fof_grid(
    pos: np.ndarray,
    linking_length: float,
    tags: np.ndarray | None = None,
    min_count: int = DEFAULT_MIN_COUNT,
    box: float | None = None,
) -> FOFResult:
    """Vectorized cell-list FOF; periodic when ``box`` is given.

    Bins particles into cells of edge = linking length, emits candidate
    edges between each cell and its 13 forward neighbors (plus within-cell
    pairs), filters by true distance, and labels connected components.
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    n = len(pos)
    if n == 0:
        return _finalize(np.empty(0, dtype=np.intp), tags, min_count)
    ll = float(linking_length)
    ll2 = ll * ll

    if box is not None:
        pos = np.mod(pos, box)
        ncell = max(int(np.floor(box / ll)), 1)
        cell_edge = box / ncell
        periodic = ncell >= 3  # with <3 cells the offset trick double-counts
    else:
        lo = pos.min(axis=0)
        span = np.maximum(pos.max(axis=0) - lo, 1e-12)
        ncell_axis = np.maximum((span / ll).astype(int) + 1, 1)
        periodic = False

    if box is not None and not periodic:
        # tiny periodic boxes: fall back to brute-force pair search
        return _fof_brute_periodic(pos, ll, box, tags, min_count)

    if box is not None:
        coords = np.minimum((pos / cell_edge).astype(np.intp), ncell - 1)
        dims = np.asarray([ncell, ncell, ncell], dtype=np.intp)
    else:
        coords = ((pos - lo) / ll).astype(np.intp)
        dims = np.asarray(ncell_axis, dtype=np.intp)
        coords = np.minimum(coords, dims - 1)

    cell_ids = (coords[:, 0] * dims[1] + coords[:, 1]) * dims[2] + coords[:, 2]
    order = np.argsort(cell_ids, kind="stable")
    sorted_cells = cell_ids[order]
    starts = np.flatnonzero(
        np.concatenate([[True], sorted_cells[1:] != sorted_cells[:-1]])
    )
    occupied = sorted_cells[starts]
    counts = np.diff(np.append(starts, n))
    occ_coords = np.empty((len(occupied), 3), dtype=np.intp)
    occ_coords[:, 0] = occupied // (dims[1] * dims[2])
    rem = occupied % (dims[1] * dims[2])
    occ_coords[:, 1] = rem // dims[2]
    occ_coords[:, 2] = rem % dims[2]

    edges_i: list[np.ndarray] = []
    edges_j: list[np.ndarray] = []

    def emit_pairs(ai: np.ndarray, bi: np.ndarray) -> None:
        """Filter candidate particle pairs by true distance, record edges."""
        d = pos[ai] - pos[bi]
        if box is not None:
            d -= box * np.round(d / box)
        keep = np.einsum("ij,ij->i", d, d) <= ll2
        if keep.any():
            edges_i.append(ai[keep])
            edges_j.append(bi[keep])

    # within-cell pairs: full per-cell cross products in one shot, upper
    # triangle kept (a_local < b_local == np.triu_indices(c, k=1) order)
    multi = counts > 1
    if multi.any():
        ai, bi, a_loc, b_loc = _cross_block_pairs(
            order, starts[multi], starts[multi], counts[multi], counts[multi]
        )
        upper = a_loc < b_loc
        if upper.any():
            emit_pairs(ai[upper], bi[upper])

    # forward neighbor cells
    for off in _FORWARD_OFFSETS:
        nb_coords = occ_coords + np.asarray(off, dtype=np.intp)
        if box is not None:
            nb_coords %= dims
            valid = np.ones(len(occupied), dtype=bool)
        else:
            valid = np.all((nb_coords >= 0) & (nb_coords < dims), axis=1)
        if not valid.any():
            continue
        nb_ids = (nb_coords[:, 0] * dims[1] + nb_coords[:, 1]) * dims[2] + nb_coords[:, 2]
        # locate neighbor cells among the occupied list
        pos_in_occ = np.searchsorted(occupied, nb_ids)
        pos_in_occ = np.minimum(pos_in_occ, len(occupied) - 1)
        match = valid & (occupied[pos_in_occ] == nb_ids)
        src_cells = np.flatnonzero(match)
        if not src_cells.size:
            continue
        dst_cells = pos_in_occ[match]
        # all cross pairs over (src cell, dst cell) blocks, fully vectorized
        ai, bi, _, _ = _cross_block_pairs(
            order,
            starts[src_cells],
            starts[dst_cells],
            counts[src_cells],
            counts[dst_cells],
        )
        if ai.size:
            emit_pairs(ai, bi)

    if edges_i:
        row = np.concatenate(edges_i)
        col = np.concatenate(edges_j)
        graph = coo_matrix(
            (np.ones(len(row), dtype=np.int8), (row, col)), shape=(n, n)
        )
        _, roots = connected_components(graph, directed=False)
    else:
        roots = np.arange(n, dtype=np.intp)
    return _finalize(np.asarray(roots, dtype=np.intp), tags, min_count)


def _fof_brute_periodic(
    pos: np.ndarray, ll: float, box: float, tags: np.ndarray | None, min_count: int
) -> FOFResult:
    """O(n²) periodic FOF for tiny boxes (testing fallback)."""
    n = len(pos)
    d = pos[:, None, :] - pos[None, :, :]
    d -= box * np.round(d / box)
    adj = np.sum(d * d, axis=-1) <= ll * ll
    graph = coo_matrix(adj)
    _, roots = connected_components(graph, directed=False)
    return _finalize(np.asarray(roots, dtype=np.intp), tags, min_count)


def halo_groups(result: FOFResult) -> dict[int, np.ndarray]:
    """Mapping halo tag -> member particle indices (halos only, no fluff)."""
    out: dict[int, np.ndarray] = {}
    order = np.argsort(result.labels, kind="stable")
    sl = result.labels[order]
    starts = np.flatnonzero(np.concatenate([[True], sl[1:] != sl[:-1]])) if len(sl) else []
    bounds = [*starts, len(sl)]
    for s, e in zip(bounds[:-1], bounds[1:]):
        tag = sl[s]
        if tag >= 0:
            out[int(tag)] = order[s:e]
    return out


# ---------------------------------------------------------------------------
# distributed FOF
# ---------------------------------------------------------------------------


def parallel_fof(
    comm: Communicator,
    decomp: CartesianDecomposition,
    pos: np.ndarray,
    tags: np.ndarray,
    linking_length: float,
    overload_width: float,
    min_count: int = DEFAULT_MIN_COUNT,
    local_finder: str = "grid",
) -> dict[int, np.ndarray]:
    """Distributed FOF over rank-local particles with overload regions.

    Parameters
    ----------
    comm, decomp:
        SPMD communicator and the domain decomposition (one sub-box per
        rank; ``pos`` must already be the rank's *owned* particles).
    pos, tags:
        This rank's owned particle positions (box coordinates) and
        globally unique tags.
    linking_length, overload_width:
        FOF linking length and ghost-region width.  Correctness requires
        ``overload_width`` to be at least the largest halo's spatial
        extent (the paper's stated assumption).
    local_finder:
        ``"grid"`` (fast) or ``"kdtree"`` (paper-faithful reference).

    Returns
    -------
    dict mapping halo tag (min particle tag) -> member particle tags,
    for the halos *owned* by this rank.  Each halo appears on exactly one
    rank, with its complete membership.
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    tags = np.asarray(tags, dtype=np.int64)
    n_owned = len(pos)

    # 1. ghost exchange: send boundary particles to neighbors
    plan = overload_destinations(decomp, comm.rank, pos, overload_width)
    send: list[dict[str, np.ndarray]] = []
    for dest in range(comm.size):
        if dest in plan:
            idx, shift = plan[dest]
            send.append({"pos": pos[idx] + shift, "tag": tags[idx]})
        else:
            send.append({"pos": pos[:0], "tag": tags[:0]})
    received = comm.alltoall(send)

    ghost_pos = [chunk["pos"] for src, chunk in enumerate(received) if src != comm.rank]
    ghost_tag = [chunk["tag"] for src, chunk in enumerate(received) if src != comm.rank]
    all_pos = np.concatenate([pos, *ghost_pos]) if ghost_pos else pos
    all_tag = np.concatenate([tags, *ghost_tag]) if ghost_tag else tags

    # NOTE: a particle may legitimately arrive as several periodic images
    # (e.g. on a 2-wide process grid the same source rank is both the +x
    # and -x neighbor).  All images are kept: distinct images of the same
    # halo form components sharing the same minimum tag, and membership
    # is deduplicated by tag below.

    # 2. local FOF on owned + ghost particles (non-periodic: ghosts carry
    #    the periodic images already)
    if local_finder == "kdtree":
        local = fof_kdtree(all_pos, linking_length, tags=all_tag, min_count=min_count)
    else:
        local = fof_grid(all_pos, linking_length, tags=all_tag, min_count=min_count)

    # 3. ownership: this rank owns a halo iff the halo's min-tag particle
    #    is one of the rank's owned (non-ghost) particles.
    owned_tags = set(tags.tolist())
    result: dict[int, np.ndarray] = {}
    for halo_tag in local.halo_tags:
        if int(halo_tag) in owned_tags:
            members = np.unique(all_tag[local.labels == halo_tag])
            if len(members) >= min_count:  # re-check after image dedup
                result[int(halo_tag)] = members
    return result
