"""Balanced k-d tree over particle positions.

The paper's serial FOF "constructs and then recursively traverses a
balanced k-d tree ... At higher levels of the tree, bounding boxes which
define the space covered by the subtree rooted at a node are used to
reduce the number of particle-to-particle distance comparisons, allowing
whole subtrees to be merged into a halo or excluded from a halo at once"
(§3.3.1).

The tree here is array-based (no per-node Python objects beyond slices):
nodes are stored in preorder, each carrying its bounding box and the
half-open range of the permuted point index it covers.  Leaves hold up to
``leaf_size`` points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KDTree", "KDNode", "box_gap_sq", "box_span_sq"]


@dataclass(frozen=True)
class KDNode:
    """One node: bounding box + covered slice of the permuted index."""

    start: int
    end: int  # half-open
    lo: np.ndarray  # (3,) bounding box min
    hi: np.ndarray  # (3,) bounding box max
    left: int  # child node id, -1 for leaf
    right: int

    @property
    def is_leaf(self) -> bool:
        return self.left < 0

    @property
    def count(self) -> int:
        return self.end - self.start


class KDTree:
    """Balanced k-d tree (median split on the widest axis).

    Parameters
    ----------
    points:
        ``(n, d)`` coordinates.
    leaf_size:
        Maximum points per leaf.

    Attributes
    ----------
    index:
        Permutation of ``0..n-1``; ``points[index[node.start:node.end]]``
        are the points covered by a node.
    nodes:
        List of :class:`KDNode` in construction order; ``nodes[0]`` is the
        root.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = 16):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.points = points
        self.leaf_size = leaf_size
        n = len(points)
        self.index = np.arange(n, dtype=np.intp)
        self.nodes: list[KDNode] = []
        if n:
            self._build(0, n)

    def _build(self, start: int, end: int) -> int:
        """Build the subtree covering ``index[start:end]``; returns node id."""
        pts = self.points[self.index[start:end]]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        node_id = len(self.nodes)
        self.nodes.append(None)  # type: ignore[arg-type]  # placeholder

        if end - start <= self.leaf_size:
            self.nodes[node_id] = KDNode(start, end, lo, hi, -1, -1)
            return node_id

        axis = int(np.argmax(hi - lo))
        mid = (start + end) // 2
        # partial sort: median split keeps the tree balanced
        seg = self.index[start:end]
        order = np.argpartition(self.points[seg, axis], mid - start)
        self.index[start:end] = seg[order]

        left = self._build(start, mid)
        right = self._build(mid, end)
        self.nodes[node_id] = KDNode(start, end, lo, hi, left, right)
        return node_id

    # -- queries --------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def depth(self) -> int:
        """Maximum node depth (root = 0)."""
        if not self.nodes:
            return -1

        def rec(i: int) -> int:
            node = self.nodes[i]
            if node.is_leaf:
                return 0
            return 1 + max(rec(node.left), rec(node.right))

        return rec(0)

    def leaf_points(self, node_id: int) -> np.ndarray:
        """Original point indices covered by ``node_id``."""
        node = self.nodes[node_id]
        return self.index[node.start : node.end]

    def query_radius(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of ``center``."""
        if not self.nodes:
            return np.empty(0, dtype=np.intp)
        center = np.asarray(center, dtype=float)
        out: list[np.ndarray] = []
        stack = [0]
        r2 = radius * radius
        while stack:
            node = self.nodes[stack.pop()]
            if _box_min_dist_sq(center, node.lo, node.hi) > r2:
                continue
            if _box_max_dist_sq(center, node.lo, node.hi) <= r2:
                out.append(self.index[node.start : node.end])
                continue
            if node.is_leaf:
                idx = self.index[node.start : node.end]
                d2 = np.sum((self.points[idx] - center) ** 2, axis=1)
                out.append(idx[d2 <= r2])
            else:
                stack.append(node.left)
                stack.append(node.right)
        if not out:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(out)


    def query_knn(self, center: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest points to ``center``: ``(indices, distances)``.

        Best-first branch-and-bound traversal; distances ascending.
        """
        import heapq

        if k < 1:
            raise ValueError("k must be >= 1")
        if not self.nodes:
            return np.empty(0, dtype=np.intp), np.empty(0)
        center = np.asarray(center, dtype=float)
        k = min(k, len(self.points))

        # max-heap of the current k best (negated distance)
        best: list[tuple[float, int]] = []
        # min-heap of nodes by optimistic distance
        frontier: list[tuple[float, int]] = [(0.0, 0)]
        while frontier:
            gap, node_id = heapq.heappop(frontier)
            if len(best) == k and gap > -best[0][0]:
                break
            node = self.nodes[node_id]
            if node.is_leaf:
                idx = self.index[node.start : node.end]
                d2 = np.sum((self.points[idx] - center) ** 2, axis=1)
                for d, i in zip(np.sqrt(d2), idx):
                    if len(best) < k:
                        heapq.heappush(best, (-d, int(i)))
                    elif d < -best[0][0]:
                        heapq.heapreplace(best, (-d, int(i)))
            else:
                for child in (node.left, node.right):
                    cn = self.nodes[child]
                    cgap = np.sqrt(_box_min_dist_sq(center, cn.lo, cn.hi))
                    if len(best) < k or cgap < -best[0][0]:
                        heapq.heappush(frontier, (cgap, child))
        best.sort(key=lambda t: -t[0])
        dists = np.asarray([-d for d, _ in best])
        idxs = np.asarray([i for _, i in best], dtype=np.intp)
        return idxs, dists


def _box_min_dist_sq(p: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Squared distance from point ``p`` to the nearest point of a box."""
    d = np.maximum(np.maximum(lo - p, 0.0), p - hi)
    return float(np.dot(d, d))


def _box_max_dist_sq(p: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Squared distance from point ``p`` to the farthest point of a box."""
    d = np.maximum(np.abs(p - lo), np.abs(p - hi))
    return float(np.dot(d, d))


def box_gap_sq(lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray) -> float:
    """Squared minimum distance between two axis-aligned boxes."""
    d = np.maximum(np.maximum(lo_a - hi_b, 0.0), lo_b - hi_a)
    return float(np.dot(d, d))


def box_span_sq(lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray) -> float:
    """Squared maximum distance between two axis-aligned boxes."""
    d = np.maximum(np.abs(hi_a - lo_b), np.abs(hi_b - lo_a))
    return float(np.dot(d, d))
