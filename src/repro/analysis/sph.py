"""SPH local density estimation for the subhalo finder.

Paper §3.3.1: "The local density for each particle in the parent FOF
halo is estimated by finding a specified number of nearest neighbor
particles, and computing a density based on the total mass of these
particles and the distance to the furthest of these", evaluated with an
SPH (smoothed particle hydrodynamics) kernel over a Barnes–Hut tree.

Two estimators are provided and cross-validated in the tests:

``sph_density``
    The full cubic-spline-kernel estimate over the k nearest neighbors.

``tophat_density``
    The simpler mass / sphere-volume estimate the paper's prose
    describes; monotonically consistent with the SPH estimate for
    ranking purposes.
"""

from __future__ import annotations

import numpy as np

from ..check.sanitize import guard_kernel
from .kdtree import KDTree

__all__ = ["cubic_spline_kernel", "knn_neighbors", "sph_density", "tophat_density"]


def cubic_spline_kernel(r: np.ndarray, h: float | np.ndarray) -> np.ndarray:
    """Standard M4 cubic spline kernel W(r, h), normalized in 3-D.

    Compact support at ``r = h`` (the "2h" convention folded into h).
    """
    r = np.asarray(r, dtype=float)
    q = 2.0 * r / h  # internal variable on [0, 2]
    sigma = 1.0 / np.pi / (h / 2.0) ** 3
    out = np.zeros_like(q)
    inner = q <= 1.0
    outer = (q > 1.0) & (q < 2.0)
    out[inner] = 1.0 - 1.5 * q[inner] ** 2 + 0.75 * q[inner] ** 3
    out[outer] = 0.25 * (2.0 - q[outer]) ** 3
    return sigma * out


def knn_neighbors(
    pos: np.ndarray, k: int, tree: KDTree | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """k nearest neighbors of every particle (excluding itself).

    Returns ``(indices, distances)`` of shape ``(n, k)``, distances
    ascending per row.
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    n = len(pos)
    if k >= n:
        raise ValueError(f"k={k} must be < n={n}")
    if tree is None:
        tree = KDTree(pos, leaf_size=32)
    idx = np.empty((n, k), dtype=np.intp)
    dist = np.empty((n, k))
    for i in range(n):
        ii, dd = tree.query_knn(pos[i], k + 1)  # includes self at distance 0
        keep = ii != i
        # guard against coincident particles: self may not be first
        if keep.sum() == k + 1:
            keep[np.argmin(dd)] = False
        idx[i] = ii[keep][:k]
        dist[i] = dd[keep][:k]
    return idx, dist


@guard_kernel
def sph_density(
    pos: np.ndarray,
    mass: float = 1.0,
    k: int = 32,
    tree: KDTree | None = None,
) -> np.ndarray:
    """SPH density at every particle from its k nearest neighbors.

    The smoothing length is each particle's distance to its k-th
    neighbor; the density sums the cubic-spline kernel over the
    neighbors (self term included, as is standard).
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    n = len(pos)
    if n <= k:
        # degenerate tiny groups: uniform density estimate
        return np.full(n, float(mass) * n)
    idx, dist = knn_neighbors(pos, k, tree=tree)
    h = dist[:, -1]
    rho = np.empty(n)
    for i in range(n):
        w = cubic_spline_kernel(dist[i], h[i])
        rho[i] = mass * (w.sum() + cubic_spline_kernel(np.zeros(1), h[i])[0])
    return rho


def tophat_density(
    pos: np.ndarray,
    mass: float = 1.0,
    k: int = 32,
    tree: KDTree | None = None,
) -> np.ndarray:
    """Top-hat density: k-neighbor mass over the enclosing sphere volume."""
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    n = len(pos)
    if n <= k:
        return np.full(n, float(mass) * n)
    _, dist = knn_neighbors(pos, k, tree=tree)
    r = dist[:, -1]
    volume = 4.0 / 3.0 * np.pi * np.maximum(r, 1e-12) ** 3
    return (k + 1) * mass / volume
