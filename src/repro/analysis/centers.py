"""Most-bound-particle (MBP) halo center finding.

The paper's compute-intensive villain (§3.3.2): the center of a halo is
the particle with minimal gravitational potential, where the potential of
particle *i* is ``Φ_i = Σ_{j≠i} -m / (d_ij + ε)`` (the small constant
offset avoids numerical issues for extremely close particles).  This is
O(n²) per halo, so "finding the MBP center of a halo with 10 million
particles can take 10,000 times longer than for a halo with 100,000
particles" — the load imbalance that motivates the combined workflow.

Implementations:

``mbp_center_bruteforce``
    Computes all n² pair terms.  Runs on any data-parallel backend: the
    ``vector`` backend is the paper's PISTON/GPU path (~50x faster than
    serial on Titan), ``serial`` the CPU path.

``mbp_center_astar``
    The serial A*-style search of Ref. [10]: an optimistic (lower-bound)
    potential estimate per particle from a coarse mass grid orders the
    search; exact potentials are computed lazily until the best exact
    value beats every remaining bound.  The paper reports roughly an 8x
    reduction in work over brute force.

``approximate_center_*``
    Cheaper, less accurate definitions (center of mass, densest CIC
    cell).  The paper notes these were tried and rejected on accuracy —
    kept here for the accuracy-vs-cost ablation.

``halo_centers``
    Batch driver over a FOF catalog, with per-halo pair-interaction
    counters used for the cost model and Figure 4.  With ``workers > 1``
    the batch is dispatched to the :mod:`repro.exec` work-stealing
    multi-process engine (bit-identical results, cost-model-guided
    scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..check.sanitize import guard_kernel
from ..dataparallel import get_backend

__all__ = [
    "DEFAULT_SOFTENING",
    "CenterStats",
    "potential_reference",
    "potential_bruteforce",
    "mbp_center_bruteforce",
    "mbp_center_astar",
    "approximate_center_of_mass",
    "approximate_center_densest_cell",
    "group_halo_members",
    "halo_centers",
    "center_finding_cost",
]

#: Constant offset added to pair distances (paper §3.3.2).
DEFAULT_SOFTENING = 1.0e-5


@dataclass
class CenterStats:
    """Work counters for one center-finding call."""

    n_particles: int = 0
    pair_evaluations: int = 0
    exact_potentials: int = 0

    def merge(self, other: "CenterStats") -> None:
        self.n_particles += other.n_particles
        self.pair_evaluations += other.pair_evaluations
        self.exact_potentials += other.exact_potentials


def potential_reference(
    pos: np.ndarray,
    mass: float = 1.0,
    softening: float = DEFAULT_SOFTENING,
) -> np.ndarray:
    """Tiny-n pure-Python all-pairs potential (cross-validation only).

    The explicit per-element double loop that used to back the
    ``serial`` backend path of :func:`potential_bruteforce`.  It is kept
    solely so tests (and the backend-ratio benchmark, the paper's ~50x
    GPU-speedup analogue) can cross-validate the blocked vectorized
    kernel against an independent formulation — never use it on more
    than a few hundred particles.
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    n = len(pos)
    phi = np.zeros(n)
    for i in range(n):
        acc = 0.0
        pi = pos[i]
        for j in range(n):
            if i == j:
                continue
            d = np.sqrt(
                (pi[0] - pos[j, 0]) ** 2
                + (pi[1] - pos[j, 1]) ** 2
                + (pi[2] - pos[j, 2]) ** 2
            )
            acc -= mass / (d + softening)
        phi[i] = acc
    return phi


def _phi_rows(
    pos: np.ndarray,
    start: int,
    end: int,
    mass: float,
    softening: float,
) -> np.ndarray:
    """Potentials of rows ``start:end`` against *all* particles.

    The one blocked kernel shared by every execution path — the serial
    batch driver, the vector backend, and the :mod:`repro.exec` slab
    subtasks that split a giant halo across workers — so each row's
    potential is a single vectorized sum in a fixed order and results
    stay bit-identical no matter how the rows were scheduled.
    """
    d = np.sqrt(
        np.maximum(np.sum((pos[start:end, None, :] - pos[None, :, :]) ** 2, axis=-1), 0.0)
    )
    with np.errstate(divide="ignore"):
        contrib = -mass / (d + softening)
    # remove self terms (also discards the d=0 divide when softening=0)
    rows = np.arange(start, end)
    contrib[rows - start, rows] = 0.0
    return contrib.sum(axis=1)


@guard_kernel
def potential_bruteforce(
    pos: np.ndarray,
    mass: float = 1.0,
    softening: float = DEFAULT_SOFTENING,
    backend: str | None = None,
    block: int = 2048,
) -> np.ndarray:
    """All-pairs potential ``Φ_i = Σ_{j≠i} -m/(d_ij + ε)`` for every particle.

    The pair sums are evaluated in row blocks (memory-bounded) through
    the same vectorized kernel on every backend; ``serial`` and
    ``vector`` are numerically identical (the historical per-element
    Python double loop survives as :func:`potential_reference` for
    cross-validation only).
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    n = len(pos)
    get_backend(backend)  # validate the backend name
    if n < 2:
        return np.zeros(n)

    phi = np.zeros(n)
    for s in range(0, n, block):
        e = min(s + block, n)
        phi[s:e] = _phi_rows(pos, s, e, mass, softening)
    return phi


@guard_kernel
def mbp_center_bruteforce(
    pos: np.ndarray,
    mass: float = 1.0,
    softening: float = DEFAULT_SOFTENING,
    backend: str | None = None,
) -> tuple[int, float, CenterStats]:
    """MBP by computing all potentials and taking the minimum.

    Returns ``(particle_index, potential, stats)``.
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    n = len(pos)
    stats = CenterStats(n_particles=n, pair_evaluations=n * (n - 1), exact_potentials=n)
    if n == 0:
        raise ValueError("empty halo")
    if n == 1:
        return 0, 0.0, stats
    phi = potential_bruteforce(pos, mass=mass, softening=softening, backend=backend)
    idx = int(np.argmin(phi))
    return idx, float(phi[idx]), stats


@guard_kernel
def mbp_center_astar(
    pos: np.ndarray,
    mass: float = 1.0,
    softening: float = DEFAULT_SOFTENING,
    leaf_size: int | None = None,
    near_factor: float = 10.0,
) -> tuple[int, float, CenterStats]:
    """MBP via branch-and-bound search with an optimistic heuristic.

    Following the serial A* center finder of Ref. [10], an optimistic
    (admissible) estimate of each particle's potential avoids computing
    exact potentials for most particles:

    1. Partition the halo with a balanced k-d tree (leaves adapt to the
       density profile, so bound quality is best exactly where potential
       minima live).
    2. For each particle, bound every leaf's contribution from its
       centroid and bounding radius: the leaf pulls at least
       ``-M/(d - r)`` (lower/optimistic) and at most ``-M/(d + r)``
       (upper/pessimistic).  Leaves too close for the bound to be
       meaningful — including the particle's own — contribute exactly.
    3. Any particle whose optimistic bound is above the best pessimistic
       bound can never be the MBP; the few survivors get exact O(n)
       potential evaluations.

    The work counter mirrors the paper's observation that this search
    "is reported to be faster than a brute force approach ... by a
    problem-dependent factor of roughly eight".
    """
    from .kdtree import KDTree

    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    n = len(pos)
    stats = CenterStats(n_particles=n)
    if n == 0:
        raise ValueError("empty halo")
    if n == 1:
        return 0, 0.0, stats
    if n <= 512:
        idx, phi, bstats = mbp_center_bruteforce(pos, mass, softening)
        return idx, phi, bstats

    if leaf_size is None:
        leaf_size = 32
    tree = KDTree(pos, leaf_size=leaf_size)
    nodes = tree.nodes
    n_nodes = len(nodes)
    # per-node monopole moments
    coms = np.empty((n_nodes, 3))
    radii = np.empty(n_nodes)
    nmass = np.empty(n_nodes)
    left = np.empty(n_nodes, dtype=np.intp)
    right = np.empty(n_nodes, dtype=np.intp)
    for k, nd in enumerate(nodes):
        m = tree.index[nd.start : nd.end]
        com = pos[m].mean(axis=0)
        coms[k] = com
        radii[k] = np.sqrt(np.max(np.sum((pos[m] - com) ** 2, axis=1)))
        nmass[k] = len(m) * mass
        left[k] = nd.left
        right[k] = nd.right

    # characteristic potential scale sets the per-node bound tolerance:
    # nodes whose lower/upper width exceeds tol are opened (near_factor
    # re-purposed as a percent-level tightness dial; smaller = tighter)
    r_char = max(float(radii[0]), softening)
    tol = near_factor * 1e-3 * (n * mass) / r_char

    lower = np.zeros(n)
    upper = np.zeros(n)
    # breadth-style refinement over (particle, node) pairs, vectorized
    p_idx = np.arange(n, dtype=np.intp)
    node_idx = np.zeros(n, dtype=np.intp)
    exact_p: list[np.ndarray] = []
    exact_node: list[np.ndarray] = []
    pairs_processed = 0
    while len(p_idx):
        pairs_processed += len(p_idx)
        d = np.sqrt(np.sum((pos[p_idx] - coms[node_idx]) ** 2, axis=1))
        r = radii[node_idx]
        m_node = nmass[node_idx]
        dl = np.maximum(d - r, 0.0)
        lo_term = -m_node / (dl + softening)
        up_term = -m_node / (d + r + softening)
        width = up_term - lo_term  # >= 0
        accept = width <= tol
        np.add.at(lower, p_idx[accept], lo_term[accept])
        np.add.at(upper, p_idx[accept], up_term[accept])
        rest_p = p_idx[~accept]
        rest_n = node_idx[~accept]
        is_leaf = left[rest_n] < 0
        if is_leaf.any():
            exact_p.append(rest_p[is_leaf])
            exact_node.append(rest_n[is_leaf])
        split_p = rest_p[~is_leaf]
        split_n = rest_n[~is_leaf]
        p_idx = np.concatenate([split_p, split_p])
        node_idx = np.concatenate([left[split_n], right[split_n]])
    stats.pair_evaluations += pairs_processed

    # exact evaluation of the (particle, leaf) pairs too close to bound,
    # grouped by leaf so each group is one vectorized pairwise block
    if exact_p:
        ep = np.concatenate(exact_p)
        en = np.concatenate(exact_node)
        order_e = np.argsort(en, kind="stable")
        ep = ep[order_e]
        en = en[order_e]
        starts_e = np.flatnonzero(np.concatenate([[True], en[1:] != en[:-1]]))
        bounds_e = np.append(starts_e, len(en))
        for s, e in zip(bounds_e[:-1], bounds_e[1:]):
            leaf = nodes[en[s]]
            m = tree.index[leaf.start : leaf.end]
            who = ep[s:e]
            dd = np.sqrt(
                np.sum((pos[who][:, None, :] - pos[m][None, :, :]) ** 2, axis=-1)
            )
            contrib = np.sum(-mass / (dd + softening), axis=1)
            # rows whose particle belongs to this leaf include a self pair
            own = np.isin(who, m)
            contrib[own] += mass / softening
            np.add.at(lower, who, contrib)
            np.add.at(upper, who, contrib)
            stats.pair_evaluations += len(who) * len(m)

    incumbent = float(upper.min())
    candidates = np.flatnonzero(lower <= incumbent)
    # A* expansion: evaluate candidates most-promising first; once the
    # best exact potential undercuts the next candidate's optimistic
    # bound, no remaining candidate can win.
    order_c = candidates[np.argsort(lower[candidates])]
    best_idx = -1
    best_phi = np.inf
    block = 32
    for s in range(0, len(order_c), block):
        chunk = order_c[s : s + block]
        if lower[chunk[0]] >= best_phi:
            break
        dd = np.sqrt(
            np.sum((pos[chunk][:, None, :] - pos[None, :, :]) ** 2, axis=-1)
        )
        phi_chunk = np.sum(-mass / (dd + softening), axis=1) + mass / softening
        stats.exact_potentials += len(chunk)
        stats.pair_evaluations += len(chunk) * (n - 1)
        b = int(np.argmin(phi_chunk))
        if phi_chunk[b] < best_phi:
            best_phi = float(phi_chunk[b])
            best_idx = int(chunk[b])
    return best_idx, best_phi, stats


def approximate_center_of_mass(pos: np.ndarray) -> np.ndarray:
    """Center of mass (fast, inaccurate for asymmetric halos)."""
    return np.atleast_2d(np.asarray(pos, dtype=float)).mean(axis=0)


def approximate_center_densest_cell(pos: np.ndarray, grid_n: int = 16) -> np.ndarray:
    """Mean position of particles in the densest coarse-grid cell."""
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    lo = pos.min(axis=0)
    span = np.maximum(pos.max(axis=0) - lo, 1e-12)
    coords = np.minimum(((pos - lo) / (span / grid_n)).astype(np.intp), grid_n - 1)
    ids = (coords[:, 0] * grid_n + coords[:, 1]) * grid_n + coords[:, 2]
    uniq, counts = np.unique(ids, return_counts=True)
    densest = uniq[np.argmax(counts)]
    return pos[ids == densest].mean(axis=0)


@dataclass
class HaloCentersResult:
    """Batch center-finding output over a halo catalog."""

    halo_tags: np.ndarray
    centers: np.ndarray  # (n_halos, 3)
    mbp_tags: np.ndarray
    potentials: np.ndarray
    stats: CenterStats = field(default_factory=CenterStats)
    per_halo_pairs: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    #: :class:`repro.exec.engine.ExecReport` when the batch ran on the
    #: multi-process engine (``None`` on the serial path).
    exec_report: object | None = None


def group_halo_members(
    labels: np.ndarray, select_tags: np.ndarray | None = None
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Group particle indices by halo label with **one** argsort.

    Replaces the former hidden O(halos x particles) pattern of scanning
    the full label array once per halo (``np.flatnonzero(labels == t)``
    in a loop) with a single O(P log P) stable sort plus boundary
    slicing.  Member indices within each halo are ascending — exactly
    the order the per-halo scan produced — so downstream results are
    bit-identical.

    Returns ``(halo_tags, members)`` with ``halo_tags`` ascending and
    ``members[i]`` the particle indices of ``halo_tags[i]``.  Label -1
    (fluff) is dropped; ``select_tags`` restricts the output.
    """
    labels = np.asarray(labels)
    order = np.argsort(labels, kind="stable")
    sl = labels[order]
    first = int(np.searchsorted(sl, 0, side="left"))  # skip the -1 fluff
    order = order[first:]
    sl = sl[first:]
    if len(sl) == 0:
        return np.empty(0, dtype=labels.dtype), []
    starts = np.flatnonzero(np.concatenate([[True], sl[1:] != sl[:-1]]))
    bounds = np.append(starts, len(sl))
    halo_tags = sl[starts]
    members = [order[s:e] for s, e in zip(bounds[:-1], bounds[1:])]
    if select_tags is not None:
        keep = np.isin(halo_tags, select_tags)
        halo_tags = halo_tags[keep]
        members = [m for m, k in zip(members, keep) if k]
    return halo_tags, members


def halo_centers(
    pos: np.ndarray,
    tags: np.ndarray,
    labels: np.ndarray,
    mass: float = 1.0,
    softening: float = DEFAULT_SOFTENING,
    method: str = "bruteforce",
    backend: str | None = None,
    select_tags: np.ndarray | None = None,
    workers: int | None = None,
) -> HaloCentersResult:
    """Find the MBP center of every halo in a labeled particle set.

    Parameters
    ----------
    pos, tags, labels:
        Particle positions, unique tags, and FOF halo labels (label -1 =
        not in a halo).  Typically from :class:`~repro.analysis.fof.FOFResult`.
    method:
        ``"bruteforce"`` (backend-dispatched) or ``"astar"`` (serial).
    select_tags:
        Restrict to these halo tags (the workflow's in-situ/off-line
        split passes the below- or above-threshold subset).
    workers:
        With ``workers > 1`` the batch runs on the :mod:`repro.exec`
        work-stealing multi-process engine (zero-copy shared-memory
        particle views, LPT scheduling by the ``n(n-1)`` cost model,
        giant halos split into row slabs).  Results are bit-identical
        to the serial path.  ``None`` (default) runs serially, unless
        ``backend`` names the ``process`` backend, whose configured
        worker count is then used.
    """
    if method not in ("bruteforce", "astar"):
        raise ValueError(f"unknown method {method!r}")
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    tags = np.asarray(tags)
    labels = np.asarray(labels)

    if workers is None:
        be = get_backend(backend)
        if be.name == "process":
            workers = int(getattr(be, "workers", 1))
            backend = getattr(be, "kernel_backend", "vector")
    if workers is not None and workers > 1:
        from ..exec import parallel_halo_centers

        return parallel_halo_centers(
            pos,
            tags,
            labels,
            mass=mass,
            softening=softening,
            method=method,
            backend=backend,
            select_tags=select_tags,
            workers=workers,
        )

    halo_tags, groups = group_halo_members(labels, select_tags=select_tags)

    centers = np.empty((len(halo_tags), 3))
    mbp_tags = np.empty(len(halo_tags), dtype=tags.dtype)
    potentials = np.empty(len(halo_tags))
    per_halo_pairs = np.empty(len(halo_tags), dtype=np.int64)
    total = CenterStats()

    for h, members in enumerate(groups):
        hpos = pos[members]
        if method == "astar":
            idx, phi, stats = mbp_center_astar(hpos, mass=mass, softening=softening)
        else:
            idx, phi, stats = mbp_center_bruteforce(
                hpos, mass=mass, softening=softening, backend=backend
            )
        centers[h] = hpos[idx]
        mbp_tags[h] = tags[members[idx]]
        potentials[h] = phi
        per_halo_pairs[h] = stats.pair_evaluations
        total.merge(stats)

    return HaloCentersResult(
        halo_tags=halo_tags,
        centers=centers,
        mbp_tags=mbp_tags,
        potentials=potentials,
        stats=total,
        per_halo_pairs=per_halo_pairs,
    )


def center_finding_cost(counts: np.ndarray) -> np.ndarray:
    """Pair-interaction cost model for MBP center finding: ``n(n-1)``.

    The quantity behind the paper's "10 million particles takes 10,000
    times longer than 100,000" (cost ratio = (10M/100k)² = 10⁴) and the
    projected per-node timings of Figure 4.
    """
    counts = np.asarray(counts, dtype=np.int64)
    return counts * (counts - 1)
