"""Matter power spectrum measurement (the paper's flagship in-situ task).

Paper §1: "the determination of the density fluctuation power spectrum
... requires a density estimation on a regular grid via, e.g., a
Cloud-In-Cell (CIC) algorithm and very large FFTs.  Both of the
algorithms are efficiently parallelizable and ... the determination of
the power spectrum takes only a few minutes, a small fraction of the
computational time required for a single time step.  Therefore, the
power spectrum was determined at regular intervals as an in-situ
operation during the full runs."

``measure_power_spectrum`` deposits particles with CIC, FFTs the
overdensity, deconvolves the CIC mass-assignment window, subtracts shot
noise, and shell-averages |δ_k|² into bins of |k|.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.pm import cic_deposit

__all__ = ["PowerSpectrumResult", "measure_power_spectrum", "power_spectrum_from_delta"]


@dataclass(frozen=True)
class PowerSpectrumResult:
    """Binned P(k): bin centers, power, mode counts, and metadata."""

    k: np.ndarray  # (nbins,) mean wavenumber per bin, h/Mpc
    power: np.ndarray  # (nbins,) (Mpc/h)^3
    n_modes: np.ndarray  # (nbins,) modes per bin
    box: float
    ng: int
    shot_noise: float

    @property
    def nyquist(self) -> float:
        """Nyquist wavenumber of the measurement mesh."""
        return np.pi * self.ng / self.box


def measure_power_spectrum(
    pos: np.ndarray,
    box: float,
    ng: int,
    n_bins: int | None = None,
    deconvolve_cic: bool = True,
    subtract_shot_noise: bool = True,
) -> PowerSpectrumResult:
    """Measure P(k) of a particle distribution in a periodic box.

    Parameters
    ----------
    pos:
        ``(n, 3)`` positions in box units.
    box:
        Box side (Mpc/h).
    ng:
        FFT mesh size per dimension.
    n_bins:
        Number of linear k bins out to the Nyquist frequency
        (default ``ng // 2``).
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    n_particles = len(pos)
    if n_particles == 0:
        raise ValueError("no particles")
    delta = cic_deposit(pos / (box / ng), ng)
    return power_spectrum_from_delta(
        delta,
        box,
        ng,
        n_particles,
        n_bins=n_bins,
        deconvolve_cic=deconvolve_cic,
        subtract_shot_noise=subtract_shot_noise,
    )


def power_spectrum_from_delta(
    delta: np.ndarray,
    box: float,
    ng: int,
    n_particles: int,
    n_bins: int | None = None,
    deconvolve_cic: bool = True,
    subtract_shot_noise: bool = True,
) -> PowerSpectrumResult:
    """Measure P(k) from an already-deposited CIC overdensity mesh.

    The back half of :func:`measure_power_spectrum`, split out so
    callers that build ``delta`` incrementally — the one-pass streaming
    accumulator folds raw CIC mass chunk by chunk and normalizes once —
    share the exact FFT / deconvolution / binning sequence with the
    in-memory path.  ``n_particles`` sets the shot-noise level.
    """
    delta = np.asarray(delta, dtype=np.float64)
    if delta.shape != (ng, ng, ng):
        raise ValueError(f"delta shape {delta.shape} != ({ng}, {ng}, {ng})")
    if n_particles <= 0:
        raise ValueError("no particles")
    dk = np.fft.rfftn(delta)

    kf = 2.0 * np.pi / box
    kx = kf * np.fft.fftfreq(ng, d=1.0 / ng)
    kz = kf * np.fft.rfftfreq(ng, d=1.0 / ng)
    kmag = np.sqrt(
        kx[:, None, None] ** 2 + kx[None, :, None] ** 2 + kz[None, None, :] ** 2
    )

    # CIC window deconvolution: W(k) = prod_i sinc^2(k_i L / 2 ng)
    if deconvolve_cic:
        def sinc(x: np.ndarray) -> np.ndarray:
            return np.sinc(x / np.pi)  # numpy sinc is sin(pi x)/(pi x)

        wx = sinc(kx * box / (2 * ng)) ** 2
        wz = sinc(kz * box / (2 * ng)) ** 2
        window = wx[:, None, None] * wx[None, :, None] * wz[None, None, :]
        dk = dk / np.maximum(window, 1e-8)

    volume = box**3
    pk3d = (np.abs(dk) ** 2) * volume / ng**6

    shot = volume / n_particles
    if subtract_shot_noise:
        pk3d = pk3d - shot

    # rfft stores only half the modes along z; weight interior planes x2
    weights = np.full(dk.shape, 2.0)
    weights[:, :, 0] = 1.0
    if ng % 2 == 0:
        weights[:, :, -1] = 1.0

    if n_bins is None:
        n_bins = ng // 2
    k_nyq = np.pi * ng / box
    edges = np.linspace(kf / 2, k_nyq, n_bins + 1)
    flat_k = kmag.ravel()
    flat_p = pk3d.ravel()
    flat_w = weights.ravel()
    sel = (flat_k >= edges[0]) & (flat_k < edges[-1])
    which = np.digitize(flat_k[sel], edges) - 1

    n_modes = np.bincount(which, weights=flat_w[sel], minlength=n_bins)
    k_sum = np.bincount(which, weights=(flat_k * flat_w)[sel], minlength=n_bins)
    p_sum = np.bincount(which, weights=(flat_p * flat_w)[sel], minlength=n_bins)
    nonzero = n_modes > 0
    k_mean = np.where(nonzero, k_sum / np.maximum(n_modes, 1), 0.0)
    p_mean = np.where(nonzero, p_sum / np.maximum(n_modes, 1), 0.0)

    return PowerSpectrumResult(
        k=k_mean[nonzero],
        power=p_mean[nonzero],
        n_modes=n_modes[nonzero].astype(np.int64),
        box=box,
        ng=ng,
        shot_noise=shot,
    )
