"""Spherical overdensity (SO) halo mass estimation.

Paper §4.1 task 5: "Halo mass estimation based on a spherical
overdensity definition", seeded at the FOF halo centers (§3.3.2:
"Computation of spherical overdensity (SO) halos may also be seeded at
FOF halo centers") — which is why the fast SO step nevertheless has to
wait for the expensive center finder in the analysis sequence.

``so_mass`` computes, for a given center, the radius ``R_Δ`` within
which the mean enclosed density equals ``Δ`` times the reference density
(mean matter density by default), and the corresponding mass ``M_Δ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..check.sanitize import guard_kernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spatial_index import PeriodicCellIndex

__all__ = ["SOResult", "so_mass", "so_masses", "so_masses_indexed"]


@dataclass(frozen=True)
class SOResult:
    """One SO measurement: overdensity radius, mass, and member count."""

    radius: float
    mass: float
    count: int
    converged: bool


@guard_kernel
def so_mass(
    pos: np.ndarray,
    center: np.ndarray,
    particle_mass: float,
    reference_density: float,
    delta: float = 200.0,
    box: float | None = None,
    search_radius: float | None = None,
) -> SOResult:
    """SO mass around one center.

    Parameters
    ----------
    pos:
        Candidate particle positions (typically the halo's particles
        plus a local neighborhood; a global set works but costs more).
    center:
        Seed center (the MBP center).
    particle_mass, reference_density:
        Mass per particle and the comparison density (e.g. the mean
        comoving matter density ``n_total * m / V_box``).
    delta:
        Overdensity threshold (200 is the conventional choice).
    box:
        Periodic wrap if given.
    search_radius:
        Optional hard cap on the search sphere.

    Notes
    -----
    ``R_Δ`` is the *outermost* radius where the enclosed mean density
    crosses ``Δ · ρ_ref`` from above; halos whose profile never reaches
    the threshold return ``converged=False`` with the innermost particle
    count.
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    center = np.asarray(center, dtype=float)
    d = pos - center
    if box is not None:
        d -= box * np.round(d / box)
    r = np.sqrt(np.sum(d * d, axis=1))
    if search_radius is not None:
        r = r[r <= search_radius]
    if len(r) == 0:
        return SOResult(radius=0.0, mass=0.0, count=0, converged=False)
    r = np.sort(r)
    # avoid zero radius for the seed particle itself
    r = np.maximum(r, 1e-12)
    enclosed_mass = particle_mass * np.arange(1, len(r) + 1)
    volume = 4.0 / 3.0 * np.pi * r**3
    mean_density = enclosed_mass / volume
    threshold = delta * reference_density
    above = mean_density >= threshold
    if not above.any():
        return SOResult(radius=float(r[0]), mass=particle_mass, count=1, converged=False)
    # outermost crossing: last index where density is still above threshold
    k = int(np.max(np.flatnonzero(above)))
    # converged iff the profile actually drops below the threshold inside
    # the sampled particle set; if the outermost particle is still above,
    # R_delta may lie beyond the supplied candidates.
    return SOResult(
        radius=float(r[k]),
        mass=float(enclosed_mass[k]),
        count=k + 1,
        converged=k < len(r) - 1,
    )


def so_masses(
    pos: np.ndarray,
    centers: np.ndarray,
    particle_mass: float,
    reference_density: float,
    delta: float = 200.0,
    box: float | None = None,
    search_radius: float | None = None,
) -> list[SOResult]:
    """SO masses for many centers against a common particle set."""
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    return [
        so_mass(
            pos,
            c,
            particle_mass=particle_mass,
            reference_density=reference_density,
            delta=delta,
            box=box,
            search_radius=search_radius,
        )
        for c in centers
    ]


def so_masses_indexed(
    index: "PeriodicCellIndex",
    centers: np.ndarray,
    particle_mass: float,
    reference_density: float,
    delta: float = 200.0,
    initial_radii: np.ndarray | float | None = None,
) -> list[SOResult]:
    """SO masses for many centers via a shared spatial index.

    Instead of scanning the full particle set per center (the
    :func:`so_masses` path), each center queries the
    :class:`~repro.analysis.spatial_index.PeriodicCellIndex` for a
    candidate neighborhood sphere and grows it geometrically until the
    SO profile converges inside the sampled set.

    Parameters
    ----------
    index:
        Cell index over the full particle set (periodic box).
    centers:
        ``(m, 3)`` seed centers.
    initial_radii:
        Per-center (or scalar) starting search radius; defaults to four
        cell edges.  Radii are clamped to at least one cell edge, and
        the doubling retry is capped at half the box (at which point the
        candidate set is the whole box and the result is exact).

    Notes
    -----
    The retry loop is deterministic: the schedule depends only on the
    inputs, and each :meth:`~repro.analysis.spatial_index.PeriodicCellIndex.query_radius`
    returns ascending indices, so the per-center reduction order is
    stable.  Results match :func:`so_masses` on the full particle set
    whenever the profile converges (and exactly once the cap is hit).
    """
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    n_centers = len(centers)
    box = index.box
    r_max = 0.5 * box
    if initial_radii is None:
        radii = np.full(n_centers, 4.0 * index.cell_edge)
    else:
        radii = np.broadcast_to(
            np.asarray(initial_radii, dtype=float), (n_centers,)
        ).copy()
    np.clip(radii, index.cell_edge, r_max, out=radii)

    results: list[SOResult] = []
    for c, r0 in zip(centers, radii):
        r = float(r0)
        while True:
            candidates = index.query_radius(c, r)
            if len(candidates) == 0:
                result = SOResult(radius=0.0, mass=0.0, count=0, converged=False)
            else:
                result = so_mass(
                    index.pos[candidates],
                    c,
                    particle_mass=particle_mass,
                    reference_density=reference_density,
                    delta=delta,
                    box=box,
                    search_radius=r,
                )
            # Unconverged means R_delta may lie beyond the sampled
            # sphere: double and retry until the cap (= whole box).
            if result.converged or r >= r_max:
                break
            r = min(2.0 * r, r_max)
        results.append(result)
    return results
