"""Halo analysis algorithms (the CosmoTools algorithm library).

FOF halo finding (serial k-d tree, vectorized grid, and distributed),
MBP center finding (brute force on any backend, A*-style search, and
approximations), SPH density + subhalo finding with unbinding, spherical
overdensity masses, the power spectrum, and the halo mass function.
"""

from .bhtree import BarnesHutTree
from .centers import (
    CenterStats,
    DEFAULT_SOFTENING,
    approximate_center_densest_cell,
    approximate_center_of_mass,
    center_finding_cost,
    group_halo_members,
    halo_centers,
    mbp_center_astar,
    mbp_center_bruteforce,
    potential_bruteforce,
    potential_reference,
)
from .fof import (
    DEFAULT_MIN_COUNT,
    FOFResult,
    fof_grid,
    fof_kdtree,
    halo_groups,
    parallel_fof,
)
from .kdtree import KDTree
from .mass_function import MassFunction, mass_function, scale_counts, split_by_threshold
from .power_spectrum import PowerSpectrumResult, measure_power_spectrum
from .so import SOResult, so_mass, so_masses, so_masses_indexed
from .spatial_index import PeriodicCellIndex
from .sph import cubic_spline_kernel, knn_neighbors, sph_density, tophat_density
from .subhalos import DEFAULT_MIN_SUBHALO, SubhaloResult, find_subhalos, unbind_particles
from .union_find import DisjointSet, GrowableDisjointSet

__all__ = [
    "BarnesHutTree",
    "CenterStats",
    "DEFAULT_SOFTENING",
    "approximate_center_densest_cell",
    "approximate_center_of_mass",
    "center_finding_cost",
    "group_halo_members",
    "halo_centers",
    "mbp_center_astar",
    "mbp_center_bruteforce",
    "potential_bruteforce",
    "potential_reference",
    "DEFAULT_MIN_COUNT",
    "FOFResult",
    "fof_grid",
    "fof_kdtree",
    "halo_groups",
    "parallel_fof",
    "KDTree",
    "MassFunction",
    "mass_function",
    "scale_counts",
    "split_by_threshold",
    "PowerSpectrumResult",
    "measure_power_spectrum",
    "SOResult",
    "so_mass",
    "so_masses",
    "so_masses_indexed",
    "PeriodicCellIndex",
    "cubic_spline_kernel",
    "knn_neighbors",
    "sph_density",
    "tophat_density",
    "DEFAULT_MIN_SUBHALO",
    "SubhaloResult",
    "find_subhalos",
    "unbind_particles",
    "DisjointSet",
    "GrowableDisjointSet",
]
