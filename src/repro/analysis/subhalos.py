"""Subhalo identification within FOF halos.

Implements the density-hierarchy subhalo finder the paper adopts
(§3.3.1, following Maciejewski et al. 2009 / Springel et al. 2001):

1. Estimate a local SPH density for every particle in the parent FOF
   halo (k nearest neighbors — :mod:`repro.analysis.sph`).
2. Build subhalo candidates by iterating over the particle list in
   density-descending order: each particle links to its nearest
   already-inserted neighbors.  A particle with no inserted neighbors
   starts a new candidate (a local density peak); with neighbors in a
   single candidate it joins that candidate; with neighbors in two
   candidates it is a saddle point — both candidates are frozen at their
   current membership and merged into a growing parent structure.
3. Unbind: for each candidate, particles with positive total energy are
   iteratively removed, "removing no more than one-quarter of the
   particles with positive energy at each step" (the paper's multi-pass
   rule), until the remainder is self-bound or the candidate drops below
   the minimum size.

The finder exhibits exactly the load-imbalance pathology the paper
discusses: cost grows super-linearly with parent halo size, and "our
current implementation based on a tree-algorithm does not take advantage
of GPUs" — mirrored here by the serial traversals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..check.sanitize import guard_kernel
from .kdtree import KDTree
from .sph import knn_neighbors, sph_density

__all__ = ["SubhaloResult", "find_subhalos", "unbind_particles", "DEFAULT_MIN_SUBHALO"]

#: Minimum particles for a subhalo to be retained (paper: subhalos were
#: found for halos with more than 5000 particles; candidates below ~20
#: particles are unreliable).
DEFAULT_MIN_SUBHALO = 20


@dataclass
class SubhaloResult:
    """Subhalo decomposition of one FOF halo.

    ``labels[i]`` is the subhalo id of halo-local particle ``i`` (or -1
    for unassigned/unbound "fuzz").  Subhalo 0 is the most massive
    (the main body / central subhalo).
    """

    labels: np.ndarray
    n_candidates: int
    subhalo_sizes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    unbound_removed: int = 0

    @property
    def n_subhalos(self) -> int:
        return len(self.subhalo_sizes)


@guard_kernel
def unbind_particles(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: float,
    g_constant: float,
    softening: float = 1e-5,
    max_remove_fraction: float = 0.25,
    min_size: int = DEFAULT_MIN_SUBHALO,
    max_passes: int = 50,
) -> np.ndarray:
    """Iteratively remove gravitationally unbound particles.

    Total specific energy of particle *i* is ``0.5 |v_i - v_bulk|² +
    φ_i`` with ``φ_i = -G Σ m/(d+ε)`` over the remaining members.  At
    most ``max_remove_fraction`` of the positive-energy particles are
    removed per pass (the paper's "no more than one-quarter" rule — the
    potential changes as members leave, so aggressive removal
    over-strips), iterating until all remaining particles are bound or
    fewer than ``min_size`` remain.

    Returns a boolean mask over the input of the finally-bound members
    (all ``False`` if the group dissolved).
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    vel = np.atleast_2d(np.asarray(vel, dtype=float))
    n = len(pos)
    alive = np.ones(n, dtype=bool)

    for _ in range(max_passes):
        members = np.flatnonzero(alive)
        if len(members) < min_size:
            alive[:] = False
            break
        p = pos[members]
        v = vel[members]
        # median bulk velocity: robust against fast interlopers that
        # would otherwise drag the mean and mark bound members unbound
        v_bulk = np.median(v, axis=0)
        ke = 0.5 * np.sum((v - v_bulk) ** 2, axis=1)
        # pairwise potential (blocked to bound memory)
        m = len(members)
        phi = np.zeros(m)
        block = 4096
        for s in range(0, m, block):
            e = min(s + block, m)
            d = np.sqrt(np.sum((p[s:e, None, :] - p[None, :, :]) ** 2, axis=-1))
            contrib = -g_constant * mass / (d + softening)
            rows = np.arange(s, e)
            contrib[rows - s, rows] = 0.0
            phi[s:e] = contrib.sum(axis=1)
        energy = ke + phi
        positive = energy > 0
        n_pos = int(positive.sum())
        if n_pos == 0:
            break
        # remove the most-unbound quarter (at least one)
        n_remove = max(int(np.ceil(max_remove_fraction * n_pos)), 1)
        worst = members[np.argsort(energy)[-n_remove:]]
        alive[worst] = False
    return alive


@guard_kernel
def find_subhalos(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: float = 1.0,
    g_constant: float = 1.0,
    k_density: int = 32,
    n_link: int = 2,
    min_size: int = DEFAULT_MIN_SUBHALO,
    unbind: bool = True,
    softening: float = 1e-5,
) -> SubhaloResult:
    """Decompose one FOF halo into subhalos.

    Parameters
    ----------
    pos, vel:
        Halo-local particle positions and velocities (consistent units;
        ``g_constant`` converts the potential into the kinetic-energy
        units for unbinding).
    k_density:
        Neighbor count for the SPH density estimate.
    n_link:
        How many nearest already-inserted neighbors each particle links
        to during candidate growth (2 is standard).
    """
    pos = np.atleast_2d(np.asarray(pos, dtype=float))
    vel = np.atleast_2d(np.asarray(vel, dtype=float))
    n = len(pos)
    if n < max(min_size, k_density + 1):
        return SubhaloResult(labels=np.full(n, -1, dtype=np.int64), n_candidates=0)

    tree = KDTree(pos, leaf_size=32)
    rho = sph_density(pos, mass=mass, k=k_density, tree=tree)
    # neighbor lists reused during candidate growth
    k_grow = min(max(k_density, 8), n - 1)
    nbr_idx, _ = knn_neighbors(pos, k_grow, tree=tree)

    order = np.argsort(-rho, kind="stable")
    group_of = np.full(n, -1, dtype=np.int64)
    inserted = np.zeros(n, dtype=bool)
    parent: dict[int, int] = {}  # union-find over candidate groups
    members: dict[int, list[int]] = {}  # live member lists, per root
    candidates: list[np.ndarray] = []  # frozen candidate snapshots
    next_group = 0

    def find_root(g: int) -> int:
        while parent[g] != g:
            parent[g] = parent[parent[g]]
            g = parent[g]
        return g

    for i in order:
        neighbor_groups: list[int] = []
        seen_roots: set[int] = set()
        for j in nbr_idx[i]:
            if inserted[j]:
                root = find_root(int(group_of[j]))
                if root not in seen_roots:
                    seen_roots.add(root)
                    neighbor_groups.append(root)
                if len(neighbor_groups) >= n_link:
                    break
        if not neighbor_groups:
            # local density maximum: a new candidate is born
            parent[next_group] = next_group
            members[next_group] = [int(i)]
            group_of[i] = next_group
            next_group += 1
        elif len(neighbor_groups) == 1:
            g = neighbor_groups[0]
            members[g].append(int(i))
            group_of[i] = g
        else:
            # saddle point: the smaller group is frozen as a finished
            # subhalo candidate; the larger keeps growing and absorbs it
            ga, gb = neighbor_groups[0], neighbor_groups[1]
            if len(members[ga]) < len(members[gb]):
                ga, gb = gb, ga
            candidates.append(np.asarray(members[gb], dtype=np.intp))
            parent[gb] = ga
            members[ga].extend(members[gb])
            del members[gb]
            members[ga].append(int(i))
            group_of[i] = ga
        inserted[i] = True

    # surviving roots (typically one: the whole halo) are candidates with
    # their final membership — the "main body" candidate
    for mlist in members.values():
        candidates.append(np.asarray(mlist, dtype=np.intp))

    candidates = [c for c in candidates if len(c) >= min_size]
    # deepest-first assignment: smaller candidates claim their particles
    # before the enclosing structures (the SUBFIND convention); the
    # top-level candidate keeps the remainder as the main subhalo
    candidates.sort(key=len)

    labels = np.full(n, -1, dtype=np.int64)
    sizes = []
    removed = 0
    sub_id = 0
    for cand in candidates:
        fresh = cand[labels[cand] < 0]
        if len(fresh) < min_size:
            continue
        if unbind:
            bound = unbind_particles(
                pos[fresh],
                vel[fresh],
                mass=mass,
                g_constant=g_constant,
                softening=softening,
                min_size=min_size,
            )
            removed += int((~bound).sum())
            kept = fresh[bound]
        else:
            kept = fresh
        if len(kept) < min_size:
            continue
        labels[kept] = sub_id
        sizes.append(len(kept))
        sub_id += 1

    # renumber by size descending: subhalo 0 is the most massive
    order_ids = np.argsort(-np.asarray(sizes, dtype=np.int64), kind="stable")
    remap = {int(old): new for new, old in enumerate(order_ids)}
    relabeled = np.asarray([remap[x] if x >= 0 else -1 for x in labels], dtype=np.int64)
    sizes_sorted = np.asarray(sizes, dtype=np.int64)[order_ids]

    return SubhaloResult(
        labels=relabeled,
        n_candidates=len(candidates),
        subhalo_sizes=sizes_sorted,
        unbound_removed=removed,
    )
