"""Uniform periodic cell index for neighborhood queries.

The shared per-step spatial structure of the in-situ chain: a
cell-linked list over the full particle set, built once per analysis
step (see :class:`repro.insitu.spatial.SharedStepIndex`) and queried by
any stage that needs "particles near a point" — most prominently the
spherical-overdensity mass estimator, whose per-center candidate set
shrinks from the whole box to a neighborhood sphere.

The structure is fully vectorized: particles are binned to flat cell
ids, a stable argsort groups them, and prefix sums give O(1) per-cell
member slices.  Radius queries gather the member ranges of the covered
cell block with a repeat/arange expansion (no Python-level loop over
particles) and exact-filter by periodic distance.  All outputs are
sorted ascending, so downstream float reductions are order-stable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PeriodicCellIndex"]


class PeriodicCellIndex:
    """Cell-linked list over points in a periodic cubic box.

    Parameters
    ----------
    pos:
        ``(n, 3)`` positions; wrapped into ``[0, box)`` internally.
    box:
        Periodic box side.
    cell_size:
        Target cell edge.  The actual edge is ``box / ncell`` with
        ``ncell = floor(box / cell_size)`` (≥ 1), so cells tile the box
        exactly.

    Attributes
    ----------
    ncell:
        Cells per dimension.
    cell_edge:
        Actual cell edge length.
    """

    def __init__(self, pos: np.ndarray, box: float, cell_size: float):
        pos = np.atleast_2d(np.asarray(pos, dtype=np.float64))
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError("pos must have shape (n, 3)")
        if box <= 0:
            raise ValueError("box must be positive")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.box = float(box)
        self.pos = np.mod(pos, self.box)
        self.n = len(pos)
        self.ncell = max(int(np.floor(self.box / float(cell_size))), 1)
        self.cell_edge = self.box / self.ncell

        coords = np.minimum(
            (self.pos / self.cell_edge).astype(np.intp), self.ncell - 1
        )
        nc = self.ncell
        cell_ids = (coords[:, 0] * nc + coords[:, 1]) * nc + coords[:, 2]
        #: stable permutation grouping particles by cell
        self.order = np.argsort(cell_ids, kind="stable")
        counts = np.bincount(cell_ids, minlength=nc**3)
        #: prefix sums: members of cell ``c`` are
        #: ``order[start[c]:start[c + 1]]``
        self.start = np.concatenate(
            [np.zeros(1, dtype=np.intp), np.cumsum(counts).astype(np.intp)]
        )

    # -- queries --------------------------------------------------------------

    def cell_members(self, cell_id: int) -> np.ndarray:
        """Point indices binned into flat cell ``cell_id``."""
        return self.order[self.start[cell_id] : self.start[cell_id + 1]]

    def _axis_range(self, lo_f: float, hi_f: float) -> np.ndarray:
        """Wrapped cell coordinates covering ``[lo_f, hi_f]`` on one axis."""
        nc = self.ncell
        lo = int(np.floor(lo_f / self.cell_edge))
        hi = int(np.floor(hi_f / self.cell_edge))
        if hi - lo + 1 >= nc:
            return np.arange(nc, dtype=np.intp)
        return np.mod(np.arange(lo, hi + 1, dtype=np.intp), nc)

    def _gather_cells(self, cells: np.ndarray) -> np.ndarray:
        """Concatenate the member slices of many cells (vectorized)."""
        cnt = self.start[cells + 1] - self.start[cells]
        total = int(cnt.sum())
        if total == 0:
            return np.empty(0, dtype=np.intp)
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.intp), np.cumsum(cnt)[:-1].astype(np.intp)]
        )
        local = np.arange(total, dtype=np.intp) - np.repeat(offsets, cnt)
        return self.order[np.repeat(self.start[cells], cnt) + local]

    def query_radius(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all points within periodic ``radius`` of ``center``.

        Returned indices are sorted ascending (deterministic downstream
        accumulation order).
        """
        if self.n == 0:
            return np.empty(0, dtype=np.intp)
        center = np.asarray(center, dtype=np.float64).reshape(3)
        r = float(radius)
        if r < 0:
            raise ValueError("radius must be non-negative")

        ax = self._axis_range(center[0] - r, center[0] + r)
        ay = self._axis_range(center[1] - r, center[1] + r)
        az = self._axis_range(center[2] - r, center[2] + r)
        nc = self.ncell
        cells = (
            (ax[:, None, None] * nc + ay[None, :, None]) * nc + az[None, None, :]
        ).ravel()
        members = self._gather_cells(cells)
        if len(members) == 0:
            return members

        d = self.pos[members] - center
        d -= self.box * np.round(d / self.box)
        keep = np.einsum("ij,ij->i", d, d) <= r * r
        return np.sort(members[keep])

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PeriodicCellIndex n={self.n} box={self.box} "
            f"ncell={self.ncell} edge={self.cell_edge:.3g}>"
        )
