"""Barnes–Hut octree for density estimation and approximate potentials.

The subhalo finder (paper §3.3.1) uses "a Barnes-Hut tree, similar to an
octree but with support for more efficient traversals ... for calculating
the local densities using an SPH kernel".  This module provides that
substrate: an adaptive octree with per-node mass, center of mass, and
bounding radius, supporting

* monopole-approximate potential evaluation with an opening-angle
  criterion (used to speed up the unbinding passes on large subhalos);
* radius queries feeding the SPH density estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BarnesHutTree"]


@dataclass
class _OctNode:
    center: np.ndarray  # geometric center of the cube
    half: float  # half edge length
    start: int
    end: int
    children: list[int]  # node ids; empty = leaf
    com: np.ndarray
    mass: float


class BarnesHutTree:
    """Adaptive octree over a 3-D point set with monopole moments.

    Parameters
    ----------
    pos:
        ``(n, 3)`` positions (non-periodic; callers pass halo-local
        coordinates).
    masses:
        Per-particle masses, or a scalar.
    leaf_size:
        Maximum particles per leaf before splitting.
    """

    def __init__(self, pos: np.ndarray, masses: np.ndarray | float = 1.0, leaf_size: int = 16):
        pos = np.atleast_2d(np.asarray(pos, dtype=float))
        n = len(pos)
        self.pos = pos
        if np.isscalar(masses):
            self.masses = np.full(n, float(masses))
        else:
            self.masses = np.asarray(masses, dtype=float)
            if len(self.masses) != n:
                raise ValueError("masses length must match positions")
        self.leaf_size = leaf_size
        self.index = np.arange(n, dtype=np.intp)
        self.nodes: list[_OctNode] = []
        if n:
            lo = pos.min(axis=0)
            hi = pos.max(axis=0)
            center = 0.5 * (lo + hi)
            half = float(np.max(hi - lo) / 2 + 1e-12)
            self._build(center, half, 0, n)

    def _build(self, center: np.ndarray, half: float, start: int, end: int) -> int:
        node_id = len(self.nodes)
        idx = self.index[start:end]
        pts = self.pos[idx]
        ms = self.masses[idx]
        total = float(ms.sum())
        com = (pts * ms[:, None]).sum(axis=0) / total if total > 0 else center.copy()
        node = _OctNode(
            center=center.copy(), half=half, start=start, end=end, children=[], com=com, mass=total
        )
        self.nodes.append(node)
        if end - start <= self.leaf_size:
            return node_id
        # partition into octants (stable, in place on the permutation)
        octant = (
            (pts[:, 0] >= center[0]).astype(np.intp) * 4
            + (pts[:, 1] >= center[1]).astype(np.intp) * 2
            + (pts[:, 2] >= center[2]).astype(np.intp)
        )
        order = np.argsort(octant, kind="stable")
        self.index[start:end] = idx[order]
        sorted_oct = octant[order]
        bounds = np.searchsorted(sorted_oct, np.arange(9))
        for o in range(8):
            s, e = start + bounds[o], start + bounds[o + 1]
            if e <= s:
                continue
            offset = np.asarray(
                [
                    half / 2 if (o & 4) else -half / 2,
                    half / 2 if (o & 2) else -half / 2,
                    half / 2 if (o & 1) else -half / 2,
                ]
            )
            child = self._build(center + offset, half / 2, s, e)
            node.children.append(child)
        return node_id

    # -- queries -------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_mass(self) -> float:
        return self.nodes[0].mass if self.nodes else 0.0

    def potential(
        self, targets: np.ndarray, theta: float = 0.5, softening: float = 1e-5
    ) -> np.ndarray:
        """Approximate potential ``Σ -m/(d + ε)`` at each target position.

        Standard Barnes–Hut monopole walk: a node of edge ``2·half`` at
        distance ``d`` from the target is accepted whole when
        ``2·half / d < theta``; otherwise its children are opened.  A
        target coincident with a source particle skips the self pair.
        ``theta = 0`` degenerates to the exact brute-force sum.
        """
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        out = np.zeros(len(targets))
        if not self.nodes:
            return out
        for t, p in enumerate(targets):
            out[t] = self._potential_one(p, theta, softening)
        return out

    def _potential_one(self, p: np.ndarray, theta: float, softening: float) -> float:
        acc = 0.0
        stack = [0]
        while stack:
            node = self.nodes[stack.pop()]
            delta = node.com - p
            d = float(np.sqrt(np.dot(delta, delta)))
            size = 2.0 * node.half
            if not node.children:
                idx = self.index[node.start : node.end]
                dd = np.sqrt(np.sum((self.pos[idx] - p) ** 2, axis=1))
                sel = dd > 0  # skip self pair if target is a source particle
                acc += float(np.sum(-self.masses[idx][sel] / (dd[sel] + softening)))
            elif d > 0 and size / d < theta:
                acc += -node.mass / (d + softening)
            else:
                stack.extend(node.children)
        return acc

    def query_radius(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of particles within ``radius`` of ``center``."""
        if not self.nodes:
            return np.empty(0, dtype=np.intp)
        center = np.asarray(center, dtype=float)
        out: list[np.ndarray] = []
        stack = [0]
        while stack:
            node = self.nodes[stack.pop()]
            # distance from center to the node's cube
            gap = np.maximum(np.abs(center - node.center) - node.half, 0.0)
            if float(np.dot(gap, gap)) > radius * radius:
                continue
            if not node.children:
                idx = self.index[node.start : node.end]
                d2 = np.sum((self.pos[idx] - center) ** 2, axis=1)
                out.append(idx[d2 <= radius * radius])
            else:
                stack.extend(node.children)
        if not out:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(out)
