"""Finding: one rule violation at one source location.

Findings are plain, orderable, hashable records so reporters can sort
them deterministically (path, line, col, code) and the JSON report is
byte-stable across runs — a static analyzer that lints for determinism
had better be deterministic itself.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: ``path:line:col CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
