"""``python -m repro.check`` — the analyzer command-line interface.

Exit codes::

    0   no findings
    1   findings reported (or a file failed to parse)
    2   usage / configuration error

Typical invocations::

    python -m repro.check src                     # lint the tree
    python -m repro.check src --format json       # machine-readable
    python -m repro.check --list-rules            # rule table
    python -m repro.check --rules                 # rule table as JSON
    python -m repro.check --changed               # only git-modified files
    python -m repro.check --changed origin/main   # diff against a ref
    python -m repro.check src --select RPR001,RPR005
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from .analyzer import analyze_paths
from .config import CheckConfig, find_pyproject, load_config
from .reporters import render_json, render_text
from .rules import all_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Determinism & resource-safety static analyzer for the repro tree.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyze")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--config",
        default=None,
        help="explicit pyproject.toml ([tool.repro-check] table)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml configuration",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding counts to the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule table as JSON and exit",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="analyze only files changed vs REF (default HEAD) plus untracked .py files",
    )
    return parser


def _parse_codes(raw: str | None) -> tuple[str, ...] | None:
    if raw is None:
        return None
    return tuple(c.strip().upper() for c in raw.split(",") if c.strip())


def _resolve_config(args: argparse.Namespace) -> CheckConfig:
    if args.no_config:
        cfg = CheckConfig()
    elif args.config is not None:
        path = Path(args.config)
        if not path.is_file():
            raise FileNotFoundError(f"config file not found: {path}")
        cfg = load_config(path)
    else:
        start = Path(args.paths[0]) if args.paths else None
        cfg = load_config(find_pyproject(start))
    return cfg.merged(select=_parse_codes(args.select), ignore=_parse_codes(args.ignore))


def _list_rules() -> str:
    lines = ["code     name                     scope                summary"]
    for code, rule in all_rules().items():
        scope = ",".join(rule.default_scopes) or "(all)"
        lines.append(f"{code}   {rule.name:<24} {scope:<20} {rule.summary}")
    return "\n".join(lines)


def _rules_json() -> str:
    rules = [
        {
            "code": code,
            "name": rule.name,
            "summary": rule.summary,
            "scopes": list(rule.default_scopes),
        }
        for code, rule in sorted(all_rules().items())
    ]
    return json.dumps({"version": 1, "rules": rules}, indent=2) + "\n"


def _changed_paths(ref: str) -> list[str]:
    """``.py`` files changed vs ``ref`` plus untracked ones.

    Raises ``OSError`` when git is unavailable or the ref does not
    resolve, so the caller can exit 2 with the git message.
    """
    def _git(*argv: str) -> list[str]:
        proc = subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            raise OSError(proc.stderr.strip() or f"git {' '.join(argv)} failed")
        return [line for line in proc.stdout.splitlines() if line.strip()]

    names = _git("diff", "--name-only", ref)
    names += _git("ls-files", "--others", "--exclude-standard")
    seen: dict[str, None] = {}
    for name in names:
        if name.endswith(".py") and Path(name).is_file():
            seen.setdefault(name, None)
    return list(seen)


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.rules:
        sys.stdout.write(_rules_json())
        return 0
    if args.changed is not None:
        try:
            changed = _changed_paths(args.changed)
        except OSError as exc:
            print(f"error: --changed: {exc}", file=sys.stderr)
            return 2
        if not changed:
            print("no changed .py files")
            return 0
        args.paths = [*args.paths, *changed]
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (and --list-rules not requested)", file=sys.stderr)
        return 2

    try:
        config = _resolve_config(args)
    except (FileNotFoundError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    unknown = [
        c
        for c in (*config.select, *config.ignore)
        if c not in all_rules() and c != "RPR000"
    ]
    if unknown:
        print(f"error: unknown rule code(s): {', '.join(sorted(set(unknown)))}", file=sys.stderr)
        return 2

    result = analyze_paths(args.paths, config)
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_text(result, statistics=args.statistics))
    return result.exit_code
