"""``python -m repro.check`` — the analyzer command-line interface.

Exit codes::

    0   no findings
    1   findings reported (or a file failed to parse)
    2   usage / configuration error

Typical invocations::

    python -m repro.check src                     # lint the tree
    python -m repro.check src --format json       # machine-readable
    python -m repro.check --list-rules            # rule table
    python -m repro.check src --select RPR001,RPR005
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .analyzer import analyze_paths
from .config import CheckConfig, find_pyproject, load_config
from .reporters import render_json, render_text
from .rules import all_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Determinism & resource-safety static analyzer for the repro tree.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyze")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--config",
        default=None,
        help="explicit pyproject.toml ([tool.repro-check] table)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml configuration",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding counts to the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _parse_codes(raw: str | None) -> tuple[str, ...] | None:
    if raw is None:
        return None
    return tuple(c.strip().upper() for c in raw.split(",") if c.strip())


def _resolve_config(args: argparse.Namespace) -> CheckConfig:
    if args.no_config:
        cfg = CheckConfig()
    elif args.config is not None:
        path = Path(args.config)
        if not path.is_file():
            raise FileNotFoundError(f"config file not found: {path}")
        cfg = load_config(path)
    else:
        start = Path(args.paths[0]) if args.paths else None
        cfg = load_config(find_pyproject(start))
    return cfg.merged(select=_parse_codes(args.select), ignore=_parse_codes(args.ignore))


def _list_rules() -> str:
    lines = ["code     name                     scope                summary"]
    for code, rule in all_rules().items():
        scope = ",".join(rule.default_scopes) or "(all)"
        lines.append(f"{code}   {rule.name:<24} {scope:<20} {rule.summary}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (and --list-rules not requested)", file=sys.stderr)
        return 2

    try:
        config = _resolve_config(args)
    except (FileNotFoundError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    unknown = [
        c
        for c in (*config.select, *config.ignore)
        if c not in all_rules() and c != "RPR000"
    ]
    if unknown:
        print(f"error: unknown rule code(s): {', '.join(sorted(set(unknown)))}", file=sys.stderr)
        return 2

    result = analyze_paths(args.paths, config)
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_text(result, statistics=args.statistics))
    return result.exit_code
