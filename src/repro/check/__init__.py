"""repro.check — determinism & resource-safety static analyzer + sanitizers.

The repo's core guarantee — bit-identical serial vs. parallel analysis
(:mod:`repro.exec`) feeding the merged Level-3 catalog — rests on
invariants that plain linters do not know about: seeded RNG everywhere,
order-stable float reductions, wall-clock-free kernels, and leak-free
shared-memory lifecycles.  This package enforces them twice over:

* **statically** — an AST-based analyzer with a pluggable rule registry
  (RPR001-RPR010 in :mod:`repro.check.rules`; the flow-sensitive
  concurrency pack RPR011-RPR015 in :mod:`repro.check.concurrency`,
  built on the per-function CFG/dataflow engine of
  :mod:`repro.check.flow` and the call-graph summaries of
  :mod:`repro.check.callgraph`), ``# repro: noqa[...]`` suppressions,
  text/JSON reporters, a ``python -m repro.check`` CLI (including
  ``--changed`` for git-diff-scoped runs and ``--rules`` for a
  machine-readable rule listing), and ``[tool.repro-check]``
  configuration in ``pyproject.toml``;
* **at runtime** — opt-in (``REPRO_SANITIZE=1``) sanitizers: the
  :func:`~repro.check.sanitize.guard_kernel` NaN/Inf + dtype-drift
  decorator on the center/SO/subhalo kernels, an atexit shared-memory
  leak tracker wired into :mod:`repro.exec.sharedmem`, the
  :func:`~repro.check.sanitize.check_determinism` run-twice harness,
  and the collective-protocol sanitizer inside
  :class:`repro.parallel.Communicator` (each rank hashes its ordered
  collective sequence; barriers cross-check the digests and fail fast
  naming the diverging rank).

Programmatic use::

    from repro.check import analyze_paths, load_config, find_pyproject

    result = analyze_paths(["src"], load_config(find_pyproject()))
    assert not result.findings, result.findings
"""

from .analyzer import (
    AnalysisResult,
    ModuleContext,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
    module_rel,
)
from .callgraph import FunctionSummary, ModuleCallGraph
from .config import CheckConfig, find_pyproject, load_config, path_in_scope
from .findings import Finding
from .flow import CFG, Block, ForwardAnalysis, build_cfg, dominators, run_forward
from .reporters import render_json, render_text
from .rules import Rule, all_rules, register_rule
from .sanitize import (
    DeterminismError,
    DeterminismReport,
    SanitizerError,
    check_determinism,
    guard_kernel,
    leak_report,
    output_hash,
    sanitize_enabled,
)

__all__ = [
    "CFG",
    "AnalysisResult",
    "Block",
    "CheckConfig",
    "DeterminismError",
    "DeterminismReport",
    "Finding",
    "ForwardAnalysis",
    "FunctionSummary",
    "ModuleCallGraph",
    "ModuleContext",
    "Rule",
    "SanitizerError",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "build_cfg",
    "check_determinism",
    "dominators",
    "find_pyproject",
    "guard_kernel",
    "iter_python_files",
    "leak_report",
    "load_config",
    "module_rel",
    "output_hash",
    "path_in_scope",
    "register_rule",
    "render_json",
    "render_text",
    "run_forward",
    "sanitize_enabled",
]
