"""repro.check — determinism & resource-safety static analyzer + sanitizers.

The repo's core guarantee — bit-identical serial vs. parallel analysis
(:mod:`repro.exec`) feeding the merged Level-3 catalog — rests on
invariants that plain linters do not know about: seeded RNG everywhere,
order-stable float reductions, wall-clock-free kernels, and leak-free
shared-memory lifecycles.  This package enforces them twice over:

* **statically** — an AST-based analyzer with a pluggable rule registry
  (RPR001-RPR009, see :mod:`repro.check.rules`), ``# repro: noqa[...]``
  suppressions, text/JSON reporters, a ``python -m repro.check`` CLI,
  and ``[tool.repro-check]`` configuration in ``pyproject.toml``;
* **at runtime** — opt-in (``REPRO_SANITIZE=1``) sanitizers in
  :mod:`repro.check.sanitize`: the :func:`~repro.check.sanitize.guard_kernel`
  NaN/Inf + dtype-drift decorator on the center/SO/subhalo kernels, an
  atexit shared-memory leak tracker wired into
  :mod:`repro.exec.sharedmem`, and the
  :func:`~repro.check.sanitize.check_determinism` run-twice harness.

Programmatic use::

    from repro.check import analyze_paths, load_config, find_pyproject

    result = analyze_paths(["src"], load_config(find_pyproject()))
    assert not result.findings, result.findings
"""

from .analyzer import (
    AnalysisResult,
    ModuleContext,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
    module_rel,
)
from .config import CheckConfig, find_pyproject, load_config, path_in_scope
from .findings import Finding
from .reporters import render_json, render_text
from .rules import Rule, all_rules, register_rule
from .sanitize import (
    DeterminismError,
    DeterminismReport,
    SanitizerError,
    check_determinism,
    guard_kernel,
    leak_report,
    output_hash,
    sanitize_enabled,
)

__all__ = [
    "AnalysisResult",
    "CheckConfig",
    "DeterminismError",
    "DeterminismReport",
    "Finding",
    "ModuleContext",
    "Rule",
    "SanitizerError",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "check_determinism",
    "find_pyproject",
    "guard_kernel",
    "iter_python_files",
    "leak_report",
    "load_config",
    "module_rel",
    "output_hash",
    "path_in_scope",
    "register_rule",
    "render_json",
    "render_text",
    "sanitize_enabled",
]
