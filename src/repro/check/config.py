"""Configuration for the ``repro.check`` analyzer.

Configuration lives under ``[tool.repro-check]`` in ``pyproject.toml``::

    [tool.repro-check]
    select = ["RPR001", "RPR004"]      # default: every registered rule
    ignore = ["RPR003"]
    exclude = ["*/generated/*"]        # fnmatch patterns on file paths

    [tool.repro-check.scopes]          # per-rule path scopes (overrides
    RPR003 = ["analysis", "io"]        # the rule's built-in default)

A rule's *scope* is a list of path fragments relative to the ``repro``
package (``"analysis"`` matches ``src/repro/analysis/...``).  An empty
scope means the rule applies everywhere.  CLI flags override file
config; file config overrides rule defaults.
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping

__all__ = [
    "CheckConfig",
    "DEFAULT_TELEMETRY_NAMES",
    "find_pyproject",
    "load_config",
    "path_in_scope",
]

#: Call/attribute names RPR006 accepts as "emits telemetry" inside a
#: broad exception handler.
DEFAULT_TELEMETRY_NAMES: tuple[str, ...] = (
    "event",
    "emit",
    "error",
    "exception",
    "warning",
    "critical",
    "log",
)


@dataclass(frozen=True)
class CheckConfig:
    """Resolved analyzer configuration.

    ``select`` empty means "all registered rules"; ``ignore`` is applied
    after ``select``.  ``scopes`` maps a rule code to path fragments that
    replace the rule's ``default_scopes``.
    """

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    scopes: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    telemetry_names: tuple[str, ...] = DEFAULT_TELEMETRY_NAMES

    def rule_enabled(self, code: str) -> bool:
        if self.select and code not in self.select:
            return False
        return code not in self.ignore

    def scopes_for(self, code: str, default: tuple[str, ...]) -> tuple[str, ...]:
        override = self.scopes.get(code)
        return tuple(override) if override is not None else default

    def path_excluded(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        return any(fnmatch.fnmatch(norm, pat) for pat in self.exclude)

    def merged(
        self,
        select: tuple[str, ...] | None = None,
        ignore: tuple[str, ...] | None = None,
    ) -> "CheckConfig":
        """CLI-flag overlay: explicit flags replace file-config values."""
        out = self
        if select is not None:
            out = replace(out, select=select)
        if ignore is not None:
            out = replace(out, ignore=ignore)
        return out


def path_in_scope(rel: str, scopes: tuple[str, ...]) -> bool:
    """``rel`` (posix, repro-package-relative) matches any scope fragment.

    A scope matches if it is a leading directory of ``rel``, appears as
    an interior path component, or fnmatch-matches the whole path.
    ``"*"`` (or an empty scope tuple at the rule level) matches all.
    """
    if not scopes:
        return True
    norm = rel.replace("\\", "/")
    for scope in scopes:
        s = scope.rstrip("/")
        if s in ("", "*"):
            return True
        if norm.startswith(s + "/") or norm == s or f"/{s}/" in f"/{norm}":
            return True
        if fnmatch.fnmatch(norm, scope):
            return True
    return False


def find_pyproject(start: Path | None = None) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start`` (default: cwd)."""
    here = (start or Path.cwd()).resolve()
    if here.is_file():
        here = here.parent
    for candidate in (here, *here.parents):
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


def load_config(pyproject: Path | None = None) -> CheckConfig:
    """Load ``[tool.repro-check]`` from ``pyproject`` (or the defaults).

    Unknown keys are ignored (forward compatibility); a missing file or
    missing table yields the default configuration.
    """
    if pyproject is None or not pyproject.is_file():
        return CheckConfig()
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro-check", {})
    if not isinstance(table, dict):
        return CheckConfig()

    def str_tuple(key: str) -> tuple[str, ...]:
        raw = table.get(key, ())
        if isinstance(raw, str):
            return (raw,)
        return tuple(str(x) for x in raw)

    scopes_raw = table.get("scopes", {})
    scopes: dict[str, tuple[str, ...]] = {}
    if isinstance(scopes_raw, dict):
        for code, paths in scopes_raw.items():
            if isinstance(paths, str):
                scopes[str(code)] = (paths,)
            else:
                scopes[str(code)] = tuple(str(p) for p in paths)
    telemetry = str_tuple("telemetry-names") or DEFAULT_TELEMETRY_NAMES
    return CheckConfig(
        select=str_tuple("select"),
        ignore=str_tuple("ignore"),
        exclude=str_tuple("exclude"),
        scopes=scopes,
        telemetry_names=telemetry,
    )
