"""Per-function control-flow graphs and a forward dataflow framework.

This is the flow-sensitive half of :mod:`repro.check`: the syntactic
rules (RPR001-RPR010) judge one AST node at a time, but the concurrency
bug classes introduced by the SPMD transports — mismatched collectives,
shared-memory ownership violations, blocking under a lock — are *path*
properties.  :func:`build_cfg` lowers a function body to a statement-
granularity CFG; :func:`run_forward` runs any :class:`ForwardAnalysis`
over it to a fixpoint; :func:`enumerate_paths` enumerates acyclic paths
for the collective-matching rule.

Design notes (deliberate over/under-approximations):

* One :class:`Block` per statement.  Compound statements (``if``,
  ``while``, ``try`` …) get a *head* block holding the statement; their
  nested bodies become separate blocks.  :func:`stmt_exprs` yields only
  the expressions evaluated *at* a head (the test of an ``if``, the
  iterable of a ``for``), so analyses never see a nested body twice.
* Loops keep an edge from the head to the loop exit even for
  ``while True`` (a conservative over-approximation; path enumeration
  skips back edges, so every loop body is traversed at most once).
* Exception edges are added only *inside* ``try`` statements: every
  block built under a ``try`` gets an edge to that try's landing pad,
  which feeds the handlers and/or the ``finally`` body.  Statements
  outside any ``try`` get no implicit raise edge — the syntactic RPR005
  already polices the no-try-at-all case, and implicit raise edges
  everywhere would drown the ownership analysis in phantom paths.
* ``return``/``break``/``continue`` route through the innermost
  ``finally`` body when one is active, matching CPython semantics
  closely enough for resource-lifecycle analysis (a ``finally`` that
  releases a segment is seen on the return path).
* Nested ``def``/``class``/``lambda`` are opaque single statements; the
  call-graph pass (:mod:`repro.check.callgraph`) summarises them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterator, Sequence, TypeVar

__all__ = [
    "Block",
    "CFG",
    "ForwardAnalysis",
    "build_cfg",
    "dominators",
    "enumerate_paths",
    "function_nodes",
    "run_forward",
    "stmt_exprs",
]

T = TypeVar("T")

#: Statement types treated as opaque leaves (their bodies are separate scopes).
_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass
class Block:
    """One CFG node: a single statement (or a synthetic empty block)."""

    index: int
    stmt: ast.AST | None = None  # None for synthetic entry/exit/landing blocks
    label: str = ""
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        what = self.label or (type(self.stmt).__name__ if self.stmt else "?")
        return f"Block({self.index}, {what}, succs={self.succs})"


@dataclass
class CFG:
    """Control-flow graph of one function (or module) body."""

    blocks: list[Block]
    entry: int
    exit: int
    #: statement -> index of the block holding it (head block for compounds)
    block_of: dict[ast.AST, int] = field(default_factory=dict)

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def reachable(self) -> set[int]:
        """Block indices reachable from the entry."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for s in self.blocks[stack.pop()].succs:
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return seen


@dataclass
class _TryFrame:
    """Per-``try`` routing targets active while its body is being built."""

    landing: int | None = None  # exception landing pad
    fin_landing: int | None = None  # finally entry collector (returns route here)


class _Builder:
    def __init__(self, exception_edges: bool = True) -> None:
        self.cfg = CFG(blocks=[], entry=0, exit=0)
        self.exception_edges = exception_edges
        # (head index, list of break-source blocks) per active loop
        self.loops: list[tuple[int, list[int]]] = []
        self.frames: list[_TryFrame] = []

    # -- low-level helpers ----------------------------------------------

    def new_block(self, stmt: ast.AST | None = None, label: str = "") -> int:
        idx = len(self.cfg.blocks)
        self.cfg.blocks.append(Block(index=idx, stmt=stmt, label=label))
        if stmt is not None:
            self.cfg.block_of[stmt] = idx
        return idx

    def connect(self, frontier: Sequence[int], dst: int) -> None:
        for src in frontier:
            self.cfg.add_edge(src, dst)

    def _innermost(self, attr: str) -> int | None:
        for frame in reversed(self.frames):
            target: int | None = getattr(frame, attr)
            if target is not None:
                return target
        return None

    def _exit_target(self) -> int:
        """Where ``return`` goes: innermost finally, else the function exit."""
        fin = self._innermost("fin_landing")
        return fin if fin is not None else self.cfg.exit

    def _raise_target(self) -> int:
        """Where an explicit ``raise`` goes."""
        landing = self._innermost("landing")
        if landing is not None:
            return landing
        return self._exit_target()

    # -- recursive construction -----------------------------------------

    def build_seq(self, stmts: Sequence[ast.stmt], frontier: list[int]) -> list[int]:
        """Append blocks for ``stmts``; return the new fallthrough frontier."""
        for stmt in stmts:
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def build_stmt(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        head = self.new_block(stmt)
        self.connect(frontier, head)
        if self.exception_edges and self.frames:
            landing = self._innermost("landing")
            if landing is not None:
                self.cfg.add_edge(head, landing)

        if isinstance(stmt, (ast.Return, ast.Raise)):
            target = self._exit_target() if isinstance(stmt, ast.Return) else self._raise_target()
            self.cfg.add_edge(head, target)
            return []
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1][1].append(head)
            return []
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self.cfg.add_edge(head, self.loops[-1][0])
            return []
        if isinstance(stmt, ast.If):
            then_f = self.build_seq(stmt.body, [head])
            else_f = self.build_seq(stmt.orelse, [head]) if stmt.orelse else [head]
            return then_f + else_f
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self.loops.append((head, []))
            body_f = self.build_seq(stmt.body, [head])
            self.connect(body_f, head)  # back edge
            _, breaks = self.loops.pop()
            out = self.build_seq(stmt.orelse, [head]) if stmt.orelse else [head]
            return out + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.build_seq(stmt.body, [head])
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, head)
        if isinstance(stmt, ast.Match):
            out: list[int] = [head]  # no-case-matched fallthrough
            for case in stmt.cases:
                out += self.build_seq(case.body, [head])
            return out
        # simple statements, opaque defs, assert, expressions …
        return [head]

    def _build_try(self, stmt: ast.Try, head: int) -> list[int]:
        frame = _TryFrame()
        if stmt.handlers or stmt.finalbody:
            frame.landing = self.new_block(label="landing")
        if stmt.finalbody:
            frame.fin_landing = self.new_block(label="fin-landing")

        self.frames.append(frame)
        body_f = self.build_seq(stmt.body, [head])
        if stmt.orelse:
            body_f = self.build_seq(stmt.orelse, body_f)
        self.frames.pop()

        handler_f: list[int] = []
        for handler in stmt.handlers:
            h_head = self.new_block(handler)
            assert frame.landing is not None
            self.cfg.add_edge(frame.landing, h_head)
            # a raise inside a handler propagates outward, and with a
            # finally present the handler body routes through it too
            self.frames.append(_TryFrame(fin_landing=frame.fin_landing))
            handler_f += self.build_seq(handler.body, [h_head])
            self.frames.pop()

        if stmt.finalbody:
            assert frame.fin_landing is not None
            entries = body_f + handler_f + [frame.fin_landing]
            if frame.landing is not None and not stmt.handlers:
                entries.append(frame.landing)  # uncaught exception path
            fin_f = self.build_seq(stmt.finalbody, entries)
            # the finally body also completes on the exceptional / early-
            # return paths, which leave the statement entirely
            outer = self._raise_target() if self.frames else self.cfg.exit
            self.connect(fin_f, outer)
            return fin_f
        if frame.landing is not None and not stmt.handlers:
            self.cfg.add_edge(frame.landing, self._raise_target())
        return body_f + handler_f


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
    exception_edges: bool = True,
) -> CFG:
    """Build the CFG of ``func``'s body (nested defs stay opaque)."""
    builder = _Builder(exception_edges=exception_edges)
    entry = builder.new_block(label="entry")
    builder.cfg.entry = entry
    exit_idx = builder.new_block(label="exit")
    builder.cfg.exit = exit_idx
    frontier = builder.build_seq(func.body, [entry])
    builder.connect(frontier, exit_idx)
    # a function whose every path returns/raises still needs exit wired
    cfg = builder.cfg
    if not cfg.blocks[exit_idx].preds:
        cfg.add_edge(entry, exit_idx)
    return cfg


def function_nodes(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in ``tree`` (methods included)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def stmt_exprs(stmt: ast.AST | None) -> Iterator[ast.AST]:
    """AST nodes evaluated *at* this block, excluding nested statement bodies.

    For a compound statement only the head expressions are yielded (an
    ``if``'s test, a ``for``'s target/iterable, a ``with``'s context
    expressions); nested bodies live in their own blocks.  Opaque
    definitions yield nothing.
    """
    if stmt is None or isinstance(stmt, _OPAQUE):
        return
    if isinstance(stmt, (ast.If, ast.While)):
        yield from ast.walk(stmt.test)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from ast.walk(stmt.target)
        yield from ast.walk(stmt.iter)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from ast.walk(item.context_expr)
            if item.optional_vars is not None:
                yield from ast.walk(item.optional_vars)
    elif isinstance(stmt, ast.Try):
        return
    elif isinstance(stmt, ast.Match):
        yield from ast.walk(stmt.subject)
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.type is not None:
            yield from ast.walk(stmt.type)
    else:
        yield from ast.walk(stmt)


# -- dominators ---------------------------------------------------------------


def dominators(cfg: CFG) -> dict[int, set[int]]:
    """Dominator sets (classic iterative algorithm) over reachable blocks.

    ``result[b]`` is the set of blocks that dominate ``b``; the entry
    dominates everything and every block dominates itself.
    """
    reach = cfg.reachable()
    doms: dict[int, set[int]] = {b: set(reach) for b in reach}
    doms[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for b in sorted(reach):
            if b == cfg.entry:
                continue
            preds = [p for p in cfg.blocks[b].preds if p in reach]
            if not preds:
                new = {b}
            else:
                new = set.intersection(*(doms[p] for p in preds)) | {b}
            if new != doms[b]:
                doms[b] = new
                changed = True
    return doms


# -- forward dataflow ---------------------------------------------------------


class ForwardAnalysis(Generic[T]):
    """One forward dataflow problem: lattice value ``T`` per block edge.

    Subclasses define the entry fact, the bottom element, the join, and
    the per-block transfer function.  Facts must be immutable (or
    treated as such) and comparable with ``==``.
    """

    def initial(self) -> T:
        raise NotImplementedError

    def bottom(self) -> T:
        raise NotImplementedError

    def join(self, a: T, b: T) -> T:
        raise NotImplementedError

    def transfer(self, block: Block, fact: T) -> T:
        raise NotImplementedError


def run_forward(cfg: CFG, analysis: ForwardAnalysis[T]) -> dict[int, T]:
    """Worklist fixpoint; returns the IN fact of every reachable block."""
    reach = cfg.reachable()
    in_facts: dict[int, T] = {b: analysis.bottom() for b in reach}
    in_facts[cfg.entry] = analysis.initial()
    out_facts: dict[int, T] = {
        b: analysis.transfer(cfg.blocks[b], in_facts[b]) for b in reach
    }
    work = sorted(reach)
    while work:
        b = work.pop(0)
        preds = [p for p in cfg.blocks[b].preds if p in reach]
        if preds:
            fact = out_facts[preds[0]]
            for p in preds[1:]:
                fact = analysis.join(fact, out_facts[p])
            if b == cfg.entry:
                fact = analysis.join(fact, analysis.initial())
        else:
            fact = analysis.initial() if b == cfg.entry else analysis.bottom()
        out = analysis.transfer(cfg.blocks[b], fact)
        if fact != in_facts[b] or out != out_facts[b]:
            in_facts[b] = fact
            out_facts[b] = out
            for s in cfg.blocks[b].succs:
                if s in reach and s not in work:
                    work.append(s)
    return in_facts


# -- path enumeration ---------------------------------------------------------


def enumerate_paths(
    cfg: CFG,
    start: int,
    limit: int = 128,
    keep: Callable[[Block], bool] | None = None,
) -> list[tuple[int, ...]]:
    """Acyclic block-index paths from ``start`` to the exit (capped).

    Back edges are skipped (each block appears at most once per path),
    so loop bodies contribute one traversal.  When ``limit`` is hit the
    enumeration stops — callers must treat the result as a sample.  With
    ``keep`` given, returned paths are filtered to blocks it accepts
    (the full graph is still traversed).
    """
    paths: list[tuple[int, ...]] = []
    stack: list[tuple[int, tuple[int, ...], frozenset[int]]] = [
        (start, (start,), frozenset([start]))
    ]
    while stack and len(paths) < limit:
        node, path, seen = stack.pop()
        if node == cfg.exit:
            if keep is None:
                paths.append(path)
            else:
                paths.append(tuple(b for b in path if keep(cfg.blocks[b])))
            continue
        for s in reversed(cfg.blocks[node].succs):
            if s not in seen:
                stack.append((s, path + (s,), seen | {s}))
    return paths
