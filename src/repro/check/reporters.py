"""Deterministic text and JSON reporters for analyzer results.

Both formats are byte-stable for a given tree: findings are sorted by
(path, line, col, code) and JSON keys are emitted in sorted order, so
the golden-report test (and any diff against a previous CI run) is
meaningful.
"""

from __future__ import annotations

import json

from .analyzer import AnalysisResult

__all__ = ["render_json", "render_text"]

#: JSON report schema version (bump on breaking shape changes).
JSON_VERSION = 1


def render_text(result: AnalysisResult, statistics: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.format_text() for f in sorted(result.findings)]
    if statistics and result.counts:
        lines.append("")
        for code, n in result.counts.items():
            lines.append(f"{code:>8}  x{n}")
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"repro.check: {len(result.findings)} {noun} "
        f"in {result.files_checked} file(s)"
    )
    if result.suppressed:
        summary += f" ({result.suppressed} suppressed via noqa)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report (stable key order, trailing newline)."""
    from .rules import all_rules

    rules = all_rules()
    payload = {
        "tool": "repro.check",
        "version": JSON_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "rules_run": sorted(result.rules_run),
        "counts": result.counts,
        "findings": [f.to_dict() for f in sorted(result.findings)],
        "rule_index": {
            code: {"name": rule.name, "summary": rule.summary}
            for code, rule in rules.items()
            if code in result.rules_run
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
