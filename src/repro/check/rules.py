"""The determinism & resource-safety rule set (RPR001-RPR010).

Every rule is grounded in an invariant this codebase actually relies
on: the work-stealing engine's bit-identical serial/parallel guarantee
(:mod:`repro.exec`), the order-stable float reductions feeding the
merged Level-3 catalog, seeded RNG everywhere a workload is drawn, and
leak-free shared-memory lifecycles.  Rules are pluggable: subclass
:class:`Rule`, decorate with :func:`register_rule`, and the analyzer,
CLI, config, and reporters pick the new code up automatically.

===========  ==================================================================
Code         Invariant enforced
===========  ==================================================================
``RPR001``   No unseeded ``np.random.default_rng()`` / legacy global RNG state.
``RPR002``   No set/dict iteration feeding numerical accumulation (order-
             dependent float sums break bit-identical reductions).
``RPR003``   No wall-clock reads inside pure analysis kernels (timing belongs
             to :mod:`repro.obs`).
``RPR004``   No float ``==`` / ``!=`` comparisons.
``RPR005``   Shared-memory segments are constructed under a context manager
             or a try/finally that releases them (no shm leaks).
``RPR006``   No broad ``except Exception`` that swallows silently — either
             re-raise or emit a telemetry event.
``RPR007``   No mutable default arguments.
``RPR008``   Spans are used in context-manager form only (no manual
             begin/end, which leaks open spans on error paths).
``RPR009``   No hand-rolled ``time.sleep`` retry loops — retrying goes
             through :class:`repro.faults.RetryPolicy` (seeded backoff,
             telemetry, fault injection).
``RPR010``   Library code must not ``print()`` — diagnostics go through
             :mod:`repro.obs` events so they reach the run journal and
             the JSONL sinks (CLI entry points are exempt).
``RPR011``   Every rank executes the same ordered collective sequence — no
             collective reachable on only some paths of a rank-dependent
             branch (flow-sensitive; :mod:`repro.check.concurrency`).
``RPR012``   Shared-memory ownership lifecycle as dataflow: create →
             transfer → close, no use-after-transfer / double release /
             leak-on-exception (supersedes RPR005 where flow info exists).
``RPR013``   No blocking call (``Queue.get``/``join``/``recv``/``barrier``)
             while holding a lock (condition waits on the held object exempt).
``RPR014``   No unbounded blocking receive in a loop without a timeout,
             sentinel ``break``, or abort-flag check.
``RPR015``   No process fork/spawn after background threads have started
             in the same function (fork-safety hazard).
===========  ==================================================================

RPR001-RPR010 are the syntactic rules defined below; RPR011-RPR015 are
the flow-sensitive concurrency pack in :mod:`repro.check.concurrency`,
built on the CFG/dataflow framework in :mod:`repro.check.flow`.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

from .analyzer import ModuleContext, dotted_chain
from .findings import Finding

__all__ = ["Rule", "all_rules", "register_rule"]


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set ``code`` (``RPRxxx``), ``name``, ``summary``, and
    optionally ``default_scopes`` (repro-package-relative path fragments
    the rule is limited to; empty = everywhere), then implement
    :meth:`check` yielding :class:`Finding` objects.
    """

    code: str = "RPR000"
    name: str = "abstract"
    summary: str = ""
    default_scopes: tuple[str, ...] = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return ctx.finding(self.code, message, node)


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its code."""
    if not (cls.code.startswith("RPR") and cls.code[3:].isdigit()):
        raise ValueError(f"rule code must look like RPRxxx, got {cls.code!r}")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls()
    return cls


def all_rules() -> dict[str, Rule]:
    """Registered rules, keyed and ordered by code."""
    return dict(sorted(_REGISTRY.items()))


# -- shared helpers -----------------------------------------------------------


def _walk_calls(ctx: ModuleContext) -> Iterator[tuple[ast.Call, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            yield node, ctx.resolve_call(node)


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _contains(tree_nodes: list[ast.stmt], predicate: Callable[[ast.AST], bool]) -> bool:
    return any(predicate(n) for stmt in tree_nodes for n in ast.walk(stmt))


# -- RPR001: unseeded / legacy-global RNG -------------------------------------

_LEGACY_GLOBAL_RNG = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "uniform",
        "normal",
        "standard_normal",
        "choice",
        "shuffle",
        "permutation",
        "poisson",
        "exponential",
        "binomial",
        "get_state",
        "set_state",
    }
)


@register_rule
class UnseededRNG(Rule):
    """Seeded RNG everywhere: the workload profiles, ICs, and schedulers
    must be reproducible run-to-run, or the serial-vs-parallel
    bit-identity comparison has nothing stable to compare."""

    code = "RPR001"
    name = "unseeded-rng"
    summary = "unseeded default_rng() / legacy np.random global state"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call, resolved in _walk_calls(ctx):
            if resolved.endswith("numpy.random.default_rng") or resolved == "default_rng":
                if self._unseeded(call):
                    yield self.finding(
                        ctx,
                        call,
                        "np.random.default_rng() without an explicit seed; thread "
                        "the seed from an argument (seed-flow contract)",
                    )
            elif resolved.endswith("numpy.random.RandomState") or resolved == "RandomState":
                if self._unseeded(call):
                    yield self.finding(
                        ctx, call, "unseeded np.random.RandomState(); pass an explicit seed"
                    )
            else:
                parts = resolved.split(".")
                if (
                    len(parts) >= 3
                    and parts[-3] == "numpy"
                    and parts[-2] == "random"
                    and parts[-1] in _LEGACY_GLOBAL_RNG
                ):
                    yield self.finding(
                        ctx,
                        call,
                        f"legacy global-state RNG np.random.{parts[-1]}(); use a "
                        "seeded np.random.default_rng(seed) Generator instead",
                    )

    @staticmethod
    def _unseeded(call: ast.Call) -> bool:
        if call.args and not _is_none(call.args[0]):
            return False
        for kw in call.keywords:
            if kw.arg == "seed" and not _is_none(kw.value):
                return False
        return not call.args or _is_none(call.args[0])


# -- RPR002: unordered iteration feeding numerical accumulation ---------------


def _unordered_kind(node: ast.expr, ctx: ModuleContext) -> str | None:
    """Classify an iterable expression as unordered (set/dict view)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node)
        if resolved in ("set", "frozenset"):
            return "set"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("values", "items", "keys")
            and not node.args
            and not node.keywords
        ):
            return f"dict .{node.func.attr}() view"
    return None


def _has_accumulation(body: list[ast.stmt]) -> bool:
    """Loop body contains ``acc += x`` / ``acc = acc + x`` style updates."""
    for stmt in body:
        for n in ast.walk(stmt):
            if isinstance(n, ast.AugAssign) and isinstance(n.op, (ast.Add, ast.Sub, ast.Mult)):
                return True
            if (
                isinstance(n, ast.Assign)
                and len(n.targets) == 1
                and isinstance(n.targets[0], ast.Name)
                and isinstance(n.value, ast.BinOp)
                and isinstance(n.value.op, (ast.Add, ast.Sub, ast.Mult))
            ):
                target = n.targets[0].id
                if any(
                    isinstance(sub, ast.Name) and sub.id == target
                    for sub in ast.walk(n.value)
                ):
                    return True
    return False


@register_rule
class UnorderedAccumulation(Rule):
    """Float addition is not associative: summing over a set (or a dict
    view whose insertion order differs across ranks) yields different
    bits on different schedules — exactly what the merged Level-3
    catalog comparison would flag as a corrupted reduction."""

    code = "RPR002"
    name = "unordered-accumulation"
    summary = "set/dict iteration feeding numerical accumulation"
    default_scopes = ("analysis", "exec", "dataparallel")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                kind = _unordered_kind(node.iter, ctx)
                if kind and _has_accumulation(node.body):
                    yield self.finding(
                        ctx,
                        node,
                        f"iteration over a {kind} feeds a numerical accumulation; "
                        "order-dependent float sums break bit-identical reductions "
                        "(iterate a sorted/stable sequence)",
                    )
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve_call(node)
                if resolved == "sum" and node.args:
                    kind = _unordered_kind(node.args[0], ctx)
                    if kind:
                        yield self.finding(
                            ctx,
                            node,
                            f"sum() over a {kind} is order-dependent for floats; "
                            "sort the operands first",
                        )


# -- RPR003: wall-clock calls in pure analysis kernels ------------------------

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
    }
)


@register_rule
class WallClockInKernel(Rule):
    """Pure analysis kernels must be functions of their inputs only.
    Timing belongs to :mod:`repro.obs` spans (which wrap the kernel from
    the outside); a clock read inside a kernel is hidden state that the
    determinism harness cannot control."""

    code = "RPR003"
    name = "wall-clock-in-kernel"
    summary = "wall-clock call inside a pure analysis kernel"
    #: the PM hot path (``sim/pmsolver.py``) and the shared per-step
    #: spatial cache (``insitu/spatial.py``) are pure kernels too — their
    #: timing goes through :func:`repro.obs.timed`, so clock reads inside
    #: them are a determinism bug, not instrumentation.  The ``parallel``
    #: scope covers the whole SPMD substrate including the process
    #: transport (``parallel/transport.py``): rank code must be replayable,
    #: so its polling loops budget in fixed poll *steps*, never wall time.
    #: The ``service`` scope holds the campaign service to the same bar:
    #: store/worker/packer time comes from an injectable clock (held by
    #: reference), so kill/resume drills replay bit-identically.
    default_scopes = (
        "analysis",
        "dataparallel",
        "parallel",
        "io",
        "streaming",
        "service",
        "sim/pmsolver.py",
        "insitu/spatial.py",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call, resolved in _walk_calls(ctx):
            if resolved in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    call,
                    f"wall-clock call {resolved}() inside a pure analysis kernel; "
                    "timing belongs in repro.obs instrumentation (allowed only in obs/)",
                )


# -- RPR004: float equality ----------------------------------------------------


def _is_float_expr(node: ast.expr, ctx: ModuleContext) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_expr(node.operand, ctx)
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node)
        if resolved == "float" or resolved.startswith("numpy.float"):
            return True
    return False


@register_rule
class FloatEquality(Rule):
    """``==`` on floats silently depends on rounding history; a kernel
    that "works" serially can disagree with its parallel twin by one
    ulp and flip the comparison.  Use tolerances (np.isclose) or
    integer/bit comparisons."""

    code = "RPR004"
    name = "float-equality"
    summary = "float ==/!= comparison"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands[:-1], operands[1:]):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    _is_float_expr(left, ctx) or _is_float_expr(right, ctx)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "float ==/!= comparison is rounding-history-dependent; "
                        "use math.isclose/np.isclose or an explicit tolerance",
                    )
                    break


# -- RPR005: shared-memory lifecycle ------------------------------------------

_SHM_TAILS: tuple[tuple[str, ...], ...] = (
    ("SharedMemory",),
    ("SharedParticleStore", "create"),
    ("SharedParticleStore", "attach"),
)


@register_rule
class SharedMemoryLifecycle(Rule):
    """A shared-memory segment created without a context manager or a
    try/finally that unlinks it survives the process — the classic shm
    leak that eventually fills ``/dev/shm`` on a long co-scheduling
    campaign."""

    code = "RPR005"
    name = "shm-lifecycle"
    summary = "shared-memory construction outside with/try-finally"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call, _resolved in _walk_calls(ctx):
            chain = dotted_chain(call.func)
            if not chain:
                continue
            if not any(
                chain[-len(tail) :] == tail for tail in _SHM_TAILS if len(chain) >= len(tail)
            ):
                continue
            if self._lifecycle_ok(call, ctx):
                continue
            yield self.finding(
                ctx,
                call,
                f"{'.'.join(chain)}(...) outside a context manager or try/finally; "
                "shared-memory segments leak unless close()/unlink() is guaranteed",
            )

    @staticmethod
    def _lifecycle_ok(call: ast.Call, ctx: ModuleContext) -> bool:
        for anc in ctx.ancestors(call):
            if isinstance(anc, (ast.withitem, ast.Try)):
                return True
        parent = ctx.parent(call)
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            var = parent.targets[0].id
            scope = ctx.enclosing_scope(call)
            for node in ast.walk(scope):
                if not isinstance(node, ast.Try):
                    continue
                guarded = node.finalbody + [s for h in node.handlers for s in h.body]
                if _contains(guarded, lambda n: isinstance(n, ast.Name) and n.id == var):
                    return True
        # RPR012 supersedes this rule where flow info exists: accept any
        # construction the ownership dataflow proves released on all paths.
        from .concurrency import flow_proves_release

        return flow_proves_release(ctx, call)


# -- RPR006: silent broad exception handlers ----------------------------------


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    names = [t] if not isinstance(t, ast.Tuple) else list(t.elts)
    for n in names:
        chain = dotted_chain(n) if isinstance(n, (ast.Name, ast.Attribute)) else ()
        if chain and chain[-1] in ("Exception", "BaseException"):
            return True
    return False


@register_rule
class SilentBroadExcept(Rule):
    """Workflow systems fail *silently* when task code swallows broad
    exceptions: the listener keeps polling, the catalog quietly misses
    a halo.  A broad handler must re-raise or emit a telemetry event so
    the failure is observable."""

    code = "RPR006"
    name = "silent-broad-except"
    summary = "broad except that swallows without telemetry"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        telemetry = set(ctx.config.telemetry_names)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or not _is_broad(node):
                continue
            if _contains(node.body, lambda n: isinstance(n, ast.Raise)):
                continue
            if _contains(
                node.body,
                lambda n: isinstance(n, ast.Call)
                and (
                    (isinstance(n.func, ast.Attribute) and n.func.attr in telemetry)
                    or (isinstance(n.func, ast.Name) and n.func.id in telemetry)
                ),
            ):
                continue
            yield self.finding(
                ctx,
                node,
                "broad except swallows the error without emitting a telemetry "
                "event; narrow the exception type, re-raise, or rec.event(...) it",
            )


# -- RPR007: mutable default arguments ----------------------------------------

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


@register_rule
class MutableDefaultArg(Rule):
    """A mutable default is shared across calls — per-halo state bleeds
    between work items, which on the parallel path means results depend
    on which worker processed which halo first."""

    code = "RPR007"
    name = "mutable-default-arg"
    summary = "mutable default argument"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for default in [*node.args.defaults, *node.args.kw_defaults]:
                if default is None:
                    continue
                if self._mutable(default, ctx):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(); use None and "
                        "construct inside the function",
                    )

    @staticmethod
    def _mutable(node: ast.expr, ctx: ModuleContext) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return isinstance(node, ast.Call) and ctx.resolve_call(node) in _MUTABLE_FACTORIES


# -- RPR008: span misuse -------------------------------------------------------


@register_rule
class SpanOutsideWith(Rule):
    """A span handle whose ``__enter__``/``__exit__`` are driven by hand
    leaks an open span whenever the code between begin and end raises —
    the Chrome trace then shows phantom never-ending phases.  Only the
    ``with rec.span(...)`` form (or returning the handle from a factory)
    is allowed."""

    code = "RPR008"
    name = "span-outside-with"
    summary = "span begin/end outside context-manager form"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "__enter__",
                "__exit__",
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"manual {node.func.attr}() call; use the `with` statement",
                )
                continue
            if not (isinstance(node.func, ast.Attribute) and node.func.attr == "span"):
                continue
            if self._span_ok(node, ctx):
                continue
            yield self.finding(
                ctx,
                node,
                ".span(...) used outside `with` context-manager form; manual "
                "begin/end leaks open spans on error paths",
            )

    @staticmethod
    def _span_ok(call: ast.Call, ctx: ModuleContext) -> bool:
        parent = ctx.parent(call)
        if isinstance(parent, ast.Return):
            return True  # factory forwarding (e.g. recorder.span -> tracer.span)
        for anc in ctx.ancestors(call):
            if isinstance(anc, ast.withitem):
                return True
            if isinstance(anc, ast.stmt):
                break
        return False


# -- RPR009: hand-rolled sleep/retry loops ------------------------------------


@register_rule
class SleepRetryLoop(Rule):
    """A ``while``/``for`` loop that catches exceptions and ``time.sleep``\\ s
    before trying again is a shadow retry mechanism: its backoff is
    unseeded (two runs wait differently), it emits no ``retry.*``
    telemetry, and the fault-injection sites cannot see its attempts.
    All retrying goes through :class:`repro.faults.RetryPolicy`, which
    provides deterministic seeded jitter, capped backoff, and the
    ``retries_total`` accounting that docs/failures.md documents."""

    code = "RPR009"
    name = "sleep-retry-loop"
    summary = "hand-rolled time.sleep retry loop (use repro.faults.RetryPolicy)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.While, ast.For)):
                continue
            own = list(self._own_nodes(node))
            has_try = any(isinstance(n, ast.Try) for n in own)
            sleeps = [
                n
                for n in own
                if isinstance(n, ast.Call) and ctx.resolve_call(n) == "time.sleep"
            ]
            if has_try and sleeps:
                yield self.finding(
                    ctx,
                    sleeps[0],
                    "time.sleep inside an exception-handling retry loop; use "
                    "repro.faults.RetryPolicy (seeded backoff + telemetry) instead",
                )

    @staticmethod
    def _own_nodes(loop: ast.While | ast.For) -> Iterator[ast.AST]:
        """Walk the loop body without descending into nested loops or
        nested function/class definitions (those are judged on their
        own)."""
        stack: list[ast.AST] = list(loop.body) + list(loop.orelse)
        stop = (ast.While, ast.For, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        while stack:
            n = stack.pop()
            yield n
            if isinstance(n, stop):
                continue
            stack.extend(ast.iter_child_nodes(n))


# -- RPR010: print() in library code ------------------------------------------

#: Module basenames that ARE the user-facing console — the one place
#: ``print`` is the correct output channel.
_CLI_BASENAMES = frozenset({"cli.py", "__main__.py"})


@register_rule
class LibraryPrint(Rule):
    """``print()`` in library code is telemetry that escapes the run
    journal: it cannot be correlated to a run / step / rank, does not
    reach the JSONL sinks or ``python -m repro.obs tail``, and garbles
    the output of the CLIs that legitimately own stdout.  Diagnostics
    go through :meth:`repro.obs.TelemetryRecorder.event` (structured,
    journaled, rate-bounded).  CLI surfaces (``cli.py`` /
    ``__main__.py``) are exempt — printing is their job."""

    code = "RPR010"
    name = "library-print"
    summary = "print() in library code (route through repro.obs events)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        import os

        if os.path.basename(ctx.path) in _CLI_BASENAMES:
            return
        for node, resolved in _walk_calls(ctx):
            if resolved == "print":
                yield self.finding(
                    ctx,
                    node,
                    "print() in library code bypasses the run journal; emit a "
                    "repro.obs event (or move the output to a cli.py/__main__.py "
                    "surface)",
                )


# -- flow-sensitive concurrency pack (RPR011-RPR015) --------------------------

# Importing the module registers its rules; done last so the base class
# and registry above exist when the pack's @register_rule decorators run.
from . import concurrency as _concurrency  # noqa: E402,F401
