"""The analysis driver: parse modules, run rules, apply ``noqa``.

One :class:`ModuleContext` is built per file (AST + parent links + a
resolved import map + the ``# repro: noqa`` suppression table); every
enabled, in-scope rule then walks it.  Scoping and suppression happen
here so individual rules stay small and order-independent.

Suppression syntax, on the offending line::

    x = np.random.default_rng()          # repro: noqa            (all)
    x = np.random.default_rng()          # repro: noqa[RPR001]    (one)
    a = b                                # repro: noqa[RPR001,RPR004]
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .config import CheckConfig, path_in_scope
from .findings import Finding

__all__ = [
    "AnalysisResult",
    "ModuleContext",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "module_rel",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?")

#: Code attached to files that fail to parse.
PARSE_ERROR_CODE = "RPR000"


def module_rel(path: str) -> str:
    """Path relative to the ``repro`` package root, for rule scoping.

    ``src/repro/analysis/centers.py`` -> ``analysis/centers.py``.  Paths
    outside a ``repro`` package are returned as given (posix-normalized)
    so fixture files can opt into scoped rules by spelling a scope-like
    path, e.g. ``analysis/snippet.py``.
    """
    norm = path.replace("\\", "/")
    for marker in ("/repro/", "src/repro/"):
        if marker in norm:
            return norm.rsplit(marker, 1)[1]
    if norm.startswith("repro/"):
        return norm[len("repro/") :]
    return norm.lstrip("./")


class _ImportMap:
    """Resolves local names to canonical dotted module paths.

    ``import numpy as np`` makes ``np.random.default_rng`` resolve to
    ``numpy.random.default_rng``; ``from time import perf_counter as t``
    makes ``t`` resolve to ``time.perf_counter``.  Relative imports keep
    their imported-name tail (``from .sharedmem import SharedParticleStore``
    -> ``SharedParticleStore``), which is what the lifecycle rules match.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:  # ``import numpy.random`` binds the head name
                        head = alias.name.split(".", 1)[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    target = f"{base}.{alias.name}" if base and node.level == 0 else alias.name
                    self.aliases[alias.asname or alias.name] = target

    def resolve(self, chain: Sequence[str]) -> str:
        if not chain:
            return ""
        head, *rest = chain
        resolved_head = self.aliases.get(head, head)
        return ".".join([resolved_head, *rest])


def dotted_chain(node: ast.expr) -> tuple[str, ...]:
    """``a.b.c`` -> ``("a", "b", "c")``; empty tuple if not a pure chain."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return tuple(reversed(parts))
    return ()


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    path: str
    rel: str
    source: str
    tree: ast.Module
    config: CheckConfig
    lines: list[str] = field(default_factory=list)
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._imports = _ImportMap(self.tree)
        self._noqa = _parse_noqa(self.lines)

    # -- resolution helpers ---------------------------------------------------

    def resolve_call(self, node: ast.Call) -> str:
        """Canonical dotted name of the called function ("" if dynamic)."""
        chain = dotted_chain(node.func)
        return self._imports.resolve(chain) if chain else ""

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function (or the module)."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return self.tree

    # -- suppression ----------------------------------------------------------

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self._noqa.get(line)
        if codes is None:
            return False
        return not codes or code in codes

    def finding(self, code: str, message: str, node: ast.AST) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


def _parse_noqa(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Line (1-based) -> suppressed codes (empty frozenset = all codes)."""
    table: dict[int, frozenset[str]] = {}
    for i, text in enumerate(lines, start=1):
        m = _NOQA_RE.search(text)
        if m is None:
            continue
        raw = m.group("codes")
        if raw is None:
            table[i] = frozenset()
        else:
            table[i] = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
    return table


# -- driver -------------------------------------------------------------------


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def analyze_source(
    source: str,
    path: str = "<string>",
    config: CheckConfig | None = None,
    rel: str | None = None,
) -> AnalysisResult:
    """Analyze one module given as a string (the unit-test entry point)."""
    from .rules import all_rules

    cfg = config or CheckConfig()
    rel_path = rel if rel is not None else module_rel(path)
    result = AnalysisResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                code=PARSE_ERROR_CODE,
                message=f"could not parse module: {exc.msg}",
            )
        )
        return result

    ctx = ModuleContext(path=path, rel=rel_path, source=source, tree=tree, config=cfg)
    ran: list[str] = []
    for code, rule in all_rules().items():
        if not cfg.rule_enabled(code):
            continue
        if not path_in_scope(rel_path, cfg.scopes_for(code, rule.default_scopes)):
            continue
        ran.append(code)
        for f in rule.check(ctx):
            if ctx.is_suppressed(f.code, f.line):
                result.suppressed += 1
            else:
                result.findings.append(f)
    result.rules_run = tuple(ran)
    result.findings.sort()
    return result


def analyze_file(path: str | Path, config: CheckConfig | None = None) -> AnalysisResult:
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        res = AnalysisResult(files_checked=1)
        res.findings.append(
            Finding(path=str(p), line=0, col=0, code=PARSE_ERROR_CODE, message=str(exc))
        )
        return res
    return analyze_source(source, path=str(p), config=config)


def iter_python_files(
    paths: Iterable[str | Path], config: CheckConfig | None = None
) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    cfg = config or CheckConfig()
    seen: set[Path] = set()
    collected: list[Path] = []
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for c in candidates:
            rc = c.resolve()
            if rc in seen or cfg.path_excluded(str(c)):
                continue
            seen.add(rc)
            collected.append(c)
    return iter(sorted(collected))


def analyze_paths(
    paths: Iterable[str | Path], config: CheckConfig | None = None
) -> AnalysisResult:
    """Analyze every ``.py`` file under ``paths``; aggregate the results."""
    cfg = config or CheckConfig()
    total = AnalysisResult()
    rules_run: set[str] = set()
    for p in iter_python_files(paths, cfg):
        res = analyze_file(p, cfg)
        total.findings.extend(res.findings)
        total.files_checked += res.files_checked
        total.suppressed += res.suppressed
        rules_run.update(res.rules_run)
    total.rules_run = tuple(sorted(rules_run))
    total.findings.sort()
    return total
