"""Flow-sensitive concurrency rules for the SPMD/pipeline layer (RPR011-RPR015).

PR 7 made the workflow genuinely concurrent: forked ranks exchanging
collectives, shared-memory segments whose ownership crosses a process
boundary, a persistent worker pool, and a pipeline thread.  The bug
classes that come with that — mismatched collectives that deadlock,
use-after-transfer on a shared segment, blocking under a lock — are
*path* properties, invisible to the syntactic rules.  This pack runs the
CFG + dataflow framework (:mod:`repro.check.flow`) and the module-local
call-graph summaries (:mod:`repro.check.callgraph`) over every function:

``RPR011`` collective-matching
    A collective reachable under a rank-dependent branch on only some
    paths: ranks taking different arms never rendezvous — static
    deadlock.  Per rank-tainted branch head, the sets of ordered
    collective sequences along each arm's (acyclic) paths to the exit
    must be equal.

``RPR012`` shared-memory ownership lifecycle
    ``SharedParticleStore.create`` / ``attach(..., adopt=True)`` makes
    the variable an *owner*; ownership flows create → transfer → close.
    Flags use-after-transfer, double release, and paths that reach the
    function exit still owning the segment (leak — including the
    exception paths through ``try`` blocks).  Supersedes the syntactic
    RPR005 where flow info exists: a tracked variable proven released on
    every path satisfies RPR005 without a ``with``/``try``.

``RPR013`` blocking call while holding a lock
    ``Queue.get`` / ``join`` / ``recv`` / ``barrier`` inside a ``with
    <lock>:`` region (or between tracked ``acquire``/``release``) can
    deadlock against the peer that needs the lock to make progress.
    Condition-variable waits on the held object are exempt (they release
    the lock), as are bounded calls.

``RPR014`` unbounded blocking receive in a loop
    ``while`` loops draining a queue/channel with no timeout, no
    ``break`` (sentinel protocol), and no abort-flag check spin forever
    when the producer dies — the failure model (docs/failures.md)
    requires every wait to be bounded or abortable.

``RPR015`` fork-after-threads hazard
    Forking (process transport, WorkerPool, ``multiprocessing``) after
    background threads have started in the same function: the forked
    child inherits a snapshot where another thread may hold a lock
    forever (CPython's classic fork-safety hazard).

All five under-approximate across modules (unknown callees contribute
no effects), so findings are function-local facts, not guesses.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .analyzer import ModuleContext, dotted_chain
from .callgraph import (
    ModuleCallGraph,
    _is_mapping_get,
    blocking_call_name,
    call_is_bounded,
    collective_of,
    forks_process,
    starts_threads,
)
from .findings import Finding
from .flow import (
    CFG,
    Block,
    ForwardAnalysis,
    build_cfg,
    enumerate_paths,
    function_nodes,
    run_forward,
    stmt_exprs,
)
from .rules import Rule, register_rule

__all__ = [
    "CollectiveMatching",
    "OwnershipLifecycle",
    "BlockingUnderLock",
    "UnboundedReceiveLoop",
    "ForkAfterThreads",
    "flow_proves_release",
]

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

#: Cap on acyclic paths enumerated per branch arm; hitting it means the
#: comparison would be a sample, so the branch is skipped (no finding).
_PATH_LIMIT = 64


# -- rank taint ---------------------------------------------------------------

_RANK_NAME = re.compile(r"(^|_)rank(_id)?$")


def _expr_rank_tainted(node: ast.AST, tainted: set[str]) -> bool:
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and n.id in tainted:
            return True
        if isinstance(n, ast.Attribute) and n.attr == "rank":
            return True
    return False


def _rank_tainted_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names carrying the caller's own rank identity.

    Seeded by rank-named parameters; grown through plain assignments
    whose right side reads a tainted name or a ``.rank`` attribute.
    ``for rank in range(size)`` loop targets are deliberately *not*
    tainted — iterating over all ranks is rank-symmetric.
    """
    args = func.args
    params = [
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]
    tainted = {a.arg for a in params if _RANK_NAME.search(a.arg)}
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name) or target.id in tainted:
                continue
            if _expr_rank_tainted(node.value, tainted):
                tainted.add(target.id)
                changed = True
    return tainted


# -- RPR011: collective matching ----------------------------------------------


@register_rule
class CollectiveMatching(Rule):
    """Every rank must execute the same ordered collective sequence; a
    collective guarded by a rank-dependent branch on only some paths
    means the ranks that skip it leave the others blocked forever —
    the deadlock the runtime sanitizer (``REPRO_SANITIZE=1``) catches
    dynamically and this rule catches at lint time."""

    code = "RPR011"
    name = "collective-matching"
    summary = "collective reachable on only some paths of a rank-dependent branch"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        cg = ModuleCallGraph(ctx)
        for func in function_nodes(ctx.tree):
            yield from self._check_function(ctx, cg, func)

    def _check_function(
        self,
        ctx: ModuleContext,
        cg: ModuleCallGraph,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        # cheap prefilter: no collectives anywhere -> nothing to mismatch
        if not any(
            isinstance(n, ast.Call) and cg.call_collectives(n, n)
            for n in ast.walk(func)
        ):
            return
        tainted = _rank_tainted_names(func)
        cfg = build_cfg(func, exception_edges=False)
        reach = cfg.reachable()
        for block in cfg.blocks:
            stmt = block.stmt
            if block.index not in reach:
                continue
            if isinstance(stmt, (ast.If, ast.While)):
                guard: ast.AST = stmt.test
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                guard = stmt.iter
            else:
                continue
            if not _expr_rank_tainted(guard, tainted):
                continue
            arms = list(dict.fromkeys(block.succs))
            if len(arms) < 2:
                continue
            arm_seqs: list[frozenset[tuple[str, ...]]] = []
            truncated = False
            for arm in arms:
                paths = enumerate_paths(cfg, arm, limit=_PATH_LIMIT + 1)
                if not paths or len(paths) > _PATH_LIMIT:
                    truncated = True
                    break
                arm_seqs.append(
                    frozenset(self._path_ops(cfg, path, cg) for path in paths)
                )
            if truncated:
                continue
            if all(s == arm_seqs[0] for s in arm_seqs[1:]):
                continue
            example = self._example_divergence(arm_seqs)
            yield self.finding(
                ctx,
                stmt,
                "collective sequence differs across the arms of a rank-dependent "
                f"branch ({example}); ranks taking different arms never "
                "rendezvous — static deadlock (make every rank execute the same "
                "collectives, hoisting them out of the branch)",
            )

    @staticmethod
    def _path_ops(cfg: CFG, path: tuple[int, ...], cg: ModuleCallGraph) -> tuple[str, ...]:
        ops: list[str] = []
        for idx in path:
            for n in stmt_exprs(cfg.blocks[idx].stmt):
                if isinstance(n, ast.Call):
                    ops.extend(cg.call_collectives(n, n))
        return tuple(ops)

    @staticmethod
    def _example_divergence(arm_seqs: list[frozenset[tuple[str, ...]]]) -> str:
        def show(seqs: frozenset[tuple[str, ...]]) -> str:
            sample = sorted(seqs)[0]
            return "+".join(sample) if sample else "no collective"

        for i, a in enumerate(arm_seqs):
            for b in arm_seqs[i + 1 :]:
                if a != b:
                    only_a = a - b
                    only_b = b - a
                    left = show(only_a) if only_a else show(a)
                    right = show(only_b) if only_b else show(b)
                    return f"one arm: {left}; another: {right}"
        return "sequences differ"


# -- RPR012: shared-memory ownership lifecycle --------------------------------

_OWNED = "OWNED"
_LIFECYCLE_OPS = {"release": "RELEASED", "unlink": "UNLINKED", "close": "CLOSED"}

#: states in which a further plain use of the store is a bug
_DEAD_STATES = frozenset({"RELEASED", "UNLINKED", "CLOSED"})

#: ``op -> states that make a second call to op (or its family) a double free``
_DOUBLE = {
    "release": frozenset({"RELEASED", "UNLINKED"}),
    "unlink": frozenset({"UNLINKED"}),
    "close": frozenset({"CLOSED", "UNLINKED"}),
}

_CREATE_TAILS: tuple[tuple[str, ...], ...] = (("SharedParticleStore", "create"),)
_ATTACH_TAILS: tuple[tuple[str, ...], ...] = (("SharedParticleStore", "attach"),)

#: ownership fact: sorted (var, possible-states) pairs; ``None`` = unreachable
_OwnFact = tuple[tuple[str, frozenset[str]], ...]


def _is_owning_creation(call: ast.Call) -> bool:
    chain = dotted_chain(call.func)
    if not chain:
        return False
    if any(chain[-len(t) :] == t for t in _CREATE_TAILS if len(chain) >= len(t)):
        return True
    if any(chain[-len(t) :] == t for t in _ATTACH_TAILS if len(chain) >= len(t)):
        for kw in call.keywords:
            if (
                kw.arg == "adopt"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def _creation_var(stmt: ast.AST | None) -> tuple[str, ast.Call] | None:
    """``v = SharedParticleStore.create(...)`` -> ``("v", call)``."""
    if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    if isinstance(stmt.value, ast.Call) and _is_owning_creation(stmt.value):
        return target.id, stmt.value
    return None


def _lifecycle_call(node: ast.AST) -> tuple[str, str] | None:
    """``v.release()`` -> ``("v", "release")`` for tracked lifecycle ops."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.attr in _LIFECYCLE_OPS
        and not node.args
        and not node.keywords
    ):
        return node.func.value.id, node.func.attr
    return None


#: Name-load parents that transfer ownership out of the function's view.
_ESCAPE_PARENTS = (
    ast.Return,
    ast.Yield,
    ast.YieldFrom,
    ast.Tuple,
    ast.List,
    ast.Dict,
    ast.Starred,
    ast.Await,
)


class _OwnershipAnalysis(ForwardAnalysis[_OwnFact | None]):
    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx

    def initial(self) -> _OwnFact:
        return ()

    def bottom(self) -> None:
        return None

    def join(self, a: _OwnFact | None, b: _OwnFact | None) -> _OwnFact | None:
        if a is None:
            return b
        if b is None:
            return a
        merged = dict(a)
        for var, states in b:
            merged[var] = merged.get(var, frozenset()) | states
        return tuple(sorted(merged.items()))

    def transfer(self, block: Block, fact: _OwnFact | None) -> _OwnFact | None:
        if fact is None:
            return None
        return tuple(sorted(_ownership_step(self.ctx, block.stmt, dict(fact)).items()))


def _ownership_step(
    ctx: ModuleContext,
    stmt: ast.AST | None,
    states: dict[str, frozenset[str]],
    emit: "list[tuple[ast.AST, str]] | None" = None,
) -> dict[str, frozenset[str]]:
    """Apply one statement to the ownership map (optionally reporting)."""
    if stmt is None:
        return states
    lifecycle_receivers: set[int] = set()
    consumed: list[tuple[str, str, ast.AST]] = []
    for n in stmt_exprs(stmt):
        lc = _lifecycle_call(n)
        if lc is not None and lc[0] in states:
            assert isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
            lifecycle_receivers.add(id(n.func.value))
            consumed.append((lc[0], lc[1], n))
    # 1) plain uses + escapes, judged against the *incoming* states
    for n in stmt_exprs(stmt):
        if not (isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)):
            continue
        var = n.id
        if var not in states or id(n) in lifecycle_receivers:
            continue
        parent = ctx.parent(n)
        if isinstance(parent, ast.Compare) and any(
            isinstance(op, (ast.Is, ast.IsNot)) for op in parent.ops
        ):
            continue  # `v is None` guards are not uses
        if emit is not None and _OWNED not in states[var] and states[var]:
            emit.append(
                (
                    n,
                    f"shared store '{var}' used after its ownership was "
                    "released/transferred on every path reaching this line "
                    "(use-after-transfer)",
                )
            )
        if isinstance(parent, _ESCAPE_PARENTS) or (
            isinstance(parent, ast.Call) and id(n) not in lifecycle_receivers
        ) or (
            isinstance(parent, ast.Assign) and n is parent.value
        ) or isinstance(parent, ast.keyword):
            states.pop(var, None)  # ownership escapes — stop tracking
    # 2) lifecycle transitions (double-free judged against incoming states)
    for var, op, node in consumed:
        if var not in states:
            continue
        cur = states[var]
        if emit is not None and cur and _OWNED not in cur and cur & _DOUBLE[op]:
            emit.append(
                (
                    node,
                    f"'{var}.{op}()' on a segment already "
                    f"{'/'.join(sorted(s.lower() for s in cur))} on every path "
                    "(double release)",
                )
            )
        states[var] = frozenset({_LIFECYCLE_OPS[op]})
    # 3) (re)bindings
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            created = _creation_var(stmt)
            if created is not None:
                states[target.id] = frozenset({_OWNED})
            else:
                states.pop(target.id, None)  # rebound to something else
    elif isinstance(stmt, ast.Delete):
        for t in stmt.targets:
            if isinstance(t, ast.Name):
                states.pop(t.id, None)
    return states


@register_rule
class OwnershipLifecycle(Rule):
    """Segment ownership is a protocol — create → (use) → transfer/close
    — and every violation class maps to a real failure: use-after-
    transfer reads unmapped memory in the peer's hands, double release
    raises at runtime, and an exception path that skips the release
    leaks ``/dev/shm`` for the rest of the campaign."""

    code = "RPR012"
    name = "shm-ownership-flow"
    summary = "shared-memory ownership violation (use-after-transfer / double release / leak)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in function_nodes(ctx.tree):
            yield from self._check_function(ctx, func)

    def _check_function(
        self, ctx: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        create_sites: dict[str, ast.AST] = {}
        for node in ast.walk(func):
            created = _creation_var(node) if isinstance(node, ast.stmt) else None
            if created is not None and created[0] not in create_sites:
                create_sites[created[0]] = created[1]
        if not create_sites:
            return
        cfg = build_cfg(func, exception_edges=True)
        analysis = _OwnershipAnalysis(ctx)
        in_facts = run_forward(cfg, analysis)
        reported: set[tuple[int, str]] = set()
        for idx in sorted(cfg.reachable()):
            fact = in_facts.get(idx)
            if fact is None:
                continue
            messages: list[tuple[ast.AST, str]] = []
            _ownership_step(ctx, cfg.blocks[idx].stmt, dict(fact), emit=messages)
            for node, message in messages:
                key = (getattr(node, "lineno", 0), message)
                if key not in reported:
                    reported.add(key)
                    yield self.finding(ctx, node, message)
        exit_fact = in_facts.get(cfg.exit)
        if exit_fact:
            for var, possible in exit_fact:
                if _OWNED in possible and var in create_sites:
                    yield self.finding(
                        ctx,
                        create_sites[var],
                        f"shared store '{var}' can reach the function exit still "
                        "owned (leaked segment on at least one path — add a "
                        "try/finally or with block releasing it)",
                    )


def flow_proves_release(ctx: ModuleContext, call: ast.Call) -> bool:
    """True when ownership dataflow proves the store created by ``call``
    is released/escaped on every path to the exit.

    This is how RPR012 supersedes the syntactic RPR005: linear code that
    provably releases on all paths (including exception paths through
    ``try``) needs no ``with``/``try-finally`` to satisfy RPR005.
    """
    if not _is_owning_creation(call):
        return False
    parent = ctx.parent(call)
    if not (
        isinstance(parent, ast.Assign)
        and len(parent.targets) == 1
        and isinstance(parent.targets[0], ast.Name)
    ):
        return False
    var = parent.targets[0].id
    scope = ctx.enclosing_scope(call)
    if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    cfg = build_cfg(scope, exception_edges=True)
    in_facts = run_forward(cfg, _OwnershipAnalysis(ctx))
    exit_fact = in_facts.get(cfg.exit)
    if exit_fact is None:
        return False
    for name, possible in exit_fact:
        if name == var and _OWNED in possible:
            return False
    return True


# -- RPR013: blocking call while holding a lock --------------------------------

_LOCKISH = ("lock", "mutex")

_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)


def _lock_token(expr: ast.expr, ctx: ModuleContext) -> str | None:
    """Identify a with-item / acquire receiver as a lock; return its token."""
    if isinstance(expr, ast.Call):
        chain = dotted_chain(expr.func)
        if chain and chain[-1] == "get_lock":
            return ".".join(chain) + "()"
        if ctx.resolve_call(expr) in _LOCK_FACTORIES:
            return ctx.resolve_call(expr) + "()"
        return None
    chain = dotted_chain(expr)
    if chain and any(k in chain[-1].lower() for k in _LOCKISH):
        return ".".join(chain)
    return None


def _own_nodes(root: ast.AST, include_root: bool = False) -> Iterator[ast.AST]:
    """Walk without descending into nested function/class definitions."""
    stack: list[ast.AST] = [root] if include_root else list(ast.iter_child_nodes(root))
    while stack:
        n = stack.pop(0)
        yield n
        if isinstance(n, _DEFS):
            continue
        stack.extend(ast.iter_child_nodes(n))


class _HeldLocks(ForwardAnalysis["frozenset[str] | None"]):
    """Must-hold lock set between explicit ``acquire``/``release`` calls."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx

    def initial(self) -> frozenset[str]:
        return frozenset()

    def bottom(self) -> None:
        return None

    def join(self, a: "frozenset[str] | None", b: "frozenset[str] | None") -> "frozenset[str] | None":
        if a is None:
            return b
        if b is None:
            return a
        return a & b  # must-hold

    def transfer(self, block: Block, fact: "frozenset[str] | None") -> "frozenset[str] | None":
        if fact is None:
            return None
        return _locks_step(self.ctx, block.stmt, fact)


def _locks_step(
    ctx: ModuleContext, stmt: ast.AST | None, held: frozenset[str]
) -> frozenset[str]:
    for n in stmt_exprs(stmt):
        if not (isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)):
            continue
        token = _lock_token(n.func.value, ctx)
        if token is None:
            continue
        if n.func.attr == "acquire" and not call_is_bounded(n):
            held = held | {token}
        elif n.func.attr == "release":
            held = held - {token}
    return held


@register_rule
class BlockingUnderLock(Rule):
    """A rendezvous (queue get, join, recv, barrier) entered while a
    lock is held deadlocks the moment the peer needs that lock to
    produce the awaited item.  Condition-variable waits on the held
    object are the one sanctioned pattern (they atomically release)."""

    code = "RPR013"
    name = "blocking-under-lock"
    summary = "blocking call (get/join/recv/barrier) while holding a lock"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in function_nodes(ctx.tree):
            yield from self._with_regions(ctx, func)
            yield from self._tracked_acquires(ctx, func)

    def _with_regions(
        self, ctx: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in _own_nodes(func):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            tokens = [
                t
                for item in node.items
                if (t := _lock_token(item.context_expr, ctx)) is not None
            ]
            if not tokens:
                continue
            for stmt in node.body:
                for n in _own_nodes(stmt, include_root=True):
                    if not isinstance(n, ast.Call):
                        continue
                    yield from self._judge_call(ctx, n, tokens)

    def _tracked_acquires(
        self, ctx: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        if not any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "acquire"
            for n in ast.walk(func)
        ):
            return
        cfg = build_cfg(func, exception_edges=True)
        in_facts = run_forward(cfg, _HeldLocks(ctx))
        for idx in sorted(cfg.reachable()):
            fact = in_facts.get(idx)
            if not fact:
                continue
            held = fact
            for n in stmt_exprs(cfg.blocks[idx].stmt):
                if not isinstance(n, ast.Call):
                    continue
                if (
                    isinstance(n.func, ast.Attribute)
                    and n.func.attr in ("acquire", "release")
                    and _lock_token(n.func.value, ctx) is not None
                ):
                    held = _locks_step(ctx, ast.Expr(value=n), held)
                    continue
                yield from self._judge_call(ctx, n, sorted(held))

    def _judge_call(
        self, ctx: ModuleContext, call: ast.Call, tokens: list[str]
    ) -> Iterator[Finding]:
        if not tokens:
            return
        name = blocking_call_name(call)
        if name is None:
            return
        chain = dotted_chain(call.func)
        receiver = ".".join(chain[:-1])
        if receiver and any(t == receiver or t.startswith(receiver + ".") for t in tokens):
            return  # condition wait / recursive acquire on the held object
        if chain and chain[-1] == "acquire":
            return  # nested-acquire ordering is out of scope here
        yield self.finding(
            ctx,
            call,
            f"blocking {name}() while holding lock {tokens[0]}; the peer that "
            "would unblock it may need the lock — move the wait outside the "
            "critical section or bound it with a timeout",
        )


# -- RPR014: unbounded receive loop -------------------------------------------

_ABORTISH = frozenset(
    {
        "abort",
        "aborted",
        "stop",
        "stopped",
        "stopping",
        "shutdown",
        "closed",
        "done",
        "is_set",
        "deadline",
        "timeout",
        "waited",
        "remaining",
    }
)

_RECEIVE_NAMES = frozenset({"get", "recv"})


@register_rule
class UnboundedReceiveLoop(Rule):
    """A drain loop whose receive can block forever and whose body has
    no sentinel ``break``, no abort-flag check, and no deadline turns a
    dead producer into a hung consumer — the co-scheduling runtime's
    failure model requires every wait to be bounded or abortable."""

    code = "RPR014"
    name = "unbounded-receive-loop"
    summary = "unbounded blocking receive in a loop without timeout/abort check"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, ast.While):
                continue
            own = list(_own_nodes(loop))
            receives = [
                n
                for n in own
                if isinstance(n, ast.Call)
                and (chain := dotted_chain(n.func))
                and chain[-1] in _RECEIVE_NAMES
                and not (chain[-1] == "get" and _is_mapping_get(n))
                and not call_is_bounded(n)
            ]
            if not receives:
                continue
            if any(isinstance(n, (ast.Break, ast.Raise, ast.Return)) for n in own):
                continue  # sentinel protocol / explicit escape hatch
            referenced = {
                n.id.lower() for n in ast.walk(loop) if isinstance(n, ast.Name)
            } | {n.attr.lower() for n in ast.walk(loop) if isinstance(n, ast.Attribute)}
            if referenced & _ABORTISH:
                continue
            yield self.finding(
                ctx,
                receives[0],
                "unbounded blocking receive inside a loop with no break, abort "
                "check, or deadline; a dead producer hangs this consumer forever "
                "— use get(timeout=...) and re-check an abort flag each lap",
            )


# -- RPR015: fork after threads -----------------------------------------------


class _ThreadsStarted(ForwardAnalysis["bool | None"]):
    """May-analysis: have background threads been started on some path?"""

    def __init__(self, ctx: ModuleContext, cg: ModuleCallGraph) -> None:
        self.ctx = ctx
        self.cg = cg

    def initial(self) -> bool:
        return False

    def bottom(self) -> None:
        return None

    def join(self, a: "bool | None", b: "bool | None") -> "bool | None":
        if a is None:
            return b
        if b is None:
            return a
        return a or b

    def transfer(self, block: Block, fact: "bool | None") -> "bool | None":
        if fact is None:
            return None
        started = fact
        for n in stmt_exprs(block.stmt):
            if isinstance(n, ast.Call) and _starts_threads_deep(self.ctx, self.cg, n):
                started = True
        return started


def _starts_threads_deep(ctx: ModuleContext, cg: ModuleCallGraph, call: ast.Call) -> bool:
    if starts_threads(call, ctx):
        return True
    callee = cg.resolve_local(call, call)
    return callee is not None and cg.transitively(callee, "thread_start")


def _forks_deep(ctx: ModuleContext, cg: ModuleCallGraph, call: ast.Call) -> bool:
    if forks_process(call, ctx):
        return True
    callee = cg.resolve_local(call, call)
    return callee is not None and cg.transitively(callee, "fork")


@register_rule
class ForkAfterThreads(Rule):
    """``fork`` copies one thread but every lock: a child forked after
    the pipeline/listener threads are live can inherit a mutex locked by
    a thread that no longer exists and hang on first contention.  Start
    worker processes *before* background threads, or use a spawn
    context."""

    code = "RPR015"
    name = "fork-after-threads"
    summary = "process fork/spawn after background threads started"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        cg = ModuleCallGraph(ctx)
        for func in function_nodes(ctx.tree):
            calls = [n for n in _own_nodes(func) if isinstance(n, ast.Call)]
            if not any(_starts_threads_deep(ctx, cg, n) for n in calls):
                continue
            if not any(_forks_deep(ctx, cg, n) for n in calls):
                continue
            cfg = build_cfg(func, exception_edges=True)
            in_facts = run_forward(cfg, _ThreadsStarted(ctx, cg))
            for idx in sorted(cfg.reachable()):
                fact = in_facts.get(idx)
                if fact is None:
                    continue
                started = fact
                for n in stmt_exprs(cfg.blocks[idx].stmt):
                    if not isinstance(n, ast.Call):
                        continue
                    if started and _forks_deep(ctx, cg, n):
                        yield self.finding(
                            ctx,
                            n,
                            "process fork/spawn after background threads were "
                            "started in this function; the forked child inherits "
                            "locks a missing thread may hold (fork-safety hazard) "
                            "— fork first, or use a spawn start method",
                        )
                    if _starts_threads_deep(ctx, cg, n):
                        started = True
