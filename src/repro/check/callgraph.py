"""Module-local call-graph summaries for the concurrency rules.

The flow-sensitive rules (:mod:`repro.check.concurrency`) reason about
one function at a time, but collectives and blocking calls routinely
hide one call deep — ``def exchange(comm): comm.alltoall(...)`` called
from the rank program.  This pass computes one :class:`FunctionSummary`
per function in a module (direct effects + local callees) and expands
them to a fixpoint, so a rule asking "does this call participate in a
collective?" sees through module-local helpers.

Resolution is deliberately shallow: a call resolves to a summary only
for bare names (``helper()``) and ``self.``/``cls.`` methods of the
enclosing class.  Cross-module calls stay unknown — their effects are
simply not attributed, which under-approximates (fewer findings) and
never invents paths that do not exist.

This module also owns the *effect vocabulary* — what counts as a
collective, a blocking call, a thread start, a fork — shared by the
static rules and documented in docs/static-analysis.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .analyzer import ModuleContext, dotted_chain

__all__ = [
    "FunctionSummary",
    "ModuleCallGraph",
    "blocking_call_name",
    "call_is_bounded",
    "collective_of",
    "forks_process",
    "starts_threads",
]

#: Method names that are always collectives, whatever the receiver: these
#: names only appear on communicator-like objects in this codebase.
_ALWAYS_COLLECTIVE = frozenset(
    {"barrier", "barrier_wait", "bcast", "allgather", "allreduce", "alltoall", "alltoallv"}
)

#: Method names that are collectives only on a communicator-looking
#: receiver (``comm.gather`` yes, ``backend.gather`` — a dataparallel
#: array op — no).
_COMM_ONLY_COLLECTIVE = frozenset({"gather", "scatter", "reduce"})

#: Receiver-name fragments that mark a communicator handle.
_COMM_HINTS = ("comm", "world", "communicator")

#: Method names that block the calling thread until a peer acts.
_BLOCKING_NAMES = frozenset(
    {"get", "recv", "join", "barrier", "barrier_wait", "wait", "wait_for", "acquire"}
)

#: Callable tails that put a new thread to work.
_THREAD_STARTERS = (
    ("threading", "Thread"),
    ("Thread",),
    ("ThreadPoolExecutor",),
    ("AsyncInSituManager",),
    ("TaskListener",),
)

#: Callable tails that fork / spawn an OS process.
_FORK_TAILS = (
    ("Process",),
    ("WorkerPool",),
    ("run_process_spmd",),
    ("Pool",),
)


def _receiver_is_comm(chain: tuple[str, ...]) -> bool:
    receiver = chain[:-1]
    if not receiver:
        return False
    return any(hint in part.lower() for part in receiver for hint in _COMM_HINTS)


def collective_of(call: ast.Call) -> str | None:
    """The collective-op name of ``call``, or ``None``.

    ``comm.gather(x)`` -> ``"gather"``; ``backend.gather(x)`` -> ``None``
    (array op, not a rendezvous); ``anything.barrier()`` -> ``"barrier"``.
    """
    chain = dotted_chain(call.func)
    if len(chain) < 2:
        return None
    name = chain[-1]
    if name in _ALWAYS_COLLECTIVE:
        return name
    if name in _COMM_ONLY_COLLECTIVE and _receiver_is_comm(chain):
        return name
    return None


def call_is_bounded(call: ast.Call) -> bool:
    """True when a blocking call carries an explicit bound.

    ``q.get(timeout=1)``, ``q.get(True, 1)``, ``q.get(False)`` and
    ``t.join(2.0)`` are bounded; bare ``q.get()`` / ``t.join()`` are not.
    """
    for kw in call.keywords:
        if kw.arg == "timeout" and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            return True
    chain = dotted_chain(call.func)
    name = chain[-1] if chain else ""
    if name == "get":
        if len(call.args) >= 2:
            return True
        if call.args and isinstance(call.args[0], ast.Constant) and call.args[0].value is False:
            return True  # non-blocking get
    elif name in ("join", "wait", "wait_for", "barrier_wait"):
        if call.args:  # positional timeout
            return True
    elif name == "acquire":
        for arg in call.args:
            if isinstance(arg, ast.Constant) and arg.value is False:
                return True
        for kw in call.keywords:
            if (
                kw.arg == "blocking"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            ):
                return True
    return False


def _is_mapping_get(call: ast.Call) -> bool:
    """``d.get(key)`` / ``d.get(key, default)`` — a lookup, not a receive.

    Queue-style gets take no positional args or a boolean ``block`` flag;
    any other first positional marks a mapping lookup.
    """
    if not call.args:
        return False
    first = call.args[0]
    return not (isinstance(first, ast.Constant) and isinstance(first.value, bool))


def blocking_call_name(call: ast.Call) -> str | None:
    """Dotted name of an *unbounded* blocking call, or ``None``."""
    chain = dotted_chain(call.func)
    if not chain:
        return None
    name = chain[-1]
    if name.endswith("_nowait"):
        return None
    if name not in _BLOCKING_NAMES:
        return None
    if name == "get" and _is_mapping_get(call):
        return None
    if call_is_bounded(call):
        return None
    return ".".join(chain)


def _chain_matches(chain: tuple[str, ...], tails: tuple[tuple[str, ...], ...]) -> bool:
    return any(chain[-len(t) :] == t for t in tails if len(chain) >= len(t))


def starts_threads(call: ast.Call, ctx: ModuleContext) -> bool:
    """``call`` puts background threads to work (Thread/pool/pipeline)."""
    chain = dotted_chain(call.func)
    if chain and _chain_matches(chain, _THREAD_STARTERS):
        return True
    resolved = ctx.resolve_call(call)
    return resolved in (
        "threading.Thread",
        "concurrent.futures.ThreadPoolExecutor",
    )


def forks_process(call: ast.Call, ctx: ModuleContext) -> bool:
    """``call`` forks or spawns an OS process."""
    chain = dotted_chain(call.func)
    if chain and _chain_matches(chain, _FORK_TAILS):
        return True
    resolved = ctx.resolve_call(call)
    return resolved in ("os.fork", "multiprocessing.Process", "pty.fork")


# -- summaries ----------------------------------------------------------------


@dataclass
class FunctionSummary:
    """Direct (unexpanded) effects of one function."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    collectives: tuple[str, ...] = ()  # ordered collective ops, own body only
    blocking: bool = False
    thread_start: bool = False
    fork: bool = False
    calls: tuple[str, ...] = ()  # resolvable module-local callees, in order
    call_order: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    # ``call_order`` interleaves ("op", name) / ("call", qualname) events in
    # source order so collective sequences expand in the right position.


class ModuleCallGraph:
    """Per-module function summaries with fixpoint expansion."""

    #: expansion guards: recursion depth and expanded-sequence length
    MAX_DEPTH = 8
    MAX_OPS = 32

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.summaries: dict[str, FunctionSummary] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = self._qualname(node)
                self.summaries[qualname] = self._summarize(qualname, node)
        self._expanded: dict[str, tuple[str, ...]] = {}

    def _qualname(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
        for anc in self.ctx.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return f"{anc.name}.{node.name}"
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return f"{self._qualname(anc)}.{node.name}"
        return node.name

    def _own_calls(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[ast.Call]:
        """Calls in ``node``'s body, skipping nested definitions."""
        stack: list[ast.AST] = list(node.body)
        while stack:
            n = stack.pop(0)
            if isinstance(n, _OPAQUE_DEFS):
                continue
            if isinstance(n, ast.Call):
                yield n
            stack[:0] = list(ast.iter_child_nodes(n))

    def resolve_local(self, call: ast.Call, node: ast.AST) -> str | None:
        """Qualname of a module-local callee, or ``None`` for unknown."""
        chain = dotted_chain(call.func)
        if not chain:
            return None
        if len(chain) == 1:
            return chain[0] if chain[0] in self.summaries else None
        if len(chain) == 2 and chain[0] in ("self", "cls"):
            for anc in self.ctx.ancestors(node):
                if isinstance(anc, ast.ClassDef):
                    qual = f"{anc.name}.{chain[1]}"
                    return qual if qual in self.summaries else None
        return None

    def _summarize(
        self, qualname: str, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> FunctionSummary:
        collectives: list[str] = []
        order: list[tuple[str, str]] = []
        calls: list[str] = []
        blocking = thread_start = fork = False
        for call in self._own_calls(node):
            op = collective_of(call)
            if op is not None:
                collectives.append(op)
                order.append(("op", op))
                continue
            if blocking_call_name(call) is not None:
                blocking = True
            if starts_threads(call, self.ctx):
                thread_start = True
            if forks_process(call, self.ctx):
                fork = True
            callee = self.resolve_local(call, node)
            if callee is not None and callee != qualname:
                calls.append(callee)
                order.append(("call", callee))
        return FunctionSummary(
            qualname=qualname,
            node=node,
            collectives=tuple(collectives),
            blocking=blocking,
            thread_start=thread_start,
            fork=fork,
            calls=tuple(calls),
            call_order=tuple(order),
        )

    # -- expansion -------------------------------------------------------

    def expanded_collectives(self, qualname: str) -> tuple[str, ...]:
        """Ordered collective ops of ``qualname`` including local callees."""
        cached = self._expanded.get(qualname)
        if cached is not None:
            return cached
        out = self._expand(qualname, frozenset(), 0)
        self._expanded[qualname] = out
        return out

    def _expand(self, qualname: str, seen: frozenset[str], depth: int) -> tuple[str, ...]:
        summary = self.summaries.get(qualname)
        if summary is None or qualname in seen or depth > self.MAX_DEPTH:
            return ()
        ops: list[str] = []
        for kind, name in summary.call_order:
            if kind == "op":
                ops.append(name)
            else:
                ops.extend(self._expand(name, seen | {qualname}, depth + 1))
            if len(ops) >= self.MAX_OPS:
                break
        return tuple(ops[: self.MAX_OPS])

    def transitively(self, qualname: str, effect: str) -> bool:
        """Closure over local calls of a boolean effect flag.

        ``effect`` is one of ``"blocking"``, ``"thread_start"``, ``"fork"``.
        """
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            summary = self.summaries.get(name)
            if summary is None:
                continue
            if getattr(summary, effect):
                return True
            stack.extend(summary.calls)
        return False

    def call_collectives(self, call: ast.Call, node: ast.AST) -> tuple[str, ...]:
        """Collective sequence a call contributes (direct op or expansion)."""
        op = collective_of(call)
        if op is not None:
            return (op,)
        callee = self.resolve_local(call, node)
        if callee is not None:
            return self.expanded_collectives(callee)
        return ()


_OPAQUE_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
