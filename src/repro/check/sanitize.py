"""Opt-in runtime sanitizers pairing the static rules with live checks.

Everything here is gated on the ``REPRO_SANITIZE`` environment variable
(``1``/``true``/``yes``/``on``): with it unset, every hook is a cheap
early-return so production hot paths pay (near) nothing — the same
"minimally intrusive" contract as :mod:`repro.obs`.

Three sanitizers:

``@guard_kernel``
    Decorator for pure analysis kernels (center / SO / subhalo finding).
    After each call it walks the outputs for NaN/Inf values and for
    float *dtype drift* (a float32 sneaking out of a float64 pipeline —
    the silent precision loss that breaks bit-identical reductions) and
    raises :class:`SanitizerError` on violation.

``track_store`` / ``untrack_store`` / ``leak_report``
    Shared-memory leak tracker wired into
    :class:`repro.exec.sharedmem.SharedParticleStore`: every owning
    store is registered at creation and released at ``unlink``; an
    ``atexit`` hook reports anything still live (an RPR005 violation
    observed at runtime) to stderr and the telemetry recorder.

``check_determinism``
    Run-twice harness: executes a kernel ``runs`` times and compares
    structural output hashes, catching order-dependent accumulation or
    hidden RNG/clock state (the runtime twin of RPR001-RPR003).
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import os
import sys
import functools
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

import numpy as np

__all__ = [
    "DeterminismError",
    "DeterminismReport",
    "SanitizerError",
    "check_determinism",
    "guard_kernel",
    "leak_report",
    "output_hash",
    "sanitize_enabled",
    "track_store",
    "untrack_store",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})

F = TypeVar("F", bound=Callable[..., Any])


class SanitizerError(RuntimeError):
    """A runtime sanitizer check failed (NaN/Inf, dtype drift, leak)."""


class DeterminismError(SanitizerError):
    """Repeated kernel runs produced different output hashes."""


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


# -- structural output walking -------------------------------------------------


def _walk_values(obj: Any, depth: int = 0) -> list[Any]:
    """Flatten nested containers / dataclasses into leaf values."""
    if depth > 6:
        return [obj]
    if isinstance(obj, np.ndarray) or np.isscalar(obj) or obj is None:
        return [obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: list[Any] = []
        for f in dataclasses.fields(obj):
            out.extend(_walk_values(getattr(obj, f.name), depth + 1))
        return out
    if isinstance(obj, dict):
        out = []
        for key in sorted(obj, key=repr):
            out.extend(_walk_values(obj[key], depth + 1))
        return out
    if isinstance(obj, (list, tuple)):
        out = []
        for item in obj:
            out.extend(_walk_values(item, depth + 1))
        return out
    return [obj]


def _float_dtypes(values: list[Any]) -> set[str]:
    out: set[str] = set()
    for v in values:
        if isinstance(v, np.ndarray) and np.issubdtype(v.dtype, np.floating):
            out.add(v.dtype.str)
        elif isinstance(v, np.floating):
            out.add(np.dtype(type(v)).str)
    return out


# -- @guard_kernel -------------------------------------------------------------


def guard_kernel(
    fn: F | None = None,
    *,
    name: str | None = None,
    check_finite: bool = True,
    check_dtype: bool = True,
) -> Any:
    """Decorate a pure analysis kernel with NaN/Inf + dtype-drift checks.

    With ``REPRO_SANITIZE`` unset the wrapper is a single env lookup
    plus the call; with it set, the kernel's outputs are walked after
    every call and a :class:`SanitizerError` names the kernel, the
    offending value class, and the count of bad elements.
    """

    def decorate(func: F) -> F:
        kernel = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not sanitize_enabled():
                return func(*args, **kwargs)
            in_dtypes = _float_dtypes(_walk_values([*args, *kwargs.values()]))
            result = func(*args, **kwargs)
            values = _walk_values(result)
            if check_finite:
                _assert_finite(kernel, values)
            if check_dtype and in_dtypes:
                _assert_no_drift(kernel, in_dtypes, values)
            _emit("sanitize.kernel_ok", kernel=kernel)
            return result

        return wrapper  # type: ignore[return-value]

    return decorate if fn is None else decorate(fn)


def _assert_finite(kernel: str, values: list[Any]) -> None:
    for v in values:
        if isinstance(v, np.ndarray) and np.issubdtype(v.dtype, np.floating):
            bad = int(np.count_nonzero(~np.isfinite(v)))
            if bad:
                _emit("sanitize.nonfinite", level="error", kernel=kernel, bad=bad)
                raise SanitizerError(
                    f"guard_kernel[{kernel}]: {bad} non-finite value(s) in a "
                    f"{v.dtype} output array of shape {v.shape}"
                )
        elif isinstance(v, (float, np.floating)) and not np.isfinite(v):
            _emit("sanitize.nonfinite", level="error", kernel=kernel, bad=1)
            raise SanitizerError(
                f"guard_kernel[{kernel}]: non-finite scalar output {v!r}"
            )


def _assert_no_drift(kernel: str, in_dtypes: set[str], values: list[Any]) -> None:
    out_dtypes = _float_dtypes(values)
    drifted = sorted(out_dtypes - in_dtypes)
    if drifted:
        widest_in = max(np.dtype(d).itemsize for d in in_dtypes)
        narrow = [d for d in drifted if np.dtype(d).itemsize < widest_in]
        if narrow:
            _emit(
                "sanitize.dtype_drift",
                level="error",
                kernel=kernel,
                inputs=sorted(in_dtypes),
                outputs=sorted(out_dtypes),
            )
            raise SanitizerError(
                f"guard_kernel[{kernel}]: float dtype drift — inputs "
                f"{sorted(in_dtypes)} but outputs include narrower {narrow} "
                "(silent precision loss breaks bit-identical reductions)"
            )


def _emit(event: str, level: str = "debug", **fields: Any) -> None:
    """Best-effort telemetry emission (no-op when obs is disabled)."""
    from ..obs import get_recorder

    rec = get_recorder()
    rec.counter(f"{event.replace('.', '_')}_total").inc()
    if level != "debug":
        rec.event(event, level=level, **fields)


# -- shared-memory leak tracker ------------------------------------------------

_live_stores: dict[int, dict[str, Any]] = {}
_atexit_registered = False


def track_store(store: Any) -> None:
    """Register an *owning* shared-memory store (no-op unless enabled)."""
    global _atexit_registered
    if not sanitize_enabled():
        return
    fields = list(getattr(store, "fields", []))
    spec = getattr(store, "spec", {})
    _live_stores[id(store)] = {
        "fields": fields,
        "segments": sorted(str(name) for name, _, _ in spec.values()),
        "nbytes": int(getattr(store, "nbytes", 0)),
    }
    if not _atexit_registered:
        atexit.register(_atexit_report)
        _atexit_registered = True


def untrack_store(store: Any) -> None:
    """Mark a store's segments as released (called from ``unlink``)."""
    _live_stores.pop(id(store), None)


def leak_report() -> list[dict[str, Any]]:
    """Currently-live (never-unlinked) owning stores."""
    return [dict(v) for v in _live_stores.values()]


def reset_leak_tracker() -> None:
    """Forget all tracked stores (test isolation helper)."""
    _live_stores.clear()


def _atexit_report() -> None:
    leaks = leak_report()
    if not leaks:
        return
    total = sum(leak["nbytes"] for leak in leaks)
    # RPR010 suppressed: this runs at interpreter exit, after telemetry
    # recorders and journal sinks may already be torn down — stderr is
    # the only channel guaranteed to still exist.
    print(  # repro: noqa[RPR010]
        f"repro.check.sanitize: {len(leaks)} shared-memory store(s) never "
        f"unlinked ({total} bytes) — RPR005 violation observed at runtime:",
        file=sys.stderr,
    )
    for leak in leaks:
        print(  # repro: noqa[RPR010]
            f"  fields={leak['fields']} segments={leak['segments']}", file=sys.stderr
        )
    _emit("sanitize.shm_leak", level="error", leaks=len(leaks), nbytes=total)


# -- determinism harness -------------------------------------------------------


def output_hash(obj: Any) -> str:
    """Stable structural SHA-256 of a kernel's output.

    Arrays hash as ``dtype | shape | raw bytes`` so a one-ulp float
    difference changes the digest; containers and dataclasses hash
    field-by-field in a canonical order.
    """
    h = hashlib.sha256()

    def feed(value: Any, depth: int = 0) -> None:
        if depth > 8:
            h.update(repr(value).encode())
            return
        if isinstance(value, np.ndarray):
            arr = np.ascontiguousarray(value)
            h.update(b"nd|")
            h.update(str(arr.dtype.str).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        elif isinstance(value, (np.generic,)):
            h.update(b"sc|")
            h.update(np.asarray(value).tobytes())
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            h.update(b"dc|" + type(value).__name__.encode())
            for f in dataclasses.fields(value):
                h.update(f.name.encode())
                feed(getattr(value, f.name), depth + 1)
        elif isinstance(value, dict):
            h.update(b"map|")
            for key in sorted(value, key=repr):
                h.update(repr(key).encode())
                feed(value[key], depth + 1)
        elif isinstance(value, (list, tuple)):
            h.update(b"seq|")
            for item in value:
                feed(item, depth + 1)
        elif isinstance(value, float):
            h.update(b"f|")
            h.update(np.float64(value).tobytes())
        else:
            h.update(repr(value).encode())

    feed(obj)
    return h.hexdigest()


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of a :func:`check_determinism` run."""

    ok: bool
    runs: int
    hashes: tuple[str, ...]
    kernel: str

    @property
    def distinct(self) -> int:
        return len(set(self.hashes))


def check_determinism(
    fn: Callable[..., Any],
    *args: Any,
    runs: int = 2,
    raise_on_mismatch: bool = True,
    **kwargs: Any,
) -> DeterminismReport:
    """Run ``fn`` repeatedly and compare structural output hashes.

    Catches hidden nondeterminism — unseeded RNG, unordered-collection
    float accumulation, wall-clock leakage — that the static rules can
    only flag syntactically.  Raises :class:`DeterminismError` on
    mismatch unless ``raise_on_mismatch=False``.
    """
    if runs < 2:
        raise ValueError("runs must be >= 2")
    kernel = getattr(fn, "__qualname__", repr(fn))
    hashes = tuple(output_hash(fn(*args, **kwargs)) for _ in range(runs))
    ok = len(set(hashes)) == 1
    report = DeterminismReport(ok=ok, runs=runs, hashes=hashes, kernel=kernel)
    if not ok:
        _emit("sanitize.nondeterministic", level="error", kernel=kernel, runs=runs)
        if raise_on_mismatch:
            raise DeterminismError(
                f"check_determinism[{kernel}]: {report.distinct} distinct output "
                f"hashes across {runs} runs — kernel is not a pure function of "
                "its inputs"
            )
    return report
