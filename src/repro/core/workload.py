"""Workload profiles: the measured quantities that drive cost projections.

A :class:`WorkloadProfile` captures everything the workflow strategies
need to price a run: particle count, the halo population (particle
counts per halo and which node owns each), and derived volumes (Level 1
and Level 2 bytes, center-finding pair counts).

Profiles come from three sources:

* :func:`profile_from_context` — measured, from an actual in-situ
  analysis of a mini-HACC run (the benchmarks' ground truth);
* :func:`synthetic_halo_catalog` — drawn from a Press-Schechter-like
  mass function calibrated against the paper's quoted Q Continuum
  population (167,686,789 halos; 84,719 above 300k particles; largest
  ~25M particles), for paper-scale projections;
* :meth:`WorkloadProfile.scaled` — self-similar volume scaling of a
  measured profile (the paper's own "reduces the problem by exactly a
  factor of 512" trick, in reverse).

Seed-flow contract (enforced by ``repro.check`` rule RPR001)
-----------------------------------------------------------
Every random draw in this module flows from an **explicit** ``seed``
argument — there is no hidden module-level RNG and no call to
``np.random.default_rng()`` without a seed.  The rules:

* public entry points (:func:`synthetic_halo_catalog`,
  :func:`qcontinuum_like_profile`, :func:`test_run_like_profile`,
  :meth:`WorkloadProfile.scaled`) accept ``seed`` and construct their
  own local ``np.random.default_rng(seed)``;
* derived streams are decorrelated by *deterministic arithmetic* on the
  caller's seed (e.g. ``test_run_like_profile`` draws owners from
  ``seed + 1`` so the owner scatter is independent of the mass draw but
  still a pure function of ``seed``);
* two calls with equal arguments produce bit-identical profiles — the
  precondition for the serial-vs-parallel bit-identity tests and for
  comparing benchmark runs across machines.

Callers that need several profiles must pass distinct seeds explicitly
rather than relying on global state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..analysis.centers import center_finding_cost
from ..io.levels import level1_bytes, level2_bytes, level3_bytes

__all__ = [
    "WorkloadProfile",
    "profile_from_context",
    "synthetic_halo_catalog",
    "qcontinuum_like_profile",
    "test_run_like_profile",
]


@dataclass(frozen=True)
class WorkloadProfile:
    """One snapshot's analysis workload.

    ``halo_counts[i]`` is the particle count of halo ``i``;
    ``halo_owner`` maps each halo to the simulation node that owns it
    (drives the per-node imbalance numbers).  ``halo_weight[i]`` (default
    1) says how many identical halos entry ``i`` stands for — huge
    populations (the Q Continuum's 168M halos) carry an exactly-sampled
    tail plus a weighted bulk sample, keeping arrays small while all
    aggregate quantities stay exact in expectation.
    """

    n_particles: int
    n_sim_nodes: int
    n_steps: int
    halo_counts: np.ndarray
    halo_owner: np.ndarray
    halo_weight: np.ndarray | None = None
    n_snapshots: int = 1
    label: str = "workload"

    def __post_init__(self) -> None:
        object.__setattr__(self, "halo_counts", np.asarray(self.halo_counts, dtype=np.int64))
        object.__setattr__(self, "halo_owner", np.asarray(self.halo_owner, dtype=np.intp))
        if self.halo_weight is None:
            object.__setattr__(
                self, "halo_weight", np.ones(len(self.halo_counts), dtype=np.int64)
            )
        else:
            object.__setattr__(
                self, "halo_weight", np.asarray(self.halo_weight, dtype=np.int64)
            )
        if len(self.halo_counts) != len(self.halo_owner):
            raise ValueError("halo_counts and halo_owner must have equal length")
        if len(self.halo_weight) != len(self.halo_counts):
            raise ValueError("halo_weight must match halo_counts length")
        if len(self.halo_owner) and self.halo_owner.max() >= self.n_sim_nodes:
            raise ValueError("halo_owner refers to node >= n_sim_nodes")

    # -- derived quantities ------------------------------------------------------

    @property
    def n_halos(self) -> int:
        return int(self.halo_weight.sum())

    @property
    def largest_halo(self) -> int:
        return int(self.halo_counts.max()) if len(self.halo_counts) else 0

    @property
    def level1_bytes(self) -> int:
        return level1_bytes(self.n_particles)

    def level2_particles(self, threshold: int) -> int:
        """Particles living in halos above the off-load threshold."""
        sel = self.halo_counts > threshold
        return int((self.halo_counts[sel] * self.halo_weight[sel]).sum())

    def level2_bytes(self, threshold: int) -> int:
        return level2_bytes(self.level2_particles(threshold))

    @property
    def level3_bytes(self) -> int:
        return level3_bytes(self.n_halos)

    def pair_counts(self) -> np.ndarray:
        """Per-listed-halo center-finding pair counts (n(n-1), unweighted)."""
        return center_finding_cost(self.halo_counts)

    def weighted_pairs(self, mask: np.ndarray | None = None) -> float:
        """Total pair count over (a subset of) the full halo population."""
        pairs = self.pair_counts().astype(float) * self.halo_weight
        if mask is not None:
            pairs = pairs[mask]
        return float(pairs.sum())

    def node_pairs(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Per-node total pair counts (optionally restricted to ``mask``).

        Weight-1 entries (including the exactly-sampled tail) lump on
        their owner node; weighted bulk entries represent many identical
        halos scattered across nodes, so their load spreads evenly.  The
        max-node statistic is therefore controlled by the exact tail,
        as it is in the real workload.
        """
        pairs = self.pair_counts().astype(float)
        weighted = pairs * self.halo_weight
        if mask is not None:
            pairs = np.where(mask, pairs, 0.0)
            weighted = np.where(mask, weighted, 0.0)
        single = self.halo_weight == 1
        out = np.bincount(
            self.halo_owner[single],
            weights=pairs[single],
            minlength=self.n_sim_nodes,
        )
        bulk_total = float(weighted[~single].sum())
        out += bulk_total / self.n_sim_nodes
        return out

    def scaled(self, volume_factor: int, seed: int = 7) -> "WorkloadProfile":
        """Self-similar volume scaling: tile the halo population
        ``volume_factor`` times over ``volume_factor`` x the nodes."""
        if volume_factor < 1:
            raise ValueError("volume_factor must be >= 1")
        rng = np.random.default_rng(seed)
        counts = np.tile(self.halo_counts, volume_factor)
        weights = np.tile(self.halo_weight, volume_factor)
        owners = rng.integers(0, self.n_sim_nodes * volume_factor, size=len(counts))
        return replace(
            self,
            n_particles=self.n_particles * volume_factor,
            n_sim_nodes=self.n_sim_nodes * volume_factor,
            halo_counts=counts,
            halo_owner=owners,
            halo_weight=weights,
            label=f"{self.label}-x{volume_factor}",
        )


def profile_from_context(context, n_particles: int, n_steps: int) -> WorkloadProfile:
    """Extract a measured profile from an in-situ AnalysisContext."""
    fof = context.store["fof"]
    tags = sorted(fof["halos"])
    counts = np.asarray([fof["counts"][t] for t in tags], dtype=np.int64)
    owners = np.asarray([fof["owner_rank"][t] for t in tags], dtype=np.intp)
    return WorkloadProfile(
        n_particles=n_particles,
        n_sim_nodes=fof["n_ranks"],
        n_steps=n_steps,
        halo_counts=counts,
        halo_owner=owners,
        label="measured",
    )


def synthetic_halo_catalog(
    n_halos: int,
    slope: float = 1.6,
    m_min: int = 40,
    m_star: float = 3.0e5,
    beta: float = 0.9,
    seed: int = 42,
    m_cap: float | None = None,
) -> np.ndarray:
    """Draw halo particle counts from a Schechter-like mass function.

    ``dn/dM ∝ M^{-slope} exp(-(M/m_star)^beta)`` above ``m_min``,
    sampled by inverse transform over a log grid.  The defaults are
    tuned (see ``benchmarks/``) so a Q Continuum-sized draw reproduces
    the paper's quoted totals: ~168M halos with ~85k above 300k
    particles and a largest halo of ~25M.
    """
    if n_halos < 1:
        raise ValueError("n_halos must be >= 1")
    rng = np.random.default_rng(seed)
    grid = np.logspace(np.log10(m_min), np.log10(max(m_star * 500, m_min * 10)), 4096)
    pdf = grid ** (-slope) * np.exp(-((grid / m_star) ** beta))
    cdf = np.cumsum(pdf * np.gradient(grid))
    cdf /= cdf[-1]
    u = rng.uniform(0, 1, n_halos)
    counts = np.interp(u, cdf, grid)
    if m_cap is not None:
        counts = np.minimum(counts, m_cap)
    return np.maximum(counts.astype(np.int64), m_min)


def qcontinuum_like_profile(
    scale_down: int = 1, seed: int = 42, n_sim_nodes: int = 16384
) -> WorkloadProfile:
    """Synthesized Q Continuum final-step workload (8192³ particles).

    ``scale_down`` produces the self-similar smaller run (512 gives the
    paper's 1024³ test problem on 32 nodes, whose largest halo is then
    ~2.5M particles by construction of the tail).
    """
    n_particles = 8192**3 // scale_down
    n_nodes = max(n_sim_nodes // scale_down, 1)
    n_halos = max(167_686_789 // scale_down, 1)
    rng = np.random.default_rng(seed)
    # Huge populations: draw the consequential tail (> tail_cut particles)
    # exactly, and represent the bulk by a weighted sample — keeps arrays
    # small while every aggregate stays exact in expectation.
    bulk_cap = 2_000_000
    if n_halos > bulk_cap:
        sample = synthetic_halo_catalog(bulk_cap, seed=seed)
        tail_cut = 300_000
        tail_frac = float((sample > tail_cut).mean())
        n_tail = int(round(tail_frac * n_halos))
        # exact tail: resample tail-sized halos individually
        tail_pool = sample[sample > tail_cut]
        tail = rng.choice(tail_pool, size=n_tail, replace=True)
        bulk = sample[sample <= tail_cut]
        n_bulk = n_halos - n_tail
        weight_bulk = np.full(len(bulk), n_bulk // len(bulk), dtype=np.int64)
        weight_bulk[: n_bulk % len(bulk)] += 1
        counts = np.concatenate([bulk, tail])
        weights = np.concatenate([weight_bulk, np.ones(n_tail, dtype=np.int64)])
    else:
        counts = synthetic_halo_catalog(n_halos, seed=seed)
        weights = np.ones(n_halos, dtype=np.int64)
    # "a handful of halos with up to 25 million particles" (paper §1):
    # pin the extreme tail, scaled self-similarly with the volume
    giants = np.asarray([25_000_000, 17_000_000, 12_000_000, 9_000_000, 7_000_000])
    giants = (giants / scale_down**0.35).astype(np.int64)  # rarer peaks shrink slowly
    if scale_down == 512:
        giants = np.asarray([2_548_321], dtype=np.int64)  # the test run's quoted max
    top = np.argsort(counts)[-len(giants):]
    counts[top] = np.sort(giants)
    weights[top] = 1
    owners = rng.integers(0, n_nodes, size=len(counts))
    return WorkloadProfile(
        n_particles=n_particles,
        n_sim_nodes=n_nodes,
        n_steps=100,
        halo_counts=counts,
        halo_owner=owners,
        halo_weight=weights,
        n_snapshots=100,
        label=f"qcontinuum/{scale_down}",
    )


def test_run_like_profile(seed: int = 42) -> WorkloadProfile:
    """The paper's §4.2 downscaled test: 1024³ particles on 32 Titan nodes.

    Drawn from the same mass function as the Q Continuum profile scaled
    by 512, with the tail capped at the paper's quoted largest halo for
    this run (2,548,321 particles: "an order of magnitude smaller than
    from the Q Continuum run ... due to its smaller volume").
    """
    n_halos = 167_686_789 // 512
    counts = synthetic_halo_catalog(n_halos, seed=seed)
    # pin the paper's quoted maximum exactly (the one rare giant object)
    counts[int(np.argmax(counts))] = 2_548_321
    rng = np.random.default_rng(seed + 1)
    owners = rng.integers(0, 32, size=len(counts))
    return WorkloadProfile(
        n_particles=1024**3,
        n_sim_nodes=32,
        n_steps=60,
        halo_counts=counts,
        halo_owner=owners,
        n_snapshots=1,
        label="test-1024",
    )
