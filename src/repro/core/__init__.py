"""The paper's primary contribution: the combined workflow engine.

Workload profiling, the automated in-situ/off-line split planner, the
five workflow strategies with full time/core-hour accounting, and
table/figure renderers.
"""

from .accounting import FailureRecord, JobLedger, Phase, WorkflowReport
from .driver import (
    CombinedRunResult,
    centers_from_level2_arrays,
    offline_center_job,
    run_combined_workflow,
    run_intransit_workflow,
)
from .planner import SplitPlan, lpt_assign, plan_split
from .report import figure_histogram, format_bytes, render_table, table3, table4
from .strategies import (
    CombinedWorkflow,
    InSituOnlyWorkflow,
    OfflineOnlyWorkflow,
    WorkflowStrategy,
    evaluate_all,
)
from .workload import (
    WorkloadProfile,
    profile_from_context,
    qcontinuum_like_profile,
    synthetic_halo_catalog,
    test_run_like_profile,
)

__all__ = [
    "CombinedRunResult",
    "centers_from_level2_arrays",
    "run_intransit_workflow",
    "offline_center_job",
    "run_combined_workflow",
    "FailureRecord",
    "JobLedger",
    "Phase",
    "WorkflowReport",
    "SplitPlan",
    "lpt_assign",
    "plan_split",
    "figure_histogram",
    "format_bytes",
    "render_table",
    "table3",
    "table4",
    "CombinedWorkflow",
    "InSituOnlyWorkflow",
    "OfflineOnlyWorkflow",
    "WorkflowStrategy",
    "evaluate_all",
    "WorkloadProfile",
    "profile_from_context",
    "qcontinuum_like_profile",
    "synthetic_halo_catalog",
    "test_run_like_profile",
]
