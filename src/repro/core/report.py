"""Text renderers for the paper's tables and figures.

Every benchmark regenerates its table/figure through these helpers so
the printed rows are directly comparable with the paper (EXPERIMENTS.md
records the pairing).
"""

from __future__ import annotations

import numpy as np

from .accounting import WorkflowReport

__all__ = [
    "format_bytes",
    "render_table",
    "table3",
    "table4",
    "figure_histogram",
]


def format_bytes(nbytes: float) -> str:
    """Human-readable byte size (paper-style: GB/TB)."""
    for unit, factor in (("PB", 1e15), ("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if nbytes >= factor:
            return f"{nbytes / factor:.1f} {unit}"
    return f"{nbytes:.0f} B"


def render_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """Plain-text table with aligned columns."""
    cells = [[str(h) for h in headers], *([str(c) for c in row] for row in rows)]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table3(reports: list[WorkflowReport]) -> str:
    """Render Table 3: workflow summary (I/O, redistribution, queueing,
    core hours)."""
    rows = []
    for r in reports:
        s = r.summary()
        rows.append(
            [s["method"], s["io"], s["redistribute"], s["queueing"], s["core_hours"]]
        )
    return render_table(
        ["Method", "I/O", "Redist.", "Queueing", "Core hrs"],
        rows,
        title="Table 3: analysis workflows",
    )


def table4(report: WorkflowReport) -> str:
    """Render one workflow's Table 4 block (per-phase breakdown)."""
    blocks = []
    sim = report.simulation.as_row()
    rows = [
        [
            "Time (sec)",
            f"{sim.get('sim', 0):.0f}",
            f"{sim.get('analysis', 0):.0f}",
            f"{sim.get('write', 0):.1f}",
            f"{sim['total']:.0f}",
        ],
        ["Core hours", "", "", "", f"{report.simulation.core_hours:.0f}"],
    ]
    blocks.append(
        render_table(
            ["Simulation", "Sim", "Analysis", "Write", "Total"],
            rows,
            title=f"=== {report.name} ===",
        )
    )
    for post in report.postprocessing:
        p = post.as_row()
        rows = [
            [
                "Time (sec)",
                f"{p.get('read', 0):.1f}",
                f"{p.get('redistribute', 0):.0f}",
                f"{p.get('analysis', 0):.0f}",
                f"{p.get('write', 0):.2f}",
                f"{p['total']:.0f}",
            ],
            ["Core hours", "", "", "", "", f"{post.core_hours:.1f}"],
        ]
        blocks.append(
            render_table(
                ["Post-processing", "Read", "Redistribute", "Analysis", "Write", "Total"],
                rows,
            )
        )
    blocks.append(f"analysis core-hours (Table 3 convention): {report.analysis_core_hours:.0f}")
    return "\n".join(blocks)


def figure_histogram(
    values: np.ndarray,
    bin_edges: np.ndarray,
    counts: np.ndarray | None = None,
    width: int = 50,
    log_counts: bool = True,
    label: str = "",
) -> str:
    """ASCII histogram (log-scaled bars) for the figure reproductions."""
    if counts is None:
        counts, _ = np.histogram(np.asarray(values, dtype=float), bins=bin_edges)
    lines = [label] if label else []
    cmax = max(counts.max(), 1)
    for lo, hi, c in zip(bin_edges[:-1], bin_edges[1:], counts):
        if log_counts:
            bar = int(np.round(width * np.log10(1 + c) / np.log10(1 + cmax)))
        else:
            bar = int(np.round(width * c / cmax))
        lines.append(f"{lo:>12.3g} - {hi:<12.3g} |{'#' * bar} {c}")
    return "\n".join(lines)
