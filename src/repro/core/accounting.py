"""Time and core-hour accounting for workflow evaluations (Tables 3 & 4).

The paper's evaluation currency is the phase breakdown of Table 4 —
Queuing / Sim / Analysis / Write for the simulation job, Queuing / Read /
Redistribute / Analysis / Write for post-processing — with core-hours
charged per facility policy (Titan: 30 core-hours per node-hour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machines.machine import MachineSpec

__all__ = ["FailureRecord", "Phase", "JobLedger", "WorkflowReport"]


@dataclass(frozen=True)
class FailureRecord:
    """One terminal failure a live workflow completed *without*.

    The degraded-mode receipt attached to
    :class:`repro.core.driver.CombinedRunResult` (``failures`` list,
    ``degraded=True``): which unit of work was given up on, where, and
    after how many attempts — so a degraded Level 3 catalog is always
    accompanied by an exact statement of what is missing.
    """

    stage: str  # "offline" | "listener" | "exec" | ...
    key: str  # timestep / job name / item id
    reason: str
    attempts: int = 1

    def as_dict(self) -> dict[str, object]:
        return {
            "stage": self.stage,
            "key": self.key,
            "reason": self.reason,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class Phase:
    """One accounted phase of a job."""

    name: str
    seconds: float
    nodes: int
    machine: MachineSpec

    @property
    def core_hours(self) -> float:
        return self.machine.core_hours(self.seconds, self.nodes)


@dataclass
class JobLedger:
    """Phase breakdown of one batch job (simulation or post-processing)."""

    name: str
    machine: MachineSpec
    nodes: int
    phases: list[Phase] = field(default_factory=list)
    queue_wait: float = 0.0

    def add(self, name: str, seconds: float, nodes: int | None = None) -> Phase:
        """Append a phase (defaults to the job's node count)."""
        phase = Phase(
            name=name,
            seconds=float(seconds),
            nodes=self.nodes if nodes is None else nodes,
            machine=self.machine,
        )
        self.phases.append(phase)
        return phase

    def seconds(self, name: str) -> float:
        """Total seconds across phases with this name (0 if absent)."""
        return sum(p.seconds for p in self.phases if p.name == name)

    @property
    def total_seconds(self) -> float:
        """Wall time inside the job (excluding queue wait)."""
        return sum(p.seconds for p in self.phases)

    @property
    def core_hours(self) -> float:
        return sum(p.core_hours for p in self.phases)

    def as_row(self) -> dict[str, float]:
        """Phase-name -> seconds mapping plus totals (a Table 4 row)."""
        row: dict[str, float] = {}
        for p in self.phases:
            row[p.name] = row.get(p.name, 0.0) + p.seconds
        row["total"] = self.total_seconds
        row["core_hours"] = self.core_hours
        row["queue_wait"] = self.queue_wait
        return row


@dataclass
class WorkflowReport:
    """Full accounting of one workflow strategy evaluation.

    ``analysis_core_hours`` follows Table 3's convention: "the sum of the
    core hours for the analysis and write steps of the simulation run,
    plus the total core hours for the post-processing run" — i.e. the
    simulation's own compute is excluded, since every strategy pays it
    identically.
    """

    name: str
    simulation: JobLedger
    postprocessing: list[JobLedger] = field(default_factory=list)
    io_level: str = "none"
    redistribute_level: str = "none"
    queueing: str = "none"
    notes: str = ""

    @property
    def analysis_core_hours(self) -> float:
        sim_part = sum(
            p.core_hours
            for p in self.simulation.phases
            if p.name in ("analysis", "write")
        )
        return sim_part + sum(j.core_hours for j in self.postprocessing)

    @property
    def total_core_hours(self) -> float:
        """Everything, simulation compute included."""
        return self.simulation.core_hours + sum(j.core_hours for j in self.postprocessing)

    @property
    def time_to_science(self) -> float:
        """Wall-clock from simulation job start to last analysis output
        (queue waits of post-processing included — the quantity
        co-scheduling improves)."""
        t = self.simulation.total_seconds
        if self.postprocessing:
            t += max(j.queue_wait + j.total_seconds for j in self.postprocessing)
        return t

    def summary(self) -> dict[str, object]:
        """A Table 3 row."""
        return {
            "method": self.name,
            "io": self.io_level,
            "redistribute": self.redistribute_level,
            "queueing": self.queueing,
            "core_hours": round(self.analysis_core_hours, 1),
        }
