"""Automated in-situ/off-line split planning (paper §4.1).

The paper chose the 300,000-particle threshold manually but sketches the
automation this module implements:

    "First, one would estimate the time the code will spend in I/O,
    t_io, if the analysis were off-line. ... The mass of the largest
    halo, m_max_io, that could be analyzed in time less than t_io,
    would then be estimated. ... During the simulation, all halo
    finding occurs in-situ, and the mass of the largest halo,
    m_max_sim, can be found.  If m_max_sim < m_max_io, the centers for
    all halos can be computed in-situ.  If m_max_sim > m_max_io, then
    all particles in halos with mass greater than m_max_io should be
    saved out for off-line center-finding.  To set up an optimized
    co-scheduling job, one would first estimate the time, T, to analyze
    all halos ... From this, the time, t_max, it will take to analyze
    the largest halo can be estimated.  The number of ranks for the
    co-scheduling task should be set equal to T/t_max.  The halos
    should be distributed so that each rank has roughly the same
    workload."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.centers import center_finding_cost
from ..machines.cost import CostModel
from ..machines.machine import MachineSpec
from .workload import WorkloadProfile

__all__ = ["SplitPlan", "plan_split", "lpt_assign"]


@dataclass(frozen=True)
class SplitPlan:
    """Outcome of the automated planning rule."""

    t_io: float
    m_max_io: int
    m_max_sim: int
    threshold: int | None  # None = everything in-situ
    offload_total_seconds: float  # T
    offload_max_seconds: float  # t_max
    n_offline_ranks: int
    assignment: np.ndarray  # offloaded halo -> off-line rank
    offload_mask: np.ndarray  # over the profile's halos

    @property
    def all_in_situ(self) -> bool:
        return self.threshold is None


def lpt_assign(costs: np.ndarray, n_ranks: int) -> np.ndarray:
    """Longest-processing-time greedy assignment of jobs to ranks.

    Classic 4/3-approximate makespan scheduling: sort jobs by descending
    cost, give each to the currently least-loaded rank.  Returns the
    rank index per job.
    """
    costs = np.asarray(costs, dtype=float)
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    assignment = np.empty(len(costs), dtype=np.intp)
    loads = np.zeros(n_ranks)
    for j in np.argsort(-costs, kind="stable"):
        r = int(np.argmin(loads))
        assignment[j] = r
        loads[r] += costs[j]
    return assignment


def plan_split(
    profile: WorkloadProfile,
    cost: CostModel,
    machine: MachineSpec,
    analysis_machine: MachineSpec | None = None,
    backend: str = "gpu",
) -> SplitPlan:
    """Apply the paper's automated split rule to a workload.

    ``t_io`` is the off-line I/O + redistribution cost the in-situ
    analysis of a halo must undercut to be worthwhile; the threshold is
    the largest halo analyzable within ``t_io`` on one node.
    """
    analysis_machine = analysis_machine or machine

    # off-line I/O tax: write + read + redistribute the Level 1 data
    nbytes = profile.level1_bytes
    t_io = 2.0 * cost.io_seconds(nbytes, profile.n_sim_nodes) + cost.redistribute_seconds(
        nbytes, profile.n_sim_nodes
    )

    rate = cost.pair_rate(machine, backend)
    # pairs(c) = c(c-1) <= t_io * rate  ->  c = floor of positive root
    m_max_io = int(0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_io * rate)))
    m_max_sim = profile.largest_halo

    if m_max_sim <= m_max_io:
        return SplitPlan(
            t_io=t_io,
            m_max_io=m_max_io,
            m_max_sim=m_max_sim,
            threshold=None,
            offload_total_seconds=0.0,
            offload_max_seconds=0.0,
            n_offline_ranks=0,
            assignment=np.empty(0, dtype=np.intp),
            offload_mask=np.zeros(profile.n_halos, dtype=bool),
        )

    threshold = m_max_io
    offload_mask = profile.halo_counts > threshold
    off_counts = profile.halo_counts[offload_mask]
    off_weights = profile.halo_weight[offload_mask]
    off_rate = cost.pair_rate(analysis_machine, backend)
    off_seconds = center_finding_cost(off_counts) / off_rate
    total = float((off_seconds * off_weights).sum())
    t_max = float(off_seconds.max())
    n_ranks = max(int(np.ceil(total / t_max)), 1)
    assignment = lpt_assign(off_seconds, n_ranks)
    return SplitPlan(
        t_io=t_io,
        m_max_io=m_max_io,
        m_max_sim=m_max_sim,
        threshold=threshold,
        offload_total_seconds=total,
        offload_max_seconds=t_max,
        n_offline_ranks=n_ranks,
        assignment=assignment,
        offload_mask=offload_mask,
    )
