"""Live workflow driver: execute the full combined pipeline for real.

Unlike :mod:`repro.core.strategies` (which *prices* workflows at paper
scale through the cost model), this module actually runs everything at
mini-HACC scale on the local machine:

1. run the simulation with CosmoTools in-situ analysis (halos, centers
   below the threshold, Level 2 files into a spool directory);
2. a :class:`~repro.machines.listener.Listener` watches the spool and
   fires the off-line analysis job per snapshot (the co-scheduling
   path), or the off-line pass runs after the simulation (the simple
   path);
3. the off-line job reads the Level 2 blocks, finds the MBP centers of
   the off-loaded halos, and writes its own catalog;
4. the in-situ and off-line catalogs are merged into the final Level 3
   product.

This is the code path the integration tests and examples exercise; its
outputs are bit-identical between the simple and co-scheduled variants
(only scheduling differs), and match a full in-situ run with threshold
infinity — the workflow correctness property the paper relies on.

Failure model (see ``docs/failures.md``): every off-line center job
runs under the listener's :class:`~repro.faults.RetryPolicy` (with
``"offline.job"`` fault injection per attempt).  A snapshot whose job
exhausts its retries does **not** abort the campaign — the run
completes with the in-situ leg of the catalog, ``degraded=True``, and
a :class:`~repro.core.accounting.FailureRecord` per missing snapshot,
so a degraded Level 3 product always states exactly what is absent.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

import numpy as np

from ..analysis.centers import halo_centers
from ..faults import RetryPolicy, maybe_inject
from ..insitu.algorithms import (
    HaloCenterAlgorithm,
    HaloFinderAlgorithm,
    Level2StageAlgorithm,
    Level2WriterAlgorithm,
)
from ..insitu.manager import InSituAnalysisManager
from ..insitu.pipeline import AsyncInSituManager
from ..io.catalog import HaloCatalog, merge_catalogs
from ..io.genericio import GenericIOFile
from ..machines.listener import Listener
from ..machines.staging import StagingArea
from ..obs import RunTelemetry, get_recorder
from ..sim.hacc import HACCSimulation, SimulationConfig
from .accounting import FailureRecord

__all__ = [
    "CombinedRunResult",
    "offline_center_job",
    "run_combined_workflow",
    "run_intransit_workflow",
    "centers_from_level2_arrays",
]


@dataclass
class CombinedRunResult:
    """Everything a live combined run produced."""

    catalog: HaloCatalog  # merged, complete Level 3
    insitu_catalog: HaloCatalog
    offline_catalog: HaloCatalog
    offloaded_halo_tags: list[int]
    level2_paths: list[str] = field(default_factory=list)
    listener_stats: object | None = None
    #: :class:`~repro.obs.report.RunTelemetry` snapshot of the run
    #: (``None`` when telemetry is disabled — the default).
    telemetry: RunTelemetry | None = None
    #: ``True`` when an off-line leg exhausted its retries: ``catalog``
    #: is then missing the failed snapshots' off-loaded halos (worst
    #: case: the in-situ-only catalog), and ``failures`` says which.
    degraded: bool = False
    failures: list[FailureRecord] = field(default_factory=list)


def centers_from_level2_arrays(
    data: dict[str, np.ndarray],
    particle_mass: float = 1.0,
    softening: float = 1.0e-5,
    method: str = "bruteforce",
    backend: str = "vector",
    workers: int | None = None,
) -> HaloCatalog:
    """Find MBP centers for a Level 2 bundle (pos/tag/halo_tag arrays).

    ``workers > 1`` routes the batch through the :mod:`repro.exec`
    work-stealing engine — the off-loaded halos are exactly the giant
    ones, so this is where slab-splitting pays off most.
    """
    pos = np.asarray(data["pos"], dtype=float)
    tags = np.asarray(data["tag"], dtype=np.int64)
    halo_tags = np.asarray(data["halo_tag"], dtype=np.int64)
    if len(pos) == 0:
        return HaloCatalog()

    res = halo_centers(
        pos,
        tags,
        halo_tags,
        mass=particle_mass,
        softening=softening,
        method=method,
        backend=backend,
        workers=workers,
    )
    # One O(n log n) pass instead of the former O(halos × particles)
    # per-tag scan: count every tag once, then gather in result order.
    uniq, uniq_counts = np.unique(halo_tags, return_counts=True)
    counts = uniq_counts[np.searchsorted(uniq, res.halo_tags)].astype(np.int64)
    return HaloCatalog.from_columns(
        halo_tag=res.halo_tags.astype(np.uint64),
        count=counts,
        center=res.centers,
        mbp_tag=res.mbp_tags.astype(np.uint64),
        potential=res.potentials,
        particle_mass=particle_mass,
    )


def offline_center_job(
    level2_path: str | os.PathLike,
    particle_mass: float = 1.0,
    softening: float = 1.0e-5,
    method: str = "bruteforce",
    backend: str = "vector",
    block: int | None = None,
    workers: int | None = None,
) -> HaloCatalog:
    """The stand-alone analysis driver the listener launches.

    Reads one Level 2 file (or a single block of it, the Moonlight
    single-node-job pattern), groups particles by halo tag, and finds
    each halo's MBP center.  ``workers > 1`` fills the analysis node's
    cores through the :mod:`repro.exec` engine.
    """
    rec = get_recorder()
    with rec.span(
        "offline.center_job", path=os.fspath(level2_path), block=block, workers=workers
    ):
        gio = GenericIOFile(level2_path)
        if block is not None:
            data = gio.read_block(block)
        else:
            data = gio.read_all()
        catalog = centers_from_level2_arrays(
            data,
            particle_mass=particle_mass,
            softening=softening,
            method=method,
            backend=backend,
            workers=workers,
        )
    rec.counter("offline_jobs_total").inc()
    return catalog


def run_combined_workflow(
    config: SimulationConfig,
    spool_dir: str | os.PathLike,
    threshold: int,
    linking_length_factor: float = 0.2,
    min_count: int = 40,
    n_ranks: int = 8,
    coschedule: bool = False,
    listener_poll: float = 0.1,
    analysis_workers: int | None = None,
    retry: RetryPolicy | None = None,
    journal_dir: str | os.PathLike | None = None,
    run_id: str | None = None,
    spmd_transport=None,
    pipeline_insitu: bool = False,
    analysis_steps: list[int] | None = None,
) -> CombinedRunResult:
    """Run the combined in-situ/off-line workflow for real.

    With ``coschedule=True`` a threaded listener watches the spool while
    the simulation runs and analyzes each Level 2 file as it appears;
    otherwise the off-line pass runs after the simulation completes
    (the "simple" variant).  Results are identical either way.

    ``analysis_workers > 1`` runs every off-line center job on the
    :mod:`repro.exec` multi-process engine (same results, the node's
    cores actually used).

    ``spmd_transport`` selects the halo finder's SPMD substrate
    (``"thread"``, ``"process"``, or a
    :class:`~repro.parallel.transport.SpmdConfig`); ``"process"`` forks
    one OS process per analysis rank for real multi-core FOF.
    ``pipeline_insitu=True`` runs the in-situ chain on a snapshot buffer
    concurrently with the next simulation steps
    (:class:`~repro.insitu.pipeline.AsyncInSituManager`): the catalogs
    are bit-identical to the serial run, but analysis wall time overlaps
    simulation wall time (``WorkflowTimeline.overlap_fraction() > 0``).
    ``analysis_steps`` lists the steps the in-situ chain fires at
    (default: the final step only, the paper's Level 2 cadence); it must
    include ``config.n_steps``, whose catalog is the final product —
    earlier steps' products stay available through the analysis history
    and give the pipelining something to overlap.

    ``retry`` is the listener's submit policy (``None`` → the tree-wide
    default of 3 attempts).  An off-line job that fails every attempt
    (e.g. an ``"offline.job"`` fault with ``always=True``) degrades the
    run instead of aborting it: the result carries ``degraded=True``
    plus one :class:`~repro.core.accounting.FailureRecord` per missing
    snapshot, and ``catalog`` contains whatever legs completed.

    ``journal_dir`` makes the run *durable*: a run directory
    ``<journal_dir>/<run_id>/`` is created with a manifest (config hash,
    seeds, fault plan, code version) and every event / span / metric
    snapshot / failure record streams into its crash-safe journal
    (see :mod:`repro.obs.journal`; explore it with
    ``python -m repro.obs``).  A live recorder is installed for the
    run's duration if telemetry was off.  ``run_id`` names the run
    directory (defaults to the recorder's generated id).
    """
    if journal_dir is not None:
        return _run_combined_journaled(
            config,
            spool_dir,
            threshold,
            linking_length_factor=linking_length_factor,
            min_count=min_count,
            n_ranks=n_ranks,
            coschedule=coschedule,
            listener_poll=listener_poll,
            analysis_workers=analysis_workers,
            retry=retry,
            journal_dir=journal_dir,
            run_id=run_id,
            spmd_transport=spmd_transport,
            pipeline_insitu=pipeline_insitu,
            analysis_steps=analysis_steps,
        )
    rec = get_recorder()
    spool_dir = os.fspath(spool_dir)
    os.makedirs(spool_dir, exist_ok=True)
    last_step = config.n_steps
    steps = sorted(set(analysis_steps)) if analysis_steps is not None else [last_step]
    if last_step not in steps:
        raise ValueError(
            f"analysis_steps must include the final step {last_step} "
            "(its catalog is the run's Level 3 product)"
        )
    rec.event(
        "workflow.start",
        mode="coscheduled" if coschedule else "simple",
        threshold=threshold,
        n_steps=config.n_steps,
        pipeline_insitu=pipeline_insitu,
    )

    manager = InSituAnalysisManager()
    manager.register(
        HaloFinderAlgorithm(
            at_steps=steps,
            linking_length_factor=linking_length_factor,
            min_count=min_count,
            n_ranks=n_ranks,
            transport=spmd_transport,
        )
    )
    manager.register(HaloCenterAlgorithm(at_steps=steps, threshold=threshold))
    manager.register(Level2WriterAlgorithm(at_steps=steps, output_dir=spool_dir))
    exec_manager = AsyncInSituManager(manager) if pipeline_insitu else manager

    offline_catalogs: list[tuple[int, HaloCatalog]] = []
    listener_stats = None
    completed_steps: set[int] = set()

    def submit(path: str, step: int, script: str) -> None:
        maybe_inject("offline.job", key=step)
        offline_catalogs.append((step, offline_center_job(path, workers=analysis_workers)))
        completed_steps.add(step)

    sim = HACCSimulation(config, analysis_manager=exec_manager)

    if coschedule:
        listener = Listener(
            spool_dir, "l2_step*.gio", submit, poll_interval=listener_poll, retry=retry
        )
        with rec.span("workflow.sim", coschedule=True):
            listener.start()
            try:
                sim.run()
            finally:
                # pipelined analyses must land (Level 2 files written) before
                # the listener's final poll; close() re-raises their failures
                try:
                    if pipeline_insitu:
                        exec_manager.close()
                finally:
                    listener.stop(final_poll=True)
        listener_stats = listener.stats
        level2_paths = sorted(listener.seen)
    else:
        with rec.span("workflow.sim", coschedule=False):
            sim.run()
        if pipeline_insitu:
            exec_manager.close()
        listener = Listener(spool_dir, "l2_step*.gio", submit, retry=retry)
        with rec.span("workflow.offline"):
            fresh = listener.poll_once()  # one shot after the run ("queued after sim")
        listener_stats = listener.stats
        level2_paths = fresh

    ctx = manager.history[last_step]
    insitu_catalog: HaloCatalog = ctx.store["centers"]["catalog"]
    offloaded = ctx.store["centers"]["offloaded_halo_tags"]
    with rec.span("workflow.merge"):
        # the Level 3 product is single-epoch: only the final step's
        # off-line catalog merges in (earlier analysis_steps' catalogs
        # stay reachable through manager.history / the spool)
        final_offline = [cat for step, cat in offline_catalogs if step == last_step]
        offline_catalog = (
            merge_catalogs(*final_offline) if final_offline else HaloCatalog()
        )
        merged = merge_catalogs(insitu_catalog, offline_catalog)

    # graceful degradation: snapshots whose off-line job exhausted its
    # retries are recorded, not raised — the campaign's other legs stand
    attempts = listener.retry.max_attempts
    failures = [
        FailureRecord(
            stage="offline",
            key=str(step),
            reason="off-line center job failed every retry attempt",
            attempts=attempts,
        )
        for step in sorted(_steps_of(level2_paths) - completed_steps)
    ]
    if failures:
        rec.event(
            "workflow.degraded",
            level="warning",
            missing_steps=[f.key for f in failures],
            jobs_failed=getattr(listener_stats, "jobs_failed", 0),
        )
    rec.event(
        "workflow.done",
        halos=len(merged),
        offloaded=len(offloaded),
        jobs_failed=getattr(listener_stats, "jobs_failed", 0),
        degraded=bool(failures),
    )
    return CombinedRunResult(
        catalog=merged,
        insitu_catalog=insitu_catalog,
        offline_catalog=offline_catalog,
        offloaded_halo_tags=offloaded,
        level2_paths=list(level2_paths),
        listener_stats=listener_stats,
        telemetry=RunTelemetry.from_recorder(rec),
        degraded=bool(failures),
        failures=failures,
    )


def _run_combined_journaled(
    config: SimulationConfig,
    spool_dir: str | os.PathLike,
    threshold: int,
    *,
    linking_length_factor: float,
    min_count: int,
    n_ranks: int,
    coschedule: bool,
    listener_poll: float,
    analysis_workers: int | None,
    retry: RetryPolicy | None,
    journal_dir: str | os.PathLike,
    run_id: str | None,
    spmd_transport=None,
    pipeline_insitu: bool = False,
    analysis_steps: list[int] | None = None,
) -> CombinedRunResult:
    """The durable wrapper around :func:`run_combined_workflow`.

    Opens the run directory + journal, scopes the recorder to the run
    id, and guarantees the journal's terminal records (failures, final
    metrics snapshot, ``run.end``) even when the run raises — a crashed
    run keeps its tail via the journal's ``atexit`` flush.
    """
    from dataclasses import asdict

    from ..faults import get_fault_plan, resolve_retry
    from ..obs import TelemetryRecorder, set_recorder
    from ..obs.journal import RunJournal

    rec = get_recorder()
    previous_rec = None
    if not getattr(rec, "enabled", False):
        rec = TelemetryRecorder(run_id=run_id)
        previous_rec = set_recorder(rec)
    rid = run_id or rec.run_id or "run"
    plan = get_fault_plan()
    journal = RunJournal.create(
        journal_dir,
        rid,
        config={
            "workflow": {
                "kind": "combined",
                "threshold": threshold,
                "linking_length_factor": linking_length_factor,
                "min_count": min_count,
                "n_ranks": n_ranks,
                "coschedule": coschedule,
                "analysis_workers": analysis_workers,
                "spmd_transport": str(spmd_transport) if spmd_transport else None,
                "pipeline_insitu": pipeline_insitu,
                "analysis_steps": analysis_steps,
            },
            "sim": asdict(config),
        },
        seeds={"sim": config.seed, "retry": resolve_retry(retry).seed},
        fault_plan=plan.to_dict() if plan is not None else None,
    )
    status = "ok"
    result: CombinedRunResult | None = None
    try:
        with rec.run_scope(rid):
            rec.attach_journal(journal)
            try:
                result = run_combined_workflow(
                    config,
                    spool_dir,
                    threshold,
                    linking_length_factor=linking_length_factor,
                    min_count=min_count,
                    n_ranks=n_ranks,
                    coschedule=coschedule,
                    listener_poll=listener_poll,
                    analysis_workers=analysis_workers,
                    retry=retry,
                    spmd_transport=spmd_transport,
                    pipeline_insitu=pipeline_insitu,
                    analysis_steps=analysis_steps,
                )
            except BaseException:
                status = "error"
                raise
            finally:
                for f in result.failures if result is not None else []:
                    journal.failure(dict(f.as_dict(), run=rid))
                journal.metrics_snapshot(rec.metrics.as_dict(), label="final")
                rec.detach_journal()
                journal.close(
                    status=status,
                    degraded=bool(result is not None and result.degraded),
                )
    finally:
        if previous_rec is not None:
            set_recorder(previous_rec)
    return result


_STEP_RE = re.compile(r"step(\d+)")


def _steps_of(paths: list[str]) -> set[int]:
    """Timesteps encoded in a list of Level 2 file names."""
    out: set[int] = set()
    for p in paths:
        m = _STEP_RE.search(os.path.basename(p))
        if m:
            out.add(int(m.group(1)))
    return out


def run_intransit_workflow(
    config: SimulationConfig,
    threshold: int,
    linking_length_factor: float = 0.2,
    min_count: int = 40,
    n_ranks: int = 8,
    staging_capacity: int | None = None,
    analysis_workers: int | None = None,
) -> CombinedRunResult:
    """The paper's hypothetical *in-transit* variant, implemented live.

    Level 2 data never touches disk: the in-situ reduction stages it in
    a shared-memory :class:`~repro.machines.staging.StagingArea` (the
    NVRAM/burst-buffer stand-in) and a consumer thread — standing in for
    the analysis cluster reading the shared device — runs the off-line
    center finding as soon as the item appears, draining the device.

    Results are identical to :func:`run_combined_workflow` with the same
    parameters (only the transport differs).
    """
    import threading

    rec = get_recorder()
    last_step = config.n_steps
    staging = StagingArea(capacity_bytes=staging_capacity)
    rec.event(
        "workflow.start", mode="intransit", threshold=threshold, n_steps=config.n_steps
    )

    manager = InSituAnalysisManager()
    manager.register(
        HaloFinderAlgorithm(
            at_steps=last_step,
            linking_length_factor=linking_length_factor,
            min_count=min_count,
            n_ranks=n_ranks,
        )
    )
    manager.register(HaloCenterAlgorithm(at_steps=last_step, threshold=threshold))
    stager = Level2StageAlgorithm(at_steps=last_step)
    stager.staging = staging
    manager.register(stager)

    offline_catalogs: list[HaloCatalog] = []
    errors: list[BaseException] = []
    # trace context captured on the driver thread: the consumer binds to
    # it so its offline.* spans parent under this workflow's trace
    consumer_trace = rec.trace_context()

    def consumer() -> None:
        rec.bind_thread(consumer_trace)
        try:
            item = staging.wait_for(f"l2_step{last_step:04d}", timeout=600.0)
            with rec.span("offline.center_job", step=last_step, transport="staging"):
                offline_catalogs.append(
                    centers_from_level2_arrays(item.read_all(), workers=analysis_workers)
                )
            rec.counter("offline_jobs_total").inc()
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            rec.event(
                "workflow.intransit_error",
                level="error",
                error=f"{type(exc).__name__}: {exc}",
            )
            errors.append(exc)

    analysis_thread = threading.Thread(target=consumer, name="intransit", daemon=True)
    analysis_thread.start()
    sim = HACCSimulation(config, analysis_manager=manager)
    with rec.span("workflow.sim", coschedule=True, transport="staging"):
        sim.run()
        analysis_thread.join(timeout=600.0)
    if errors:
        raise errors[0]

    ctx = manager.history[last_step]
    insitu_catalog: HaloCatalog = ctx.store["centers"]["catalog"]
    offloaded = ctx.store["centers"]["offloaded_halo_tags"]
    with rec.span("workflow.merge"):
        offline_catalog = (
            merge_catalogs(*offline_catalogs) if offline_catalogs else HaloCatalog()
        )
        merged = merge_catalogs(insitu_catalog, offline_catalog)
    rec.event("workflow.done", halos=len(merged), offloaded=len(offloaded))
    result = CombinedRunResult(
        catalog=merged,
        insitu_catalog=insitu_catalog,
        offline_catalog=offline_catalog,
        offloaded_halo_tags=offloaded,
        level2_paths=[],  # nothing on disk: that is the point
        telemetry=RunTelemetry.from_recorder(rec),
    )
    result.listener_stats = staging  # the device carries the run's stats
    return result
