"""The five analysis workflow strategies the paper compares (Tables 3/4).

Each strategy prices a full simulation-plus-analysis campaign against a
:class:`~repro.core.workload.WorkloadProfile` using the calibrated
:class:`~repro.machines.cost.CostModel`:

``InSituOnlyWorkflow``
    All analysis inside the simulation job.  No I/O, no redistribution,
    no extra queueing — but the slowest node (the one owning the largest
    halo) dictates the analysis wall time across the whole allocation.

``OfflineOnlyWorkflow``
    Simulation writes Level 1; a post-processing job of equal size is
    queued after it, reads, redistributes, and runs the full analysis.

``CombinedWorkflow`` (variants ``simple`` / ``coscheduled`` /
``intransit``)
    In-situ: find all halos, centers for halos ≤ threshold, write the
    Level 2 particles of the rest.  Off-line: a small job (node count
    from the planner or fixed) analyzes the Level 2 data.  Variants
    differ only in data path and queueing: ``simple`` queues one job
    after the simulation; ``coscheduled`` submits one small job per
    snapshot as the listener sees data (identical core-hours, shorter
    time-to-science); ``intransit`` stages Level 2 in burst-buffer
    memory (no file I/O, no queue).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..faults import FaultPlan, FaultSpec, RetryPolicy, fault_plan
from ..machines.cost import CostModel
from ..machines.machine import MachineSpec, TITAN
from ..machines.scheduler import Job, Scheduler
from .accounting import JobLedger, WorkflowReport
from .planner import lpt_assign, plan_split
from .workload import WorkloadProfile

__all__ = [
    "WorkflowStrategy",
    "InSituOnlyWorkflow",
    "OfflineOnlyWorkflow",
    "CombinedWorkflow",
    "evaluate_all",
]


class WorkflowStrategy(ABC):
    """Base: price one workflow strategy for a given workload."""

    name: str = "abstract"

    def __init__(self, cost: CostModel, machine: MachineSpec = TITAN):
        self.cost = cost
        self.machine = machine

    @abstractmethod
    def evaluate(self, profile: WorkloadProfile) -> WorkflowReport:
        """Produce the full accounting for this strategy."""

    # -- shared pieces -------------------------------------------------------

    def _sim_ledger(self, profile: WorkloadProfile) -> JobLedger:
        ledger = JobLedger(
            name="simulation", machine=self.machine, nodes=profile.n_sim_nodes
        )
        ledger.queue_wait = self.machine.queue.expected_wait(
            profile.n_sim_nodes, self.machine.n_nodes
        )
        ledger.add(
            "sim",
            self.cost.sim_seconds(profile.n_particles, profile.n_steps, profile.n_sim_nodes),
        )
        return ledger

    def _find_seconds(self, profile: WorkloadProfile) -> float:
        return self.cost.fof_seconds(profile.n_particles / profile.n_sim_nodes)

    def _center_seconds_max_node(
        self, profile: WorkloadProfile, mask: np.ndarray | None = None
    ) -> float:
        """Slowest-node in-situ center time (owner-node assignment)."""
        node_pairs = profile.node_pairs(mask)
        return float(
            np.max(self.cost.center_seconds(node_pairs, self.machine, backend="gpu"))
        )


class InSituOnlyWorkflow(WorkflowStrategy):
    """Everything inside the simulation allocation (paper's first set-up)."""

    name = "in-situ"

    def evaluate(self, profile: WorkloadProfile) -> WorkflowReport:
        sim = self._sim_ledger(profile)
        analysis = self._find_seconds(profile) + self._center_seconds_max_node(profile)
        sim.add("analysis", analysis * profile.n_snapshots)
        sim.add("write", self.cost.io_seconds(profile.level3_bytes, profile.n_sim_nodes))
        return WorkflowReport(
            name=self.name,
            simulation=sim,
            io_level="none",
            redistribute_level="none",
            queueing="none",
            notes="slowest node dictates; no I/O or redistribution",
        )


class OfflineOnlyWorkflow(WorkflowStrategy):
    """Write Level 1, analyze later in an equal-size job (second set-up)."""

    name = "off-line"

    def evaluate(self, profile: WorkloadProfile) -> WorkflowReport:
        n = profile.n_sim_nodes
        sim = self._sim_ledger(profile)
        sim.add(
            "write",
            self.cost.io_seconds(profile.level1_bytes, n) * profile.n_snapshots,
        )

        post = JobLedger(name="post-processing", machine=self.machine, nodes=n)
        post.queue_wait = self.machine.queue.expected_wait(n, self.machine.n_nodes)
        per_step_read = self.cost.io_seconds(profile.level1_bytes, n)
        per_step_redist = self.cost.redistribute_seconds(profile.level1_bytes, n)
        per_step_analysis = self._find_seconds(profile) + self._center_seconds_max_node(
            profile
        )
        post.add("read", per_step_read * profile.n_snapshots)
        post.add("redistribute", per_step_redist * profile.n_snapshots)
        post.add("analysis", per_step_analysis * profile.n_snapshots)
        post.add("write", self.cost.io_seconds(profile.level3_bytes, n))
        return WorkflowReport(
            name=self.name,
            simulation=sim,
            postprocessing=[post],
            io_level="Level 1",
            redistribute_level="Level 1",
            queueing="full",
            notes="raw data retained for unforeseen analyses",
        )


class CombinedWorkflow(WorkflowStrategy):
    """In-situ reduction + off-line analysis of Level 2 data (third set-up).

    Parameters
    ----------
    threshold:
        Off-load threshold in particles (None → use the automated
        planner's ``m_max_io``); the paper's production value is 300,000.
    n_offline_nodes:
        Node count of the post-processing job(s); None → the planner's
        ``T/t_max`` rule (the paper used 4 for the test problem).
    variant:
        ``"simple"``, ``"coscheduled"``, or ``"intransit"``.
    analysis_machine:
        Where the off-line jobs run (Titan by default; Moonlight in the
        Q Continuum production campaign).
    """

    name = "combined"

    def __init__(
        self,
        cost: CostModel,
        machine: MachineSpec = TITAN,
        threshold: int | None = 300_000,
        n_offline_nodes: int | None = 4,
        variant: str = "simple",
        analysis_machine: MachineSpec | None = None,
    ):
        super().__init__(cost, machine)
        if variant not in ("simple", "coscheduled", "intransit"):
            raise ValueError(f"unknown variant {variant!r}")
        self.threshold = threshold
        self.n_offline_nodes = n_offline_nodes
        self.variant = variant
        self.analysis_machine = analysis_machine or machine
        self.name = f"combined/{variant}"

    def evaluate(self, profile: WorkloadProfile) -> WorkflowReport:
        cost = self.cost
        plan = plan_split(profile, cost, self.machine, self.analysis_machine)
        threshold = self.threshold if self.threshold is not None else (
            plan.threshold or profile.largest_halo
        )
        offload_mask = profile.halo_counts > threshold
        small_mask = ~offload_mask
        l2_bytes = profile.level2_bytes(threshold)
        n_off = self.n_offline_nodes or max(plan.n_offline_ranks, 1)

        # --- simulation job: sim + in-situ reduction + Level 2 out
        sim = self._sim_ledger(profile)
        insitu = self._find_seconds(profile) + self._center_seconds_max_node(
            profile, small_mask
        )
        sim.add("analysis", insitu * profile.n_snapshots)
        if self.variant == "intransit":
            # Level 2 staged in shared burst-buffer memory: no file I/O
            write = 0.0
        else:
            write = cost.io_seconds(l2_bytes, profile.n_sim_nodes)
        write += cost.io_seconds(profile.level3_bytes, profile.n_sim_nodes)
        sim.add("write", write * profile.n_snapshots)

        # --- off-line job(s): Level 2 in, centers for the large halos
        off_machine = self.analysis_machine
        pairs_off = profile.pair_counts()[offload_mask]
        weights_off = profile.halo_weight[offload_mask]
        if len(pairs_off):
            seconds_off = np.asarray(
                cost.center_seconds(pairs_off, off_machine, backend="gpu"), dtype=float
            )
            if np.all(weights_off == 1):
                assignment = lpt_assign(seconds_off, n_off)
                rank_seconds = np.bincount(
                    assignment, weights=seconds_off, minlength=n_off
                )
                centers_off = float(rank_seconds.max())
            else:
                # weighted entries represent many identical jobs: the LPT
                # makespan is bounded below by max(t_max, total / ranks)
                total = float((seconds_off * weights_off).sum())
                centers_off = max(float(seconds_off.max()), total / n_off)
        else:
            centers_off = 0.0

        post = JobLedger(
            name=f"post-processing ({self.variant})", machine=off_machine, nodes=n_off
        )
        if self.variant == "intransit":
            post.queue_wait = 0.0
            post.add("read", 0.0)
        else:
            post.queue_wait = off_machine.queue.expected_wait(n_off, off_machine.n_nodes)
            post.add("read", cost.io_seconds(l2_bytes, n_off) * profile.n_snapshots)
        post.add(
            "redistribute",
            cost.redistribute_seconds(l2_bytes, n_off) * profile.n_snapshots,
        )
        post.add("analysis", centers_off * profile.n_snapshots)
        post.add("write", cost.io_seconds(profile.level3_bytes, n_off))

        queueing = {
            "simple": "partial",
            "coscheduled": "partial simult",
            "intransit": "partial simult",
        }[self.variant]
        io_level = "none" if self.variant == "intransit" else "Level 2"
        report = WorkflowReport(
            name=self.name,
            simulation=sim,
            postprocessing=[post],
            io_level=io_level,
            redistribute_level="Level 2",
            queueing=queueing,
            notes=f"threshold={threshold}, off-line nodes={n_off}, "
            f"planner suggests {plan.n_offline_ranks or 'all in-situ'}",
        )
        if self.variant == "coscheduled":
            report.notes += "; jobs queued per snapshot by the listener"
        return report

    def coscheduled_makespan(self, profile: WorkflowReport | WorkloadProfile) -> float:
        """Simulate the co-scheduled campaign's time-to-science.

        Submits one analysis job per snapshot at the time the snapshot's
        Level 2 data appears during the simulation, and runs the
        facility scheduler to measure when the last analysis finishes.
        Compare with the ``simple`` variant, where one job covering all
        snapshots queues after the simulation ends.
        """
        if isinstance(profile, WorkflowReport):
            raise TypeError("pass the WorkloadProfile")
        report = self.evaluate(profile)
        sim_total = report.simulation.total_seconds
        n_snaps = profile.n_snapshots
        per_snap = sim_total / n_snaps
        post = report.postprocessing[0]
        per_job = post.total_seconds / n_snaps

        sched = Scheduler(self.analysis_machine)
        jobs = []
        for s in range(n_snaps):
            jobs.append(
                sched.submit(
                    Job(
                        name=f"analysis_step{s}",
                        n_nodes=post.nodes,
                        duration=per_job,
                        submit_time=(s + 1) * per_snap,
                    )
                )
            )
        return sched.run()

    def coscheduled_makespan_under_faults(
        self,
        profile: WorkloadProfile,
        probability: float = 0.10,
        seed: int = 0,
        max_requeues: int = 3,
    ) -> tuple[float, Scheduler]:
        """:meth:`coscheduled_makespan` with seeded per-job failures.

        Each per-snapshot analysis job fails at grant time with
        ``probability`` (the ``"scheduler.payload"`` site of a seeded
        :class:`~repro.faults.FaultPlan`); a failed job still occupies
        its nodes for the full duration (the paper-era batch reality:
        you find out at the end), then requeues at the current sim
        clock, up to ``max_requeues`` times before dead-lettering.

        Returns ``(makespan, scheduler)`` so callers can inspect the
        requeue counters and the dead-letter box.  Deterministic: the
        same ``seed`` yields the same failure schedule, makespan and
        dead-letter contents — the failure-ablation counterpart of
        Table 4's clean co-scheduled column.
        """
        if isinstance(profile, WorkflowReport):
            raise TypeError("pass the WorkloadProfile")
        report = self.evaluate(profile)
        sim_total = report.simulation.total_seconds
        n_snaps = profile.n_snapshots
        per_snap = sim_total / n_snaps
        post = report.postprocessing[0]
        per_job = post.total_seconds / n_snaps

        plan = FaultPlan(
            seed=seed,
            sites={"scheduler.payload": FaultSpec(probability=probability)},
        )
        # retries-in-sim-time: one attempt per grant, requeue on failure
        # (a wall-clock backoff loop would sleep for real — see RPR009)
        sched = Scheduler(
            self.analysis_machine, payload_retry=RetryPolicy(max_attempts=1)
        )
        for s in range(n_snaps):
            sched.submit(
                Job(
                    name=f"analysis_step{s}",
                    n_nodes=post.nodes,
                    duration=per_job,
                    submit_time=(s + 1) * per_snap,
                    payload=lambda: None,
                    max_requeues=max_requeues,
                )
            )
        with fault_plan(plan):
            makespan = sched.run()
        return makespan, sched


def evaluate_all(
    profile: WorkloadProfile,
    cost: CostModel,
    machine: MachineSpec = TITAN,
    threshold: int | None = 300_000,
    n_offline_nodes: int | None = 4,
    analysis_machine: MachineSpec | None = None,
) -> list[WorkflowReport]:
    """Evaluate the five strategies of Table 3 on one workload."""
    out = [
        InSituOnlyWorkflow(cost, machine).evaluate(profile),
        OfflineOnlyWorkflow(cost, machine).evaluate(profile),
    ]
    for variant in ("simple", "coscheduled", "intransit"):
        out.append(
            CombinedWorkflow(
                cost,
                machine,
                threshold=threshold,
                n_offline_nodes=n_offline_nodes,
                variant=variant,
                analysis_machine=analysis_machine,
            ).evaluate(profile)
        )
    return out
