"""Per-run telemetry aggregation: the Table-4-style phase breakdown.

The paper's evaluation currency is *where time goes*: Table 4 breaks a
combined run into simulation, in-situ analysis, I/O and off-line
analysis phases.  :class:`RunTelemetry` reproduces that view from a
live :class:`~repro.obs.recorder.TelemetryRecorder`: it snapshots the
run's spans, events and metrics, buckets span time into workflow
phases, and renders an aligned text table directly comparable with the
paper's.

Nested spans are handled by *self time*: a phase is charged only for
the time its spans spend outside their traced children, so the table
columns sum to (at most) the traced wall clock instead of
double-counting ``sim.step`` around ``insitu.*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .events import Event
from .spans import Span, write_chrome_trace

__all__ = [
    "PhaseStat",
    "RunTelemetry",
    "PHASE_RULES",
    "FAILURE_COUNTERS",
    "FAILURE_EVENTS",
]

#: Span-name prefix -> phase label (first match wins; order matters).
PHASE_RULES: tuple[tuple[str, str], ...] = (
    ("sim.", "Simulation"),
    ("insitu.", "In-situ analysis"),
    ("offline.", "Off-line analysis"),
    ("listener.", "Listener"),
    ("staging.", "Staging"),
    ("stream.", "Streaming"),
    ("io.", "I/O"),
    ("exec.", "Parallel exec"),
    ("scheduler.", "Scheduler"),
    ("service.", "Service"),
    ("retry.", "Resilience"),
    ("workflow.", "Workflow"),
)

#: Counters summarized by :meth:`RunTelemetry.failure_stats` (metric
#: name -> short label used in the failure section of the report).
FAILURE_COUNTERS: tuple[tuple[str, str], ...] = (
    ("faults_injected_total", "faults injected"),
    ("retries_total", "retries"),
    ("retry_exhausted_total", "retries exhausted"),
    ("dead_letter_total", "dead-lettered"),
    ("listener_jobs_failed_total", "listener jobs failed"),
    ("scheduler_jobs_failed_total", "scheduler jobs failed"),
    ("scheduler_requeues_total", "scheduler requeues"),
    ("exec_item_failures_total", "exec item failures"),
    ("exec_poisoned_items_total", "exec items poisoned"),
    ("service_jobs_failed_total", "service jobs failed"),
    ("service_requeues_total", "service requeues"),
    ("service_dead_letter_total", "service dead-lettered"),
)

#: Event name -> failure label, for the per-run failure grouping.
#: (Counters are process-global scalars; events carry the ``run`` axis,
#: so run-grouped failure accounting is reconstructed from them.)
FAILURE_EVENTS: tuple[tuple[str, str], ...] = (
    ("fault.injected", "faults injected"),
    ("retry.backoff", "retries"),
    ("retry.exhausted", "retries exhausted"),
    ("dead_letter", "dead-lettered"),
    ("listener.submit_error", "listener jobs failed"),
    ("scheduler.job_failed", "scheduler jobs failed"),
    ("scheduler.job_requeued", "scheduler requeues"),
    ("exec.item_error", "exec item failures"),
    ("service.job_failed", "service jobs failed"),
    ("service.job_requeued", "service requeues"),
)

OTHER_PHASE = "Other"


def phase_of(span_name: str) -> str:
    """Map a span name onto its workflow phase."""
    for prefix, phase in PHASE_RULES:
        if span_name.startswith(prefix):
            return phase
    return OTHER_PHASE


@dataclass
class PhaseStat:
    """Aggregate for one workflow phase."""

    phase: str
    calls: int = 0
    total_seconds: float = 0.0  # inclusive (span durations)
    self_seconds: float = 0.0  # exclusive (minus traced children)
    max_seconds: float = 0.0
    names: dict[str, float] = field(default_factory=dict)  # span name -> total

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class RunTelemetry:
    """Immutable snapshot + report renderer for one run's telemetry."""

    def __init__(
        self,
        spans: Iterable[Span],
        events: Iterable[Event] = (),
        metrics: dict[str, float] | None = None,
        run_id: str | None = None,
    ):
        self.spans: list[Span] = [s for s in spans if s.t1 is not None]
        self.events: list[Event] = list(events)
        self.metrics: dict[str, float] = dict(metrics or {})
        self.run_id = run_id

    @classmethod
    def from_recorder(cls, recorder: Any) -> "RunTelemetry | None":
        """Snapshot a recorder (``None`` for the no-op recorder)."""
        if not getattr(recorder, "enabled", False):
            return None
        return cls(
            spans=recorder.tracer.snapshot(),
            events=recorder.events.snapshot(),
            metrics=recorder.metrics.as_dict(),
            run_id=recorder.run_id,
        )

    @classmethod
    def from_journal(cls, path: str) -> "RunTelemetry":
        """Rebuild a run's telemetry from its durable journal.

        The offline twin of :meth:`from_recorder`: reads the journal
        (tolerating a torn tail on live/crashed runs) and reconstructs
        the same spans/events/metrics view, so ``report``/``trace`` work
        long after — or while — the producing process runs.
        """
        from .journal import read_journal  # local import: journal imports events/spans

        view = read_journal(path)
        return cls(
            spans=view.spans(),
            events=view.events(),
            metrics=view.last_metrics(),
            run_id=view.run_id,
        )

    # -- aggregation ----------------------------------------------------------

    def self_seconds_by_span(self) -> dict[int, float]:
        """Exclusive duration per span id (inclusive minus children).

        Only *same-thread* children are subtracted: a listener span
        parented under the driver's ``workflow.sim`` span runs
        concurrently with it, so deducting it would hollow out the sim
        phase's genuine self time.
        """
        threads = {s.span_id: s.thread for s in self.spans}
        child_time: dict[int, float] = {}
        for s in self.spans:
            p = s.parent_id
            if p is not None and threads.get(p, s.thread) == s.thread:
                child_time[p] = child_time.get(p, 0.0) + s.duration
        return {
            s.span_id: max(0.0, s.duration - child_time.get(s.span_id, 0.0))
            for s in self.spans
        }

    def phase_stats(self) -> dict[str, PhaseStat]:
        """Bucket span time into workflow phases."""
        self_secs = self.self_seconds_by_span()
        stats: dict[str, PhaseStat] = {}
        for s in self.spans:
            phase = phase_of(s.name)
            ps = stats.setdefault(phase, PhaseStat(phase=phase))
            ps.calls += 1
            ps.total_seconds += s.duration
            ps.self_seconds += self_secs[s.span_id]
            ps.max_seconds = max(ps.max_seconds, s.duration)
            ps.names[s.name] = ps.names.get(s.name, 0.0) + s.duration
        return stats

    @property
    def wall_seconds(self) -> float:
        """Traced wall clock: first span start to last span end."""
        if not self.spans:
            return 0.0
        t0 = min(s.t0 for s in self.spans)
        t1 = max(s.t1 for s in self.spans if s.t1 is not None)
        return t1 - t0

    def timeline(self) -> list[Span]:
        """All finished spans in start order (the correlated timeline)."""
        return sorted(self.spans, key=lambda s: s.t0)

    def spans_named(self, prefix: str) -> list[Span]:
        """Finished spans whose name starts with ``prefix``, start order."""
        return [s for s in self.timeline() if s.name.startswith(prefix)]

    # -- rendering ------------------------------------------------------------

    def phase_table(self, title: str | None = None) -> str:
        """Render the per-run phase breakdown (cf. paper Table 4)."""
        stats = self.phase_stats()
        wall = self.wall_seconds
        order = [*(p for _, p in PHASE_RULES), OTHER_PHASE]
        rows: list[list[str]] = []
        for phase in order:
            ps = stats.get(phase)
            if ps is None:
                continue
            pct = 100.0 * ps.self_seconds / wall if wall > 0 else 0.0
            rows.append(
                [
                    phase,
                    str(ps.calls),
                    f"{ps.total_seconds:.3f}",
                    f"{ps.self_seconds:.3f}",
                    f"{ps.mean_seconds * 1e3:.1f}",
                    f"{ps.max_seconds * 1e3:.1f}",
                    f"{pct:5.1f}%",
                ]
            )
        headers = [
            "Phase",
            "Calls",
            "Total (s)",
            "Self (s)",
            "Mean (ms)",
            "Max (ms)",
            "% wall",
        ]
        if title is None:
            run = f" [{self.run_id}]" if self.run_id else ""
            title = f"Per-run phase breakdown{run} — wall {wall:.3f} s"
        return _render_table(headers, rows, title=title)

    def memory_stats(self) -> dict[str, float]:
        """Memory gauges sampled into this run (empty if never sampled).

        ``process_peak_rss_bytes`` appears when anything called
        :func:`repro.obs.sample_memory` during the run (the streaming
        engine samples per chunk).
        """
        peak = self.metrics.get("process_peak_rss_bytes")
        return {"process_peak_rss_bytes": peak} if peak else {}

    def failure_stats(self) -> dict[str, float]:
        """Non-zero failure/resilience counters for this run.

        Empty for a clean run, so reports only grow a failure section
        when there is something to say.
        """
        return {
            name: self.metrics[name]
            for name, _ in FAILURE_COUNTERS
            if self.metrics.get(name)
        }

    def runs(self) -> list[str]:
        """Distinct run ids seen across events and spans (sorted)."""
        ids = {e.run for e in self.events if e.run} | {s.run for s in self.spans if s.run}
        return sorted(ids)

    def failure_stats_by_run(self) -> dict[str, dict[str, float]]:
        """Per-run failure accounting, reconstructed from events.

        Counters are process-global, so when two workflows share one
        recorder their failure counts blur together; events carry the
        ``run`` axis, so this view keeps each run's failures separate.
        Event names map to labels via :data:`FAILURE_EVENTS`.
        """
        labels = dict(FAILURE_EVENTS)
        out: dict[str, dict[str, float]] = {}
        for e in self.events:
            label = labels.get(e.name)
            if label is None:
                continue
            run = e.run or "?"
            per_run = out.setdefault(run, {})
            per_run[label] = per_run.get(label, 0.0) + 1.0
        return out

    def failure_table(
        self, title: str = "Failure / resilience summary", by_run: bool | None = None
    ) -> str:
        """Render the failure section (empty string for a clean run).

        ``by_run=True`` groups rows by run id (reconstructed from
        events); the default (``None``) does so automatically when the
        snapshot contains more than one run.
        """
        if by_run is None:
            by_run = len(self.runs()) > 1
        if by_run:
            grouped = self.failure_stats_by_run()
            if not grouped:
                return ""
            rows = [
                [run, label, f"{count:g}"]
                for run in sorted(grouped)
                for label, count in sorted(grouped[run].items())
            ]
            return _render_table(["Run", "What", "Count"], rows, title=title)
        stats = self.failure_stats()
        if not stats:
            return ""
        labels = dict(FAILURE_COUNTERS)
        rows2 = [[labels[name], f"{value:g}"] for name, value in stats.items()]
        return _render_table(["What", "Count"], rows2, title=title)

    def span_table(self, top: int = 20) -> str:
        """Per-span-name totals, heaviest first (the hot-path view)."""
        totals: dict[str, tuple[int, float]] = {}
        for s in self.spans:
            calls, secs = totals.get(s.name, (0, 0.0))
            totals[s.name] = (calls + 1, secs + s.duration)
        ranked = sorted(totals.items(), key=lambda kv: kv[1][1], reverse=True)[:top]
        rows = [
            [name, str(calls), f"{secs:.3f}", f"{secs / calls * 1e3:.2f}"]
            for name, (calls, secs) in ranked
        ]
        return _render_table(
            ["Span", "Calls", "Total (s)", "Mean (ms)"], rows, title="Hottest spans"
        )

    def write_chrome_trace(self, path: str) -> str:
        """Export the snapshot as a Chrome ``chrome://tracing`` file."""
        return write_chrome_trace(
            path, self.spans, self.events, process_name=self.run_id or "repro"
        )

    def summary(self) -> dict[str, Any]:
        """Machine-readable roll-up (what benchmarks persist)."""
        return {
            "run_id": self.run_id,
            "wall_seconds": self.wall_seconds,
            "n_spans": len(self.spans),
            "n_events": len(self.events),
            "phases": {
                p: {
                    "calls": ps.calls,
                    "total_seconds": ps.total_seconds,
                    "self_seconds": ps.self_seconds,
                }
                for p, ps in self.phase_stats().items()
            },
            "metrics": dict(self.metrics),
            "failures": self.failure_stats(),
        }


def _render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Aligned plain-text table (kept local: obs has no repro deps)."""
    cells = [[str(h) for h in headers], *([str(c) for c in row] for row in rows)]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
