"""Span-based tracing with Chrome ``chrome://tracing`` export.

A *span* is a named interval of wall-clock time with nesting (a
``sim.step`` span contains the ``insitu.halo_finder`` span which
contains ``io.write`` spans, ...).  The :class:`Tracer` keeps a
per-thread span stack so concurrently-running components — the
simulation loop and a co-scheduled listener thread — each build their
own correct nesting while landing in one shared, lock-protected record
of finished spans.

Export targets the Chrome trace-event format (``chrome://tracing`` /
Perfetto): one ``"ph": "X"`` complete event per span, ``tid`` = the
producing thread, so the combined-workflow timeline renders exactly
like the paper's Figure 3 schedule diagrams — simulation steps on one
track, listener-launched analysis jobs on another.
"""

from __future__ import annotations

import functools
import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "Tracer",
    "next_span_id",
    "to_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
]

#: Default bound on retained finished spans.
DEFAULT_CAPACITY = 65_536

_span_ids = itertools.count(1)


def next_span_id() -> int:
    """Allocate a fresh process-unique span id.

    Used when ingesting spans measured in another process (exec
    workers): their local ids are remapped onto this counter so they
    can never collide with spans created here.
    """
    return next(_span_ids)


@dataclass
class Span:
    """One named, possibly-nested interval.

    ``t0``/``t1`` are monotonic (:func:`time.perf_counter`) seconds;
    ``wall0`` anchors the span to the epoch clock.  Correlation fields
    mirror :class:`repro.obs.events.Event`.
    """

    name: str
    t0: float = 0.0
    t1: float | None = None
    wall0: float = 0.0
    run: str | None = None
    step: int | None = None
    rank: int | None = None
    fields: dict[str, Any] = field(default_factory=dict)
    span_id: int = 0
    parent_id: int | None = None
    depth: int = 0
    thread: str = ""
    error: str | None = None

    @property
    def duration(self) -> float:
        """Span length in seconds (0 while still open)."""
        if self.t1 is None:
            return 0.0
        return self.t1 - self.t0

    @property
    def open(self) -> bool:
        return self.t1 is None

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "kind": "span",
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "wall0": self.wall0,
            "span_id": self.span_id,
            "depth": self.depth,
            "thread": self.thread,
        }
        if self.parent_id is not None:
            d["parent_id"] = self.parent_id
        if self.run is not None:
            d["run"] = self.run
        if self.step is not None:
            d["step"] = self.step
        if self.rank is not None:
            d["rank"] = self.rank
        if self.fields:
            d["fields"] = self.fields
        if self.error is not None:
            d["error"] = self.error
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Span":
        """Rebuild a span from its :meth:`to_dict` record (journal replay)."""
        return cls(
            name=d["name"],
            t0=float(d.get("t0", 0.0)),
            t1=None if d.get("t1") is None else float(d["t1"]),
            wall0=float(d.get("wall0", 0.0)),
            run=d.get("run"),
            step=d.get("step"),
            rank=d.get("rank"),
            fields=dict(d.get("fields", {})),
            span_id=int(d.get("span_id", 0)),
            parent_id=d.get("parent_id"),
            depth=int(d.get("depth", 0)),
            thread=d.get("thread", ""),
            error=d.get("error"),
        )


class _SpanHandle:
    """Context manager binding one :class:`Span` to its tracer."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.tracer._push(self.span)
        self.span.t0 = time.perf_counter()
        self.span.wall0 = time.time()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.t1 = time.perf_counter()
        if exc is not None:
            self.span.error = f"{exc_type.__name__}: {exc}"
        self.tracer._pop(self.span)


class Tracer:
    """Thread-safe span factory with per-thread nesting stacks."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, run: str | None = None):
        self.run = run
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=capacity)
        self.started_total = 0
        self.finished_total = 0
        #: optional callback invoked with each finished span (JSONL sink hook)
        self.on_finish: Callable[[Span], None] | None = None

    # -- public API -----------------------------------------------------------

    def span(
        self,
        name: str,
        step: int | None = None,
        rank: int | None = None,
        **fields: Any,
    ) -> _SpanHandle:
        """Open a span as a context manager::

            with tracer.span("fof", step=12):
                ...
        """
        s = Span(
            name=name,
            run=self.run,
            step=step,
            rank=rank,
            fields=fields,
            span_id=next(_span_ids),
            thread=threading.current_thread().name,
        )
        return _SpanHandle(self, s)

    def traced(self, name: str | None = None, **fields: Any):
        """Decorator form: trace every call of the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, **fields):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def record_span(
        self,
        name: str,
        t0: float,
        t1: float,
        *,
        thread: str | None = None,
        step: int | None = None,
        rank: int | None = None,
        parent_id: int | None = None,
        **fields: Any,
    ) -> Span:
        """Record an already-finished interval as a span.

        For intervals measured elsewhere — e.g. the execution engine's
        worker processes, which report :func:`time.perf_counter` pairs
        back to the parent.  ``thread`` overrides the track name so the
        span renders on its own Chrome-trace lane (``exec-worker-3``)
        instead of the recording thread's; ``parent_id`` links it under
        an existing span (causal parent across the process boundary).
        """
        s = Span(
            name=name,
            t0=float(t0),
            t1=float(t1),
            wall0=time.time() - (time.perf_counter() - float(t0)),
            run=self.run,
            step=step,
            rank=rank,
            fields=fields,
            span_id=next(_span_ids),
            parent_id=parent_id,
            thread=thread or threading.current_thread().name,
        )
        with self._lock:
            self.started_total += 1
            self._finished.append(s)
            self.finished_total += 1
        if self.on_finish is not None:
            self.on_finish(s)
        return s

    def ingest(self, span: Span) -> Span:
        """Adopt a fully-formed finished span (ids already assigned).

        Used when merging telemetry shipped from another process: the
        caller has already remapped ids via :func:`next_span_id`, so the
        span only needs to land in the finished record (and fire the
        ``on_finish`` hook — journal/sink — like any local span).
        """
        with self._lock:
            self.started_total += 1
            self._finished.append(span)
            self.finished_total += 1
        if self.on_finish is not None:
            self.on_finish(span)
        return span

    def bind(self, parent_id: int | None) -> None:
        """Set *this thread's* base parent for root spans.

        A worker thread started inside a driver span calls
        ``bind(ctx.span_id)`` so the spans it opens at stack depth 0 are
        causally parented under the driver's span instead of floating as
        roots — the cross-thread half of trace propagation.
        """
        self._local.base_parent = parent_id

    def rebound(self, capacity: int) -> None:
        """Shrink/grow the finished-span ring (keeps the newest spans).

        Called when a journal is attached: the journal holds the full
        record, so memory only needs a small tail for live reports.
        """
        with self._lock:
            self._finished = deque(self._finished, maxlen=max(1, int(capacity)))

    def snapshot(self) -> list[Span]:
        """Finished spans, ordered by completion time."""
        with self._lock:
            return list(self._finished)

    def current(self) -> Span | None:
        """The innermost open span on *this* thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    # -- stack plumbing -------------------------------------------------------

    def _push(self, span: Span) -> None:
        stack: list[Span] = getattr(self._local, "stack", None) or []
        if stack:
            span.parent_id = stack[-1].span_id
            span.depth = stack[-1].depth + 1
        else:
            base = getattr(self._local, "base_parent", None)
            if base is not None:  # thread bound under a driver span
                span.parent_id = base
                span.depth = 1
        stack.append(span)
        self._local.stack = stack
        with self._lock:
            self.started_total += 1

    def _pop(self, span: Span) -> None:
        stack: list[Span] = getattr(self._local, "stack", None) or []
        if stack and stack[-1] is span:
            stack.pop()
        else:  # mismatched exit (generator abandoned mid-span): resync
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._finished.append(span)
            self.finished_total += 1
        if self.on_finish is not None:
            self.on_finish(span)


# -- Chrome trace-event export ------------------------------------------------


def to_chrome_trace(
    spans: Iterable[Span],
    events: Iterable[Any] = (),
    process_name: str = "repro",
) -> dict[str, Any]:
    """Render spans (+ optional instant events) as a Chrome trace object.

    The result is loadable by ``chrome://tracing`` and Perfetto: spans
    become ``"ph": "X"`` complete events (timestamps in microseconds),
    instant events become ``"ph": "i"``.  Thread names become ``tid``
    labels so the sim loop and listener render as separate tracks.
    """
    trace_events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}

    def tid_of(thread: str) -> int:
        if thread not in tids:
            tids[thread] = len(tids) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tids[thread],
                    "args": {"name": thread},
                }
            )
        return tids[thread]

    trace_events.append(
        {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": process_name}}
    )
    for s in spans:
        if s.t1 is None:
            continue
        args: dict[str, Any] = dict(s.fields)
        if s.step is not None:
            args["step"] = s.step
        if s.rank is not None:
            args["rank"] = s.rank
        if s.error is not None:
            args["error"] = s.error
        trace_events.append(
            {
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ph": "X",
                "ts": s.t0 * 1e6,
                "dur": (s.t1 - s.t0) * 1e6,
                "pid": 1,
                "tid": tid_of(s.thread or "main"),
                "args": args,
            }
        )
    for e in events:
        trace_events.append(
            {
                "name": e.name,
                "cat": "event",
                "ph": "i",
                "s": "g",
                "ts": e.t * 1e6,
                "pid": 1,
                "tid": 0,
                "args": dict(e.fields, level=e.level),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    spans: Iterable[Span],
    events: Iterable[Any] = (),
    process_name: str = "repro",
) -> str:
    """Write a Chrome trace JSON file; returns the path."""
    trace = to_chrome_trace(spans, events, process_name=process_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, default=_chrome_default)
    return path


def _chrome_default(obj: Any) -> Any:
    if hasattr(obj, "item"):
        try:
            return obj.item()
        except (TypeError, ValueError):  # pragma: no cover - non-scalar .item()
            pass
    return repr(obj)


def load_chrome_trace(path: str) -> list[dict[str, Any]]:
    """Load a Chrome trace file back into its ``traceEvents`` list."""
    with open(path, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError(f"{path}: not a Chrome trace object")
    return trace["traceEvents"]
