"""Structured event log: the workflow's correlated record of *what happened*.

Workflow systems (Balsam, Wilkins — see PAPERS.md) treat a structured
log of job/state transitions as the backbone of both debugging and
performance analysis.  This module provides that backbone for the whole
repro stack:

* :class:`Event` — one timestamped record with correlation fields
  (``run``/``step``/``rank``) so simulation steps, in-situ algorithms,
  listener polls and off-line jobs land on a single timeline;
* :class:`EventLog` — a thread-safe bounded in-memory ring (old events
  fall off the back, so long co-scheduled runs cannot leak);
* :class:`JsonlSink` — an optional append-only JSONL file sink, and
  :func:`read_jsonl` to replay a sink back into records.

Timestamps are ``time.perf_counter()`` (monotonic — immune to NTP
steps; what span durations are measured with) plus a wall-clock epoch
field for correlating across processes.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Event", "EventLog", "JsonlSink", "read_jsonl"]

#: Default in-memory ring capacity (events beyond this age out).
DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True)
class Event:
    """One structured log record.

    ``t`` is monotonic seconds (:func:`time.perf_counter`), ``wall`` is
    the epoch time; ``run``/``step``/``rank`` are the correlation axes
    the paper's analysis slices along (per-run, per-timestep, per-node).
    """

    name: str
    t: float
    wall: float
    level: str = "info"
    run: str | None = None
    step: int | None = None
    rank: int | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "kind": "event",
            "name": self.name,
            "t": self.t,
            "wall": self.wall,
            "level": self.level,
        }
        if self.run is not None:
            d["run"] = self.run
        if self.step is not None:
            d["step"] = self.step
        if self.rank is not None:
            d["rank"] = self.rank
        if self.fields:
            d["fields"] = self.fields
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Event":
        return cls(
            name=d["name"],
            t=float(d.get("t", 0.0)),
            wall=float(d.get("wall", 0.0)),
            level=d.get("level", "info"),
            run=d.get("run"),
            step=d.get("step"),
            rank=d.get("rank"),
            fields=dict(d.get("fields", {})),
        )


class EventLog:
    """Thread-safe bounded ring of :class:`Event` records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.emitted_total = 0
        self.dropped_total = 0

    def emit(
        self,
        name: str,
        level: str = "info",
        run: str | None = None,
        step: int | None = None,
        rank: int | None = None,
        **fields: Any,
    ) -> Event:
        """Append a new event (now-stamped) and return it."""
        ev = Event(
            name=name,
            t=time.perf_counter(),
            wall=time.time(),
            level=level,
            run=run,
            step=step,
            rank=rank,
            fields=fields,
        )
        self.append(ev)
        return ev

    def append(self, event: Event) -> None:
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped_total += 1
            self._ring.append(event)
            self.emitted_total += 1

    def snapshot(self) -> list[Event]:
        """Point-in-time copy of the ring contents (oldest first)."""
        with self._lock:
            return list(self._ring)

    def rebound(self, capacity: int) -> None:
        """Resize the ring in place, keeping the *newest* events.

        Used when a journal sink takes over durability: the disk holds
        the full stream, so memory only needs a recent tail.
        """
        capacity = max(1, int(capacity))
        with self._lock:
            self._ring = deque(self._ring, maxlen=capacity)
            self.capacity = capacity

    def by_level(self, level: str) -> list[Event]:
        return [e for e in self.snapshot() if e.level == level]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __iter__(self):
        return iter(self.snapshot())


class JsonlSink:
    """Append-only JSONL sink for events and span records.

    Thread-safe; one JSON object per line.  Records carry a ``kind``
    discriminator (``event`` or ``span``) so :func:`read_jsonl` can
    replay a mixed stream.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self.lines_written = 0

    def write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, default=_json_default)
        with self._lock:
            if self._fh.closed:  # tolerate late writers during shutdown
                return
            self._fh.write(line + "\n")
            self.lines_written += 1

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _json_default(obj: Any) -> Any:
    """Best-effort serialization for numpy scalars and friends."""
    for attr in ("item",):  # numpy scalar -> python scalar
        if hasattr(obj, attr):
            try:
                return getattr(obj, attr)()
            except (TypeError, ValueError):  # pragma: no cover - non-scalar .item()
                pass
    return repr(obj)


def read_jsonl(path: str) -> tuple[list[Event], list[dict[str, Any]]]:
    """Replay a JSONL sink: returns ``(events, span_records)``.

    Span records are returned as plain dicts (see
    :meth:`repro.obs.spans.Span.to_dict` for their shape).  Unknown
    kinds are ignored, so the format is forward-compatible.
    """
    events: list[Event] = []
    spans: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            kind = d.get("kind")
            if kind == "event":
                events.append(Event.from_dict(d))
            elif kind == "span":
                spans.append(d)
    return events, spans


def merge_timelines(*streams: Iterable[Event]) -> list[Event]:
    """Merge event streams into one monotonic-time-ordered timeline."""
    out: list[Event] = []
    for s in streams:
        out.extend(s)
    out.sort(key=lambda e: e.t)
    return out
