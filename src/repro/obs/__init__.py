"""repro.obs — the unified telemetry layer.

One subsystem for the three observability signals, correlated on a
single timeline (run / step / rank):

* **events** — structured log records in a thread-safe bounded ring,
  with an optional JSONL sink (:mod:`repro.obs.events`);
* **spans** — nested, thread-aware tracing exportable to Chrome
  ``chrome://tracing`` JSON (:mod:`repro.obs.spans`);
* **metrics** — counters, gauges and fixed-bucket histograms with
  Prometheus-style text exposition (:mod:`repro.obs.metrics`);
* **reports** — :class:`~repro.obs.report.RunTelemetry`, the per-run
  phase-breakdown table comparable to the paper's Table 4
  (:mod:`repro.obs.report`).

Telemetry is **off by default**: :func:`get_recorder` returns a no-op
recorder whose operations are cached no-ops, so the instrumented hot
paths (simulation step loop, in-situ dispatch, listener polls, I/O)
cost one global read when disabled.  Typical use::

    from repro import obs

    with obs.telemetry(jsonl_path="events.jsonl") as rec:
        result = run_combined_workflow(..., coschedule=True)
    print(result.telemetry.phase_table())       # Table-4-style report
    result.telemetry.write_chrome_trace("trace.json")
"""

from .context import TraceContext, current_trace_context, export_snapshot, merge_snapshot
from .events import Event, EventLog, JsonlSink, read_jsonl
from .journal import JournalView, RunJournal, RunManifest, read_journal
from .live import follow_journal
from .metrics import (
    DEFAULT_BUCKETS,
    PEAK_RSS_GAUGE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    sample_memory,
)
from .recorder import (
    SPILL_CAPACITY,
    NullRecorder,
    TelemetryRecorder,
    disable,
    enable,
    get_recorder,
    set_recorder,
    telemetry,
    timed,
)
from .report import PhaseStat, RunTelemetry, phase_of
from .spans import Span, Tracer, load_chrome_trace, to_chrome_trace, write_chrome_trace
from .timeline import Allocation, MachineTimeline, WorkflowTimeline

__all__ = [
    "Allocation",
    "Counter",
    "DEFAULT_BUCKETS",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "JournalView",
    "JsonlSink",
    "MachineTimeline",
    "MetricsRegistry",
    "NullRecorder",
    "PEAK_RSS_GAUGE",
    "PhaseStat",
    "RunJournal",
    "RunManifest",
    "RunTelemetry",
    "SPILL_CAPACITY",
    "Span",
    "TelemetryRecorder",
    "TraceContext",
    "Tracer",
    "WorkflowTimeline",
    "current_trace_context",
    "disable",
    "enable",
    "export_snapshot",
    "follow_journal",
    "get_recorder",
    "load_chrome_trace",
    "merge_snapshot",
    "phase_of",
    "read_journal",
    "read_jsonl",
    "sample_memory",
    "set_recorder",
    "telemetry",
    "timed",
    "to_chrome_trace",
    "write_chrome_trace",
]
