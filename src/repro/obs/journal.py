"""Durable run journal: a crash-safe on-disk record of one workflow run.

Campaign services (Balsam — see PAPERS.md) are built on a durable job
store first and analytics second: nothing a run learns is worth much if
it dies with the producing process.  This module is that store for the
repro stack.  A *run directory* holds exactly two files::

    <root>/<run_id>/
        manifest.json     # who/what/how: config hash, seeds, fault plan
        journal.jsonl     # append-only stream of everything that happened

**Manifest** (:class:`RunManifest`): the run's identity — ``run_id``,
creation wall time, the workflow configuration and its SHA-256 hash,
every seed in play, the active fault plan (so a failure is replayable),
and the code version.  Written atomically (temp file + ``os.replace``)
so a reader never sees a torn manifest.

**Journal** (:class:`RunJournal`): an append-only JSONL stream with
*atomic line framing*: every record is serialized to one
newline-terminated line and handed to the OS in a single buffered
``write`` under a lock, so concurrent writers (the sim loop, the
listener thread, merged exec-worker telemetry) never interleave within
a line.  A crash can still tear the *final* line at a buffer boundary —
that is recovered, never propagated:

* readers (:func:`read_journal`) drop an unterminated tail and flag it
  (``truncated=True``);
* re-opening a journal for append (:meth:`RunJournal.open`) truncates
  the file back to the last complete line first
  (:func:`recover_tail`).

Records carry a monotonically increasing ``seq`` and a ``kind``
discriminator: ``run.start`` / ``event`` / ``span`` / ``metrics`` /
``failure`` / ``run.end``.  Unknown kinds are preserved by readers, so
the format is forward-compatible (the campaign service's job store,
:mod:`repro.service.store`, reuses these idioms — atomic manifest,
single-``write`` line framing, :func:`recover_tail` — for its own
``jobs.jsonl`` stream).

The journal registers an ``atexit`` flush so a run that crashes (rather
than closing cleanly) still keeps its buffered tail on disk.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import subprocess
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .events import Event, _json_default
from .spans import Span

__all__ = [
    "JOURNAL_FILE",
    "MANIFEST_FILE",
    "JournalView",
    "RunJournal",
    "RunManifest",
    "config_hash",
    "detect_code_version",
    "find_journal",
    "read_journal",
    "recover_tail",
]

MANIFEST_FILE = "manifest.json"
JOURNAL_FILE = "journal.jsonl"

#: Journal format tag written into every manifest.
JOURNAL_FORMAT = "repro-journal/1"

#: Flush the journal file to the OS every N records (the atexit hook and
#: ``close`` flush unconditionally; a torn final line is recoverable).
DEFAULT_FLUSH_EVERY = 32


def config_hash(config: dict[str, Any] | None) -> str:
    """Canonical SHA-256 of a configuration dict (sorted-key JSON)."""
    payload = json.dumps(config or {}, sort_keys=True, default=_json_default)
    return hashlib.sha256(payload.encode()).hexdigest()


def detect_code_version() -> str:
    """Best-effort code version: env override, git commit, or package."""
    env = os.environ.get("REPRO_CODE_VERSION")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            timeout=5.0,
            text=True,
        )
        if out.returncode == 0 and out.stdout.strip():
            return f"git:{out.stdout.strip()}"
    except (OSError, subprocess.SubprocessError):  # pragma: no cover - no git
        pass
    from importlib.metadata import PackageNotFoundError, version

    try:
        return f"pkg:{version('repro')}"
    except PackageNotFoundError:  # pragma: no cover - not installed
        return "unknown"


@dataclass
class RunManifest:
    """The run's identity card (``manifest.json``)."""

    run_id: str
    created: float = 0.0  # epoch seconds
    config: dict[str, Any] = field(default_factory=dict)
    config_hash: str = ""
    seeds: dict[str, Any] = field(default_factory=dict)
    fault_plan: dict[str, Any] | None = None
    code_version: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.config_hash:
            self.config_hash = config_hash(self.config)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": JOURNAL_FORMAT,
            "run_id": self.run_id,
            "created": self.created,
            "config": self.config,
            "config_hash": self.config_hash,
            "seeds": self.seeds,
            "fault_plan": self.fault_plan,
            "code_version": self.code_version,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunManifest":
        return cls(
            run_id=d["run_id"],
            created=float(d.get("created", 0.0)),
            config=dict(d.get("config") or {}),
            config_hash=d.get("config_hash", ""),
            seeds=dict(d.get("seeds") or {}),
            fault_plan=d.get("fault_plan"),
            code_version=d.get("code_version", ""),
            extra=dict(d.get("extra") or {}),
        )

    def save(self, path: str | os.PathLike) -> str:
        """Atomic write: temp file in the same directory + ``os.replace``."""
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True, default=_json_default)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RunManifest":
        with open(os.fspath(path), "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def recover_tail(path: str | os.PathLike) -> int:
    """Truncate an append-target journal back to its last complete line.

    Returns the number of torn-tail bytes dropped (0 for a clean file).
    """
    path = os.fspath(path)
    try:
        size = os.path.getsize(path)
    except OSError:
        return 0
    if size == 0:
        return 0
    with open(path, "rb+") as fh:
        # scan backwards in one bounded read: torn tails are < one line
        chunk = min(size, 1 << 20)
        fh.seek(size - chunk)
        data = fh.read(chunk)
        if data.endswith(b"\n"):
            return 0
        last_nl = data.rfind(b"\n")
        keep = size - chunk + last_nl + 1 if last_nl >= 0 else size - chunk
        if last_nl < 0 and chunk < size:  # pragma: no cover - pathological line
            keep = 0
        fh.truncate(keep)
        return size - keep


class RunJournal:
    """Append-only journal for one run directory.

    Use :meth:`create` for a fresh run and :meth:`open` to resume
    appending to an existing one (torn tail recovered first).  All
    writes are thread-safe; each record gets the next ``seq``.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        manifest: RunManifest,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        _seq0: int = 0,
    ):
        self.directory = os.fspath(directory)
        self.manifest = manifest
        self.flush_every = max(1, int(flush_every))
        self._lock = threading.Lock()
        self._seq = int(_seq0)
        self._writes = 0
        self._fh = open(self.journal_path, "a", encoding="utf-8")
        atexit.register(self._atexit_flush)

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str | os.PathLike,
        run_id: str,
        config: dict[str, Any] | None = None,
        seeds: dict[str, Any] | None = None,
        fault_plan: dict[str, Any] | None = None,
        code_version: str | None = None,
        extra: dict[str, Any] | None = None,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> "RunJournal":
        """Create ``<root>/<run_id>/`` with a manifest and empty journal.

        Raises :class:`FileExistsError` if the run directory already
        exists — run ids are unique per root by construction.
        """
        directory = Path(os.fspath(root)) / run_id
        directory.mkdir(parents=True, exist_ok=False)
        manifest = RunManifest(
            run_id=run_id,
            created=time.time(),
            config=dict(config or {}),
            config_hash=config_hash(config),
            seeds=dict(seeds or {}),
            fault_plan=fault_plan,
            code_version=code_version if code_version is not None else detect_code_version(),
            extra=dict(extra or {}),
        )
        manifest.save(directory / MANIFEST_FILE)
        journal = cls(directory, manifest, flush_every=flush_every)
        journal.write({"kind": "run.start", "run": run_id, "wall": manifest.created})
        return journal

    @classmethod
    def open(cls, path: str | os.PathLike, flush_every: int = DEFAULT_FLUSH_EVERY) -> "RunJournal":
        """Re-open an existing run directory for appending.

        Any torn final line (a crash mid-flush) is truncated away first;
        ``seq`` continues from the surviving record count.
        """
        directory = Path(find_journal(path)).parent
        manifest_path = directory / MANIFEST_FILE
        if manifest_path.is_file():
            manifest = RunManifest.load(manifest_path)
        else:
            manifest = RunManifest(run_id=directory.name)
        journal_path = directory / JOURNAL_FILE
        recover_tail(journal_path)
        with open(journal_path, "r", encoding="utf-8") as fh:
            seq0 = sum(1 for line in fh if line.strip())
        return cls(directory, manifest, flush_every=flush_every, _seq0=seq0)

    # -- paths -----------------------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, JOURNAL_FILE)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_FILE)

    # -- writing ---------------------------------------------------------------

    def write(self, record: dict[str, Any]) -> int:
        """Append one record (adds ``seq``); returns its sequence number.

        The full line is serialized outside the lock and written with a
        single ``write`` call inside it — records from concurrent
        threads never interleave within a line.  Returns ``-1`` if the
        journal is already closed (late writers during shutdown).
        """
        with self._lock:
            if self._fh.closed:
                return -1
            seq = self._seq
            line = json.dumps({"seq": seq, **record}, default=_json_default)
            self._fh.write(line + "\n")
            self._seq += 1
            self._writes += 1
            if self._writes % self.flush_every == 0:
                self._fh.flush()
            return seq

    def metrics_snapshot(self, values: dict[str, Any], label: str = "") -> int:
        """Journal a point-in-time metrics snapshot (flat name → value)."""
        record: dict[str, Any] = {"kind": "metrics", "values": values}
        if label:
            record["label"] = label
        return self.write(record)

    def failure(self, record: dict[str, Any]) -> int:
        """Journal one terminal-failure record (a ``FailureRecord`` dict)."""
        return self.write({"kind": "failure", **record})

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()

    def _atexit_flush(self) -> None:
        """Crash-path flush: keep the buffered tail when a run never closes."""
        self.flush()

    def close(self, status: str = "ok", **fields: Any) -> None:
        """Write the terminal ``run.end`` record and close the file."""
        self.write(
            {"kind": "run.end", "run": self.manifest.run_id, "status": status, **fields}
        )
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                try:
                    os.fsync(self._fh.fileno())
                except OSError:  # pragma: no cover - fs without fsync
                    pass
                self._fh.close()
        atexit.unregister(self._atexit_flush)

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.closed:
            self.close(status="error" if exc is not None else "ok")


# -- reading -------------------------------------------------------------------


def find_journal(path: str | os.PathLike) -> str:
    """Resolve a user-supplied path to a ``journal.jsonl`` file.

    Accepts the journal file itself, a run directory containing one, or
    a root directory containing exactly one run directory.
    """
    p = Path(os.fspath(path))
    if p.is_file():
        return str(p)
    if p.is_dir():
        direct = p / JOURNAL_FILE
        if direct.is_file():
            return str(direct)
        candidates = sorted(d for d in p.iterdir() if (d / JOURNAL_FILE).is_file())
        if len(candidates) == 1:
            return str(candidates[0] / JOURNAL_FILE)
        if candidates:
            names = ", ".join(d.name for d in candidates)
            raise FileNotFoundError(
                f"{p}: contains multiple run journals ({names}); pass one run directory"
            )
    raise FileNotFoundError(f"{p}: no {JOURNAL_FILE} found")


@dataclass
class JournalView:
    """One read of a journal: parsed records + recovery diagnostics."""

    path: str
    manifest: RunManifest | None
    records: list[dict[str, Any]]
    truncated: bool = False  # a torn final line was dropped
    corrupt: int = 0  # interior lines that failed to parse (never ours)

    @property
    def run_id(self) -> str | None:
        if self.manifest is not None:
            return self.manifest.run_id
        for r in self.records:
            if r.get("kind") == "run.start":
                return r.get("run")
        return None

    @property
    def complete(self) -> bool:
        """Whether the run closed cleanly (a ``run.end`` record exists)."""
        return any(r.get("kind") == "run.end" for r in self.records)

    def events(self) -> list[Event]:
        return [Event.from_dict(r) for r in self.records if r.get("kind") == "event"]

    def spans(self) -> list[Span]:
        return [Span.from_dict(r) for r in self.records if r.get("kind") == "span"]

    def failures(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == "failure"]

    def last_metrics(self) -> dict[str, float]:
        """The most recent journaled metrics snapshot (flat dict)."""
        for r in reversed(self.records):
            if r.get("kind") == "metrics":
                return dict(r.get("values") or {})
        return {}


def read_journal(path: str | os.PathLike) -> JournalView:
    """Read a journal (possibly live/crashed) into a :class:`JournalView`.

    Safe against a torn final line: an unterminated or unparseable tail
    is dropped and flagged via ``truncated`` instead of raising, so
    ``tail``/``report`` can follow a journal that is still being
    written.
    """
    journal_path = find_journal(path)
    directory = Path(journal_path).parent
    manifest: RunManifest | None = None
    manifest_path = directory / MANIFEST_FILE
    if manifest_path.is_file():
        manifest = RunManifest.load(manifest_path)

    records: list[dict[str, Any]] = []
    truncated = False
    corrupt = 0
    with open(journal_path, "rb") as fh:
        data = fh.read()
    lines = data.split(b"\n")
    tail = lines.pop()  # b"" for a newline-terminated file
    if tail.strip():
        truncated = True  # torn final line: dropped, never parsed
    for i, raw in enumerate(lines):
        if not raw.strip():
            continue
        try:
            records.append(json.loads(raw.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError):
            if i == len(lines) - 1:
                truncated = True  # final complete-looking line still torn
            else:
                corrupt += 1
    return JournalView(
        path=journal_path,
        manifest=manifest,
        records=records,
        truncated=truncated,
        corrupt=corrupt,
    )
