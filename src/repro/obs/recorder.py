"""The telemetry recorder: one object bundling events + spans + metrics.

Instrumented code throughout the repo does::

    from ..obs import get_recorder

    rec = get_recorder()
    with rec.span("insitu.fof", step=step):
        ...
    rec.counter("io_write_bytes_total").inc(nbytes)
    rec.event("listener.submit_error", level="error", path=path)

By default the process-wide recorder is a :class:`NullRecorder` whose
every operation is a cached no-op — instrumentation costs one global
read and one no-op call, so the hot paths do not regress when telemetry
is off (the paper's "minimally intrusive" requirement for in-situ
hooks).  :func:`enable` swaps in a live :class:`TelemetryRecorder`;
:func:`telemetry` scopes one to a ``with`` block.
"""

from __future__ import annotations

import contextlib
import threading
import time
import uuid
from typing import Any, Iterator

from .context import TraceContext
from .events import DEFAULT_CAPACITY, Event, EventLog, JsonlSink
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span, Tracer, write_chrome_trace

__all__ = [
    "SPILL_CAPACITY",
    "TelemetryRecorder",
    "NullRecorder",
    "get_recorder",
    "set_recorder",
    "enable",
    "disable",
    "telemetry",
    "timed",
]

#: In-memory ring bound once a journal holds the durable record.
SPILL_CAPACITY = 4096


# -- the no-op fast path -------------------------------------------------------


class _NullSpan:
    """Reusable no-op context manager (also a no-op decorator target)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


class _NullMetric:
    """Answers every metric method with a no-op / zero."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    max = 0.0
    min = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_METRIC = _NullMetric()


class NullRecorder:
    """The default recorder: every operation is a cached no-op."""

    enabled = False
    run_id: str | None = None

    def span(self, name: str, **fields: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, t0: float, t1: float, **fields: Any) -> None:
        return None

    def event(self, name: str, level: str = "info", **fields: Any) -> None:
        return None

    def trace_context(self) -> TraceContext | None:
        return None

    def bind_thread(self, ctx: TraceContext | None) -> None:
        return None

    def run_scope(self, run_id: str | None):
        return contextlib.nullcontext(self)

    def attach_journal(self, journal: Any, spill_capacity: int = SPILL_CAPACITY) -> None:
        return None

    def detach_journal(self) -> None:
        return None

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "", buckets: Any = None) -> _NullMetric:
        return _NULL_METRIC

    def close(self) -> None:
        return None


# -- the live recorder ---------------------------------------------------------


class TelemetryRecorder:
    """Live recorder: event ring + tracer + metrics (+ optional JSONL).

    Parameters
    ----------
    run_id:
        Correlation id stamped on every span and event (auto-generated
        if omitted) — the "run" axis of the timeline.
    jsonl_path:
        If given, every event and finished span is appended to this
        JSONL file as it happens (replayable via
        :func:`repro.obs.events.read_jsonl`).
    capacity:
        In-memory ring bound for both events and finished spans.
    """

    enabled = True

    def __init__(
        self,
        run_id: str | None = None,
        jsonl_path: str | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        self.run_id = run_id or f"run-{uuid.uuid4().hex[:8]}"
        self.events = EventLog(capacity=capacity)
        self.tracer = Tracer(capacity=capacity, run=self.run_id)
        self.metrics = MetricsRegistry()
        self.sink: JsonlSink | None = JsonlSink(jsonl_path) if jsonl_path else None
        #: attached :class:`repro.obs.journal.RunJournal` (durable sink)
        self.journal: Any = None
        self.tracer.on_finish = self._on_span_finish

    # -- spans ----------------------------------------------------------------

    def span(
        self,
        name: str,
        step: int | None = None,
        rank: int | None = None,
        **fields: Any,
    ):
        return self.tracer.span(name, step=step, rank=rank, **fields)

    def traced(self, name: str | None = None, **fields: Any):
        return self.tracer.traced(name, **fields)

    def record_span(
        self,
        name: str,
        t0: float,
        t1: float,
        *,
        thread: str | None = None,
        step: int | None = None,
        rank: int | None = None,
        parent_id: int | None = None,
        **fields: Any,
    ) -> Span:
        """Record an interval measured elsewhere (e.g. a worker process)."""
        return self.tracer.record_span(
            name, t0, t1, thread=thread, step=step, rank=rank, parent_id=parent_id, **fields
        )

    def _on_span_finish(self, span: Span) -> None:
        """Every finished span flows to the JSONL sink and the journal."""
        if self.sink is not None:
            self.sink.write(span.to_dict())
        if self.journal is not None:
            self.journal.write(span.to_dict())

    # -- trace propagation -----------------------------------------------------

    def trace_context(self) -> TraceContext:
        """Run id + innermost open span on this thread — the hop payload."""
        current = self.tracer.current()
        return TraceContext(
            run=self.run_id, span_id=current.span_id if current is not None else None
        )

    def bind_thread(self, ctx: TraceContext | None) -> None:
        """Parent this thread's root spans under ``ctx`` (see context.py)."""
        self.tracer.bind(ctx.span_id if ctx is not None else None)

    @contextlib.contextmanager
    def run_scope(self, run_id: str | None) -> "Iterator[TelemetryRecorder]":
        """Stamp everything recorded inside the block with ``run_id``.

        Lets two workflows share one recorder without cross-run
        aggregation bleed: events, spans and failure records emitted in
        the block carry the scoped run id.
        """
        if not run_id or run_id == self.run_id:
            yield self
            return
        prev_run, prev_tracer_run = self.run_id, self.tracer.run
        self.run_id = run_id
        self.tracer.run = run_id
        try:
            yield self
        finally:
            self.run_id, self.tracer.run = prev_run, prev_tracer_run

    # -- journal ---------------------------------------------------------------

    def attach_journal(self, journal: Any, spill_capacity: int = SPILL_CAPACITY) -> None:
        """Stream all subsequent telemetry into ``journal`` (a RunJournal).

        The journal becomes the durable record, so the in-memory rings
        are rebounded to ``spill_capacity`` — long runs stop growing the
        process footprint (the disk holds the full stream).
        """
        self.journal = journal
        if spill_capacity:
            self.events.rebound(spill_capacity)
            self.tracer.rebound(spill_capacity)

    def detach_journal(self) -> None:
        self.journal = None

    # -- events ---------------------------------------------------------------

    def event(
        self,
        name: str,
        level: str = "info",
        step: int | None = None,
        rank: int | None = None,
        **fields: Any,
    ) -> Event:
        ev = self.events.emit(
            name, level=level, run=self.run_id, step=step, rank=rank, **fields
        )
        if self.sink is not None:
            self.sink.write(ev.to_dict())
        if self.journal is not None:
            self.journal.write(ev.to_dict())
        return ev

    def ingest_event(self, event: Event) -> Event:
        """Adopt a fully-formed event (merged from another process)."""
        self.events.append(event)
        if self.sink is not None:
            self.sink.write(event.to_dict())
        if self.journal is not None:
            self.journal.write(event.to_dict())
        return event

    # -- metrics --------------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self.metrics.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.metrics.gauge(name, help)

    def histogram(self, name: str, help: str = "", buckets: Any = None) -> Histogram:
        if buckets is None:
            return self.metrics.histogram(name, help)
        return self.metrics.histogram(name, help, buckets)

    # -- export ---------------------------------------------------------------

    def write_chrome_trace(self, path: str) -> str:
        """Dump every finished span (+ events) as a Chrome trace file."""
        return write_chrome_trace(
            path,
            self.tracer.snapshot(),
            self.events.snapshot(),
            process_name=self.run_id,
        )

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


# -- the process-wide recorder -------------------------------------------------

_lock = threading.Lock()
_NULL = NullRecorder()
_recorder: NullRecorder | TelemetryRecorder = _NULL


def get_recorder() -> NullRecorder | TelemetryRecorder:
    """The process-wide recorder (a no-op unless :func:`enable` ran)."""
    return _recorder


def set_recorder(
    recorder: NullRecorder | TelemetryRecorder,
) -> NullRecorder | TelemetryRecorder:
    """Install ``recorder`` globally; returns the previous one."""
    global _recorder
    with _lock:
        previous = _recorder
        _recorder = recorder
    return previous


def enable(
    run_id: str | None = None,
    jsonl_path: str | None = None,
    capacity: int = DEFAULT_CAPACITY,
) -> TelemetryRecorder:
    """Switch telemetry on: install and return a live recorder."""
    rec = TelemetryRecorder(run_id=run_id, jsonl_path=jsonl_path, capacity=capacity)
    set_recorder(rec)
    return rec


def disable() -> NullRecorder | TelemetryRecorder:
    """Switch telemetry off; returns the recorder that was active."""
    previous = set_recorder(_NULL)
    previous.close()
    return previous


@contextlib.contextmanager
def timed(histogram: str, help: str = "") -> Iterator[None]:
    """Observe a block's wall time into a named histogram.

    The one sanctioned way for *pure kernels* to report timing: clock
    reads live here (inside ``repro.obs``, where rule RPR003 allows
    them), so instrumented kernels stay clock-free functions of their
    inputs.  With the :class:`NullRecorder` installed the overhead is
    two ``perf_counter`` reads and a no-op ``observe``.
    """
    rec = get_recorder()
    t0 = time.perf_counter()
    try:
        yield
    finally:
        rec.histogram(histogram, help).observe(time.perf_counter() - t0)


@contextlib.contextmanager
def telemetry(
    run_id: str | None = None,
    jsonl_path: str | None = None,
    capacity: int = DEFAULT_CAPACITY,
) -> Iterator[TelemetryRecorder]:
    """Scope a live recorder to a ``with`` block::

        with obs.telemetry() as rec:
            run_combined_workflow(...)
        rec.write_chrome_trace("trace.json")
    """
    previous = get_recorder()
    rec = TelemetryRecorder(run_id=run_id, jsonl_path=jsonl_path, capacity=capacity)
    set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)
        rec.close()
