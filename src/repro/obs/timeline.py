"""Machine-utilization timelines: the paper's Table-3 view.

The paper's co-scheduling argument is a utilization argument: Table 3
and Figure 3 show per-node occupancy over time — simulation allocation
vs. co-scheduled analysis allocation — and the win is the overlap.
This module reconstructs that view from telemetry:

* :class:`MachineTimeline` — per-node occupancy Gantt built from
  scheduler allocations (``scheduler.job_start`` events journal the
  sim-clock interval and node count of every job, so the whole chart
  rebuilds from a journal alone).  Node assignment is a deterministic
  first-fit, so two identical runs render identical charts.
* :class:`WorkflowTimeline` — the wall-clock span view of a combined
  run: sim-vs-analysis overlap fraction and staging throughput, the
  quantities behind the paper's "the machine stayed busy" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .events import Event
from .spans import Span

__all__ = ["Allocation", "MachineTimeline", "WorkflowTimeline", "merge_intervals"]


@dataclass(frozen=True)
class Allocation:
    """One job's hold on ``n_nodes`` nodes over ``[t0, t1)`` (sim clock)."""

    name: str
    n_nodes: int
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return max(0.0, self.t1 - self.t0)


def merge_intervals(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping intervals, sorted and coalesced."""
    ivs = sorted((t0, t1) for t0, t1 in intervals if t1 > t0)
    out: list[tuple[float, float]] = []
    for t0, t1 in ivs:
        if out and t0 <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], t1))
        else:
            out.append((t0, t1))
    return out


def _overlap(a: list[tuple[float, float]], b: list[tuple[float, float]]) -> float:
    """Total length of the intersection of two merged interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


class MachineTimeline:
    """Per-node occupancy of one machine, from scheduler allocations."""

    def __init__(self, n_nodes: int, allocations: Iterable[Allocation], machine: str = ""):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.machine = machine
        self.n_nodes = n_nodes
        # deterministic order: ties broken by name, so node assignment
        # (and therefore the rendered chart) is stable across runs
        self.allocations = sorted(allocations, key=lambda a: (a.t0, a.name))
        self._assignment: dict[str, list[int]] | None = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Event], machine: str | None = None) -> "MachineTimeline":
        """Rebuild from journaled ``scheduler.*`` events.

        ``scheduler.job_start`` carries ``job``/``n_nodes``/``sim_start``/
        ``sim_end``; ``scheduler.run_begin`` / ``scheduler.done`` carry
        the machine's node count.  ``machine`` filters when a journal
        holds several schedulers' events.
        """
        allocs: list[Allocation] = []
        n_nodes = 0
        name = machine or ""
        for e in events:
            f = e.fields
            if machine is not None and f.get("machine") not in (None, machine):
                continue
            if e.name in ("scheduler.run_begin", "scheduler.done"):
                n_nodes = max(n_nodes, int(f.get("n_nodes", 0)))
                name = name or str(f.get("machine", ""))
            elif e.name == "scheduler.job_start":
                allocs.append(
                    Allocation(
                        name=str(f.get("job", "?")),
                        n_nodes=int(f.get("n_nodes", 1)),
                        t0=float(f.get("sim_start", 0.0)),
                        t1=float(f.get("sim_end", 0.0)),
                    )
                )
        if n_nodes == 0:
            n_nodes = max((a.n_nodes for a in allocs), default=1)
        return cls(n_nodes=n_nodes, allocations=allocs, machine=name)

    @classmethod
    def from_scheduler(cls, scheduler: Any) -> "MachineTimeline":
        """Build directly from a finished :class:`repro.machines.Scheduler`."""
        allocs = [
            Allocation(name=name, n_nodes=n, t0=t0, t1=t1)
            for name, n, t0, t1 in scheduler.allocations()
        ]
        return cls(
            n_nodes=scheduler.machine.n_nodes,
            allocations=allocs,
            machine=scheduler.machine.name,
        )

    # -- geometry --------------------------------------------------------------

    @property
    def makespan(self) -> float:
        return max((a.t1 for a in self.allocations), default=0.0)

    def node_assignment(self) -> dict[str, list[int]]:
        """Deterministic first-fit node indices per job.

        Nodes are picked lowest-index-first among those free at the
        job's start; identical allocation streams therefore always
        produce identical charts (the determinism the byte-identical
        acceptance check relies on).
        """
        if self._assignment is not None:
            return self._assignment
        free_at = [0.0] * self.n_nodes
        assignment: dict[str, list[int]] = {}
        eps = 1e-9
        for a in self.allocations:
            ready = [i for i in range(self.n_nodes) if free_at[i] <= a.t0 + eps]
            if len(ready) < a.n_nodes:  # oversubscribed: take earliest-free nodes
                ready = sorted(range(self.n_nodes), key=lambda i: (free_at[i], i))
            chosen = ready[: a.n_nodes]
            for i in chosen:
                free_at[i] = max(free_at[i], a.t1)
            assignment[a.name] = sorted(chosen)
        self._assignment = assignment
        return assignment

    def busy_node_seconds(self) -> float:
        return sum(a.n_nodes * a.duration for a in self.allocations)

    def utilization(self) -> float:
        """Busy node-seconds over total node-seconds (Table 3's metric)."""
        span = self.makespan
        if span <= 0.0 or not self.allocations:
            return 0.0
        return min(1.0, self.busy_node_seconds() / (self.n_nodes * span))

    def per_node_busy(self) -> list[float]:
        """Busy seconds per node index under the deterministic assignment."""
        assignment = self.node_assignment()
        busy = [0.0] * self.n_nodes
        for a in self.allocations:
            for i in assignment[a.name]:
                busy[i] += a.duration
        return busy

    # -- rendering -------------------------------------------------------------

    def gantt(self, width: int = 72) -> str:
        """ASCII per-node occupancy chart (one row per node).

        Jobs are lettered ``a``–``z`` (cycling) in first-seen order; a
        legend maps letters back to job names.  Time is the scheduler's
        sim clock, left to right over the makespan.
        """
        span = self.makespan
        header = f"machine {self.machine or '?'}: {self.n_nodes} nodes, " \
            f"makespan {span:g} s, utilization {self.utilization() * 100.0:.1f}%"
        if span <= 0.0 or not self.allocations:
            return header + "\n(no allocations)"
        width = max(8, int(width))
        letters = "abcdefghijklmnopqrstuvwxyz"
        symbol: dict[str, str] = {}
        for a in self.allocations:
            if a.name not in symbol:
                symbol[a.name] = letters[len(symbol) % len(letters)]
        rows = [["."] * width for _ in range(self.n_nodes)]
        assignment = self.node_assignment()
        for a in self.allocations:
            c0 = int(a.t0 / span * width)
            c1 = max(c0 + 1, int(a.t1 / span * width))
            for node in assignment[a.name]:
                for c in range(c0, min(c1, width)):
                    rows[node][c] = symbol[a.name]
        lines = [header]
        for i, row in enumerate(rows):
            lines.append(f"node {i:>3} |{''.join(row)}|")
        legend = "  ".join(f"{sym}={name}" for name, sym in symbol.items())
        lines.append(f"jobs: {legend}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON view: allocations + assignment + utilization."""
        assignment = self.node_assignment()
        return {
            "machine": self.machine,
            "n_nodes": self.n_nodes,
            "makespan": self.makespan,
            "utilization": self.utilization(),
            "busy_node_seconds": self.busy_node_seconds(),
            "allocations": [
                {
                    "job": a.name,
                    "n_nodes": a.n_nodes,
                    "t0": a.t0,
                    "t1": a.t1,
                    "nodes": assignment[a.name],
                }
                for a in self.allocations
            ],
        }


@dataclass
class WorkflowTimeline:
    """Wall-clock overlap view of one combined run's spans.

    The co-scheduling claim in span form: how much of the simulation's
    wall time had analysis running concurrently, and what the staging
    layer moved per second of staging time.
    """

    spans: list[Span] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    #: span-name prefixes counted as "simulation is running"
    SIM_PREFIXES = ("sim.", "workflow.sim")
    #: span-name prefixes counted as "analysis is running"
    ANALYSIS_PREFIXES = ("offline.", "insitu.", "exec.item", "listener.submit")
    #: span-name prefixes counted as "the solver kernel itself is running"
    SOLVER_PREFIXES = ("sim.force",)

    def _intervals(self, prefixes: tuple[str, ...]) -> list[tuple[float, float]]:
        return merge_intervals(
            (s.t0, s.t1)
            for s in self.spans
            if s.t1 is not None and any(s.name.startswith(p) for p in prefixes)
        )

    def sim_seconds(self) -> float:
        return sum(t1 - t0 for t0, t1 in self._intervals(self.SIM_PREFIXES))

    def analysis_seconds(self) -> float:
        return sum(t1 - t0 for t0, t1 in self._intervals(self.ANALYSIS_PREFIXES))

    def overlap_fraction(self) -> float:
        """Fraction of simulation wall time with analysis in flight.

        Zero for a purely sequential (non-co-scheduled) run; the paper's
        combined approach pushes this toward 1.
        """
        sim = self._intervals(self.SIM_PREFIXES)
        ana = self._intervals(self.ANALYSIS_PREFIXES)
        sim_total = sum(t1 - t0 for t0, t1 in sim)
        if sim_total <= 0.0:
            return 0.0
        return _overlap(sim, ana) / sim_total

    def solver_overlap_fraction(self) -> float:
        """Fraction of force-kernel wall time with analysis in flight.

        Stricter than :meth:`overlap_fraction`: in-situ work invoked
        synchronously from the step loop nests inside ``sim.step`` /
        ``workflow.sim`` (so the coarse metric counts it) but never runs
        while ``sim.force`` itself is on the stack.  A serial in-situ
        run therefore scores ~0 here; only genuinely pipelined or
        co-scheduled analysis — running *while the solver computes* —
        scores above it.
        """
        solver = self._intervals(self.SOLVER_PREFIXES)
        ana = self._intervals(self.ANALYSIS_PREFIXES)
        solver_total = sum(t1 - t0 for t0, t1 in solver)
        if solver_total <= 0.0:
            return 0.0
        return _overlap(solver, ana) / solver_total

    def staging_throughput(self) -> float:
        """Bytes/s through the staging area (0 when staging unused)."""
        nbytes = self.metrics.get("staging_bytes_staged_total", 0.0)
        secs = sum(
            s.t1 - s.t0
            for s in self.spans
            if s.t1 is not None and s.name.startswith("staging.")
        )
        return nbytes / secs if secs > 0.0 else 0.0

    def lanes(self) -> dict[str, list[Span]]:
        """Finished spans grouped by producing thread, start-ordered."""
        out: dict[str, list[Span]] = {}
        for s in sorted(self.spans, key=lambda x: x.t0):
            if s.t1 is None:
                continue
            out.setdefault(s.thread or "main", []).append(s)
        return out

    def summary(self) -> dict[str, Any]:
        return {
            "sim_seconds": self.sim_seconds(),
            "analysis_seconds": self.analysis_seconds(),
            "overlap_fraction": self.overlap_fraction(),
            "solver_overlap_fraction": self.solver_overlap_fraction(),
            "staging_throughput_bytes_per_s": self.staging_throughput(),
            "lanes": {name: len(spans) for name, spans in self.lanes().items()},
        }

    def render(self, width: int = 72) -> str:
        """ASCII lane chart: one row per thread over the traced wall."""
        finished = [s for s in self.spans if s.t1 is not None]
        if not finished:
            return "(no finished spans)"
        t0 = min(s.t0 for s in finished)
        t1 = max(s.t1 for s in finished if s.t1 is not None)
        span = t1 - t0
        width = max(8, int(width))
        lines = [
            f"workflow lanes — wall {span:.3f} s, "
            f"overlap {self.overlap_fraction() * 100.0:.1f}%"
        ]
        for lane, spans in self.lanes().items():
            row = ["."] * width
            for s in spans:
                c0 = int((s.t0 - t0) / span * width) if span > 0 else 0
                c1 = max(c0 + 1, int(((s.t1 or s.t0) - t0) / span * width))
                for c in range(c0, min(c1, width)):
                    row[c] = "#"
            lines.append(f"{lane:>16} |{''.join(row)}|")
        return "\n".join(lines)
