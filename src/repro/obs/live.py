"""Live journal following: watch a run while it is still writing.

The journal's atomic line framing (one buffered ``write`` per record)
makes concurrent reading safe: a reader only ever sees whole lines plus
at most one torn tail, which it simply waits out.  That turns the
journal into a broadcast channel — ``python -m repro.obs tail`` follows
a run from another terminal, and mid-run ``report``/``timeline`` work
on whatever prefix has been flushed so far.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Iterator

from .journal import find_journal

__all__ = ["follow_journal", "format_record"]


def follow_journal(
    path: str | os.PathLike,
    poll_interval: float = 0.2,
    max_seconds: float | None = None,
    from_start: bool = True,
) -> Iterator[dict[str, Any]]:
    """Yield journal records as they are appended.

    Tails the file by byte offset, yielding only complete
    (newline-terminated) lines — a torn tail is left in place and
    retried on the next poll, never mis-parsed.  Stops when a
    ``run.end`` record arrives (the run closed) or after
    ``max_seconds`` of wall time (``None`` = follow forever).
    ``from_start=False`` skips history and follows only new records.
    """
    journal_path = find_journal(path)
    deadline = None if max_seconds is None else time.perf_counter() + max_seconds
    offset = 0
    if not from_start:
        offset = os.path.getsize(journal_path)
    buffer = b""
    while True:
        size = os.path.getsize(journal_path)
        if size < offset:  # journal replaced/truncated: restart from top
            offset = 0
            buffer = b""
        if size > offset:
            with open(journal_path, "rb") as fh:
                fh.seek(offset)
                chunk = fh.read(size - offset)
            offset = size
            buffer += chunk
            while True:
                nl = buffer.find(b"\n")
                if nl < 0:
                    break  # torn tail: wait for the rest
                line, buffer = buffer[:nl], buffer[nl + 1 :]
                if not line.strip():
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    continue  # interior corruption: skip, keep following
                yield record
                if record.get("kind") == "run.end":
                    return
        if deadline is not None and time.perf_counter() >= deadline:
            return
        time.sleep(poll_interval)


def format_record(record: dict[str, Any]) -> str:
    """One-line human rendering of a journal record (for ``tail``)."""
    kind = record.get("kind", "?")
    seq = record.get("seq", "?")
    if kind == "event":
        level = record.get("level", "info")
        extra = record.get("fields") or {}
        detail = " ".join(f"{k}={v}" for k, v in extra.items())
        return f"[{seq}] event {level:<7} {record.get('name', '?')} {detail}".rstrip()
    if kind == "span":
        t0 = float(record.get("t0", 0.0))
        t1 = record.get("t1")
        dur = (float(t1) - t0) * 1e3 if t1 is not None else 0.0
        return f"[{seq}] span  {record.get('name', '?')} {dur:.2f} ms"
    if kind == "metrics":
        return f"[{seq}] metrics snapshot ({len(record.get('values') or {})} series)"
    if kind == "failure":
        return (
            f"[{seq}] FAILURE stage={record.get('stage', '?')} "
            f"key={record.get('key', '?')} reason={record.get('reason', '?')}"
        )
    if kind == "run.start":
        return f"[{seq}] run.start run={record.get('run', '?')}"
    if kind == "run.end":
        return f"[{seq}] run.end status={record.get('status', '?')}"
    return f"[{seq}] {kind}"
