"""Trace-context propagation across threads and processes.

One workflow run spans many execution contexts: the driver thread, the
co-scheduled listener thread, the in-transit consumer thread, and the
``repro.exec`` worker *processes*.  For the journal and Chrome trace to
show a single causally-linked tree, every hop must carry two facts:

* which **run** it belongs to (``run_id``), and
* which **span** caused it (``span_id`` of the driver-side parent).

That pair is :class:`TraceContext` — deliberately tiny, immutable and
dict-round-trippable so it can ride a ``multiprocessing`` queue, a
thread closure, or a journal record unchanged.  The contract:

* **thread hop** — capture ``ctx = rec.trace_context()`` on the parent
  thread *inside* the causal span, then ``rec.bind_thread(ctx)`` as the
  first statement of the child thread's loop.  Root spans opened by
  that thread are parented under ``ctx.span_id``.
* **process hop** — pass ``ctx.to_dict()`` in the worker's argument
  tuple.  The worker installs its own local
  :class:`~repro.obs.recorder.TelemetryRecorder` with the shipped
  ``run_id``, records spans/events/metrics locally, and ships one
  :func:`export_snapshot` payload back over the result queue.  The
  parent calls :func:`merge_snapshot`, which remaps worker-local span
  ids onto the parent's id space (collision-free), re-parents worker
  root spans under the causal driver span, and folds worker metrics
  into the parent registry.

``time.perf_counter`` on Linux is ``CLOCK_MONOTONIC`` — system-wide,
not per-process — so worker timestamps land directly on the parent's
timeline with no clock translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .spans import Span, next_span_id

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from .recorder import TelemetryRecorder

__all__ = ["TraceContext", "current_trace_context", "export_snapshot", "merge_snapshot"]


@dataclass(frozen=True)
class TraceContext:
    """The two facts a hop must carry: run identity + causal parent."""

    run: str
    span_id: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {"run": self.run, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, d: dict[str, Any] | None) -> "TraceContext | None":
        if d is None:
            return None
        return cls(run=d["run"], span_id=d.get("span_id"))


def current_trace_context() -> TraceContext | None:
    """The process-wide recorder's current trace context (None when off)."""
    from .recorder import get_recorder  # local import: recorder imports us

    return get_recorder().trace_context()


def export_snapshot(rec: "TelemetryRecorder") -> dict[str, Any] | None:
    """Ship-ready snapshot of a (worker-local) recorder's telemetry.

    Everything is plain dicts/lists — picklable for a
    ``multiprocessing`` queue and JSON-serializable for a journal.
    """
    if not getattr(rec, "enabled", False):
        return None
    return {
        "run": rec.run_id,
        "events": [e.to_dict() for e in rec.events.snapshot()],
        "spans": [s.to_dict() for s in rec.tracer.snapshot()],
        "metrics": rec.metrics.export_state(),
    }


def merge_snapshot(
    rec: "TelemetryRecorder",
    snapshot: dict[str, Any] | None,
    parent_span_id: int | None = None,
    thread: str | None = None,
) -> tuple[int, int]:
    """Fold a shipped :func:`export_snapshot` into the parent recorder.

    Worker-local span ids are remapped onto the parent's id space (in
    ascending original order, so internal parent→child links survive);
    spans that were roots in the worker are re-parented under
    ``parent_span_id`` — the causal driver span.  ``thread`` relabels
    the track (e.g. ``exec-worker-3``) when given.  Events and spans are
    ingested through the recorder so journal/sink hooks fire; metrics
    merge kind-appropriately.  Returns ``(n_events, n_spans)``.
    """
    if snapshot is None:
        return (0, 0)

    span_dicts = sorted(snapshot.get("spans", ()), key=lambda d: d.get("span_id", 0))
    id_map: dict[int, int] = {}
    for d in span_dicts:
        old = int(d.get("span_id", 0))
        id_map[old] = next_span_id()

    n_spans = 0
    for d in span_dicts:
        span = Span.from_dict(d)
        span.span_id = id_map[span.span_id]
        if span.parent_id is not None and span.parent_id in id_map:
            span.parent_id = id_map[span.parent_id]
            span.depth += 1 if parent_span_id is not None else 0
        else:  # worker root: hang it under the causal driver span
            span.parent_id = parent_span_id
            span.depth = 1 if parent_span_id is not None else 0
        span.run = rec.run_id
        if thread is not None:
            span.thread = thread
        rec.tracer.ingest(span)
        n_spans += 1

    from .events import Event  # local import keeps module load order simple

    n_events = 0
    for d in snapshot.get("events", ()):
        ev = Event.from_dict(d)
        ev = Event(
            name=ev.name,
            t=ev.t,
            wall=ev.wall,
            level=ev.level,
            run=rec.run_id,
            step=ev.step,
            rank=ev.rank,
            fields=ev.fields,
        )
        rec.ingest_event(ev)
        n_events += 1

    rec.metrics.absorb_state(snapshot.get("metrics", {}))
    return (n_events, n_spans)
