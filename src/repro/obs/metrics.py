"""Zero-dependency metrics registry: counters, gauges, histograms.

The numeric side of the telemetry layer: monotonically-increasing
counters (bytes written, jobs submitted/failed), point-in-time gauges
(listener backlog, staging occupancy) and fixed-bucket histograms
(submit latency, queue waits — the distributions behind the paper's
per-node analysis-time figures).

Everything is thread-safe and renders to a Prometheus-style text
exposition (:meth:`MetricsRegistry.render_text`) with no external
dependencies, so a long-running co-scheduled listener can be scraped
or dumped with plain ``print``.
"""

from __future__ import annotations

import bisect
import math
import resource
import sys
import threading
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "PEAK_RSS_GAUGE",
    "sample_memory",
]

#: Gauge name :func:`sample_memory` updates (bytes; the ``max`` watermark
#: is the process-lifetime peak).
PEAK_RSS_GAUGE = "process_peak_rss_bytes"

#: Default histogram upper bounds (seconds-oriented, log-ish spacing).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
)


class Counter:
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> list[str]:
        return [f"{self.name} {_fmt(self.value)}"]

    def state(self) -> dict[str, Any]:
        """Picklable snapshot for shipping across a process boundary."""
        return {"kind": self.kind, "value": self.value, "help": self.help}

    def absorb(self, state: dict[str, Any]) -> None:
        """Merge another process's counter state (counters add)."""
        self.inc(float(state.get("value", 0.0)))


class Gauge:
    """Point-in-time value with min/max watermarks."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._max = -math.inf
        self._min = math.inf
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._max = max(self._max, self._value)
            self._min = min(self._min, self._value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            self._max = max(self._max, self._value)
            self._min = min(self._min, self._value)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max(self) -> float:
        """Highest value ever set (−inf if never set)."""
        with self._lock:
            return self._max

    @property
    def min(self) -> float:
        with self._lock:
            return self._min

    def render(self) -> list[str]:
        return [f"{self.name} {_fmt(self.value)}"]

    def state(self) -> dict[str, Any]:
        """Picklable snapshot for shipping across a process boundary."""
        with self._lock:
            return {
                "kind": self.kind,
                "value": self._value,
                "max": self._max,
                "min": self._min,
                "help": self.help,
            }

    def absorb(self, state: dict[str, Any]) -> None:
        """Merge another process's gauge: keep last value, widen watermarks."""
        with self._lock:
            self._value = float(state.get("value", self._value))
            self._max = max(self._max, float(state.get("max", -math.inf)))
            self._min = min(self._min, float(state.get("min", math.inf)))


class Histogram:
    """Fixed-bucket histogram (cumulative, Prometheus semantics).

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the tail.  ``observe`` is O(log n_buckets).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.help = help
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.bounds: tuple[float, ...] = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # +Inf tail
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative counts per upper bound (``inf`` is the tail)."""
        with self._lock:
            out: dict[float, int] = {}
            running = 0
            for bound, c in zip(self.bounds, self._counts):
                running += c
                out[bound] = running
            out[math.inf] = running + self._counts[-1]
            return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from the cumulative buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        cum = self.bucket_counts()
        total = cum[math.inf]
        if total == 0:
            return 0.0
        target = q * total
        for bound, c in cum.items():
            if c >= target:
                return bound
        return math.inf  # pragma: no cover - unreachable

    def render(self) -> list[str]:
        cum = self.bucket_counts()
        lines = []
        for bound, c in cum.items():
            le = "+Inf" if math.isinf(bound) else _fmt(bound)
            lines.append(f'{self.name}_bucket{{le="{le}"}} {c}')
        lines.append(f"{self.name}_sum {_fmt(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines

    def state(self) -> dict[str, Any]:
        """Picklable snapshot for shipping across a process boundary."""
        with self._lock:
            return {
                "kind": self.kind,
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "help": self.help,
            }

    def absorb(self, state: dict[str, Any]) -> None:
        """Merge another process's histogram (bucket-wise addition).

        Requires matching bounds — mismatched layouts collapse to
        observing the shipped mean ``count`` times (lossy but safe).
        """
        bounds = tuple(float(b) for b in state.get("bounds", ()))
        counts = list(state.get("counts", ()))
        if bounds == self.bounds and len(counts) == len(self._counts):
            with self._lock:
                for i, c in enumerate(counts):
                    self._counts[i] += int(c)
                self._sum += float(state.get("sum", 0.0))
                self._count += int(state.get("count", 0))
            return
        n = int(state.get("count", 0))
        if n:  # pragma: no cover - defensive: layouts always match in-repo
            mean = float(state.get("sum", 0.0)) / n
            for _ in range(n):
                self.observe(mean)


def sample_memory(registry: "MetricsRegistry | None" = None) -> int:
    """Record the process peak RSS into ``process_peak_rss_bytes``.

    Reads ``ru_maxrss`` (kibibytes on Linux, bytes on macOS), converts
    to bytes, and sets the gauge on ``registry`` (default: the active
    recorder's registry).  Cheap enough to call per chunk/step; because
    ``ru_maxrss`` is the kernel's high-water mark the gauge — and its
    ``max`` watermark — is monotone within one process.  Returns the
    sampled peak in bytes.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1 if sys.platform == "darwin" else 1024
    peak_bytes = int(peak) * scale
    help_text = "process peak resident set size (ru_maxrss), bytes"
    if registry is None:
        from .recorder import get_recorder

        # goes through the recorder facade so a disabled telemetry layer
        # stays a cached no-op (NullRecorder has no registry)
        get_recorder().gauge(PEAK_RSS_GAUGE, help=help_text).set(peak_bytes)
    else:
        registry.gauge(PEAK_RSS_GAUGE, help=help_text).set(peak_bytes)
    return peak_bytes


def _fmt(v: float) -> str:
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


class MetricsRegistry:
    """Get-or-create registry keyed by metric name.

    Asking twice for the same name returns the same instance; asking
    for an existing name with a different kind raises — the registry is
    the single source of truth for the run's numeric state.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = Histogram(name, help, buckets)
                self._metrics[name] = m
            elif not isinstance(m, Histogram):
                raise TypeError(f"metric {name!r} is a {m.kind}, not a histogram")
            return m

    def _get_or_create(self, name: str, cls: type, help: str) -> Any:
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = cls(name, help)
                self._metrics[name] = m
            elif not isinstance(m, cls):
                raise TypeError(f"metric {name!r} is a {m.kind}, not a {cls.kind}")
            return m

    def get(self, name: str) -> Any | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def as_dict(self) -> dict[str, float]:
        """Flat scalar view (histograms contribute sum/count/mean)."""
        out: dict[str, float] = {}
        for name in self.names():
            m = self.get(name)
            if isinstance(m, Histogram):
                out[f"{name}_sum"] = m.sum
                out[f"{name}_count"] = float(m.count)
                out[f"{name}_mean"] = m.mean
            else:
                out[name] = m.value
        return out

    def export_state(self) -> dict[str, dict[str, Any]]:
        """Picklable name → state map (ship a registry between processes)."""
        out: dict[str, dict[str, Any]] = {}
        for name in self.names():
            m = self.get(name)
            out[name] = m.state()
        return out

    def absorb_state(self, states: dict[str, dict[str, Any]]) -> None:
        """Merge an :meth:`export_state` payload into this registry.

        Metrics are created on demand with the shipped kind; counters
        add, gauges widen watermarks, histograms add bucket-wise — so
        one registry covers the whole multi-process workflow.
        """
        for name in sorted(states):
            state = states[name]
            kind = state.get("kind", "counter")
            if kind == "counter":
                self.counter(name, state.get("help", "")).absorb(state)
            elif kind == "gauge":
                self.gauge(name, state.get("help", "")).absorb(state)
            elif kind == "histogram":
                bounds = state.get("bounds") or DEFAULT_BUCKETS
                self.histogram(name, state.get("help", ""), bounds).absorb(state)

    def render_text(self) -> str:
        """Prometheus-style text exposition of every metric."""
        lines: list[str] = []
        for name in self.names():
            m = self.get(name)
            if m.help:
                lines.append(f"# HELP {name} {m.help}")
            lines.append(f"# TYPE {name} {m.kind}")
            lines.extend(m.render())
        return "\n".join(lines) + ("\n" if lines else "")
