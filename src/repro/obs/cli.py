"""``python -m repro.obs`` — the campaign console over run journals.

Every subcommand works on the durable run directories that
``run_combined_workflow(..., journal_dir=...)`` produces (see
:mod:`repro.obs.journal`), so the analysis survives — and can run
during, or long after — the producing process:

* ``report``   — the Table-4 phase breakdown + failure summary
* ``timeline`` — per-node utilization Gantt (Table-3 view) and
  workflow lanes, as ASCII or JSON
* ``tail``     — print a journal's records; ``--follow`` streams a
  live run until its ``run.end``
* ``trace``    — export one causally-linked Chrome trace
  (``chrome://tracing`` / Perfetto)
* ``diff``     — compare two runs' metrics; flag count drift and
  timing regressions (optionally against a ``BENCH_*.json`` baseline)

``--canonical`` (on ``report``/``timeline``/``trace``) projects away
everything timing- and scheduling-dependent (wall clocks, span ids,
worker assignment) so two runs of the same seeded configuration render
**byte-identical** output — the repo's determinism harness diffs these
projections directly.

This module is the CLI surface, so it prints; library code must not
(rule RPR010 routes library output through ``repro.obs`` events).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Any

from .events import Event, _json_default
from .journal import JournalView, read_journal
from .live import follow_journal, format_record
from .report import RunTelemetry
from .spans import Span
from .timeline import MachineTimeline, WorkflowTimeline

__all__ = ["main"]

#: Field keys whose values depend on scheduling races (which worker ran
#: an item, how often a poll loop spun) — stripped by ``--canonical``.
RACY_FIELD_KEYS = frozenset(
    {"stolen", "steals", "imbalance", "busy_fraction", "overhead", "queue_wait"}
)

#: Counters whose totals depend on scheduling races — excluded from the
#: canonical projection (steals vary with worker timing; pool reuse
#: depends on whether an earlier run in the same process left a warm
#: worker pool behind).
RACY_COUNTERS = frozenset(
    {"exec_steals_total", "listener_polls_total", "exec_pool_reuse_total"}
)

#: Metrics measuring the host rather than the science — scheduler
#: dispatch latency (microseconds-scale, swings orders of magnitude
#: between a freshly forked pool and a warm-idle one) and process RSS
#: (allocator/environment dependent) — excluded from ``diff`` drift
#: comparison; science timings (kernel seconds) stay compared.
RACY_TIMING_PREFIXES = ("exec_dispatch_overhead_seconds", "process_peak_rss_bytes")

#: Span/event names whose *count* depends on thread timing (poll loops).
RACY_NAMES = frozenset(
    {"listener.poll", "listener.started", "listener.stopped", "staging.wait"}
)

#: Field keys holding filesystem paths — environment, not science.  The
#: canonical projection keeps only the basename (file names like
#: ``l2_step0016.gio`` are deterministic; the directories they sit in
#: are whatever the host handed out).
PATH_FIELD_KEYS = frozenset({"path", "dir", "directory", "spool", "file"})

_WORKER_LANE = re.compile(r"^exec-worker-\d+$")


def _canonical_lane(thread: str) -> str:
    """Collapse per-worker lanes: worker→item assignment is a race."""
    if _WORKER_LANE.match(thread or ""):
        return "exec-worker"
    return thread or "main"


def _canonical_fields(fields: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for k in sorted(fields):
        if k in RACY_FIELD_KEYS:
            continue
        v = fields[k]
        if k in PATH_FIELD_KEYS and isinstance(v, str):
            v = os.path.basename(v.rstrip("/")) or v
        out[k] = v
    return out


def canonical_spans(spans: list[Span]) -> list[dict[str, Any]]:
    """Timing-free span projection: name/step/lane/parent-name/args.

    Span ids are replaced by the *name* of the parent span, which keeps
    the causal structure visible (``exec.item`` under ``exec.run``)
    while erasing the run-dependent id numbering.
    """
    names_by_id = {s.span_id: s.name for s in spans}
    out = []
    for s in spans:
        if s.name in RACY_NAMES:
            continue
        out.append(
            {
                "name": s.name,
                "step": s.step,
                "rank": s.rank,
                "lane": _canonical_lane(s.thread),
                "parent": names_by_id.get(s.parent_id) if s.parent_id else None,
                "error": s.error is not None,
                "args": _canonical_fields(s.fields),
            }
        )
    out.sort(key=lambda d: json.dumps(d, sort_keys=True, default=_json_default))
    return out


def canonical_events(events: list[Event]) -> list[dict[str, Any]]:
    """Timing-free event projection (sorted multiset of records)."""
    out = []
    for e in events:
        if e.name in RACY_NAMES:
            continue
        out.append(
            {
                "name": e.name,
                "level": e.level,
                "step": e.step,
                "rank": e.rank,
                "fields": _canonical_fields(e.fields),
            }
        )
    out.sort(key=lambda d: json.dumps(d, sort_keys=True, default=_json_default))
    return out


def canonical_counters(metrics: dict[str, float]) -> dict[str, float]:
    """Count-valued metrics only (``*_total``/``*_count``), races dropped."""
    return {
        name: value
        for name, value in sorted(metrics.items())
        if (name.endswith("_total") or name.endswith("_count"))
        and name not in RACY_COUNTERS
    }


# -- report --------------------------------------------------------------------


def _cmd_report(args: argparse.Namespace) -> int:
    view = read_journal(args.journal)
    rt = RunTelemetry(
        spans=view.spans(),
        events=view.events(),
        metrics=view.last_metrics(),
        run_id=view.run_id,
    )
    if args.canonical:
        payload = {
            "run": view.run_id,
            "config_hash": view.manifest.config_hash if view.manifest else None,
            "complete": view.complete,
            "phases": {
                p: ps.calls
                for p, ps in sorted(rt.phase_stats().items())
                if p != "Listener"  # poll-loop counts are thread-timing races
            },
            "counters": canonical_counters(rt.metrics),
            "failures": [
                {k: v for k, v in sorted(f.items()) if k not in ("seq", "kind")}
                for f in view.failures()
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True, default=_json_default))
        return 0
    if view.manifest is not None:
        m = view.manifest
        print(
            f"run {m.run_id}  config {m.config_hash[:12]}  "
            f"code {m.code_version}  seeds {m.seeds}"
        )
        if m.fault_plan:
            print(f"fault plan: {len(m.fault_plan.get('faults', m.fault_plan))} entries")
    if not view.complete:
        print("NOTE: journal has no run.end record (live or crashed run)")
    if view.truncated:
        print("NOTE: torn final line recovered (crash mid-write)")
    if view.corrupt:
        print(f"NOTE: {view.corrupt} unparseable interior line(s) skipped")
    print()
    print(rt.phase_table())
    memory = rt.memory_stats()
    if memory:
        mib = memory["process_peak_rss_bytes"] / (1024.0 * 1024.0)
        print()
        print(f"peak RSS: {mib:.1f} MiB (process_peak_rss_bytes)")
    failures = rt.failure_table()
    if failures:
        print()
        print(failures)
    if view.failures():
        print()
        print("Terminal failures (journaled):")
        for f in view.failures():
            print(
                f"  stage={f.get('stage', '?')} key={f.get('key', '?')} "
                f"attempts={f.get('attempts', '?')}: {f.get('reason', '?')}"
            )
    print()
    print(rt.span_table(top=args.top))
    return 0


# -- timeline ------------------------------------------------------------------


def _machine_timeline(view: JournalView) -> MachineTimeline | None:
    events = view.events()
    if any(e.name == "scheduler.job_start" for e in events):
        return MachineTimeline.from_events(events)
    return None


def _cmd_timeline(args: argparse.Namespace) -> int:
    view = read_journal(args.journal)
    machine = _machine_timeline(view)
    wf = WorkflowTimeline(spans=view.spans(), metrics=view.last_metrics())
    if args.canonical:
        lanes: dict[str, int] = {}
        for lane_name, lane_spans in wf.lanes().items():
            lane = _canonical_lane(lane_name)
            lanes[lane] = lanes.get(lane, 0) + sum(
                1 for s in lane_spans if s.name not in RACY_NAMES
            )
        payload: dict[str, Any] = {"run": view.run_id, "lanes": lanes}
        # the machine Gantt runs on the *sim* clock — deterministic, so
        # it survives canonicalization intact
        if machine is not None:
            payload["machine"] = machine.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True, default=_json_default))
        return 0
    if args.json:
        payload = {"run": view.run_id, "workflow": wf.summary()}
        if machine is not None:
            payload["machine"] = machine.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True, default=_json_default))
        return 0
    if machine is not None:
        print(machine.gantt(width=args.width))
        print()
    print(wf.render(width=args.width))
    s = wf.summary()
    print(
        f"sim {s['sim_seconds']:.3f} s, analysis {s['analysis_seconds']:.3f} s, "
        f"overlap {s['overlap_fraction'] * 100.0:.1f}% "
        f"(solver {s['solver_overlap_fraction'] * 100.0:.1f}%), "
        f"staging {s['staging_throughput_bytes_per_s'] / 1e6:.2f} MB/s"
    )
    return 0


# -- tail ----------------------------------------------------------------------


def _cmd_tail(args: argparse.Namespace) -> int:
    if args.follow:
        try:
            for record in follow_journal(
                args.journal,
                poll_interval=args.interval,
                max_seconds=args.max_seconds,
            ):
                print(format_record(record), flush=True)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 130
        return 0
    view = read_journal(args.journal)
    records = view.records[-args.last :] if args.last else view.records
    for record in records:
        print(format_record(record))
    if view.truncated:
        print("(torn final line recovered)", file=sys.stderr)
    return 0


# -- trace ---------------------------------------------------------------------


def _cmd_trace(args: argparse.Namespace) -> int:
    view = read_journal(args.journal)
    if args.canonical:
        # deterministic projection: canonical spans become unit-duration
        # complete events at their sort index — structure without clocks
        spans = canonical_spans(view.spans())
        lanes: dict[str, int] = {}
        trace_events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": view.run_id or "repro"},
            }
        ]
        for lane in sorted({d["lane"] for d in spans}):
            lanes[lane] = len(lanes) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": lanes[lane],
                    "args": {"name": lane},
                }
            )
        for i, d in enumerate(spans):
            trace_events.append(
                {
                    "name": d["name"],
                    "cat": d["name"].split(".", 1)[0],
                    "ph": "X",
                    "ts": i * 2,
                    "dur": 1,
                    "pid": 1,
                    "tid": lanes[d["lane"]],
                    "args": {"parent": d["parent"], **d["args"]},
                }
            )
        trace = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, sort_keys=True, default=_json_default)
        print(f"wrote {args.output} ({len(spans)} spans, canonical)")
        return 0
    rt = RunTelemetry(
        spans=view.spans(), events=view.events(), run_id=view.run_id
    )
    rt.write_chrome_trace(args.output)
    print(f"wrote {args.output} ({len(rt.spans)} spans, {len(rt.events)} events)")
    return 0


# -- diff ----------------------------------------------------------------------


def _is_count(name: str) -> bool:
    return name.endswith("_total") or name.endswith("_count")


def _cmd_diff(args: argparse.Namespace) -> int:
    a = read_journal(args.journal_a)
    b = read_journal(args.journal_b)
    ma, mb = a.last_metrics(), b.last_metrics()
    findings: list[str] = []

    if a.manifest and b.manifest and a.manifest.config_hash != b.manifest.config_hash:
        findings.append(
            f"config drift: {a.manifest.config_hash[:12]} vs {b.manifest.config_hash[:12]}"
        )
    for name in sorted(set(ma) | set(mb)):
        if name in RACY_COUNTERS:  # presence itself is timing-dependent
            continue
        if name.startswith(RACY_TIMING_PREFIXES):
            continue
        va, vb = ma.get(name), mb.get(name)
        if va is None or vb is None:
            findings.append(f"metric {name}: only in {'B' if va is None else 'A'}")
            continue
        if _is_count(name):
            if name not in RACY_COUNTERS and va != vb:
                findings.append(f"count drift {name}: {va:g} -> {vb:g}")
        elif va > 0:
            rel = (vb - va) / va
            if rel > args.tolerance:
                findings.append(
                    f"timing regression {name}: {va:g} -> {vb:g} (+{rel * 100.0:.1f}%)"
                )
    if args.bench:
        with open(args.bench, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        for name, base in sorted(baseline.items()):
            if not isinstance(base, (int, float)) or name not in mb:
                continue
            if _is_count(name):
                if name not in RACY_COUNTERS and mb[name] != base:
                    findings.append(
                        f"count drift vs baseline {name}: {base:g} -> {mb[name]:g}"
                    )
            elif base > 0 and (mb[name] - base) / base > args.tolerance:
                rel = (mb[name] - base) / base
                findings.append(
                    f"regression vs baseline {name}: {base:g} -> {mb[name]:g} "
                    f"(+{rel * 100.0:.1f}%)"
                )

    print(f"A: {a.run_id} ({len(a.records)} records)")
    print(f"B: {b.run_id} ({len(b.records)} records)")
    if not findings:
        print("no drift or regressions found")
        return 0
    for f in findings:
        print(f"  {f}")
    print(f"{len(findings)} finding(s)")
    return 1


# -- entry point ---------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Campaign console over durable run journals.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="Table-4 phase report from a journal")
    p.add_argument("journal", help="journal file, run directory, or journal root")
    p.add_argument("--top", type=int, default=20, help="rows in the hottest-span table")
    p.add_argument(
        "--canonical",
        action="store_true",
        help="timing-free JSON projection (byte-identical for seeded reruns)",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("timeline", help="utilization Gantt + workflow lanes")
    p.add_argument("journal")
    p.add_argument("--width", type=int, default=72, help="chart width in columns")
    p.add_argument("--json", action="store_true", help="JSON instead of ASCII")
    p.add_argument("--canonical", action="store_true", help="timing-free JSON projection")
    p.set_defaults(func=_cmd_timeline)

    p = sub.add_parser("tail", help="print journal records; --follow streams a live run")
    p.add_argument("journal")
    p.add_argument("--follow", action="store_true", help="keep following until run.end")
    p.add_argument("--interval", type=float, default=0.2, help="poll interval (s)")
    p.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="stop following after this many seconds",
    )
    p.add_argument("--last", type=int, default=0, help="only the last N records")
    p.set_defaults(func=_cmd_tail)

    p = sub.add_parser("trace", help="export a Chrome/Perfetto trace")
    p.add_argument("journal")
    p.add_argument("-o", "--output", required=True, help="output trace path")
    p.add_argument("--canonical", action="store_true", help="timing-free projection")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("diff", help="compare two runs; flag drift and regressions")
    p.add_argument("journal_a")
    p.add_argument("journal_b")
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative timing-regression threshold (default 10%%)",
    )
    p.add_argument("--bench", help="BENCH_*.json baseline to compare run B against")
    p.set_defaults(func=_cmd_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
