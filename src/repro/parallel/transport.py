"""Pluggable SPMD transports: thread reference vs. process-backed ranks.

:mod:`repro.parallel.communicator` defines the mpi4py-flavoured
:class:`~repro.parallel.communicator.Communicator` against a narrow
*world* interface (``deliver`` / ``poll`` / ``barrier_wait`` /
``aborted``).  This module provides the second implementation of that
interface: a **process transport** that runs one OS process per rank, so
rank programs execute with real parallelism instead of GIL time-slicing.

The thread transport (:class:`~repro.parallel.communicator.World`)
remains the deterministic reference — both transports move *logically
identical* message payloads, so a rank program produces bit-for-bit the
same results on either (property-tested in
``tests/test_parallel_transport.py``).

Transport of bulk data rides the ``repro.exec`` shared-memory substrate:
any NumPy array at or above ``SpmdConfig.shm_threshold`` bytes is placed
in a :class:`~repro.exec.sharedmem.SharedParticleStore` segment and only
the tiny picklable spec crosses the queue — the receiving rank adopts
the segments, materialises the arrays, and frees them.  Senders register
every segment name on a cleanup queue so the parent can reap anything a
crashed receiver never adopted (no leaked segments on any failure path).

Ranks are forked (``start_method="fork"``), which lets rank programs be
closures over parent arrays exactly like the thread transport — the
in-situ FOF driver passes a closure and needs no changes to switch
transports.  ``TraceContext`` is shipped to each rank; rank-local
telemetry snapshots come back with the results and are merged into the
parent trace (one-trace-per-run invariant), labelled ``spmd-rank-N``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import traceback
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..exec.sharedmem import SharedParticleStore, _attach_segment
from ..faults import FaultPlan, get_fault_plan, set_fault_plan
from ..obs import TelemetryRecorder, get_recorder, set_recorder
from ..obs.context import export_snapshot, merge_snapshot

__all__ = ["ProcessWorld", "SpmdConfig", "resolve_transport"]

#: Environment variable selecting the default transport for ``run_spmd``.
TRANSPORT_ENV = "REPRO_SPMD_TRANSPORT"

_VALID_TRANSPORTS = ("thread", "process")

#: Poll step used for bounded queue waits (seconds, accumulated — no
#: wall-clock reads in this module per RPR003).
_POLL_STEP = 0.25


@dataclass(frozen=True)
class SpmdConfig:
    """Transport selection + tuning knobs for :func:`run_spmd`.

    Parameters
    ----------
    transport:
        ``"thread"`` (deterministic in-process reference) or
        ``"process"`` (one forked OS process per rank).
    timeout:
        Per-wait deadlock timeout in seconds; ``None`` inherits the
        ``run_spmd(timeout=...)`` argument.
    shm_threshold:
        NumPy payloads of at least this many bytes bypass pickling and
        ride shared-memory segments (process transport only).
    start_method:
        Multiprocessing start method.  Only ``"fork"`` supports the
        closure-style rank programs used throughout the repo.
    """

    transport: str = "thread"
    timeout: float | None = None
    shm_threshold: int = 65536
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.transport not in _VALID_TRANSPORTS:
            raise ValueError(
                f"unknown SPMD transport {self.transport!r} "
                f"(expected one of {_VALID_TRANSPORTS})"
            )


def resolve_transport(spec: "str | SpmdConfig | None") -> SpmdConfig:
    """Normalise a ``transport=`` argument into an :class:`SpmdConfig`.

    ``None`` consults the ``REPRO_SPMD_TRANSPORT`` environment variable
    (default ``"thread"``), so whole test suites can be re-run over the
    process transport without touching call sites.
    """
    if isinstance(spec, SpmdConfig):
        return spec
    if spec is None:
        spec = os.environ.get(TRANSPORT_ENV, "").strip().lower() or "thread"
    return SpmdConfig(transport=spec)


class ProcessWorld:
    """Parent-side summary of one process-transport execution.

    Mirrors the statistics surface of the thread
    :class:`~repro.parallel.communicator.World` (``messages_sent`` /
    ``bytes_sent``, summed over all ranks) for ``return_world=True``
    callers; it carries no live transport state.
    """

    def __init__(self, size: int, timeout: float) -> None:
        self.size = size
        self.timeout = timeout
        self.messages_sent = 0
        self.bytes_sent = 0


# -- payload codec -------------------------------------------------------------
#
# Messages are pickled by the mp.Queue *except* bulk arrays: those are
# copied once into shared-memory segments by the sender and adopted
# (attach + unlink) by the receiver.  Only the segment spec rides the
# queue, so serialisation cost is O(structure), not O(data).


class _ShmSlot:
    """Placeholder marking where a shared-memory array goes on decode."""

    __slots__ = ("key",)

    def __init__(self, key: str) -> None:
        self.key = key


def _encode_payload(obj: Any, threshold: int, cleanup_q: Any) -> tuple[Any, ...]:
    """Encode ``obj`` for a queue hop, hoisting big arrays into shm."""
    arrays: dict[str, np.ndarray] = {}

    def hoist(x: Any) -> Any:
        if (
            isinstance(x, np.ndarray)
            and not x.dtype.hasobject
            and x.nbytes >= threshold
        ):
            key = f"a{len(arrays)}"
            arrays[key] = x
            return _ShmSlot(key)
        if isinstance(x, tuple):
            return tuple(hoist(v) for v in x)
        if isinstance(x, list):
            return [hoist(v) for v in x]
        if isinstance(x, dict):
            return {k: hoist(v) for k, v in x.items()}
        return x

    template = hoist(obj)
    if not arrays:
        return ("pickle", obj)
    store = SharedParticleStore.create(**arrays)
    try:
        spec = store.spec
        # register segment names with the parent reaper *before* the
        # message is visible to the receiver: if the receiver dies first,
        # the parent still knows what to unlink
        cleanup_q.put(sorted(name for name, _, _ in spec.values()))
    finally:
        # ownership transfers to the receiver (or the parent reaper):
        # drop this process's mapping without freeing the segments
        store.release()
    return ("shm", template, spec)


def _decode_payload(msg: tuple[Any, ...]) -> Any:
    """Reverse :func:`_encode_payload`; adopts and frees shm segments."""
    if msg[0] == "pickle":
        return msg[1]
    _, template, spec = msg
    store = SharedParticleStore.attach(spec, adopt=True)
    try:
        arrays = {key: np.array(store.array(key), copy=True) for key in store.fields}
    finally:
        store.unlink()

    def fill(x: Any) -> Any:
        if isinstance(x, _ShmSlot):
            return arrays[x.key]
        if isinstance(x, tuple):
            return tuple(fill(v) for v in x)
        if isinstance(x, list):
            return [fill(v) for v in x]
        if isinstance(x, dict):
            return {k: fill(v) for k, v in x.items()}
        return x

    return fill(template)


def _reap_segments(cleanup_q: Any) -> int:
    """Unlink any registered segments the receivers never adopted."""
    names: set[str] = set()
    while True:
        try:
            names.update(cleanup_q.get_nowait())
        except queue.Empty:
            break
    reaped = 0
    for name in sorted(names):
        try:
            seg = _attach_segment(name)
        except FileNotFoundError:
            continue  # adopted and freed by its receiver — the common case
        try:
            seg.unlink()
            reaped += 1
        finally:
            seg.close()
    return reaped


# -- rank side -----------------------------------------------------------------


class _ProcessRankWorld:
    """Rank-local world over fork-inherited queues (one per rank).

    Implements the narrow transport interface the
    :class:`~repro.parallel.communicator.Communicator` consumes:
    ``deliver`` / ``poll`` / ``barrier_wait`` / ``aborted`` / ``record``.
    Statistics are counted locally and shipped back with the rank result;
    the parent sums them into the :class:`ProcessWorld`.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: list[Any],
        cleanup_q: Any,
        barrier: Any,
        abort: Any,
        failed_rank: Any,
        timeout: float,
        shm_threshold: int,
    ) -> None:
        self.rank = rank
        self.size = size
        self.timeout = timeout
        self._inboxes = inboxes
        self._cleanup_q = cleanup_q
        self._barrier = barrier
        self._abort = abort
        self._failed_rank = failed_rank
        self._shm_threshold = shm_threshold
        self._pending: list[tuple[int, int, Any]] = []
        self.messages_sent = 0
        self.bytes_sent = 0

    # Communicator-facing interface -------------------------------------

    def aborted(self) -> str | None:
        if not self._abort.is_set():
            return None
        rank = int(self._failed_rank.value)
        if rank >= 0:
            return f"world aborted (rank {rank} failed)"
        return "world aborted"

    def record(self, payload: Any) -> None:
        from .communicator import _payload_bytes

        self.messages_sent += 1
        self.bytes_sent += _payload_bytes(payload)

    def deliver(self, dest: int, source: int, tag: int, obj: Any) -> None:
        # logical (pre-encoding) bytes, matching the thread transport
        self.record(obj)
        enc = _encode_payload(obj, self._shm_threshold, self._cleanup_q)
        self._inboxes[dest].put((source, tag, enc))

    def poll(self, rank: int, source: int, tag: int, step: float) -> Any:
        from .communicator import ANY_SOURCE, ANY_TAG, SpmdError

        def matches(src: int, tg: int) -> bool:
            return (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, tg))

        for i, (src, tg, payload) in enumerate(self._pending):
            if matches(src, tg):
                return self._pending.pop(i)[2]
        while True:
            try:
                src, tg, enc = self._inboxes[rank].get(timeout=step)
            except queue.Empty:
                raise SpmdError(
                    f"recv(source={source}, tag={tag}) timed out after {step}s "
                    "— likely SPMD deadlock"
                ) from None
            payload = _decode_payload(enc)
            if matches(src, tg):
                return payload
            self._pending.append((src, tg, payload))

    def barrier_wait(self) -> None:
        import threading

        from .communicator import SpmdError

        try:
            self._barrier.wait(self.timeout)
        except threading.BrokenBarrierError:
            rank = int(self._failed_rank.value)
            if rank >= 0:
                raise SpmdError(
                    f"barrier broken: rank {rank} died or raised "
                    "(see the SpmdError chained from run_spmd)"
                ) from None
            raise SpmdError(
                f"barrier broken (a rank died or timed out after {self.timeout}s)"
            ) from None


def _process_rank_main(
    rank: int,
    size: int,
    fn: Callable[..., Any],
    fn_args: tuple[Any, ...],
    fn_kwargs: dict[str, Any],
    inboxes: list[Any],
    result_q: Any,
    cleanup_q: Any,
    barrier: Any,
    abort: Any,
    failed_rank: Any,
    timeout: float,
    shm_threshold: int,
    trace: dict[str, Any] | None,
    plan_dict: dict[str, Any] | None,
) -> None:
    """Entry point of one forked SPMD rank."""
    from .communicator import Communicator

    if plan_dict is not None:
        # forked ranks inherit the parent's fault-plan *history*; install
        # a fresh copy so per-rank attempt state is deterministic
        set_fault_plan(FaultPlan.from_dict(plan_dict))
    local_rec: TelemetryRecorder | None = None
    if trace is not None:
        # record rank-local telemetry and ship one snapshot back with the
        # result, so the parent's single trace covers this process too
        local_rec = TelemetryRecorder(run_id=trace.get("run"), capacity=4096)
        set_recorder(local_rec)
    world = _ProcessRankWorld(
        rank, size, inboxes, cleanup_q, barrier, abort, failed_rank,
        timeout, shm_threshold,
    )
    comm = Communicator(world, rank)
    try:
        result = fn(comm, *fn_args, **fn_kwargs)
        payload = _encode_payload(result, shm_threshold, cleanup_q)
        status = "ok"
    except BaseException as exc:  # repro: noqa[RPR006] - the traceback is
        # shipped to the parent over result_q, which re-raises it as a
        # chained SpmdError: the failure is loudly observable, never
        # swallowed.
        with failed_rank.get_lock():
            if failed_rank.value < 0:
                failed_rank.value = rank
        abort.set()
        try:
            barrier.abort()
        except (OSError, ValueError):  # pragma: no cover - barrier torn down
            pass
        status = "error"
        payload = (type(exc).__name__, str(exc), traceback.format_exc())
    snap = export_snapshot(local_rec) if local_rec is not None else None
    result_q.put((rank, status, payload, (world.messages_sent, world.bytes_sent), snap))


# -- parent side ---------------------------------------------------------------


class RemoteRankError(RuntimeError):
    """Carries the formatted traceback of a failed SPMD rank process."""

    def __init__(self, rank: int, formatted_traceback: str) -> None:
        super().__init__(
            f"rank {rank} traceback:\n{formatted_traceback}"
        )
        self.rank = rank
        self.formatted_traceback = formatted_traceback


def run_process_spmd(
    cfg: SpmdConfig,
    nranks: int,
    fn: Callable[..., Any],
    fn_args: tuple[Any, ...],
    fn_kwargs: dict[str, Any],
    timeout: float,
    return_world: bool,
) -> "list[Any] | tuple[list[Any], ProcessWorld]":
    """Execute ``fn(comm, ...)`` on ``nranks`` forked processes.

    Mirrors the thread path of
    :func:`~repro.parallel.communicator.run_spmd`: per-rank results in
    rank order, first rank failure re-raised as ``SpmdError`` (chaining a
    :class:`RemoteRankError` with the remote traceback), world statistics
    summed for ``return_world=True``.
    """
    from .communicator import SpmdError

    if cfg.timeout is not None:
        timeout = cfg.timeout
    try:
        ctx = multiprocessing.get_context(cfg.start_method)
    except ValueError as exc:  # pragma: no cover - non-POSIX platforms
        raise SpmdError(
            f"process transport requires the {cfg.start_method!r} start method "
            "(rank programs are closures); use transport='thread' instead"
        ) from exc

    # Start the shared-memory resource tracker *before* forking: ranks
    # must inherit the parent's tracker, or each rank lazily starts its
    # own, which unlinks that rank's in-flight message segments the
    # moment the rank exits — racing the receivers that adopt them.
    from multiprocessing import resource_tracker

    ensure_running = getattr(resource_tracker, "ensure_running", None)
    if ensure_running is not None:
        ensure_running()

    inboxes = [ctx.Queue() for _ in range(nranks)]
    result_q = ctx.Queue()
    cleanup_q = ctx.Queue()
    barrier = ctx.Barrier(nranks)
    abort = ctx.Event()
    failed_rank = ctx.Value("l", -1)

    rec = get_recorder()
    ctx_trace = rec.trace_context()
    trace_dict = ctx_trace.to_dict() if ctx_trace is not None else None
    active_plan = get_fault_plan()
    plan_dict = active_plan.to_dict() if active_plan is not None else None

    procs = [
        ctx.Process(
            target=_process_rank_main,
            args=(
                r, nranks, fn, fn_args, fn_kwargs, inboxes, result_q, cleanup_q,
                barrier, abort, failed_rank, timeout, cfg.shm_threshold,
                trace_dict, plan_dict,
            ),
            name=f"spmd-rank-{r}",
            daemon=True,
        )
        for r in range(nranks)
    ]

    got: dict[int, tuple[Any, ...]] = {}
    dead: dict[int, int] = {}
    timed_out = False

    def absorb(msg: tuple[Any, ...]) -> None:
        # decode at receipt time, while the payload's segments are still
        # guaranteed un-reaped; error payloads are plain tuples
        rank_, status_, payload_, stats_, snap_ = msg
        if status_ == "ok":
            payload_ = _decode_payload(payload_)
        got[rank_] = (rank_, status_, payload_, stats_, snap_)
        dead.pop(rank_, None)
        if status_ == "error":
            abort.set()

    try:
        for p in procs:
            p.start()
        waited = 0.0
        budget = timeout * 4
        while len(got) + len(dead) < nranks:
            try:
                msg = result_q.get(timeout=_POLL_STEP)
            except queue.Empty:
                waited += _POLL_STEP
                for r, p in enumerate(procs):
                    if r not in got and r not in dead and not p.is_alive():
                        dead[r] = p.exitcode if p.exitcode is not None else -1
                        abort.set()
                if waited >= budget:
                    timed_out = True
                    abort.set()
                    break
            else:
                absorb(msg)
    finally:
        abort.set()
        for p in procs:
            p.join(timeout=5.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - stuck rank
                p.terminate()
                p.join(timeout=5.0)
        # absorb results that raced the liveness check (a rank can exit
        # between putting its result and the parent observing it)
        while True:
            try:
                absorb(result_q.get_nowait())
            except queue.Empty:
                break
        # everything absorbed is adopted; whatever segment names remain
        # belong to messages nobody will ever read (crashed receivers)
        reaped = _reap_segments(cleanup_q)
        if reaped:
            rec.counter("spmd_segments_reaped_total").inc(reaped)
        for q in (*inboxes, result_q, cleanup_q):
            q.close()

    world = ProcessWorld(nranks, timeout)
    for r in sorted(got):
        messages, nbytes = got[r][3]
        world.messages_sent += int(messages)
        world.bytes_sent += int(nbytes)
    # fold rank telemetry into the parent trace in rank order before any
    # raise, so failed runs are still fully observable
    if trace_dict is not None and isinstance(rec, TelemetryRecorder):
        for r in sorted(got):
            if got[r][4] is not None:
                merge_snapshot(
                    rec,
                    got[r][4],
                    parent_span_id=trace_dict.get("span_id"),
                    thread=f"spmd-rank-{r}",
                )

    errors = {r: got[r][2] for r in sorted(got) if got[r][1] == "error"}
    if dead:
        # a rank that died without reporting (hard crash) is always the
        # root cause — any recorded errors are its peers' broken barriers
        rank, code = sorted(dead.items())[0]
        raise SpmdError(
            f"rank {rank} died with exit code {code} before returning a result "
            "(process transport)"
        )
    if errors:
        # prefer the root cause: failed_rank records the *first* rank to
        # fail, whose abort then broke the barrier under its peers
        first = int(failed_rank.value)
        rank = first if first in errors else next(iter(errors))
        etype, emsg, tb = errors[rank]
        raise SpmdError(f"rank {rank} raised {etype}: {emsg}") from RemoteRankError(rank, tb)
    if timed_out:
        missing = sorted(set(range(nranks)) - set(got))
        raise SpmdError(
            f"SPMD ranks {missing} failed to finish within {timeout * 4}s "
            "— likely deadlock"
        )

    results = [got[r][2] for r in range(nranks)]
    if return_world:
        return results, world
    return results
