"""Particle redistribution across ranks (the "Redistribute" phase).

The off-line workflows in the paper pay a substantial cost to read
Level 1 data back from disk and *redistribute* particles to the ranks
that own their sub-box (Table 4: 435 s for Level 1, 75 s for Level 2).
This module implements that exchange on top of the in-process
communicator, and reports the bytes moved so the machine cost model can
charge redistribution time at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .communicator import Communicator
from .decomposition import CartesianDecomposition

__all__ = ["ExchangeStats", "alltoallv_arrays", "redistribute_arrays"]


@dataclass
class ExchangeStats:
    """Accounting of one redistribution: what moved and how much."""

    particles_sent: int = 0
    bytes_sent: int = 0
    particles_kept: int = 0

    @property
    def total_particles(self) -> int:
        return self.particles_sent + self.particles_kept


def alltoallv_arrays(
    comm: Communicator, send_chunks: list[dict[str, np.ndarray]]
) -> list[dict[str, np.ndarray]]:
    """Variable-size all-to-all of named-array bundles.

    ``send_chunks[d]`` is a dict of equal-length arrays destined for rank
    ``d``.  Returns the list of received bundles indexed by source rank.
    """
    if len(send_chunks) != comm.size:
        raise ValueError("send_chunks must have one entry per rank")
    return comm.alltoall(send_chunks)


def redistribute_arrays(
    comm: Communicator,
    decomp: CartesianDecomposition,
    arrays: dict[str, np.ndarray],
    positions_key: str = "pos",
) -> tuple[dict[str, np.ndarray], ExchangeStats]:
    """Move rows of ``arrays`` to the ranks that own their positions.

    ``arrays[positions_key]`` must be an ``(n, 3)`` position array; all
    other entries are equal-length per-particle attributes.  Each row is
    shipped to ``decomp.rank_of_position(row)``.  Returns the merged local
    bundle (own rows kept + received rows appended) and exchange stats.
    """
    pos = np.atleast_2d(np.asarray(arrays[positions_key], dtype=float))
    n = len(pos)
    for key, arr in arrays.items():
        if len(arr) != n:
            raise ValueError(f"array {key!r} length {len(arr)} != positions length {n}")

    owners = decomp.rank_of_position(pos) if n else np.empty(0, dtype=np.intp)
    stats = ExchangeStats()

    send_chunks: list[dict[str, np.ndarray]] = []
    for dest in range(comm.size):
        mask = owners == dest
        chunk = {key: np.asarray(arr)[mask] for key, arr in arrays.items()}
        send_chunks.append(chunk)
        if dest != comm.rank:
            k = int(mask.sum())
            stats.particles_sent += k
            stats.bytes_sent += sum(a.nbytes for a in chunk.values())
        else:
            stats.particles_kept += int(mask.sum())

    received = alltoallv_arrays(comm, send_chunks)
    merged: dict[str, np.ndarray] = {}
    for key in arrays:
        parts = [chunk[key] for chunk in received if len(chunk[key])]
        if parts:
            merged[key] = np.concatenate(parts)
        else:
            merged[key] = np.asarray(arrays[key])[:0]
    return merged, stats
