"""3-D Cartesian domain decomposition of a periodic simulation box.

HACC distributes particles across ranks by a regular 3-D block
decomposition of the periodic box.  This module reproduces that layout:
ranks are factorized into a near-cubic ``(px, py, pz)`` process grid
(``MPI_Dims_create`` style), each rank owns an axis-aligned sub-box, and
positions map to owner ranks by integer division.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["factor_dims", "CartesianDecomposition"]


def factor_dims(nranks: int, ndim: int = 3) -> tuple[int, ...]:
    """Factor ``nranks`` into ``ndim`` near-equal factors (descending).

    Equivalent in spirit to ``MPI_Dims_create``: among all factorizations
    it picks the one minimizing the spread between the largest and
    smallest factor (then lexicographically smallest), so 8 -> (2, 2, 2),
    12 -> (3, 2, 2), 32 -> (4, 4, 2).
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if ndim == 1:
        return (nranks,)

    best: tuple[int, ...] | None = None
    best_score: tuple[int, tuple[int, ...]] | None = None

    def rec(remaining: int, slots: int, prefix: tuple[int, ...]) -> None:
        nonlocal best, best_score
        if slots == 1:
            dims = tuple(sorted((*prefix, remaining), reverse=True))
            score = (dims[0] - dims[-1], dims)
            if best_score is None or score < best_score:
                best, best_score = dims, score
            return
        f = 1
        while f * f <= remaining or f <= remaining:
            if f > remaining:
                break
            if remaining % f == 0:
                rec(remaining // f, slots - 1, (*prefix, f))
            f += 1

    rec(nranks, ndim, ())
    assert best is not None
    return best


@dataclass(frozen=True)
class CartesianDecomposition:
    """Regular 3-D block decomposition of a periodic cubic box.

    Parameters
    ----------
    box:
        Side length of the periodic box (same units as positions).
    dims:
        Process grid shape ``(px, py, pz)``.
    """

    box: float
    dims: tuple[int, int, int]

    @classmethod
    def for_ranks(cls, box: float, nranks: int) -> "CartesianDecomposition":
        """Build a decomposition with an automatically factored grid."""
        return cls(box=box, dims=tuple(factor_dims(nranks, 3)))  # type: ignore[arg-type]

    @property
    def nranks(self) -> int:
        px, py, pz = self.dims
        return px * py * pz

    @property
    def cell_sizes(self) -> np.ndarray:
        """Sub-box edge lengths along each axis."""
        return self.box / np.asarray(self.dims, dtype=float)

    # -- rank <-> grid coordinates ---------------------------------------

    def coords_of_rank(self, rank: int) -> tuple[int, int, int]:
        """Grid coordinates ``(ix, iy, iz)`` of ``rank`` (row-major)."""
        px, py, pz = self.dims
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range")
        ix, rem = divmod(rank, py * pz)
        iy, iz = divmod(rem, pz)
        return ix, iy, iz

    def rank_of_coords(self, ix: int, iy: int, iz: int) -> int:
        """Rank owning grid cell ``(ix, iy, iz)`` (periodic wrap applied)."""
        px, py, pz = self.dims
        return ((ix % px) * py + (iy % py)) * pz + (iz % pz)

    # -- geometry ---------------------------------------------------------

    def bounds(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` corner coordinates of the sub-box owned by ``rank``."""
        coords = np.asarray(self.coords_of_rank(rank), dtype=float)
        cell = self.cell_sizes
        lo = coords * cell
        return lo, lo + cell

    def rank_of_position(self, pos: np.ndarray) -> np.ndarray:
        """Owner ranks of positions ``pos`` (shape ``(n, 3)`` or ``(3,)``).

        Positions are periodically wrapped into the box first.
        """
        pos = np.atleast_2d(np.asarray(pos, dtype=float))
        wrapped = np.mod(pos, self.box)
        cell = self.cell_sizes
        idx = np.floor(wrapped / cell).astype(np.intp)
        dims = np.asarray(self.dims, dtype=np.intp)
        # Guard against positions exactly at the box edge after wrap.
        np.clip(idx, 0, dims - 1, out=idx)
        ranks = (idx[:, 0] * dims[1] + idx[:, 1]) * dims[2] + idx[:, 2]
        return ranks if ranks.size > 1 else ranks.reshape(-1)

    def neighbor_ranks(self, rank: int) -> list[int]:
        """The (up to) 26 distinct periodic neighbors of ``rank``."""
        ix, iy, iz = self.coords_of_rank(rank)
        out: list[int] = []
        seen = {rank}
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    r = self.rank_of_coords(ix + dx, iy + dy, iz + dz)
                    if r not in seen:
                        seen.add(r)
                        out.append(r)
        return out

    def contains(self, rank: int, pos: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``pos`` fall inside rank's owned sub-box."""
        lo, hi = self.bounds(rank)
        pos = np.atleast_2d(np.mod(np.asarray(pos, dtype=float), self.box))
        return np.all((pos >= lo) & (pos < hi), axis=1)
