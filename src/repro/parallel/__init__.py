"""In-process SPMD substrate: communicator, domain decomposition, ghosts.

The repo's MPI stand-in.  Algorithms written against
:class:`~repro.parallel.communicator.Communicator` follow mpi4py idioms
(send/recv/bcast/gather/allreduce/alltoall) and run one thread per rank
via :func:`~repro.parallel.communicator.run_spmd`.
"""

from .communicator import Communicator, SpmdError, World, run_spmd
from .decomposition import CartesianDecomposition, factor_dims
from .exchange import ExchangeStats, alltoallv_arrays, redistribute_arrays
from .overload import OVERLOAD_SAFETY_FACTOR, overload_destinations, select_overload

__all__ = [
    "Communicator",
    "SpmdError",
    "World",
    "run_spmd",
    "CartesianDecomposition",
    "factor_dims",
    "ExchangeStats",
    "alltoallv_arrays",
    "redistribute_arrays",
    "OVERLOAD_SAFETY_FACTOR",
    "overload_destinations",
    "select_overload",
]
