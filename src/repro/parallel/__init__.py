"""In-process SPMD substrate: communicator, domain decomposition, ghosts.

The repo's MPI stand-in.  Algorithms written against
:class:`~repro.parallel.communicator.Communicator` follow mpi4py idioms
(send/recv/bcast/gather/allreduce/alltoall) and run via
:func:`~repro.parallel.communicator.run_spmd` over a pluggable
transport: one thread per rank (the deterministic reference) or one
forked OS process per rank (:mod:`repro.parallel.transport`), selected
with ``run_spmd(..., transport="thread"|"process")`` or
:class:`~repro.parallel.transport.SpmdConfig`.
"""

from .communicator import CollectiveProtocolError, Communicator, SpmdError, World, run_spmd
from .decomposition import CartesianDecomposition, factor_dims
from .exchange import ExchangeStats, alltoallv_arrays, redistribute_arrays
from .overload import OVERLOAD_SAFETY_FACTOR, overload_destinations, select_overload
from .transport import ProcessWorld, SpmdConfig, resolve_transport

__all__ = [
    "CollectiveProtocolError",
    "Communicator",
    "SpmdError",
    "World",
    "run_spmd",
    "ProcessWorld",
    "SpmdConfig",
    "resolve_transport",
    "CartesianDecomposition",
    "factor_dims",
    "ExchangeStats",
    "alltoallv_arrays",
    "redistribute_arrays",
    "OVERLOAD_SAFETY_FACTOR",
    "overload_destinations",
    "select_overload",
]
